"""Tests for classic, tree, grid, and expander generators."""

import numpy as np
import pytest

from repro.graphs import (
    barbell,
    balanced_binary_tree,
    caterpillar,
    chordal_cycle,
    circulant,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    diameter,
    double_star,
    grid,
    grid_coords,
    grid_manhattan,
    grid_vertex,
    hypercube,
    is_bipartite,
    is_connected,
    is_prime,
    kary_tree,
    kary_tree_depth,
    lollipop,
    margulis,
    path_graph,
    random_regular,
    random_tree,
    spider,
    star_graph,
    torus,
    wheel_graph,
)


class TestClassic:
    def test_path(self):
        g = path_graph(5)
        assert g.n == 5 and g.m == 4
        assert g.degree(0) == 1 and g.degree(2) == 2
        assert diameter(g) == 4

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.n == 7 and g.m == 7
        assert g.is_regular() and g.degree(0) == 2
        assert diameter(g) == 3

    def test_cycle_minimum_size(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(6)
        assert g.m == 15
        assert g.is_regular() and g.degree(0) == 5
        assert diameter(g) == 1

    def test_complete_small(self):
        assert complete_graph(1).n == 1
        assert complete_graph(2).m == 1

    def test_star(self):
        g = star_graph(10)
        assert g.degree(0) == 9
        assert all(g.degree(v) == 1 for v in range(1, 10))
        assert is_bipartite(g)

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.n == 7 and g.m == 12
        assert is_bipartite(g)
        assert g.degree(0) == 4 and g.degree(3) == 3

    def test_lollipop_structure(self):
        g = lollipop(30)
        c = g.meta["clique"]
        assert c == 20
        assert is_connected(g)
        # clique vertices all have degree >= c-1
        assert all(g.degree(v) >= c - 1 for v in range(c))
        # path end has degree 1
        assert g.degree(g.n - 1) == 1

    def test_lollipop_custom_fraction(self):
        g = lollipop(20, clique_fraction=0.5)
        assert g.meta["clique"] == 10

    def test_barbell(self):
        g = barbell(30)
        assert is_connected(g)
        assert g.meta["clique"] == 10

    def test_wheel(self):
        g = wheel_graph(8)
        assert g.degree(0) == 7
        assert all(g.degree(v) == 3 for v in range(1, 8))

    def test_double_star(self):
        g = double_star(3, 5)
        assert g.n == 10
        assert g.degree(0) == 4 and g.degree(1) == 6


class TestGrid:
    @pytest.mark.parametrize("n,d", [(4, 1), (4, 2), (3, 3)])
    def test_sizes(self, n, d):
        g = grid(n, d)
        assert g.n == (n + 1) ** d
        assert g.m == d * n * (n + 1) ** (d - 1)
        assert is_connected(g)

    def test_corner_and_interior_degrees(self):
        g = grid(4, 2)
        assert g.degree(0) == 2  # corner (0,0)
        center = grid_vertex([2, 2], 4, 2)
        assert g.degree(center) == 4

    def test_diameter_is_dn(self):
        assert diameter(grid(5, 2)) == 10

    def test_torus_regular(self):
        t = torus(4, 2)
        assert t.is_regular() and t.degree(0) == 4
        assert t.m == 2 * t.n

    def test_torus_side_two_no_parallel_edges(self):
        t = torus(1, 2)  # side 2: wrap edge equals lattice edge
        assert t.degrees.max() <= 2

    def test_coords_roundtrip(self):
        n, d = 6, 3
        ids = np.arange((n + 1) ** d)
        coords = grid_coords(ids, n, d)
        back = grid_vertex(coords, n, d)
        assert np.array_equal(back, ids)

    def test_manhattan(self):
        assert grid_manhattan(grid_vertex([0, 0], 5, 2), grid_vertex([3, 4], 5, 2), 5, 2) == 7

    def test_coordinate_out_of_range(self):
        with pytest.raises(ValueError):
            grid_vertex([7, 0], 5, 2)

    def test_grid_edges_are_unit_steps(self):
        n, d = 4, 2
        g = grid(n, d)
        for u, v in g.edges():
            assert grid_manhattan(int(u), int(v), n, d) == 1


class TestTrees:
    @pytest.mark.parametrize("k,depth", [(2, 3), (3, 2), (5, 2)])
    def test_kary_size(self, k, depth):
        g = kary_tree(k, depth)
        assert g.n == (k ** (depth + 1) - 1) // (k - 1)
        assert g.m == g.n - 1
        assert is_connected(g)
        assert diameter(g) == 2 * depth

    def test_kary_root_and_leaf_degrees(self):
        g = kary_tree(3, 2)
        assert g.degree(0) == 3
        assert g.degree(g.n - 1) == 1

    def test_balanced_binary(self):
        assert balanced_binary_tree(3).n == 15

    def test_kary_tree_depth_helper(self):
        assert kary_tree_depth(2, 15) == 3
        assert kary_tree_depth(2, 16) == 4
        assert kary_tree_depth(3, 1) == 0

    def test_spider(self):
        g = spider(4, 3)
        assert g.n == 13 and g.degree(0) == 4
        assert diameter(g) == 6

    def test_caterpillar(self):
        g = caterpillar(4, 2)
        assert g.n == 12
        assert is_connected(g) and g.m == g.n - 1

    def test_random_tree_is_tree(self):
        for seed in range(5):
            g = random_tree(40, seed=seed)
            assert g.m == g.n - 1
            assert is_connected(g)

    def test_random_tree_tiny(self):
        assert random_tree(1).n == 1
        assert random_tree(2).m == 1

    def test_random_tree_distribution_differs(self):
        a = random_tree(30, seed=1)
        b = random_tree(30, seed=2)
        assert a != b


class TestExpanders:
    def test_hypercube(self):
        g = hypercube(4)
        assert g.n == 16 and g.is_regular() and g.degree(0) == 4
        assert is_bipartite(g)
        assert diameter(g) == 4

    def test_hypercube_neighbors_are_bitflips(self):
        g = hypercube(5)
        for v in [0, 7, 31]:
            for u in g.neighbors(v):
                x = int(u) ^ v
                assert x and (x & (x - 1)) == 0  # power of two

    @pytest.mark.parametrize("n,d", [(20, 3), (50, 4), (31, 6)])
    def test_random_regular(self, n, d):
        g = random_regular(n, d, seed=42)
        assert g.is_regular() and g.degree(0) == d
        assert is_connected(g)

    def test_random_regular_parity_check(self):
        with pytest.raises(ValueError):
            random_regular(7, 3)

    def test_random_regular_determinism(self):
        assert random_regular(30, 3, seed=9) == random_regular(30, 3, seed=9)

    def test_margulis(self):
        g = margulis(6)
        assert g.n == 36
        assert is_connected(g)
        assert g.max_degree <= 8

    def test_chordal_cycle(self):
        g = chordal_cycle(61)
        assert g.n == 61
        assert is_connected(g)
        assert g.max_degree <= 3

    def test_chordal_cycle_rejects_composite(self):
        with pytest.raises(ValueError):
            chordal_cycle(60)

    def test_circulant(self):
        g = circulant(10, [1, 3])
        assert g.is_regular() and g.degree(0) == 4
        assert g.has_edge(0, 3) and g.has_edge(0, 7)

    def test_is_prime(self):
        primes = [2, 3, 5, 7, 61, 101, 7919]
        composites = [1, 4, 9, 100, 561, 7917]
        assert all(is_prime(p) for p in primes)
        assert not any(is_prime(c) for c in composites)
