"""Tests for graph products and the Lemma 11 pair chain."""

import numpy as np
import pytest

from repro.graphs import (
    cartesian_product,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    tensor_product,
    walt_pair_chain,
)


class TestTensorProduct:
    def test_edge_count(self):
        g, h = cycle_graph(5), cycle_graph(7)
        t = tensor_product(g, h)
        assert t.n == 35
        assert t.m == 2 * g.m * h.m

    def test_degrees_multiply(self):
        g, h = cycle_graph(4), path_graph(3)
        t = tensor_product(g, h)
        for a in range(g.n):
            for c in range(h.n):
                assert t.degree(a * h.n + c) == g.degree(a) * h.degree(c)

    def test_adjacency_rule(self):
        g, h = path_graph(3), path_graph(3)
        t = tensor_product(g, h)
        # (0,0) ~ (1,1) but not (0,1)
        assert t.has_edge(0, 1 * 3 + 1)
        assert not t.has_edge(0, 1)


class TestCartesianProduct:
    def test_edge_count(self):
        g, h = cycle_graph(5), path_graph(4)
        c = cartesian_product(g, h)
        assert c.m == g.m * h.n + h.m * g.n

    def test_degrees_add(self):
        g, h = cycle_graph(4), path_graph(3)
        c = cartesian_product(g, h)
        for a in range(g.n):
            for b in range(h.n):
                assert c.degree(a * h.n + b) == g.degree(a) + h.degree(b)

    def test_torus_from_cycles(self):
        c = cartesian_product(cycle_graph(4), cycle_graph(4))
        assert c.is_regular() and c.degree(0) == 4


class TestWaltPairChain:
    @pytest.mark.parametrize("graph", [cycle_graph(5), complete_graph(5), cycle_graph(9)])
    def test_rows_stochastic(self, graph):
        chain = walt_pair_chain(graph)
        rows = np.asarray(chain.transition.sum(axis=1)).ravel()
        assert np.allclose(rows, 1.0)

    def test_stationary_is_fixed_point(self):
        chain = walt_pair_chain(cycle_graph(7))
        pi = chain.stationary
        assert np.allclose(pi @ chain.transition, pi, atol=1e-12)
        assert pi.sum() == pytest.approx(1.0)

    def test_stationary_values_match_lemma11(self):
        n = 7
        chain = walt_pair_chain(cycle_graph(n))
        diag = chain.diagonal_states()
        assert np.allclose(chain.stationary[diag], 2.0 / (n * n + n))
        off = np.setdiff1d(np.arange(n * n), diag)
        assert np.allclose(chain.stationary[off], 1.0 / (n * n + n))

    def test_bipartite_base_rejected(self):
        with pytest.raises(ValueError, match="bipartite"):
            walt_pair_chain(cycle_graph(6))

    def test_bipartite_base_allowed_explicitly(self):
        chain = walt_pair_chain(cycle_graph(6), allow_reducible=True)
        rows = np.asarray(chain.transition.sum(axis=1)).ravel()
        assert np.allclose(rows, 1.0)

    def test_diagonal_transition_weights(self):
        # From (u,u): to each (x,x), x~u: (d+1)/2d^2; to (x,y) x!=y: 1/2d^2
        g = cycle_graph(7)
        d = 2
        chain = walt_pair_chain(g, lazy=False)
        p = chain.transition.toarray()
        s = chain.state_id(0, 0)
        assert p[s, chain.state_id(1, 1)] == pytest.approx((d + 1) / (2 * d * d))
        assert p[s, chain.state_id(1, 6)] == pytest.approx(1 / (2 * d * d))
        assert p[s, chain.state_id(2, 2)] == 0.0

    def test_offdiagonal_transition_weights(self):
        g = cycle_graph(7)
        chain = walt_pair_chain(g, lazy=False)
        p = chain.transition.toarray()
        s = chain.state_id(0, 3)
        assert p[s, chain.state_id(1, 2)] == pytest.approx(0.25)
        assert p[s, chain.state_id(1, 4)] == pytest.approx(0.25)

    def test_lazy_adds_half_self_loop(self):
        chain = walt_pair_chain(cycle_graph(5), lazy=True)
        p = chain.transition
        for s in range(p.shape[0]):
            assert p[s, s] >= 0.5 - 1e-12

    def test_irregular_rejected(self):
        with pytest.raises(ValueError, match="regular"):
            walt_pair_chain(star_graph(5))

    def test_convergence_to_stationary(self):
        chain = walt_pair_chain(complete_graph(6))
        dist = np.zeros(36)
        dist[chain.state_id(1, 4)] = 1.0
        for _ in range(200):
            dist = dist @ chain.transition
        assert np.allclose(dist, chain.stationary, atol=1e-8)
