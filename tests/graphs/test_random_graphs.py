"""Tests for random graph models."""

import numpy as np
import pytest

from repro.graphs import (
    barabasi_albert,
    chung_lu_powerlaw,
    erdos_renyi,
    gnm_random,
    is_connected,
    largest_component,
    random_geometric,
    watts_strogatz,
)


class TestErdosRenyi:
    def test_edge_count_concentration(self):
        n, p = 400, 0.02
        g = erdos_renyi(n, p, seed=11)
        expected = p * n * (n - 1) / 2
        assert abs(g.m - expected) < 5 * np.sqrt(expected)

    def test_extremes(self):
        assert erdos_renyi(50, 0.0, seed=1).m == 0
        g = erdos_renyi(20, 1.0, seed=1)
        assert g.m == 190

    def test_determinism(self):
        assert erdos_renyi(100, 0.05, seed=3) == erdos_renyi(100, 0.05, seed=3)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)

    def test_edge_probability_unbiased(self):
        # each specific pair should appear with frequency ~ p across seeds
        hits = 0
        trials = 200
        for s in range(trials):
            g = erdos_renyi(12, 0.3, seed=s)
            hits += g.has_edge(3, 7)
        assert 0.3 * trials - 4 * np.sqrt(trials * 0.21) < hits < 0.3 * trials + 4 * np.sqrt(trials * 0.21)


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm_random(50, 123, seed=5)
        assert g.m == 123

    def test_too_many_edges(self):
        with pytest.raises(ValueError):
            gnm_random(5, 11)

    def test_all_edges(self):
        g = gnm_random(6, 15, seed=2)
        assert g.m == 15 and g.is_regular()


class TestBarabasiAlbert:
    def test_edge_count(self):
        n, m = 100, 3
        g = barabasi_albert(n, m, seed=7)
        assert g.m == (n - m) * m
        assert is_connected(g)

    def test_hub_formation(self):
        g = barabasi_albert(500, 2, seed=8)
        # preferential attachment should create a hub far above the median
        assert g.max_degree > 5 * np.median(g.degrees)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 5)


class TestChungLu:
    def test_powerlaw_tail(self):
        g = chung_lu_powerlaw(2000, 2.5, avg_degree=6.0, seed=9)
        assert abs(g.degrees.mean() - 6.0) < 2.0
        assert g.max_degree > 8 * g.degrees.mean()

    def test_exponent_validation(self):
        with pytest.raises(ValueError):
            chung_lu_powerlaw(100, 1.5)

    def test_determinism(self):
        a = chung_lu_powerlaw(300, 2.5, seed=10)
        b = chung_lu_powerlaw(300, 2.5, seed=10)
        assert a == b


class TestRandomGeometric:
    def test_radius_respected(self):
        g = random_geometric(150, 0.2, seed=12)
        pts = g.meta["points"]
        for u, v in g.iter_edges():
            assert np.linalg.norm(pts[u] - pts[v]) <= 0.2 + 1e-12

    def test_no_missed_edges(self):
        g = random_geometric(100, 0.25, seed=13)
        pts = g.meta["points"]
        d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(-1)
        expect = (d2 <= 0.25**2).sum() - 100  # off-diagonal directed pairs
        assert 2 * g.m == expect

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            random_geometric(10, 0.0)


class TestWattsStrogatz:
    def test_zero_beta_is_lattice(self):
        g = watts_strogatz(30, 2, 0.0, seed=14)
        assert g.is_regular() and g.degree(0) == 4
        assert g.has_edge(0, 1) and g.has_edge(0, 2)

    def test_edge_count_preserved(self):
        g = watts_strogatz(60, 3, 0.5, seed=15)
        assert g.m == 60 * 3

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 5, 0.1)


class TestLargestComponent:
    def test_extracts_lcc(self):
        g = erdos_renyi(300, 0.008, seed=16)  # near threshold; likely fragmented
        lcc = largest_component(g)
        assert is_connected(lcc)
        assert lcc.n <= g.n

    def test_connected_graph_unchanged_size(self):
        from repro.graphs import cycle_graph

        g = cycle_graph(20)
        assert largest_component(g).n == 20
