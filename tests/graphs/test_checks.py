"""Tests for BFS-based structural checks."""

import numpy as np
import pytest

from repro.graphs import (
    bfs_distances,
    connected_components,
    cycle_graph,
    diameter,
    eccentricity,
    from_edge_list,
    grid,
    is_bipartite,
    is_connected,
    kary_tree,
    path_graph,
    shortest_path,
    weighted_inverse_degree_distance,
)


class TestBFS:
    def test_path_distances(self):
        d = bfs_distances(path_graph(6), 0)
        assert d.tolist() == [0, 1, 2, 3, 4, 5]

    def test_cycle_distances(self):
        d = bfs_distances(cycle_graph(8), 0)
        assert d.tolist() == [0, 1, 2, 3, 4, 3, 2, 1]

    def test_unreachable_marked(self):
        g = from_edge_list(4, [(0, 1), (2, 3)])
        d = bfs_distances(g, 0)
        assert d[1] == 1 and d[2] == -1 and d[3] == -1

    def test_source_out_of_range(self):
        with pytest.raises(ValueError):
            bfs_distances(path_graph(3), 5)

    def test_grid_distance_equals_manhattan(self):
        from repro.graphs import grid_manhattan

        g = grid(4, 2)
        d = bfs_distances(g, 0)
        for v in range(g.n):
            assert d[v] == grid_manhattan(0, v, 4, 2)


class TestConnectivity:
    def test_connected(self, any_graph):
        assert is_connected(any_graph)

    def test_disconnected(self):
        g = from_edge_list(5, [(0, 1), (2, 3)])
        assert not is_connected(g)

    def test_components(self):
        g = from_edge_list(6, [(0, 1), (2, 3), (3, 4)])
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3] == labels[4]
        assert labels[0] != labels[2]
        assert labels[5] not in (labels[0], labels[2])

    def test_trivial_graphs_connected(self):
        assert is_connected(from_edge_list(1, []))


class TestDiameterEccentricity:
    def test_path_eccentricity(self):
        g = path_graph(7)
        assert eccentricity(g, 0) == 6
        assert eccentricity(g, 3) == 3

    def test_diameter_values(self):
        assert diameter(path_graph(9)) == 8
        assert diameter(cycle_graph(9)) == 4
        assert diameter(kary_tree(2, 3)) == 6

    def test_diameter_refuses_large(self):
        with pytest.raises(ValueError, match="exceeds"):
            diameter(cycle_graph(10), exact_limit=5)

    def test_eccentricity_disconnected_raises(self):
        g = from_edge_list(4, [(0, 1)])
        with pytest.raises(ValueError):
            eccentricity(g, 0)


class TestBipartite:
    def test_even_cycle_bipartite(self):
        assert is_bipartite(cycle_graph(8))

    def test_odd_cycle_not_bipartite(self):
        assert not is_bipartite(cycle_graph(9))

    def test_tree_bipartite(self):
        assert is_bipartite(kary_tree(3, 3))

    def test_disconnected_bipartite(self):
        g = from_edge_list(6, [(0, 1), (2, 3), (3, 4), (4, 2)])
        assert not is_bipartite(g)  # triangle component


class TestShortestPath:
    def test_endpoints_and_length(self):
        g = cycle_graph(10)
        p = shortest_path(g, 0, 5)
        assert p[0] == 0 and p[-1] == 5
        assert len(p) == 6

    def test_consecutive_vertices_adjacent(self, any_graph):
        g = any_graph
        p = shortest_path(g, 0, g.n - 1)
        for a, b in zip(p, p[1:]):
            assert g.has_edge(a, b)

    def test_unreachable_raises(self):
        g = from_edge_list(4, [(0, 1)])
        with pytest.raises(ValueError):
            shortest_path(g, 0, 3)

    def test_source_equals_target(self):
        assert shortest_path(cycle_graph(5), 2, 2) == [2]


class TestInverseDegreeDistance:
    def test_path_weights(self):
        # path(4) degrees: 1,2,2,1 -> weights 1,.5,.5,1
        d = weighted_inverse_degree_distance(path_graph(4), 0)
        assert np.allclose(d, [1.0, 1.5, 2.0, 3.0])

    def test_monotone_under_bfs_layers(self):
        g = grid(3, 2)
        d = weighted_inverse_degree_distance(g, 0)
        assert d[0] == pytest.approx(1.0 / g.degree(0))
        assert (d > 0).all() and np.isfinite(d).all()
