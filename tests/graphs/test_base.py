"""Tests for the CSR Graph core."""

import numpy as np
import pytest

from repro.graphs import Graph, cycle_graph, from_edge_list, sample_uniform_neighbors


class TestGraphConstruction:
    def test_triangle(self):
        g = from_edge_list(3, [(0, 1), (1, 2), (0, 2)])
        assert g.n == 3
        assert g.m == 3
        assert g.degree(0) == 2
        assert sorted(g.neighbors(1).tolist()) == [0, 2]

    def test_empty_graph(self):
        g = from_edge_list(4, [])
        assert g.n == 4
        assert g.m == 0
        assert g.min_degree == 0

    def test_single_vertex(self):
        g = from_edge_list(1, [])
        assert g.n == 1 and g.m == 0

    def test_parallel_edges_merged(self):
        g = from_edge_list(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1
        assert g.degree(0) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            from_edge_list(3, [(0, 0), (0, 1)])

    def test_self_loop_dropped_on_request(self):
        g = from_edge_list(3, [(0, 0), (0, 1)], allow_self_loops=True)
        assert g.m == 1

    def test_out_of_range_endpoint(self):
        with pytest.raises(ValueError, match="out of range"):
            from_edge_list(3, [(0, 5)])

    def test_validation_catches_asymmetry(self):
        indptr = np.array([0, 1, 1], dtype=np.int64)
        indices = np.array([1], dtype=np.int64)
        with pytest.raises(ValueError):
            Graph(indptr, indices)

    def test_validation_catches_unsorted_rows(self):
        indptr = np.array([0, 2, 3, 4], dtype=np.int64)
        indices = np.array([2, 1, 0, 0], dtype=np.int64)
        with pytest.raises(ValueError, match="strictly increasing"):
            Graph(indptr, indices)

    def test_validation_catches_bad_indptr(self):
        with pytest.raises(ValueError):
            Graph(np.array([1, 2], dtype=np.int64), np.array([0], dtype=np.int64))


class TestGraphAccessors:
    def test_immutability(self, small_cycle):
        with pytest.raises(ValueError):
            small_cycle.indices[0] = 99
        with pytest.raises(ValueError):
            small_cycle.degrees[0] = 99

    def test_edges_roundtrip(self, any_graph):
        g = any_graph
        rebuilt = from_edge_list(g.n, g.edges())
        assert rebuilt == g

    def test_edges_canonical_orientation(self, any_graph):
        e = any_graph.edges()
        assert (e[:, 0] < e[:, 1]).all()
        assert e.shape[0] == any_graph.m

    def test_has_edge(self, small_cycle):
        assert small_cycle.has_edge(0, 1)
        assert small_cycle.has_edge(11, 0)
        assert not small_cycle.has_edge(0, 5)

    def test_degree_sum_is_twice_edges(self, any_graph):
        assert any_graph.degrees.sum() == 2 * any_graph.m

    def test_volume(self, small_cycle):
        assert small_cycle.volume() == 24
        assert small_cycle.volume([0, 1]) == 4
        assert small_cycle.volume([]) == 0

    def test_equality_and_hash(self):
        a = cycle_graph(6)
        b = cycle_graph(6)
        assert a == b
        assert hash(a) == hash(b)
        assert a != cycle_graph(7)

    def test_len(self, small_cycle):
        assert len(small_cycle) == 12

    def test_networkx_roundtrip(self, any_graph):
        from repro.graphs import from_networkx

        nxg = any_graph.to_networkx()
        assert nxg.number_of_nodes() == any_graph.n
        assert nxg.number_of_edges() == any_graph.m
        back = from_networkx(nxg)
        assert back == any_graph

    def test_adjacency_lists(self, small_cycle):
        lists = small_cycle.adjacency_lists()
        assert lists[0] == [1, 11]


class TestSampleUniformNeighbors:
    def test_samples_are_neighbors(self, any_graph, rng):
        g = any_graph
        starts = np.arange(g.n, dtype=np.int64)
        picks = sample_uniform_neighbors(g, starts, rng)
        for v, p in zip(starts, picks):
            assert g.has_edge(int(v), int(p))

    def test_repeated_vertices_ok(self, small_cycle, rng):
        vs = np.zeros(1000, dtype=np.int64)
        picks = sample_uniform_neighbors(small_cycle, vs, rng)
        assert set(np.unique(picks)) <= {1, 11}
        # both neighbors should appear in 1000 draws
        assert len(set(np.unique(picks))) == 2

    def test_uniformity(self, small_complete, rng):
        vs = np.zeros(20000, dtype=np.int64)
        picks = sample_uniform_neighbors(small_complete, vs, rng)
        counts = np.bincount(picks, minlength=10)[1:]
        # each of the 9 neighbors expects ~2222; loose 5-sigma band
        assert counts.min() > 1800 and counts.max() < 2700

    def test_isolated_vertex_raises(self, rng):
        g = from_edge_list(3, [(0, 1)])
        with pytest.raises(ValueError, match="isolated"):
            sample_uniform_neighbors(g, np.array([2]), rng)

    def test_empty_input(self, small_cycle, rng):
        out = sample_uniform_neighbors(small_cycle, np.empty(0, dtype=np.int64), rng)
        assert out.size == 0

    def test_deterministic_given_seed(self, small_grid):
        a = sample_uniform_neighbors(
            small_grid, np.arange(small_grid.n), np.random.default_rng(5)
        )
        b = sample_uniform_neighbors(
            small_grid, np.arange(small_grid.n), np.random.default_rng(5)
        )
        assert np.array_equal(a, b)
