"""Property-based tests of the graph substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    bfs_distances,
    circulant,
    connected_components,
    cycle_graph,
    from_edge_list,
    grid_coords,
    grid_vertex,
    is_connected,
    kary_tree,
    random_tree,
    sample_uniform_neighbors,
)


@st.composite
def edge_lists(draw, max_n=30, max_m=80):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda e: e[0] != e[1]),
            min_size=0,
            max_size=m,
        )
    )
    return n, edges


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_from_edge_list_invariants(case):
    n, edges = case
    g = from_edge_list(n, edges)
    # CSR structural invariants
    assert g.indptr[0] == 0 and g.indptr[-1] == g.indices.size
    assert (np.diff(g.indptr) >= 0).all()
    assert g.degrees.sum() == 2 * g.m
    # symmetry and simplicity
    for u in range(n):
        row = g.neighbors(u)
        assert (np.diff(row) > 0).all() if row.size > 1 else True
        assert u not in row
        for v in row:
            assert u in g.neighbors(int(v))
    # the edge set matches the deduplicated input
    want = {(min(u, v), max(u, v)) for u, v in edges}
    got = {(int(a), int(b)) for a, b in g.edges()}
    assert got == want


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_edges_roundtrip_property(case):
    n, edges = case
    g = from_edge_list(n, edges)
    assert from_edge_list(n, g.edges()) == g


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_bfs_triangle_inequality(case):
    n, edges = case
    g = from_edge_list(n, edges)
    dist = bfs_distances(g, 0)
    # every edge's endpoints differ by at most 1 in BFS level when both reached
    for u, v in g.edges():
        if dist[u] >= 0 and dist[v] >= 0:
            assert abs(dist[u] - dist[v]) <= 1


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_components_partition(case):
    n, edges = case
    g = from_edge_list(n, edges)
    labels = connected_components(g)
    assert labels.min() >= 0
    # vertices joined by an edge share a component
    for u, v in g.edges():
        assert labels[u] == labels[v]
    # connectivity agrees with single-component condition
    assert is_connected(g) == (len(np.unique(labels)) <= 1)


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=3))
@settings(max_examples=30, deadline=None)
def test_grid_coordinate_bijection(n, d):
    if (n + 1) ** d > 2000:
        return
    ids = np.arange((n + 1) ** d)
    coords = grid_coords(ids, n, d)
    assert coords.min() >= 0 and coords.max() <= n
    assert np.array_equal(grid_vertex(coords, n, d), ids)


@given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=4))
@settings(max_examples=30, deadline=None)
def test_kary_tree_is_tree(k, depth):
    if k**(depth + 1) > 2000:
        return
    g = kary_tree(k, depth)
    assert g.m == g.n - 1
    assert is_connected(g)


@given(st.integers(min_value=3, max_value=120))
@settings(max_examples=30, deadline=None)
def test_random_tree_is_spanning_tree(n):
    g = random_tree(n, seed=n)
    assert g.m == g.n - 1
    assert is_connected(g)


@given(
    st.integers(min_value=5, max_value=40),
    st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=3, unique=True),
)
@settings(max_examples=30, deadline=None)
def test_circulant_vertex_transitive_degrees(n, offsets):
    offsets = [s for s in offsets if s % n != 0]
    if not offsets:
        return
    g = circulant(n, offsets)
    assert g.is_regular()


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_sampling_stays_in_neighborhood(data):
    n = data.draw(st.integers(min_value=3, max_value=25))
    g = cycle_graph(n)
    k = data.draw(st.integers(min_value=1, max_value=50))
    starts = data.draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=k, max_size=k)
    )
    rng = np.random.default_rng(data.draw(st.integers(min_value=0, max_value=1000)))
    picks = sample_uniform_neighbors(g, np.array(starts, dtype=np.int64), rng)
    for s, p in zip(starts, picks):
        assert g.has_edge(int(s), int(p))
