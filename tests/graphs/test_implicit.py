"""Conformance suite for the implicit-topology oracle layer.

Every topology in ``IMPLICIT_TOPOLOGIES`` is checked three ways:

* **protocol conformance** — degrees, slot enumeration, and ragged
  neighbor lists agree with the materialised CSR graph (``to_csr``
  validates sortedness/symmetry/no-self-loops independently);
* **sampling parity** — ``sample_one`` on the arithmetic oracle is
  seed-for-seed identical to ``sample_uniform_neighbors`` on the CSR
  graph (and the CSR adapter delegates, so it is bit-for-bit);
* **engine parity** — every flat-frontier batch engine produces
  identical trial arrays on the oracle and on its CSR twin.

The Kronecker oracle additionally gets a dense ``np.kron`` ground
truth, since its CSR twin is itself derived from the oracle.
"""

import numpy as np
import pytest

import repro.graphs as graphs_mod
from repro.graphs import (
    IMPLICIT_TOPOLOGIES,
    CirculantOracle,
    CSRNeighborOracle,
    HypercubeOracle,
    KroneckerOracle,
    NeighborOracle,
    TorusOracle,
    as_oracle,
    cycle_graph,
    kronecker,
    sample_uniform_neighbors,
    to_csr,
    torus,
)
from repro.sim import (
    batched_biased_cover_trials,
    batched_branching_cover_trials,
    batched_coalescing_cover_trials,
    batched_cobra_cover_trials,
    batched_cobra_hit_trials,
    batched_gossip_spread_trials,
    batched_lazy_cover_trials,
    batched_lazy_hit_trials,
    batched_parallel_walks_cover_trials,
    batched_walt_cover_trials,
    batched_walt_hit_trials,
)
from repro.sim.rng import resolve_rng

TOPOLOGIES = sorted(IMPLICIT_TOPOLOGIES)


def build_registered(name):
    builder_name, params = IMPLICIT_TOPOLOGIES[name]
    return getattr(graphs_mod, builder_name)(**params)


@pytest.fixture(params=TOPOLOGIES)
def oracle_and_csr(request):
    oracle = build_registered(request.param)
    return oracle, to_csr(oracle)


class TestRegistry:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_builds_an_oracle_of_matching_kind(self, name):
        oracle = build_registered(name)
        assert isinstance(oracle, NeighborOracle)
        assert oracle.kind == name
        assert len(oracle) == oracle.n
        assert 1 <= oracle.min_degree <= oracle.max_degree < oracle.n

    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_builder_is_exported_from_repro_graphs(self, name):
        builder_name, _ = IMPLICIT_TOPOLOGIES[name]
        assert callable(getattr(graphs_mod, builder_name))


class TestProtocolConformance:
    """degree/neighbor_at/all_neighbors vs the validated CSR twin."""

    def test_degrees_match_csr(self, oracle_and_csr):
        oracle, csr = oracle_and_csr
        verts = np.arange(oracle.n, dtype=np.int64)
        deg = oracle.degree(verts)
        assert deg.dtype == np.int64
        assert np.array_equal(deg, csr.degrees)
        assert deg.min() == oracle.min_degree
        assert deg.max() == oracle.max_degree

    def test_neighbor_at_enumerates_sorted_csr_rows(self, oracle_and_csr):
        oracle, csr = oracle_and_csr
        for v in range(oracle.n):
            d = int(csr.degree(v))
            slots = np.arange(d, dtype=np.int64)
            row = oracle.neighbor_at(np.full(d, v, dtype=np.int64), slots)
            assert np.array_equal(row, csr.neighbors(v))
            assert np.all(np.diff(row) > 0), "slots must enumerate ascending"

    def test_all_neighbors_is_the_concatenated_csr(self, oracle_and_csr):
        oracle, csr = oracle_and_csr
        verts = np.arange(oracle.n, dtype=np.int64)
        flat, deg = oracle.all_neighbors(verts)
        assert np.array_equal(deg, csr.degrees)
        assert np.array_equal(flat, csr.indices)

    def test_neighbor_at_broadcasts(self, oracle_and_csr):
        oracle, csr = oracle_and_csr
        # scalar-slot broadcast over a frontier: slot 0 of every vertex
        verts = np.arange(oracle.n, dtype=np.int64)
        first = oracle.neighbor_at(verts, np.zeros(1, dtype=np.int64))
        expected = csr.indices[csr.indptr[:-1]]
        assert np.array_equal(first, expected)

    def test_to_csr_round_trips_name_and_meta(self, oracle_and_csr):
        oracle, csr = oracle_and_csr
        assert csr.name == oracle.name
        assert csr.meta == oracle.meta
        assert csr.n == oracle.n


class TestSamplingParity:
    """The acceptance criterion: seed-for-seed identical draws."""

    def test_sample_one_matches_csr_sampler(self, oracle_and_csr):
        oracle, csr = oracle_and_csr
        verts = np.tile(np.arange(oracle.n, dtype=np.int64), 3)
        got = oracle.sample_one(verts, resolve_rng(123))
        want = sample_uniform_neighbors(csr, verts, resolve_rng(123))
        assert np.array_equal(got, want)

    def test_adapter_delegates_bit_for_bit(self, oracle_and_csr):
        _, csr = oracle_and_csr
        adapter = CSRNeighborOracle(csr)
        verts = np.arange(csr.n, dtype=np.int64)
        got = adapter.sample_one(verts, resolve_rng(5))
        want = sample_uniform_neighbors(csr, verts, resolve_rng(5))
        assert np.array_equal(got, want)

    def test_sample_one_out_buffer(self, oracle_and_csr):
        oracle, _ = oracle_and_csr
        verts = np.arange(oracle.n, dtype=np.int64)
        out = np.empty(oracle.n, dtype=np.int64)
        res = oracle.sample_one(verts, resolve_rng(9), out=out)
        assert np.shares_memory(res, out)
        assert np.array_equal(out, oracle.sample_one(verts, resolve_rng(9)))

    def test_sample_neighbors_shape_and_membership(self, oracle_and_csr):
        oracle, csr = oracle_and_csr
        verts = np.arange(oracle.n, dtype=np.int64)
        draws = oracle.sample_neighbors(verts, 4, resolve_rng(77))
        assert draws.shape == (4, oracle.n)
        for k in range(4):
            for v in range(oracle.n):
                assert csr.has_edge(v, int(draws[k, v]))


# Each case runs one batch engine identically on the oracle and on its
# materialised CSR twin; trial arrays must match exactly (NaN == NaN).
def _biased(g, csr, target):
    from repro.core.biased import toward_target_controller

    ctrl = toward_target_controller(csr, target)
    return batched_biased_cover_trials(
        g, target, trials=3, seed=17, max_steps=3000, controller=ctrl
    )


ENGINE_CASES = [
    ("cobra_cover", lambda g, csr, t: batched_cobra_cover_trials(
        g, trials=3, seed=11, max_steps=3000)),
    ("cobra_hit", lambda g, csr, t: batched_cobra_hit_trials(
        g, t, trials=3, seed=11, max_steps=3000)),
    ("walt_cover", lambda g, csr, t: batched_walt_cover_trials(
        g, trials=3, seed=11, max_steps=3000)),
    ("walt_hit", lambda g, csr, t: batched_walt_hit_trials(
        g, t, trials=3, seed=11, max_steps=3000)),
    ("gossip", lambda g, csr, t: batched_gossip_spread_trials(
        g, trials=3, seed=11, max_steps=3000)),
    ("parallel", lambda g, csr, t: batched_parallel_walks_cover_trials(
        g, trials=3, walkers=3, seed=11, max_steps=3000)),
    ("lazy_cover", lambda g, csr, t: batched_lazy_cover_trials(
        g, trials=3, seed=11, max_steps=3000)),
    ("lazy_hit", lambda g, csr, t: batched_lazy_hit_trials(
        g, t, trials=3, seed=11, max_steps=3000)),
    ("branching", lambda g, csr, t: batched_branching_cover_trials(
        g, trials=3, seed=11, max_steps=3000)),
    ("coalescing", lambda g, csr, t: batched_coalescing_cover_trials(
        g, trials=3, seed=11, max_steps=3000)),
    ("biased", _biased),
]


class TestEnginePerTopologyParity:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    @pytest.mark.parametrize("label,run", ENGINE_CASES, ids=[c[0] for c in ENGINE_CASES])
    def test_oracle_matches_csr_twin(self, name, label, run):
        oracle = build_registered(name)
        csr = to_csr(oracle)
        target = oracle.n - 1
        got = run(oracle, csr, target)
        want = run(csr, csr, target)
        assert np.array_equal(got, want, equal_nan=True), (
            f"{label} diverged on {name}: {got} vs {want}"
        )


class TestTorusOracle:
    def test_matches_the_csr_torus_builder(self):
        # same extent convention: TorusOracle(4, d=2) is torus(4, 2),
        # both a 5x5 periodic lattice
        oracle = TorusOracle(4, d=2)
        csr = torus(4, 2)
        ours = to_csr(oracle)
        assert ours.n == csr.n
        assert np.array_equal(ours.indptr, csr.indptr)
        assert np.array_equal(ours.indices, csr.indices)

    def test_one_dimensional_is_a_cycle(self):
        oracle = TorusOracle(6, d=1)
        csr, cyc = to_csr(oracle), cycle_graph(7)
        assert np.array_equal(csr.indices, cyc.indices)

    def test_rejects_tiny_side(self):
        with pytest.raises(ValueError, match="side length >= 3"):
            TorusOracle(1)

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError, match="dimension must be >= 1"):
            TorusOracle(4, d=0)


class TestHypercubeOracle:
    def test_neighbors_are_bit_flips(self):
        oracle = HypercubeOracle(5)
        v = 0b10110
        nbrs = oracle.neighbor_at(
            np.full(5, v, dtype=np.int64), np.arange(5, dtype=np.int64)
        )
        assert sorted(int(x) for x in nbrs) == sorted(v ^ (1 << b) for b in range(5))

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError, match="dimension must be >= 1"):
            HypercubeOracle(0)


class TestCirculantOracle:
    def test_rejects_zero_offset(self):
        with pytest.raises(ValueError, match="self-loops"):
            CirculantOracle(9, (3, 9))

    def test_rejects_involution_offset(self):
        with pytest.raises(ValueError, match="involution"):
            CirculantOracle(10, (1, 5))

    def test_rejects_colliding_offsets(self):
        with pytest.raises(ValueError, match="collide"):
            CirculantOracle(11, (3, 8))  # 8 == -3 mod 11

    def test_rejects_tiny_ring_and_empty_offsets(self):
        with pytest.raises(ValueError, match="n >= 3"):
            CirculantOracle(2, (1,))
        with pytest.raises(ValueError, match="at least one offset"):
            CirculantOracle(9, ())


BASE_3x3 = (0, 1, 1, 1, 0, 1, 1, 1, 0)


class TestKroneckerOracle:
    def test_dense_kron_power_is_the_ground_truth(self):
        # independent of the oracle's own arithmetic: the adjacency of
        # kron[b^p] is the p-fold np.kron power with the diagonal
        # (self-loops) removed
        base = np.array([[1, 1, 0], [1, 0, 1], [0, 1, 1]], dtype=np.int64)
        oracle = KroneckerOracle(tuple(base.ravel()), 2)
        dense = np.kron(base, base)
        np.fill_diagonal(dense, 0)
        csr = to_csr(oracle)
        got = np.zeros((oracle.n, oracle.n), dtype=np.int64)
        for v in range(oracle.n):
            got[v, csr.neighbors(v)] = 1
        assert np.array_equal(got, dense)

    def test_degree_bounds_are_exact(self):
        oracle = KroneckerOracle(BASE_3x3, 3)
        deg = oracle.degree(np.arange(oracle.n, dtype=np.int64))
        assert deg.min() == oracle.min_degree
        assert deg.max() == oracle.max_degree

    def test_kronecker_helper_materialises(self):
        g = kronecker(BASE_3x3, 2)
        assert g.n == 9 and g.name == "kron[3^2]"

    def test_rejects_non_square_base(self):
        with pytest.raises(ValueError, match="square matrix"):
            KroneckerOracle((0, 1, 1, 0, 1, 0), 2)

    def test_rejects_asymmetric_base(self):
        with pytest.raises(ValueError, match="symmetric"):
            KroneckerOracle((0, 1, 0, 0), 2)

    def test_rejects_isolating_base(self):
        # row 0 is only its own loop: every power isolates vertex 0...0
        with pytest.raises(ValueError, match="isolated vertices"):
            KroneckerOracle((1, 0, 0, 0, 0, 1, 0, 1, 0), 2)

    def test_loopy_base_degree_bounds(self):
        # loops everywhere: the all-max vertex loses its self pair
        oracle = KroneckerOracle((1, 1, 1, 1), 2)
        deg = oracle.degree(np.arange(oracle.n, dtype=np.int64))
        assert oracle.min_degree == deg.min() == 3
        assert oracle.max_degree == deg.max() == 3

    def test_rejects_bad_power_and_entries(self):
        with pytest.raises(ValueError, match="power must be >= 1"):
            KroneckerOracle(BASE_3x3, 0)
        with pytest.raises(ValueError, match="entries must be 0/1"):
            KroneckerOracle((0, 2, 2, 0), 2)


class TestAsOracleAndToCsr:
    def test_oracle_passes_through(self):
        oracle = HypercubeOracle(3)
        assert as_oracle(oracle) is oracle

    def test_graph_wraps_in_the_adapter(self):
        g = cycle_graph(8)
        wrapped = as_oracle(g)
        assert isinstance(wrapped, CSRNeighborOracle)
        assert wrapped.graph is g and wrapped.kind == "csr"

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="expected a Graph or NeighborOracle"):
            as_oracle([[0, 1], [1, 0]])

    def test_to_csr_unwraps_the_adapter(self):
        g = cycle_graph(8)
        assert to_csr(CSRNeighborOracle(g)) is g

    def test_to_csr_refuses_huge_oracles(self):
        big = CirculantOracle(6_000_001, (1,))
        with pytest.raises(ValueError, match="refusing to materialise"):
            to_csr(big)
