"""Tests for named graph families."""

import numpy as np
import pytest

from repro.graphs import (
    de_bruijn_undirected,
    diameter,
    is_bipartite,
    is_connected,
    kneser_graph,
    petersen,
    ring_of_cliques,
)
from repro.spectral import conductance_exact


class TestPetersen:
    def test_structure(self):
        g = petersen()
        assert g.n == 10 and g.m == 15
        assert g.is_regular() and g.degree(0) == 3
        assert not is_bipartite(g)
        assert diameter(g) == 2

    def test_girth_five_no_triangles_or_squares(self):
        g = petersen()
        a = np.zeros((10, 10))
        for u, v in g.iter_edges():
            a[u, v] = a[v, u] = 1
        assert np.trace(a @ a @ a) == 0  # no triangles
        # closed 4-walks that are genuine squares: tr(A^4) - expected
        # degenerate walks = 2m + sum d(d-1)*2 for 3-regular: any 4-cycle
        # adds 8; check none.
        tr4 = np.trace(np.linalg.matrix_power(a, 4))
        degenerate = 2 * g.m + sum(
            g.degree(v) * (g.degree(v) - 1) for v in range(10)
        ) * 2 // 2 * 2
        # simpler exact count for 3-regular: tr(A^4) = 2m + 2*sum d(d-1) + 8*#C4
        expect_no_c4 = 2 * g.m + 2 * sum(
            g.degree(v) * (g.degree(v) - 1) for v in range(10)
        )
        assert tr4 == expect_no_c4

    def test_conductance_meta(self):
        g = petersen()
        assert g.meta["conductance_exact"] == pytest.approx(1 / 3)
        assert conductance_exact(g, max_n=10) == pytest.approx(1 / 3)


class TestKneser:
    def test_petersen_is_k52(self):
        assert kneser_graph(5, 2).m == 15

    def test_regular_degree(self):
        # K(n,k) is (n-k choose k)-regular
        g = kneser_graph(6, 2)
        assert g.is_regular() and g.degree(0) == 6  # C(4,2)

    def test_validation(self):
        with pytest.raises(ValueError):
            kneser_graph(3, 2)


class TestDeBruijn:
    def test_size_and_connectivity(self):
        g = de_bruijn_undirected(2, 5)
        assert g.n == 32
        assert is_connected(g)

    def test_logarithmic_diameter(self):
        # diameter of B(2, L) is L (shift in L steps)
        for L in (3, 4, 5):
            assert diameter(de_bruijn_undirected(2, L)) == L

    def test_shift_adjacency(self):
        g = de_bruijn_undirected(2, 3)
        # 011 (=6 with our digit order) ~ right shifts of it
        # vertex v ~ (v mod 4)*2 and (v mod 4)*2 + 1
        for v in range(8):
            for s in (0, 1):
                t = (v % 4) * 2 + s
                if t != v:
                    assert g.has_edge(v, t)

    def test_validation(self):
        with pytest.raises(ValueError):
            de_bruijn_undirected(1, 3)


class TestRingOfCliques:
    def test_structure(self):
        g = ring_of_cliques(6, 5)
        assert g.n == 30
        assert is_connected(g)
        # bridge endpoints have degree clique_size, interior clique_size-1
        assert g.max_degree == 5
        assert g.min_degree == 4

    def test_edge_count(self):
        q, c = 6, 5
        g = ring_of_cliques(q, c)
        assert g.m == q * (c * (c - 1) // 2) + q

    def test_low_conductance(self):
        # the canonical bottleneck cut (half the ring of cliques) has
        # conductance falling with the number of cliques
        from repro.spectral import set_conductance

        def half_ring_phi(q, c):
            g = ring_of_cliques(q, c)
            half = list(range((q // 2) * c))
            return set_conductance(g, half)

        assert half_ring_phi(8, 3) < half_ring_phi(4, 3)
        # and the exact conductance of the small instance is below the
        # clique-internal value 1/(c-1)
        assert conductance_exact(ring_of_cliques(4, 3), max_n=12) < 1 / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_of_cliques(2, 4)
