"""Docstring gate for the sim facade layer.

The CI pipeline runs ``ruff check --select D1,D417`` (pydocstyle
missing-docstring rules plus undocumented-parameters, numpy
convention via ruff.toml) over ``sim/facade.py``, ``sim/batch.py``,
and ``sim/processes.py``; this in-repo twin keeps the core of that
contract enforceable offline (ruff is not vendored): every public
symbol carries a real docstring, and every public function's
docstring names each of its parameters.
"""

import inspect

import pytest

import repro.sim.batch as batch
import repro.sim.facade as facade
import repro.sim.processes as processes

MODULES = [facade, batch, processes]


def _public_functions(module):
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isfunction(obj):
            yield name, obj


def _public_classes(module):
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj):
            yield name, obj


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
class TestDocstrings:
    def test_module_docstring(self, module):
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_every_public_symbol_documented(self, module):
        undocumented = [
            name
            for name in module.__all__
            if callable(getattr(module, name))
            and not (getattr(module, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_function_docstrings_name_every_parameter(self, module):
        offenders = []
        for name, fn in _public_functions(module):
            doc = fn.__doc__ or ""
            for pname, param in inspect.signature(fn).parameters.items():
                if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
                    continue
                if pname not in doc:
                    offenders.append(f"{name}({pname})")
        assert not offenders, f"parameters missing from docstrings: {offenders}"

    def test_public_methods_documented(self, module):
        offenders = []
        for cname, cls in _public_classes(module):
            for mname, member in inspect.getmembers(cls):
                if mname.startswith("_"):
                    continue
                if inspect.isfunction(member) or isinstance(
                    inspect.getattr_static(cls, mname), property
                ):
                    doc = (
                        member.fget.__doc__
                        if isinstance(member, property)
                        else member.__doc__
                    )
                    if not (doc or "").strip():
                        offenders.append(f"{cname}.{mname}")
        assert not offenders, f"undocumented public members: {offenders}"
