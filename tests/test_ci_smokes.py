"""The extracted CI smoke scripts are runnable and honest.

`ci/smoke_sweep_resume.py` and `ci/smoke_dispatch.py` used to be
inline YAML heredocs; as modules they are importable, run here against
temp stores, and can no longer drift from the library without a test
failure.  The benchmark JSON emitter is pinned alongside (CI uploads
its output as build artifacts).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def load_script(relpath: str):
    """Import a non-package script (ci/, benchmarks/) as a module."""
    path = REPO / relpath
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    # registration makes dataclasses/pickling inside the script happy
    sys.modules[path.stem] = module
    spec.loader.exec_module(module)
    return module


class TestSweepResumeSmoke:
    def test_passes_against_a_temp_store(self, tmp_path):
        smoke = load_script("ci/smoke_sweep_resume.py")
        assert smoke.main(str(tmp_path / "store")) == 0

    def test_spec_is_the_2x2_campaign(self):
        smoke = load_script("ci/smoke_sweep_resume.py")
        assert len(smoke.build_spec().expand()) == 4


class TestDispatchSmoke:
    def test_two_process_drain_passes(self, tmp_path):
        smoke = load_script("ci/smoke_dispatch.py")
        assert smoke.main(str(tmp_path / "store")) == 0

    def test_sweep_is_registered(self):
        from repro.store import sweep_names

        smoke = load_script("ci/smoke_dispatch.py")
        assert smoke.SWEEP in sweep_names()


class TestBenchEmit:
    def test_writes_schema_stamped_json(self, tmp_path):
        emit = load_script("benchmarks/_emit.py")
        path = emit.emit_bench_json(
            "unit", {"speedup": 3.5}, out_dir=str(tmp_path)
        )
        assert path.name == "BENCH_unit.json"
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["bench"] == "unit" and doc["schema"] == 1
        assert doc["speedup"] == 3.5 and doc["created_unix"] > 0

    def test_respects_bench_out_env(self, tmp_path, monkeypatch):
        emit = load_script("benchmarks/_emit.py")
        monkeypatch.setenv("BENCH_OUT", str(tmp_path / "out"))
        path = emit.emit_bench_json("env", {})
        assert path.parent == tmp_path / "out"


@pytest.mark.parametrize(
    "script", ["ci/smoke_sweep_resume.py", "ci/smoke_dispatch.py"]
)
def test_ci_workflow_runs_the_extracted_scripts(script):
    ci = (REPO / ".github" / "workflows" / "ci.yml").read_text(encoding="utf-8")
    assert script in ci, f"ci.yml no longer runs {script}"
