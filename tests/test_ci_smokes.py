"""The extracted CI smoke scripts are runnable and honest.

`ci/smoke_sweep_resume.py` and `ci/smoke_dispatch.py` used to be
inline YAML heredocs; as modules they are importable, run here against
temp stores, and can no longer drift from the library without a test
failure.  The benchmark JSON emitter is pinned alongside (CI uploads
its output as build artifacts).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def load_script(relpath: str):
    """Import a non-package script (ci/, benchmarks/) as a module."""
    path = REPO / relpath
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    # registration makes dataclasses/pickling inside the script happy
    sys.modules[path.stem] = module
    spec.loader.exec_module(module)
    return module


class TestSweepResumeSmoke:
    def test_passes_against_a_temp_store(self, tmp_path):
        smoke = load_script("ci/smoke_sweep_resume.py")
        assert smoke.main(str(tmp_path / "store")) == 0

    def test_spec_is_the_2x2_campaign(self):
        smoke = load_script("ci/smoke_sweep_resume.py")
        assert len(smoke.build_spec().expand()) == 4


class TestDispatchSmoke:
    def test_two_process_drain_passes(self, tmp_path):
        smoke = load_script("ci/smoke_dispatch.py")
        assert smoke.main(str(tmp_path / "store")) == 0

    def test_sweep_is_registered(self):
        from repro.store import sweep_names

        smoke = load_script("ci/smoke_dispatch.py")
        assert smoke.SWEEP in sweep_names()

    def test_smoke_pins_the_event_interleaving_contract(self):
        """The smoke must keep asserting what the observability layer
        promises: two OS processes tracing into one events.jsonl, zero
        torn lines, cells × phases phase records, worker attribution."""
        source = (REPO / "ci" / "smoke_dispatch.py").read_text(encoding="utf-8")
        assert "--trace" in source
        assert "torn_lines() == 0" in source
        assert "CELL_PHASES" in source
        assert '"report"' in source or "'report'" in source


class TestServiceSmoke:
    def test_serve_declare_loop_drain_passes(self):
        smoke = load_script("ci/smoke_service.py")
        assert smoke.main() == 0

    def test_sweep_is_registered(self):
        from repro.store import sweep_names

        smoke = load_script("ci/smoke_service.py")
        assert smoke.SWEEP in sweep_names()

    def test_smoke_pins_the_service_contract(self):
        """The smoke must keep asserting what docs/service.md promises:
        an in-memory store served over HTTP, a declared sweep drained by
        a --loop daemon, strong-ETag 304 revalidation, and clean SIGTERM
        shutdown of both processes."""
        source = (REPO / "ci" / "smoke_service.py").read_text(encoding="utf-8")
        assert ":memory:" in source
        assert "--loop" in source
        assert "If-None-Match" in source
        assert "status == 304" in source
        assert "stopped on signal" in source
        assert "serve: stopped" in source


class TestBenchEmit:
    def test_writes_schema_stamped_json(self, tmp_path):
        emit = load_script("benchmarks/_emit.py")
        path = emit.emit_bench_json(
            "unit", {"speedup": 3.5}, out_dir=str(tmp_path)
        )
        assert path.name == "BENCH_unit.json"
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["bench"] == "unit" and doc["schema"] == 2
        assert doc["speedup"] == 3.5 and doc["created_unix"] > 0

    def test_stamps_the_execution_environment(self, tmp_path):
        import numpy

        emit = load_script("benchmarks/_emit.py")
        path = emit.emit_bench_json("env_stamp", {}, out_dir=str(tmp_path))
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["hostname"] and isinstance(doc["hostname"], str)
        assert doc["cpu_count"] >= 1
        assert doc["numpy_version"] == numpy.__version__
        # None when numba is absent, its version string when present —
        # always stamped either way
        assert "numba_version" in doc
        assert doc["backend"] == "numpy"

    def test_stamps_the_backend_that_ran(self, tmp_path):
        emit = load_script("benchmarks/_emit.py")
        path = emit.emit_bench_json(
            "kern", {}, out_dir=str(tmp_path), backend="numba"
        )
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["backend"] == "numba"

    def test_respects_bench_out_env(self, tmp_path, monkeypatch):
        emit = load_script("benchmarks/_emit.py")
        monkeypatch.setenv("BENCH_OUT", str(tmp_path / "out"))
        path = emit.emit_bench_json("env", {})
        assert path.parent == tmp_path / "out"


class TestImplicitBudgetSmoke:
    def test_million_vertex_cell_passes_under_budget(self):
        smoke = load_script("ci/smoke_implicit_budget.py")
        assert smoke.main() == 0

    def test_sweep_is_registered(self):
        from repro.store import sweep_names

        smoke = load_script("ci/smoke_implicit_budget.py")
        assert smoke.SWEEP in sweep_names()


@pytest.mark.parametrize(
    "script",
    [
        "ci/smoke_sweep_resume.py",
        "ci/smoke_dispatch.py",
        "ci/smoke_implicit_budget.py",
        "ci/smoke_service.py",
        "benchmarks/bench_implicit.py",
        "benchmarks/bench_kernels_numba.py",
        "ci/check_bench_regression.py",
    ],
)
def test_ci_workflow_runs_the_extracted_scripts(script):
    ci = (REPO / ".github" / "workflows" / "ci.yml").read_text(encoding="utf-8")
    assert script in ci, f"ci.yml no longer runs {script}"


def test_ci_runs_the_straggler_report_over_the_dispatch_store():
    """The smokes job must render `sweep report` from the store the
    two traced dispatch workers just drained."""
    ci = (REPO / ".github" / "workflows" / "ci.yml").read_text(encoding="utf-8")
    assert "sweep report DEMO_grid2x2 --store ci-dispatch-store" in ci


def test_regression_gate_runs_against_fresh_artifacts():
    """The gate must compare the artifact dir CI writes benches into —
    and it gates (no `|| true` on its line)."""
    ci = (REPO / ".github" / "workflows" / "ci.yml").read_text(encoding="utf-8")
    line = next(
        ln for ln in ci.splitlines() if "check_bench_regression.py" in ln
    )
    assert "--fresh bench-artifacts" in line
    assert "|| true" not in line


class TestBenchRegressionGate:
    """The regression gate's contract, offline: pass within threshold,
    fail on a synthetic 25% slowdown, warn (not fail) on missing
    counterparts and null timings — but fail hard when baselines exist
    and the fresh run emitted no documents at all."""

    def _doc(self, name, **fields):
        return {"bench": name, "schema": 2, **fields}

    def _write(self, directory, doc):
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{doc['bench']}.json"
        path.write_text(json.dumps(doc), encoding="utf-8")

    def test_passes_when_fresh_matches_baseline(self, tmp_path, capsys):
        gate = load_script("ci/check_bench_regression.py")
        doc = self._doc("x", run_ms=100.0)
        self._write(tmp_path / "base", doc)
        self._write(tmp_path / "fresh", doc)
        rc = gate.main(
            ["--fresh", str(tmp_path / "fresh"), "--baseline", str(tmp_path / "base")]
        )
        assert rc == 0

    def test_fails_on_synthetic_25_percent_regression(self, tmp_path, capsys):
        gate = load_script("ci/check_bench_regression.py")
        self._write(tmp_path / "base", self._doc("x", run_ms=100.0))
        self._write(tmp_path / "fresh", self._doc("x", run_ms=125.0))
        rc = gate.main(
            ["--fresh", str(tmp_path / "fresh"), "--baseline", str(tmp_path / "base")]
        )
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_threshold_is_configurable(self, tmp_path):
        gate = load_script("ci/check_bench_regression.py")
        self._write(tmp_path / "base", self._doc("x", run_ms=100.0))
        self._write(tmp_path / "fresh", self._doc("x", run_ms=125.0))
        args = ["--fresh", str(tmp_path / "fresh"), "--baseline", str(tmp_path / "base")]
        assert gate.main([*args, "--threshold", "0.30"]) == 0

    def test_tracks_case_timings_and_skips_nulls(self, tmp_path, capsys):
        gate = load_script("ci/check_bench_regression.py")
        base = self._doc(
            "k", cases=[{"engine": "cobra", "numpy_ms": 10.0, "numba_ms": None}]
        )
        fresh = self._doc(
            "k", cases=[{"engine": "cobra", "numpy_ms": 20.0, "numba_ms": None}]
        )
        self._write(tmp_path / "base", base)
        self._write(tmp_path / "fresh", fresh)
        rc = gate.main(
            ["--fresh", str(tmp_path / "fresh"), "--baseline", str(tmp_path / "base")]
        )
        assert rc == 1  # numpy_ms doubled; the null numba column is ignored
        out = capsys.readouterr().out
        assert "cases[cobra].numpy_ms" in out and "numba_ms" not in out

    def test_empty_fresh_directory_fails_hard(self, tmp_path, capsys):
        """Baselines committed but the fresh run emitted nothing at all:
        the bench step itself broke, and the gate must fail, not warn."""
        gate = load_script("ci/check_bench_regression.py")
        self._write(tmp_path / "base", self._doc("x", run_ms=100.0))
        (tmp_path / "fresh").mkdir()
        rc = gate.main(
            ["--fresh", str(tmp_path / "fresh"), "--baseline", str(tmp_path / "base")]
        )
        assert rc == 1
        assert "emitted nothing" in capsys.readouterr().err

    def test_missing_fresh_directory_fails_hard(self, tmp_path, capsys):
        gate = load_script("ci/check_bench_regression.py")
        self._write(tmp_path / "base", self._doc("x", run_ms=100.0))
        rc = gate.main(
            ["--fresh", str(tmp_path / "absent"), "--baseline", str(tmp_path / "base")]
        )
        assert rc == 1

    def test_missing_counterparts_warn_but_pass(self, tmp_path, capsys):
        gate = load_script("ci/check_bench_regression.py")
        self._write(tmp_path / "base", self._doc("old", run_ms=5.0))
        self._write(tmp_path / "fresh", self._doc("brand_new", run_ms=5.0))
        rc = gate.main(
            ["--fresh", str(tmp_path / "fresh"), "--baseline", str(tmp_path / "base")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "warning" in out and "old" in out and "brand_new" in out

    def test_committed_baselines_cover_the_compiled_backend(self):
        """BENCH_kernels_numba.json is a committed, schema-2 baseline
        with one case per benchmarked engine."""
        doc = json.loads(
            (REPO / "BENCH_kernels_numba.json").read_text(encoding="utf-8")
        )
        assert doc["schema"] == 2 and doc["trials"] == 64
        assert doc["n"] >= 100_000
        engines = {c["engine"] for c in doc["cases"]}
        assert {"cobra", "parallel", "walt", "simple"} <= engines
        for case in doc["cases"]:
            assert case["numpy_ms"] > 0


class TestStaticJob:
    """Pin the `static` CI job's commands so they cannot silently rot."""

    @pytest.fixture(scope="class")
    def ci_yaml(self) -> str:
        return (REPO / ".github" / "workflows" / "ci.yml").read_text(
            encoding="utf-8"
        )

    def test_has_a_static_job(self, ci_yaml):
        assert "\n  static:\n" in ci_yaml

    def test_runs_the_in_tree_linter_with_contracts(self, ci_yaml):
        assert "python -m repro.lint src benchmarks examples ci --contracts" in ci_yaml

    def test_runs_ruff_repo_wide(self, ci_yaml):
        assert "ruff check src benchmarks examples ci tests" in ci_yaml

    def test_keeps_the_docstring_gate(self, ci_yaml):
        # the D1/D417 gate over the facade layer predates the static job
        # and must survive it (tests/test_docstrings.py mirrors it offline)
        assert "--select D1,D417" in ci_yaml
        for module in (
            "src/repro/sim/facade.py",
            "src/repro/sim/batch.py",
            "src/repro/sim/processes.py",
        ):
            assert module in ci_yaml

    def test_runs_mypy_on_the_strict_surface(self, ci_yaml):
        assert "mypy --config-file mypy.ini" in ci_yaml
        for target in (
            "src/repro/sim/rng.py",
            "src/repro/store/spec.py",
            "src/repro/lint",
        ):
            assert target in ci_yaml, f"mypy no longer checks {target}"

    def test_mypy_is_pinned_in_ci_requirements(self):
        reqs = (REPO / "ci" / "requirements.txt").read_text(encoding="utf-8")
        assert "mypy" in reqs and "ruff" in reqs
