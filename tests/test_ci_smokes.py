"""The extracted CI smoke scripts are runnable and honest.

`ci/smoke_sweep_resume.py` and `ci/smoke_dispatch.py` used to be
inline YAML heredocs; as modules they are importable, run here against
temp stores, and can no longer drift from the library without a test
failure.  The benchmark JSON emitter is pinned alongside (CI uploads
its output as build artifacts).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def load_script(relpath: str):
    """Import a non-package script (ci/, benchmarks/) as a module."""
    path = REPO / relpath
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    # registration makes dataclasses/pickling inside the script happy
    sys.modules[path.stem] = module
    spec.loader.exec_module(module)
    return module


class TestSweepResumeSmoke:
    def test_passes_against_a_temp_store(self, tmp_path):
        smoke = load_script("ci/smoke_sweep_resume.py")
        assert smoke.main(str(tmp_path / "store")) == 0

    def test_spec_is_the_2x2_campaign(self):
        smoke = load_script("ci/smoke_sweep_resume.py")
        assert len(smoke.build_spec().expand()) == 4


class TestDispatchSmoke:
    def test_two_process_drain_passes(self, tmp_path):
        smoke = load_script("ci/smoke_dispatch.py")
        assert smoke.main(str(tmp_path / "store")) == 0

    def test_sweep_is_registered(self):
        from repro.store import sweep_names

        smoke = load_script("ci/smoke_dispatch.py")
        assert smoke.SWEEP in sweep_names()


class TestBenchEmit:
    def test_writes_schema_stamped_json(self, tmp_path):
        emit = load_script("benchmarks/_emit.py")
        path = emit.emit_bench_json(
            "unit", {"speedup": 3.5}, out_dir=str(tmp_path)
        )
        assert path.name == "BENCH_unit.json"
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["bench"] == "unit" and doc["schema"] == 1
        assert doc["speedup"] == 3.5 and doc["created_unix"] > 0

    def test_respects_bench_out_env(self, tmp_path, monkeypatch):
        emit = load_script("benchmarks/_emit.py")
        monkeypatch.setenv("BENCH_OUT", str(tmp_path / "out"))
        path = emit.emit_bench_json("env", {})
        assert path.parent == tmp_path / "out"


class TestImplicitBudgetSmoke:
    def test_million_vertex_cell_passes_under_budget(self):
        smoke = load_script("ci/smoke_implicit_budget.py")
        assert smoke.main() == 0

    def test_sweep_is_registered(self):
        from repro.store import sweep_names

        smoke = load_script("ci/smoke_implicit_budget.py")
        assert smoke.SWEEP in sweep_names()


@pytest.mark.parametrize(
    "script",
    [
        "ci/smoke_sweep_resume.py",
        "ci/smoke_dispatch.py",
        "ci/smoke_implicit_budget.py",
        "benchmarks/bench_implicit.py",
    ],
)
def test_ci_workflow_runs_the_extracted_scripts(script):
    ci = (REPO / ".github" / "workflows" / "ci.yml").read_text(encoding="utf-8")
    assert script in ci, f"ci.yml no longer runs {script}"


class TestStaticJob:
    """Pin the `static` CI job's commands so they cannot silently rot."""

    @pytest.fixture(scope="class")
    def ci_yaml(self) -> str:
        return (REPO / ".github" / "workflows" / "ci.yml").read_text(
            encoding="utf-8"
        )

    def test_has_a_static_job(self, ci_yaml):
        assert "\n  static:\n" in ci_yaml

    def test_runs_the_in_tree_linter_with_contracts(self, ci_yaml):
        assert "python -m repro.lint src benchmarks examples ci --contracts" in ci_yaml

    def test_runs_ruff_repo_wide(self, ci_yaml):
        assert "ruff check src benchmarks examples ci tests" in ci_yaml

    def test_keeps_the_docstring_gate(self, ci_yaml):
        # the D1/D417 gate over the facade layer predates the static job
        # and must survive it (tests/test_docstrings.py mirrors it offline)
        assert "--select D1,D417" in ci_yaml
        for module in (
            "src/repro/sim/facade.py",
            "src/repro/sim/batch.py",
            "src/repro/sim/processes.py",
        ):
            assert module in ci_yaml

    def test_runs_mypy_on_the_strict_surface(self, ci_yaml):
        assert "mypy --config-file mypy.ini" in ci_yaml
        for target in (
            "src/repro/sim/rng.py",
            "src/repro/store/spec.py",
            "src/repro/lint",
        ):
            assert target in ci_yaml, f"mypy no longer checks {target}"

    def test_mypy_is_pinned_in_ci_requirements(self):
        reqs = (REPO / "ci" / "requirements.txt").read_text(encoding="utf-8")
        assert "mypy" in reqs and "ruff" in reqs
