"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid,
    hypercube,
    kary_tree,
    lollipop,
    path_graph,
    random_regular,
    star_graph,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_cycle():
    return cycle_graph(12)


@pytest.fixture
def small_grid():
    return grid(6, 2)


@pytest.fixture
def small_hypercube():
    return hypercube(5)


@pytest.fixture
def small_complete():
    return complete_graph(10)


@pytest.fixture
def small_path():
    return path_graph(10)


@pytest.fixture
def small_star():
    return star_graph(20)


@pytest.fixture
def small_lollipop():
    return lollipop(24)


@pytest.fixture
def small_tree():
    return kary_tree(2, 4)


@pytest.fixture
def small_regular():
    return random_regular(60, 4, seed=777)


@pytest.fixture(
    params=["cycle", "grid", "hypercube", "complete", "star", "lollipop", "tree"]
)
def any_graph(request):
    """A parametrized tour of structurally diverse graphs."""
    return {
        "cycle": cycle_graph(12),
        "grid": grid(4, 2),
        "hypercube": hypercube(4),
        "complete": complete_graph(8),
        "star": star_graph(12),
        "lollipop": lollipop(15),
        "tree": kary_tree(2, 3),
    }[request.param]
