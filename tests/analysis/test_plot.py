"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.analysis import ascii_loglog, ascii_plot


class TestAsciiPlot:
    def test_markers_and_legend(self):
        out = ascii_plot(
            {"a": ([1, 2, 3], [1, 2, 3]), "b": ([1, 2, 3], [3, 2, 1])},
            width=30,
            height=8,
        )
        assert "o=a" in out and "x=b" in out
        assert "o" in out and "x" in out

    def test_title_and_axis_labels(self):
        out = ascii_plot({"s": ([1, 10], [5, 50])}, title="demo", width=20, height=6)
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "1" in out and "10" in out

    def test_loglog_drops_nonpositive(self):
        out = ascii_loglog({"s": ([1, 10, 0, -3], [1, 100, 5, 5])}, width=20, height=6)
        assert "o" in out

    def test_corner_points_present(self):
        out = ascii_plot({"s": ([0, 1], [0, 1])}, width=20, height=6)
        lines = [l for l in out.splitlines() if "|" in l]
        # bottom-left and top-right markers
        assert lines[0].rstrip().endswith("o")
        assert "o" in lines[-1].split("|")[1][:2]

    def test_constant_series_ok(self):
        out = ascii_plot({"s": ([1, 2, 3], [5, 5, 5])}, width=20, height=6)
        plot_area = "".join(l.split("|", 1)[1] for l in out.splitlines() if "|" in l)
        assert plot_area.count("o") == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"s": ([1], [1])}, width=4, height=2)
        with pytest.raises(ValueError):
            ascii_loglog({"s": ([-1, -2], [1, 2])})

    def test_many_points_bounded_size(self):
        rng = np.random.default_rng(0)
        xs = rng.random(500) * 100 + 1
        ys = xs**2
        out = ascii_loglog({"big": (xs, ys)}, width=40, height=10)
        lines = out.splitlines()
        assert all(len(l) <= 60 for l in lines)
