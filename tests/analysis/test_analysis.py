"""Tests for scaling fits, stats, and tables."""

import numpy as np
import pytest

from repro.analysis import (
    Table,
    bootstrap_ci,
    doubling_ratios,
    fit_constant_to_shape,
    fit_power_law,
    summarize,
)


class TestPowerLawFit:
    def test_recovers_exact_law(self):
        x = np.array([10, 20, 40, 80, 160], dtype=float)
        y = 3.5 * x**1.75
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(1.75, abs=1e-9)
        assert fit.prefactor == pytest.approx(3.5, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noise_robustness(self, rng):
        x = np.geomspace(16, 4096, 9)
        y = 2.0 * x**1.0 * np.exp(rng.normal(0, 0.05, x.size))
        fit = fit_power_law(x, y)
        assert abs(fit.exponent - 1.0) < 0.15
        assert fit.exponent_ci95 < 0.3

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 4, 8])
        assert fit.predict(np.array([8.0]))[0] == pytest.approx(16.0)

    def test_nan_points_dropped(self):
        fit = fit_power_law([1, 2, 4, 8], [1, 2, np.nan, 8])
        assert fit.npoints == 3
        assert fit.exponent == pytest.approx(1.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_log2_slope_for_log_shape(self):
        # fitting log^2 n data as a power law yields a small exponent
        x = np.geomspace(100, 100000, 8)
        y = np.log(x) ** 2
        fit = fit_power_law(x, y)
        assert 0 < fit.exponent < 0.5


class TestDoublingRatios:
    def test_exact_quadratic(self):
        x = np.array([1, 2, 4, 8], dtype=float)
        r = doubling_ratios(x, x**2)
        assert np.allclose(r, 2.0)

    def test_mixed_regimes_detected(self):
        x = np.array([1, 2, 4, 8, 16], dtype=float)
        y = np.array([1, 2, 4, 16, 64], dtype=float)  # slope 1 then 2
        r = doubling_ratios(x, y)
        assert r[0] == pytest.approx(1.0)
        assert r[-1] == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            doubling_ratios([1], [1])


class TestShapeFit:
    def test_perfect_shape(self):
        x = [10, 20, 40]
        measured = [5 * v**2 for v in x]
        fit = fit_constant_to_shape(x, measured, lambda v: v**2)
        assert fit.constant == pytest.approx(5.0)
        assert fit.max_rel_dev < 1e-12

    def test_wrong_shape_flags_large_deviation(self):
        x = np.geomspace(10, 10000, 6)
        measured = x**2
        fit = fit_constant_to_shape(x, measured, lambda v: v)
        assert fit.max_rel_dev > 0.9

    def test_no_usable_points(self):
        with pytest.raises(ValueError):
            fit_constant_to_shape([1.0], [np.nan], lambda v: v)


class TestStats:
    def test_summarize_basic(self):
        s = summarize([1, 2, 3, 4, np.nan])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.nan_count == 1
        assert s.minimum == 1 and s.maximum == 4

    def test_summarize_empty(self):
        s = summarize([np.nan])
        assert s.n == 0 and np.isnan(s.mean)

    def test_bootstrap_contains_truth(self, rng):
        sample = rng.normal(10, 2, 300)
        lo, hi = bootstrap_ci(sample, np.mean, seed=1)
        assert lo < 10 < hi
        assert hi - lo < 1.5

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], np.mean)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], np.mean, level=1.5)


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"], title="demo")
        t.add_row(["alpha", 1.0])
        t.add_row(["b", 123456.0])
        text = t.render()
        assert "demo" in text
        assert "alpha" in text
        assert "1.235e+05" in text

    def test_markdown(self):
        t = Table(["a", "b"])
        t.add_row([1, 2])
        md = t.render_markdown()
        assert "| a | b |" in md
        assert "| 1 | 2 |" in md

    def test_bool_and_nan_formatting(self):
        t = Table(["x"])
        t.add_row([True])
        t.add_row([float("nan")])
        text = t.render()
        assert "yes" in text and "-" in text

    def test_row_length_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            Table([])
