"""Straggler-report math and the live top snapshot.

One small traced campaign (and one dispatch drain) per fixture; the
report must attribute every cell to a worker, group percentiles
correctly, and read ledger/event health from the store directory.
"""

import pytest

from repro.obs import build_report, live_top, render_top, tracer_for_store
from repro.store import Campaign, ResultStore, SeedPolicy, SweepSpec, drain


def make_spec(**over):
    base = dict(
        name="obs",
        process="cobra",
        graph="grid",
        graph_grid={"n": [6, 8], "d": [2]},
        params_grid={"k": [1, 2]},
        trials=3,
        seed=SeedPolicy(root=5),
    )
    base.update(over)
    return SweepSpec(**base)


@pytest.fixture()
def traced_store(tmp_path):
    store = ResultStore(tmp_path)
    spec = make_spec()
    tracer = tracer_for_store(tmp_path, worker="tester")
    Campaign(spec, store, tracer=tracer).run()
    return store, spec


class TestBuildReport:
    def test_every_cell_attributed_slowest_first(self, traced_store):
        store, spec = traced_store
        report = build_report(store, [spec])
        assert len(report.cells) == 4
        assert all(row["worker"] == "tester" for row in report.cells)
        walls = [row["wall_s"] for row in report.cells]
        assert walls == sorted(walls, reverse=True)
        # per-phase columns surfaced from provenance phase_s
        assert all("t_engine_s" in row for row in report.cells)

    def test_group_percentiles(self, traced_store):
        store, spec = traced_store
        report = build_report(store, [spec])
        (group,) = report.groups
        assert group["process"] == "cobra" and group["cells"] == 4
        assert group["p50_s"] <= group["p95_s"] <= group["max_s"]
        assert group["max_worker"] == "tester"

    def test_worker_rollup(self, traced_store):
        store, spec = traced_store
        report = build_report(store, [spec])
        (worker,) = report.workers
        assert worker["worker"] == "tester" and worker["cells"] == 4
        assert worker["max_s"] <= worker["total_s"]

    def test_event_health_counted(self, traced_store):
        store, spec = traced_store
        report = build_report(store, [spec])
        # 4 cells x 4 phases + 4 cell spans + 1 campaign span
        assert report.events == {"records": 21, "torn": 0}

    def test_no_ledger_for_single_process_campaigns(self, traced_store):
        store, spec = traced_store
        report = build_report(store, [spec])
        assert report.ledger == {}
        assert "single-process campaign" in report.render()

    def test_render_sections(self, traced_store):
        store, spec = traced_store
        text = build_report(store, [spec]).render()
        assert "stragglers" in text
        assert "wall time by process/graph_kind/backend" in text
        assert "worker attribution" in text
        assert "21 record(s), 0 torn line(s)" in text

    def test_empty_store_renders_gracefully(self, tmp_path):
        report = build_report(ResultStore(tmp_path))
        assert report.render() == "no stored cells to report on"

    def test_whole_store_when_specs_omitted(self, traced_store):
        store, _ = traced_store
        assert len(build_report(store).cells) == 4


class TestLedgerStats:
    def test_drain_fills_ledger_health(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        tracer = tracer_for_store(tmp_path, worker="w1")
        drain(spec, store, owner="w1", tracer=tracer)
        report = build_report(store, [spec])
        led = report.ledger
        assert led["claims"] == 4 and led["done"] == 4
        assert led["reclaimed"] == 0 and led["abandoned"] == 0
        assert led["stale"] == 0 and led["live"] == 0
        assert led["double_computed"] == 0
        assert "4 claim(s)" in report.render()

    def test_lease_events_attributed(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        tracer = tracer_for_store(tmp_path, worker="w1")
        drain(spec, store, owner="w1", tracer=tracer)
        from repro.obs import load_events

        phases = load_events(tmp_path).filter(kind="phase")
        assert len(phases) == 16
        assert all(r.get("lease") for r in phases.rows)
        # lease lands in provenance too
        for key in spec.expand():
            prov = store.get(key)["provenance"]
            assert prov["worker"] == "w1" and prov["lease"]


class TestTop:
    def test_snapshot_shows_progress_and_stragglers(self, traced_store):
        store, spec = traced_store
        text = render_top(store, [spec])
        assert "4/4 cells stored" in text
        assert "live leases: 0" in text
        assert "recent events" in text
        assert "slowest cells so far:" in text

    def test_live_top_polls_until_complete(self, traced_store):
        store, spec = traced_store
        screens, naps = [], []
        rc = live_top(
            store, [spec], interval=0.1, out=screens.append, sleep=naps.append
        )
        assert rc == 0
        assert len(screens) == 1 and naps == []  # already drained: one screen

    def test_live_top_iteration_budget(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()  # nothing stored: would poll forever
        screens, naps = [], []
        rc = live_top(
            store,
            [spec],
            interval=0.5,
            iterations=3,
            out=screens.append,
            sleep=naps.append,
        )
        assert rc == 0
        assert len(screens) == 3 and naps == [0.5, 0.5]


class TestProfile:
    def test_profile_records_peak_rss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        Campaign(spec, store, profile=True).run()
        for key in spec.expand():
            prov = store.get(key)["provenance"]
            assert prov["peak_rss_mb"] > 0
        assert all(
            row["peak_rss_mb"] > 0 for row in store.frame().rows
        )
