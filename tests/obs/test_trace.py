"""Tracer/NullTracer span math, counters, emission, ambient stack.

Everything runs on injected fake clocks, so span durations and event
timestamps are exact — the property RPL150 enforces for the
instrumented production code too.
"""

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    activate,
    current_tracer,
    default_worker_id,
)
from repro.obs.trace import _NULL_SPAN


class FakeClock:
    """A monotonic clock advancing 1.0 per read."""

    def __init__(self, start=0.0):
        self.t = start

    def __call__(self):
        self.t += 1.0
        return self.t


class TestSpans:
    def test_span_duration_on_the_injected_clock(self):
        tr = Tracer(clock=FakeClock(), worker="w")
        with tr.span("cell", kind="cell"):
            pass
        (span,) = tr.spans
        assert span.name == "cell" and span.kind == "cell"
        assert span.dur_s == 1.0  # t0=1.0, t1=2.0

    def test_nesting_closes_inner_before_outer(self):
        tr = Tracer(clock=FakeClock(), worker="w")
        with tr.span("cell", kind="cell"):
            with tr.span("engine"):
                pass
        assert [s.name for s in tr.spans] == ["engine", "cell"]

    def test_span_closes_on_exception(self):
        tr = Tracer(clock=FakeClock(), worker="w")
        with pytest.raises(RuntimeError):
            with tr.span("cell"):
                raise RuntimeError("boom")
        assert len(tr.spans) == 1 and tr.spans[0].t1 is not None

    def test_attrs_ride_on_the_span(self):
        tr = Tracer(clock=FakeClock(), worker="w")
        with tr.span("cell", kind="cell", cell="abc", sweep="s"):
            tr.annotate(engine_path="vectorized")
        assert tr.spans[0].attrs == {
            "cell": "abc", "sweep": "s", "engine_path": "vectorized",
        }


class TestCounters:
    def test_count_adds_on_the_innermost_span(self):
        tr = Tracer(clock=FakeClock(), worker="w")
        with tr.span("cell"):
            tr.count("rng_draws", 10)
            with tr.span("engine"):
                tr.count("rng_draws", 5)
                tr.count("rng_draws", 7)
        engine, cell = tr.spans
        assert engine.counters == {"rng_draws": 12}
        assert cell.counters == {"rng_draws": 10}

    def test_gauge_keeps_the_max(self):
        tr = Tracer(clock=FakeClock(), worker="w")
        with tr.span("engine"):
            tr.gauge("frontier_peak", 4)
            tr.gauge("frontier_peak", 9)
            tr.gauge("frontier_peak", 2)
        assert tr.spans[0].counters == {"frontier_peak": 9}

    def test_counters_outside_any_span_are_dropped(self):
        tr = Tracer(clock=FakeClock(), worker="w")
        tr.count("x")
        tr.gauge("y", 1)
        tr.annotate(z=2)
        assert tr.spans == []


class TestEmission:
    def test_emitted_record_is_flat_and_attributed(self):
        records = []
        tr = Tracer(
            clock=FakeClock(),
            walltime=lambda: 1000.0,
            sink=records.append,
            worker="w0",
            lease="abcd1234",
        )
        with tr.span("engine", kind="phase", cell="deadbeef"):
            tr.count("engine_steps", 7)
        (record,) = records
        assert record == {
            "kind": "phase", "name": "engine", "seq": 0, "dur_s": 1.0,
            "t_wall": 1000.0, "worker": "w0", "lease": "abcd1234",
            "cell": "deadbeef", "c_engine_steps": 7,
        }

    def test_seq_increments_per_emission(self):
        records = []
        tr = Tracer(clock=FakeClock(), sink=records.append, worker="w")
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
        assert [r["seq"] for r in records] == [0, 1]

    def test_no_lease_key_without_a_lease(self):
        records = []
        tr = Tracer(clock=FakeClock(), sink=records.append, worker="w")
        with tr.span("a"):
            pass
        assert "lease" not in records[0]

    def test_counter_names_are_prefixed_against_attr_collision(self):
        records = []
        tr = Tracer(clock=FakeClock(), sink=records.append, worker="w")
        with tr.span("a", cell="x"):
            tr.count("cell", 3)  # counter named like an attribute
        assert records[0]["cell"] == "x" and records[0]["c_cell"] == 3


class TestNullTracer:
    def test_disabled_and_free(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("anything", kind="cell", x=1) is _NULL_SPAN
        with NULL_TRACER.span("engine"):
            NULL_TRACER.count("x")
            NULL_TRACER.gauge("y", 1)
            NULL_TRACER.annotate(z=2)
        assert NULL_TRACER.spans == []

    def test_clocks_stay_real_for_provenance(self):
        tr = NullTracer(clock=FakeClock(start=10.0), walltime=lambda: 99.0)
        assert tr.clock() == 11.0
        assert tr.walltime() == 99.0

    def test_default_clocks_are_functional(self):
        assert NULL_TRACER.clock() >= 0.0
        assert NULL_TRACER.walltime() > 0.0


class TestAmbientStack:
    def test_default_is_the_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_activate_installs_and_restores(self):
        tr = Tracer(clock=FakeClock(), worker="w")
        with activate(tr):
            assert current_tracer() is tr
            inner = Tracer(clock=FakeClock(), worker="w2")
            with activate(inner):
                assert current_tracer() is inner
            assert current_tracer() is tr
        assert current_tracer() is NULL_TRACER

    def test_restores_on_exception(self):
        tr = Tracer(clock=FakeClock(), worker="w")
        with pytest.raises(ValueError):
            with activate(tr):
                raise ValueError
        assert current_tracer() is NULL_TRACER


def test_default_worker_id_is_host_pid():
    import os
    import socket

    assert default_worker_id() == f"{socket.gethostname()}-{os.getpid()}"
