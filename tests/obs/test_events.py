"""events.jsonl round-trip: flock appends, torn tails, concurrent writers.

The concurrency test drives two real OS processes through
:meth:`EventLog.append` simultaneously — the same guarantee the CI
dispatch smoke proves end to end with ``sweep work --trace`` workers.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.obs import EVENTS_FILE, EventLog, load_events, tracer_for_store

REPO_SRC = Path(__file__).resolve().parent.parent.parent / "src"


class TestRoundTrip:
    def test_append_records_frame(self, tmp_path):
        log = EventLog(tmp_path)
        log.append({"kind": "phase", "name": "engine", "dur_s": 0.5})
        log.append({"kind": "cell", "name": "cell", "dur_s": 1.5})
        assert [r["kind"] for r in log.records()] == ["phase", "cell"]
        frame = log.frame()
        assert len(frame.filter(kind="phase")) == 1
        assert frame.filter(kind="cell").column("dur_s") == [1.5]

    def test_missing_file_is_empty_not_an_error(self, tmp_path):
        log = EventLog(tmp_path)
        assert log.records() == [] and log.torn_lines() == 0
        assert len(load_events(tmp_path)) == 0

    def test_torn_tail_is_counted_and_skipped(self, tmp_path):
        log = EventLog(tmp_path)
        log.append({"kind": "phase", "name": "a"})
        with (tmp_path / EVENTS_FILE).open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "phase", "na')  # crash mid-write
        assert log.torn_lines() == 1
        assert len(log.records()) == 1

    def test_non_dict_lines_count_as_torn(self, tmp_path):
        (tmp_path / EVENTS_FILE).write_text('[1, 2]\n42\n', encoding="utf-8")
        log = EventLog(tmp_path)
        assert log.torn_lines() == 2 and log.records() == []


class TestTracerForStore:
    def test_spans_land_in_the_event_file(self, tmp_path):
        tr = tracer_for_store(tmp_path, worker="w0")
        with tr.span("cell", kind="cell", cell="abc123"):
            with tr.span("engine"):
                tr.count("engine_steps", 3)
        records = EventLog(tmp_path).records()
        assert [r["name"] for r in records] == ["engine", "cell"]
        assert records[0]["worker"] == "w0"
        assert records[0]["c_engine_steps"] == 3

    def test_lease_attribution_follows_the_tracer(self, tmp_path):
        tr = tracer_for_store(tmp_path, worker="w0")
        tr.lease = "aaaa"
        with tr.span("a"):
            pass
        tr.lease = None
        with tr.span("b"):
            pass
        records = EventLog(tmp_path).records()
        assert records[0]["lease"] == "aaaa"
        assert "lease" not in records[1]


_WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.obs import EventLog
log = EventLog({root!r})
for i in range({n}):
    log.append({{"kind": "phase", "name": "e", "worker": {tag!r}, "i": i}})
"""


class TestConcurrentWriters:
    def test_two_processes_interleave_without_torn_lines(self, tmp_path):
        """Two OS processes hammer one events.jsonl; every line must
        parse and every record must survive (the flock whole-line
        guarantee)."""
        n = 200
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    _WRITER.format(
                        src=str(REPO_SRC), root=str(tmp_path), n=n, tag=tag
                    ),
                ]
            )
            for tag in ("w0", "w1")
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        log = EventLog(tmp_path)
        assert log.torn_lines() == 0
        frame = log.frame()
        assert len(frame) == 2 * n
        for tag in ("w0", "w1"):
            sub = frame.filter(worker=tag)
            assert sorted(r["i"] for r in sub.rows) == list(range(n))

    def test_every_line_is_one_json_document(self, tmp_path):
        log = EventLog(tmp_path)
        for i in range(50):
            log.append({"kind": "phase", "i": i})
        for line in (tmp_path / EVENTS_FILE).read_text().splitlines():
            json.loads(line)
