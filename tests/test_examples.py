"""Smoke tests for the example scripts.

Each example is importable (no side effects at import) and exposes a
``main()``; the cheapest one runs end-to-end under a subprocess so the
documented entry point stays alive.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = [
    "quickstart.py",
    "epidemic_sis.py",
    "rumor_spreading.py",
    "grid_coverage.py",
    "worst_case_graphs.py",
]


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_importable_with_main(script):
    path = EXAMPLES / script
    assert path.exists()
    spec = importlib.util.spec_from_file_location(script[:-3], path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)  # type: ignore[union-attr]
    assert callable(getattr(mod, "main", None))


def test_quickstart_runs():
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert out.returncode == 0, out.stderr
    assert "2-cobra walk covered all vertices" in out.stdout
    assert "slower" in out.stdout
