"""Cross-module integration tests: the paper's pipelines end to end."""

import numpy as np
import pytest

from repro.analysis import fit_power_law, summarize
from repro.core import (
    CobraWalk,
    cobra_cover_trials,
    thm8_conductance_cover,
    walt_cover_time,
)
from repro.graphs import (
    barabasi_albert,
    chordal_cycle,
    chung_lu_powerlaw,
    erdos_renyi,
    grid,
    hypercube,
    largest_component,
    margulis,
    random_geometric,
    random_regular,
    random_tree,
    watts_strogatz,
)
from repro.sim import coverage_curve, run_trials
from repro.spectral import conductance_estimate, theorem8_epoch_length


class TestTheorem8Pipeline:
    """Conductance estimate -> bound -> measured cover, end to end."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda: hypercube(6),
            lambda: random_regular(128, 4, seed=5),
        ],
    )
    def test_cover_within_theorem8_budget(self, make):
        g = make()
        est = conductance_estimate(g)
        d = int(g.degrees[0])
        budget = thm8_conductance_cover(g.n, d, est.lower)
        times = cobra_cover_trials(g, trials=5, seed=9)
        assert np.nanmax(times) <= budget  # the d^4 constant gives huge room

    def test_epoch_length_consistent_with_estimate(self):
        g = hypercube(5)
        est = conductance_estimate(g)
        s = theorem8_epoch_length(g.n, 5, est.estimate)
        assert s > 0
        # more conductance -> shorter epochs
        assert theorem8_epoch_length(g.n, 5, est.estimate * 2) < s


class TestEveryFamilySupportsCobra:
    """Every generator yields a graph the cobra walk covers."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda: largest_component(erdos_renyi(150, 0.05, seed=1)),
            lambda: barabasi_albert(150, 2, seed=2),
            lambda: largest_component(chung_lu_powerlaw(200, 2.5, seed=3)),
            lambda: largest_component(random_geometric(150, 0.15, seed=4)),
            lambda: watts_strogatz(120, 2, 0.2, seed=5),
            lambda: chordal_cycle(101),
            lambda: margulis(7),
            lambda: random_tree(100, seed=6),
        ],
        ids=["gnp", "ba", "chung-lu", "rgg", "ws", "chordal", "margulis", "rtree"],
    )
    def test_cover_completes(self, make):
        g = make()
        walk = CobraWalk(g, seed=11)
        res = walk.run_until_cover(max_steps=500 * g.n)
        assert res.covered
        curve = coverage_curve(res.first_activation)
        assert curve.counts[-1] == g.n
        assert curve.time_to_fraction(1.0) == res.cover_time


class TestWaltAgainstCobraAcrossFamilies:
    def test_walt_never_faster_on_average(self):
        for make, seed in [
            (lambda: hypercube(5), 21),
            (lambda: grid(5, 2), 22),
        ]:
            g = make()
            cobra = float(np.nanmean(cobra_cover_trials(g, trials=10, seed=seed)))
            walt = float(
                np.nanmean(
                    [walt_cover_time(g, seed=s).cover_time for s in range(seed, seed + 10)]
                )
            )
            assert walt >= cobra * 0.9


def _cover_trial(seed, n):
    """Module-level for multiprocessing pickling."""
    from repro.core import cobra_cover_time
    from repro.graphs import grid as make_grid

    res = cobra_cover_time(make_grid(n, 2), seed=seed)
    return float(res.cover_time)


class TestMonteCarloHarnessWithRealProcess:
    def test_parallel_trials_reproduce_serial(self):
        ser = run_trials(_cover_trial, 6, seed=31, args=(10,))
        par = run_trials(_cover_trial, 6, seed=31, args=(10,), processes=2)
        assert np.array_equal(ser.values, par.values)
        assert ser.failures == 0


class TestScalingPipeline:
    def test_grid_sweep_fits_linear(self):
        ns = [8, 16, 32, 64]
        means = []
        for n in ns:
            t = cobra_cover_trials(grid(n, 1), trials=6, seed=n)
            means.append(summarize(t).mean)
        fit = fit_power_law(ns, means)
        assert abs(fit.exponent - 1.0) < 0.2
        assert fit.r_squared > 0.98
