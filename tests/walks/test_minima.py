"""Branching-minima walk: line validation, exact occupancy, facade wiring."""

import numpy as np
import pytest

from repro.graphs import cycle_graph, grid, path_graph, star_graph
from repro.sim import run_batch, simulate
from repro.walks.minima import BranchingMinimaWalk, validate_line_graph


class TestLineValidation:
    @pytest.mark.parametrize("n", [2, 3, 17])
    def test_accepts_paths(self, n):
        validate_line_graph(path_graph(n))

    @pytest.mark.parametrize(
        "g", [cycle_graph(8), star_graph(6), grid(3, 2)],
        ids=["cycle", "star", "grid"],
    )
    def test_rejects_non_paths(self, g):
        with pytest.raises(ValueError, match="path"):
            validate_line_graph(g)

    def test_rejects_singleton(self):
        from repro.graphs import complete_graph

        with pytest.raises(ValueError, match="at least 2"):
            validate_line_graph(complete_graph(1))


class TestWalkSemantics:
    def test_initial_state(self):
        w = BranchingMinimaWalk(path_graph(21), start=10, seed=0)
        assert w.t == 0 and w.population == 1
        assert w.min_position == 0 and w.max_position == 0

    def test_population_doubles_until_cap(self):
        w = BranchingMinimaWalk(path_graph(65), start=32, seed=1, k=2)
        for t in range(1, 6):
            w.step()
            assert w.population == 2**t
        capped = BranchingMinimaWalk(path_graph(65), start=32, seed=1, k=2,
                                     count_cap=3)
        for _ in range(8):
            capped.step()
        assert capped.counts.max() <= 3

    def test_k1_is_a_single_walker(self):
        w = BranchingMinimaWalk(path_graph(11), start=5, seed=2, k=1)
        for _ in range(20):
            w.step()
            assert w.population == 1
            assert w.min_position == w.max_position

    def test_frontier_within_generation_bound(self):
        w = BranchingMinimaWalk(path_graph(65), start=32, seed=3, k=3)
        for t in range(1, 12):
            w.step()
            assert -t <= w.min_position <= w.max_position <= t

    def test_minimum_drifts_left_for_supercritical_k(self):
        # E min of gen g is ~ -g·gamma for k >= 2; at g=10 the minimum
        # is essentially always strictly negative
        mins = []
        for s in range(16):
            w = BranchingMinimaWalk(path_graph(65), start=32, seed=s, k=3)
            for _ in range(10):
                w.step()
            mins.append(w.min_position)
        assert np.mean(mins) < -5

    def test_reflecting_boundary_keeps_particles(self):
        w = BranchingMinimaWalk(path_graph(3), start=1, seed=4, k=1)
        for _ in range(30):
            w.step()
            assert w.population == 1
            assert 0 <= w.min_position + 1 <= 2

    def test_seed_determinism(self):
        runs = []
        for _ in range(2):
            w = BranchingMinimaWalk(path_graph(65), start=32, seed=42, k=2)
            for _ in range(8):
                w.step()
            runs.append((w.min_position, w.max_position, w.counts.copy()))
        assert runs[0][:2] == runs[1][:2]
        assert np.array_equal(runs[0][2], runs[1][2])

    def test_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            BranchingMinimaWalk(path_graph(9), k=0)
        with pytest.raises(ValueError, match="count_cap"):
            BranchingMinimaWalk(path_graph(9), count_cap=0)
        with pytest.raises(ValueError, match="start"):
            BranchingMinimaWalk(path_graph(9), start=9)


class TestFacadeIntegration:
    def test_simulate_min_metric(self):
        res = simulate(path_graph(65), "branching_minima", seed=0, max_steps=8)
        assert res.metric == "min"
        assert res.steps == 8
        assert res.extras["min_position"] == int(res.value)
        assert -8 <= res.value <= 8
        assert res.extras["max_position"] >= res.extras["min_position"]

    def test_default_start_is_the_line_midpoint(self):
        # generation-g frontier from the midpoint of a long-enough line
        # never touches the boundary; a start-0 default would reflect
        res = simulate(path_graph(129), "branching_minima", seed=1, max_steps=16)
        assert -16 <= res.value <= 0

    def test_generations_param_sets_the_budget(self):
        res = simulate(path_graph(65), "branching_minima", seed=2, generations=5)
        assert res.steps == 5

    def test_run_batch_serial_path(self):
        summary = run_batch(
            path_graph(65), "branching_minima", trials=6, seed=3, generations=6
        )
        assert summary.failures == 0
        assert (summary.values <= 0).any()
        assert (np.abs(summary.values) <= 6).all()

    def test_array_start_rejected(self):
        with pytest.raises(ValueError, match="single start"):
            simulate(
                path_graph(65), "branching_minima", start=np.array([1, 2]),
                max_steps=2,
            )

    def test_non_line_graph_rejected(self):
        with pytest.raises(ValueError, match="path"):
            simulate(grid(4, 2), "branching_minima", max_steps=2)

    def test_min_metric_rejected_for_other_processes(self):
        with pytest.raises(ValueError, match="does not support"):
            simulate(path_graph(9), "cobra", metric="min")
