"""The deprecation contract of the legacy ``repro.walks`` helpers.

Each per-run ``*_time`` helper must emit a :class:`DeprecationWarning`
that names its **exact** facade replacement (a paste-able
``simulate(...)`` call naming the right registry process), not a
generic "this is deprecated" message — and the facade itself must stay
silent.
"""

import warnings

import numpy as np
import pytest

from repro.graphs import complete_graph
from repro.sim import run_batch, simulate
from repro.walks import (
    branching_cover_time,
    coalescence_time,
    parallel_cover_time,
    parallel_hitting_time,
    pull_spread_time,
    push_pull_spread_time,
    push_spread_time,
    rw_cover_time,
    rw_hitting_time,
)

G = complete_graph(8)

#: (callable, helper name, registry process the message must point at)
SHIMS = [
    (lambda: rw_cover_time(G, seed=0), "rw_cover_time", '"simple"'),
    (lambda: rw_cover_time(G, seed=0, lazy=True), "rw_cover_time", '"lazy"'),
    (lambda: rw_hitting_time(G, 3, seed=0), "rw_hitting_time", '"simple"'),
    (lambda: push_spread_time(G, seed=0), "push_spread_time", '"push"'),
    (lambda: pull_spread_time(G, seed=0), "pull_spread_time", '"pull"'),
    (
        lambda: push_pull_spread_time(G, seed=0),
        "push_pull_spread_time",
        '"push_pull"',
    ),
    (
        lambda: parallel_cover_time(G, walkers=2, seed=0),
        "parallel_cover_time",
        '"parallel"',
    ),
    (
        lambda: parallel_hitting_time(G, 3, walkers=2, seed=0),
        "parallel_hitting_time",
        '"parallel"',
    ),
    (lambda: coalescence_time(G, walkers=3, seed=0), "coalescence_time", '"coalescing"'),
    (lambda: branching_cover_time(G, seed=0), "branching_cover_time", '"branching"'),
]


class TestShimWarnings:
    @pytest.mark.parametrize(
        "fn,name,process", SHIMS, ids=[f"{s[1]}-{i}" for i, s in enumerate(SHIMS)]
    )
    def test_warns_with_exact_replacement(self, fn, name, process):
        with pytest.warns(DeprecationWarning) as record:
            fn()
        messages = [str(w.message) for w in record]
        ours = [m for m in messages if m.startswith(f"{name} is deprecated")]
        assert ours, f"no deprecation warning naming {name}: {messages}"
        msg = ours[0]
        assert "simulate(graph, " in msg, f"no facade call in: {msg}"
        assert process in msg, f"replacement does not name process {process}: {msg}"
        assert "repro.sim.facade" in msg

    def test_shim_still_returns_legacy_value(self):
        with pytest.warns(DeprecationWarning):
            legacy = push_spread_time(G, seed=11)
        assert legacy == simulate(G, "push", seed=11).cover_time


class TestFacadeIsSilent:
    def test_simulate_and_run_batch_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate(G, "push", seed=0)
            simulate(G, "parallel", seed=0, walkers=2)
            simulate(G, "branching", seed=0)
            simulate(G, "coalescing", seed=0, walkers=3)
            s = run_batch(G, "simple", trials=3, seed=0)
            assert np.isfinite(s.mean)
