"""Tests for parallel walks, gossip, coalescing, and branching walks."""

import numpy as np
import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid,
    hypercube,
    path_graph,
    star_graph,
)
from repro.walks import (
    BranchingWalk,
    CoalescingWalks,
    branching_cover_time,
    coalescence_time,
    parallel_cover_time,
    parallel_hitting_time,
    pull_spread_time,
    push_pull_spread_time,
    push_spread_time,
)


class TestParallelWalks:
    def test_more_walkers_no_slower(self):
        g = cycle_graph(40)
        t1 = np.mean([parallel_cover_time(g, walkers=1, seed=s) for s in range(15)])
        t8 = np.mean([parallel_cover_time(g, walkers=8, seed=s) for s in range(15)])
        assert t8 < t1

    def test_start_array(self):
        g = cycle_graph(20)
        t = parallel_cover_time(g, walkers=4, start=np.array([0, 5, 10, 15]), seed=1)
        assert t is not None and t < 500

    def test_hitting_zero_when_started_there(self, small_cycle):
        assert parallel_hitting_time(small_cycle, 3, walkers=2, start=3, seed=2) == 0

    def test_hitting_distance_bound(self):
        g = cycle_graph(30)
        t = parallel_hitting_time(g, 15, walkers=3, seed=3)
        assert t is not None and t >= 15

    def test_validation(self, small_cycle):
        with pytest.raises(ValueError):
            parallel_cover_time(small_cycle, walkers=0)
        with pytest.raises(ValueError):
            parallel_cover_time(small_cycle, walkers=3, start=np.array([0, 1]))
        with pytest.raises(ValueError):
            parallel_hitting_time(small_cycle, 99)


class TestGossip:
    def test_push_informs_all_fast_on_complete(self):
        t = push_spread_time(complete_graph(128), seed=4)
        # ~ log2(n) + ln(n) ~ 12; generous band
        assert t is not None and 7 <= t <= 40

    def test_push_on_star_is_coupon_collector(self):
        n = 100
        t = push_spread_time(star_graph(n), seed=5)
        # hub pushes 1 leaf per round but half the rounds the leaves
        # push back: ~ 2 n ln n rounds
        assert t is not None and t > n

    def test_pull_completes(self):
        t = pull_spread_time(hypercube(6), seed=6)
        assert t is not None

    def test_push_pull_no_slower_than_push(self):
        g = grid(8, 2)
        push = np.mean([push_spread_time(g, seed=s) for s in range(10)])
        both = np.mean([push_pull_spread_time(g, seed=s) for s in range(10)])
        assert both <= push * 1.1

    def test_budget_returns_none(self):
        assert push_spread_time(path_graph(100), seed=7, max_rounds=3) is None

    def test_single_vertex_graph(self):
        from repro.graphs import complete_graph

        assert push_spread_time(complete_graph(2), seed=8) == 1


class TestCoalescing:
    def test_walker_count_monotone_nonincreasing(self, small_complete, rng):
        proc = CoalescingWalks(small_complete, np.arange(10), seed=9)
        prev = proc.num_walkers
        for _ in range(200):
            proc.step()
            assert proc.num_walkers <= prev
            prev = proc.num_walkers
            if prev == 1:
                break

    def test_coalesces_on_complete(self):
        t = coalescence_time(complete_graph(12), seed=10)
        assert t is not None and t > 0

    def test_two_walkers_on_odd_cycle_meet(self):
        g = cycle_graph(9)
        proc = CoalescingWalks(g, np.array([0, 4]), seed=11)
        res = proc.run_until_coalesced(100_000)
        assert res.coalesced

    def test_single_walker_trivially_coalesced(self, small_cycle):
        proc = CoalescingWalks(small_cycle, np.array([3]), seed=12)
        res = proc.run_until_coalesced(10)
        assert res.coalesced and res.steps == 0

    def test_validation(self, small_cycle):
        with pytest.raises(ValueError):
            CoalescingWalks(small_cycle, np.array([99]))


class TestBranching:
    def test_population_grows_without_cap(self):
        g = complete_graph(30)
        walk = BranchingWalk(g, k=2, seed=13, population_cap=10**9)
        for _ in range(8):
            walk.step()
        assert walk.population == 2**8

    def test_covers_faster_than_cobra_on_cycle(self):
        # branching has strictly more particles than cobra (no merge)
        from repro.core import cobra_cover_time

        g = cycle_graph(60)
        b = np.mean(
            [branching_cover_time(g, seed=s).cover_time for s in range(8)]
        )
        c = np.mean(
            [cobra_cover_time(g, seed=s).cover_time for s in range(8)]
        )
        assert b <= c * 1.05

    def test_cap_flag(self):
        # run past coverage so the population must cross the cap
        g = complete_graph(10)
        walk = BranchingWalk(g, seed=14, population_cap=50)
        for _ in range(10):
            walk.step()
        assert walk.hit_cap
        assert walk.population <= 70  # cap plus per-vertex floor slack

    def test_validation(self, small_cycle):
        with pytest.raises(ValueError):
            BranchingWalk(small_cycle, k=0)
        with pytest.raises(ValueError):
            BranchingWalk(small_cycle, start=99)
