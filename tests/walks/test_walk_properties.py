"""Property-based tests for the baseline processes."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import cycle_graph, grid, random_regular
from repro.graphs.base import sample_uniform_neighbors
from repro.sim import resolve_rng
from repro.walks import BranchingWalk, CoalescingWalks, RandomWalk


@st.composite
def walk_graphs(draw):
    kind = draw(st.sampled_from(["cycle", "grid", "regular"]))
    if kind == "cycle":
        return cycle_graph(draw(st.integers(min_value=3, max_value=30)))
    if kind == "grid":
        return grid(draw(st.integers(min_value=2, max_value=5)), 2)
    return random_regular(
        draw(st.sampled_from([10, 16, 24])), 3, seed=draw(st.integers(0, 50))
    )


@given(walk_graphs(), st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_random_walk_trajectory_valid(g, seed):
    w = RandomWalk(g, seed=seed)
    visited = {0}
    prev = w.position
    for _ in range(40):
        cur = w.step()
        assert g.has_edge(prev, cur)
        visited.add(cur)
        prev = cur
    # first_visit bookkeeping matches the trajectory
    assert w.num_covered == len(visited)
    fv = w.first_visit
    assert set(np.flatnonzero(fv >= 0).tolist()) == visited


@given(walk_graphs(), st.integers(2, 12), st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_coalescing_walker_set_shrinks_to_valid_vertices(g, k, seed):
    rng = resolve_rng(seed)
    starts = rng.choice(g.n, size=min(k, g.n), replace=False)
    proc = CoalescingWalks(g, starts, seed=rng)
    prev_count = proc.num_walkers
    for _ in range(30):
        pos = proc.step()
        assert pos.size <= prev_count
        assert np.array_equal(pos, np.unique(pos))
        assert pos.min() >= 0 and pos.max() < g.n
        prev_count = pos.size
        if prev_count == 1:
            break


@given(walk_graphs(), st.integers(1, 3), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_branching_population_exact_growth(g, k, seed):
    walk = BranchingWalk(g, k=k, seed=seed, population_cap=10**9)
    for t in range(1, 7):
        walk.step()
        assert walk.population == k**t


@given(walk_graphs(), st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_gossip_informed_set_monotone(g, seed):
    # re-implement one push round at a time to observe monotonicity
    rng = resolve_rng(seed)
    informed = np.zeros(g.n, dtype=bool)
    informed[0] = True
    for _ in range(30):
        before = int(informed.sum())
        senders = np.flatnonzero(informed)
        targets = sample_uniform_neighbors(g, senders, rng)
        informed[targets] = True
        assert int(informed.sum()) >= before
        if informed.all():
            break
