"""Tests for simple random-walk baselines."""

import numpy as np
import pytest

from repro.graphs import complete_graph, cycle_graph, lollipop, path_graph
from repro.walks import (
    RandomWalk,
    rw_cover_time,
    rw_cover_trials,
    rw_exact_hitting_times,
    rw_hitting_time,
    rw_hitting_trials,
)


class TestRandomWalk:
    def test_moves_along_edges(self, small_grid):
        w = RandomWalk(small_grid, start=0, seed=1)
        prev = w.position
        for _ in range(100):
            cur = w.step()
            assert small_grid.has_edge(prev, cur)
            prev = cur

    def test_lazy_holds(self, small_cycle):
        w = RandomWalk(small_cycle, start=0, lazy=True, seed=2)
        holds = sum(w.step() == 0 for _ in range(1)) if False else 0
        held = 0
        pos = w.position
        for _ in range(400):
            nxt = w.step()
            held += nxt == pos
            pos = nxt
        assert 140 < held < 260  # ~half

    def test_cover_complete(self):
        t = rw_cover_time(complete_graph(20), seed=3)
        assert t is not None
        # coupon collector ~ n ln n ~ 60
        assert 19 <= t < 400

    def test_hitting_distance_bound(self, small_cycle):
        t = rw_hitting_time(small_cycle, 6, seed=4)
        assert t is not None and t >= 6

    def test_budget_returns_none(self):
        assert rw_cover_time(path_graph(100), seed=5, max_steps=5) is None

    def test_validation(self, small_cycle):
        with pytest.raises(ValueError):
            RandomWalk(small_cycle, start=100)
        w = RandomWalk(small_cycle, seed=0)
        with pytest.raises(ValueError):
            w.run_until_hit(50, 10)


class TestBatchedTrials:
    def test_cover_trials_match_scalar_distribution(self):
        g = cycle_graph(10)
        batched = rw_cover_trials(g, trials=200, seed=6)
        scalar = np.array(
            [rw_cover_time(g, seed=1000 + i) for i in range(200)], dtype=np.float64
        )
        # same process, independent draws: means within 15%
        assert abs(np.nanmean(batched) - np.nanmean(scalar)) < 0.15 * np.nanmean(scalar)

    def test_cycle_cover_is_quadratic(self):
        # E[cover] of the cycle = n(n-1)/2 exactly
        n = 16
        mean = np.nanmean(rw_cover_trials(cycle_graph(n), trials=400, seed=7))
        expect = n * (n - 1) / 2
        assert abs(mean - expect) < 0.12 * expect

    def test_hitting_trials_antipodal_cycle(self):
        # E[hit] from 0 to k on a cycle = k(n-k)
        n = 12
        mean = np.nanmean(rw_hitting_trials(cycle_graph(n), 6, trials=500, seed=8))
        assert abs(mean - 36.0) < 4.5

    def test_budget_gives_nans(self):
        out = rw_cover_trials(path_graph(50), trials=4, seed=9, max_steps=3)
        assert np.isnan(out).all()

    def test_trials_validation(self, small_cycle):
        with pytest.raises(ValueError):
            rw_cover_trials(small_cycle, trials=0)


class TestExactHitting:
    def test_cycle_closed_form(self):
        # H(k -> 0) = k(n-k) on the n-cycle
        n = 10
        h = rw_exact_hitting_times(cycle_graph(n), 0)
        for k in range(n):
            assert h[k] == pytest.approx(k * (n - k))

    def test_path_closed_form(self):
        # path 0..n-1: H(k -> 0) = k^2 + k(2(n-1-k)) ... use H(1->0)=2n-3
        n = 6
        h = rw_exact_hitting_times(path_graph(n), 0)
        assert h[1] == pytest.approx(2 * n - 3)

    def test_lollipop_hits_cubically(self):
        # hitting from the clique to the path end grows ~ n^3
        h20 = rw_exact_hitting_times(lollipop(20), 19).max()
        h40 = rw_exact_hitting_times(lollipop(40), 39).max()
        assert h40 / h20 > 5.0  # cubic predicts 8

    def test_simulation_agrees_with_exact(self):
        g = cycle_graph(8)
        h = rw_exact_hitting_times(g, 0)
        sim = np.nanmean(rw_hitting_trials(g, 0, start=4, trials=600, seed=10))
        assert abs(sim - h[4]) < 0.12 * h[4]
