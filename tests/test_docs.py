"""Generated-checked docs: ``docs/processes.md`` vs the live registry.

The page claims to document every registered ``ProcessSpec``; this
test regenerates the mechanical lines (metrics, multi-source,
parameters, engines, description) from ``repro.sim.processes`` and
fails if the page drifted — adding, removing, or changing a spec
without updating the docs is a test failure, not a silent lie.
"""

import re
from pathlib import Path

import pytest

from repro.lint.contracts import DOC_ANCHORS
from repro.sim import all_processes

DOCS = Path(__file__).resolve().parent.parent / "docs"


@pytest.fixture(scope="module")
def processes_md() -> str:
    return (DOCS / "processes.md").read_text(encoding="utf-8")


def _sections(text: str) -> dict[str, str]:
    """Map section name -> body for every ``## `name``` heading."""
    parts = re.split(r"^## `([^`]+)`$", text, flags=re.MULTILINE)
    return {
        name: body for name, body in zip(parts[1::2], parts[2::2])
    }


class TestProcessesPage:
    def test_exactly_one_section_per_registered_process(self, processes_md):
        names = {spec.name for spec in all_processes()}
        sections = set(_sections(processes_md))
        assert sections == names, (
            f"missing sections: {sorted(names - sections)}; "
            f"stale sections: {sorted(sections - names)}"
        )

    @pytest.mark.parametrize("spec", all_processes(), ids=lambda s: s.name)
    def test_section_matches_registry(self, processes_md, spec):
        body = _sections(processes_md)[spec.name]
        # description is the section's lead paragraph
        assert spec.description in body

        metrics = sorted(spec.capabilities - {"multi_source"})
        assert (
            f"- **metrics:** {', '.join(metrics)} (default `{spec.default_metric}`)"
            in body
        )

        multi = "yes" if spec.supports("multi_source") else "no"
        assert f"- **multi-source start:** {multi}" in body

        params = ", ".join(
            f"`{k}={v!r}`" for k, v in sorted(spec.default_params.items())
        ) or "—"
        assert f"- **parameters:** {params}" in body

        engines = ["serial"]
        if spec.batch_cover is not None:
            engines.append("batch_cover")
        if spec.batch_hit is not None:
            engines.append("batch_hit")
        assert f"- **engines:** {', '.join(engines)}" in body

    @pytest.mark.parametrize("spec", all_processes(), ids=lambda s: s.name)
    def test_section_has_paper_reference(self, processes_md, spec):
        body = _sections(processes_md)[spec.name]
        m = re.search(r"- \*\*reference:\*\* (.+)", body)
        assert m, f"no reference line for {spec.name}"
        assert len(m.group(1)) > 20, f"reference for {spec.name} looks empty"


class TestAnchoredPages:
    """Anchor coverage for every page ``DOC_ANCHORS`` names.

    The anchor lists live in :mod:`repro.lint.contracts` — the single
    source of truth shared with the linter's RPL202 contract audit, so
    CI's ``repro.lint --contracts`` and this test can never drift.
    """

    @pytest.mark.parametrize("page", sorted(DOC_ANCHORS))
    def test_page_exists_and_covers_the_contracts(self, page):
        text = (DOCS.parent / page).read_text(encoding="utf-8")
        for anchor in DOC_ANCHORS[page]:
            assert anchor in text, f"{page} lost its {anchor!r} section"

    def test_readme_links_the_docs_pages(self):
        readme = (DOCS.parent / "README.md").read_text(encoding="utf-8")
        assert "docs/architecture.md" in readme
        assert "docs/processes.md" in readme
        assert "docs/sweeps.md" in readme
        assert "docs/static-analysis.md" in readme


class TestStaticAnalysisPage:
    @pytest.fixture(scope="class")
    def static_md(self) -> str:
        return (DOCS / "static-analysis.md").read_text(encoding="utf-8")

    def test_rule_table_matches_the_live_registry(self, static_md):
        from repro.lint import all_rules

        for rule in all_rules():
            assert f"`{rule.id}`" in static_md, (
                f"static-analysis.md rule table is missing {rule.id}"
            )
            assert rule.severity in static_md
            assert rule.title in static_md, (
                f"static-analysis.md does not state {rule.id}'s title "
                f"({rule.title!r})"
            )

    def test_no_stale_rule_ids_documented(self, static_md):
        import re as _re

        from repro.lint import all_rules

        documented = set(_re.findall(r"`(RPL\d+)`", static_md))
        registered = {rule.id for rule in all_rules()}
        assert documented == registered, (
            f"stale ids documented: {sorted(documented - registered)}; "
            f"undocumented ids: {sorted(registered - documented)}"
        )


class TestSweepsPage:
    @pytest.fixture(scope="class")
    def sweeps_md(self) -> str:
        return (DOCS / "sweeps.md").read_text(encoding="utf-8")

    def test_lease_ops_match_the_code(self, sweeps_md):
        from repro.store.dispatch import _CLAIM_OPS

        for op in _CLAIM_OPS:
            assert f'"op": "{op}"' in sweeps_md, (
                f"sweeps.md does not document ledger op {op!r}"
            )

    def test_schema_table_matches_sweepspec_fields(self, sweeps_md):
        import dataclasses

        from repro.store import SweepSpec

        for field in dataclasses.fields(SweepSpec):
            assert f"`{field.name}`" in sweeps_md, (
                f"sweeps.md schema table is missing SweepSpec.{field.name}"
            )

    def test_every_registered_sweep_is_documented(self, sweeps_md):
        from repro.store import sweep_names

        for name in sweep_names():
            assert name in sweeps_md, f"registered sweep {name!r} not documented"

    def test_target_rules_match_the_code(self, sweeps_md):
        from repro.store.spec import _TARGET_RULES

        for rule in _TARGET_RULES:
            assert f'"{rule}"' in sweeps_md
