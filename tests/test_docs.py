"""Generated-checked docs: ``docs/processes.md`` vs the live registry.

The page claims to document every registered ``ProcessSpec``; this
test regenerates the mechanical lines (metrics, multi-source,
parameters, engines, description) from ``repro.sim.processes`` and
fails if the page drifted — adding, removing, or changing a spec
without updating the docs is a test failure, not a silent lie.
"""

import re
from pathlib import Path

import pytest

from repro.sim import all_processes

DOCS = Path(__file__).resolve().parent.parent / "docs"


@pytest.fixture(scope="module")
def processes_md() -> str:
    return (DOCS / "processes.md").read_text(encoding="utf-8")


def _sections(text: str) -> dict[str, str]:
    """Map section name -> body for every ``## `name``` heading."""
    parts = re.split(r"^## `([^`]+)`$", text, flags=re.MULTILINE)
    return {
        name: body for name, body in zip(parts[1::2], parts[2::2])
    }


class TestProcessesPage:
    def test_exactly_one_section_per_registered_process(self, processes_md):
        names = {spec.name for spec in all_processes()}
        sections = set(_sections(processes_md))
        assert sections == names, (
            f"missing sections: {sorted(names - sections)}; "
            f"stale sections: {sorted(sections - names)}"
        )

    @pytest.mark.parametrize("spec", all_processes(), ids=lambda s: s.name)
    def test_section_matches_registry(self, processes_md, spec):
        body = _sections(processes_md)[spec.name]
        # description is the section's lead paragraph
        assert spec.description in body

        metrics = sorted(spec.capabilities - {"multi_source"})
        assert (
            f"- **metrics:** {', '.join(metrics)} (default `{spec.default_metric}`)"
            in body
        )

        multi = "yes" if spec.supports("multi_source") else "no"
        assert f"- **multi-source start:** {multi}" in body

        params = ", ".join(
            f"`{k}={v!r}`" for k, v in sorted(spec.default_params.items())
        ) or "—"
        assert f"- **parameters:** {params}" in body

        engines = ["serial"]
        if spec.batch_cover is not None:
            engines.append("batch_cover")
        if spec.batch_hit is not None:
            engines.append("batch_hit")
        assert f"- **engines:** {', '.join(engines)}" in body

    @pytest.mark.parametrize("spec", all_processes(), ids=lambda s: s.name)
    def test_section_has_paper_reference(self, processes_md, spec):
        body = _sections(processes_md)[spec.name]
        m = re.search(r"- \*\*reference:\*\* (.+)", body)
        assert m, f"no reference line for {spec.name}"
        assert len(m.group(1)) > 20, f"reference for {spec.name} looks empty"


class TestArchitecturePage:
    def test_exists_and_covers_the_contracts(self):
        text = (DOCS / "architecture.md").read_text(encoding="utf-8")
        for anchor in (
            "Layer map",
            "flat-frontier",
            "Engine selection",
            "seed-spawning",
            "shards",
            "batch_cover",
            "batch_hit",
            "The sweep store",
            "content-addressed",
        ):
            assert anchor in text, f"architecture.md lost its {anchor!r} section"

    def test_readme_links_the_docs_pages(self):
        readme = (DOCS.parent / "README.md").read_text(encoding="utf-8")
        assert "docs/architecture.md" in readme
        assert "docs/processes.md" in readme
        assert "docs/sweeps.md" in readme


class TestSweepsPage:
    @pytest.fixture(scope="class")
    def sweeps_md(self) -> str:
        return (DOCS / "sweeps.md").read_text(encoding="utf-8")

    def test_covers_the_store_contracts(self, sweeps_md):
        for anchor in (
            "SweepSpec schema",
            "Content addressing",
            "Seed policy",
            "Store layout",
            "resume",
            "shards/",
            "Campaigns",
            "Query API",
            "sweep run",
            "sweep status",
            "sweep show",
        ):
            assert anchor in sweeps_md, f"sweeps.md lost its {anchor!r} section"

    def test_covers_the_dispatch_contracts(self, sweeps_md):
        for anchor in (
            "Multi-worker dispatch",
            "lease protocol",
            "claims.jsonl",
            "Worker lifecycle",
            "value-for-value identical",
            "fsck and compaction",
            "sweep work",
            "sweep fsck",
            "sweep compact",
            "Campaign(workers=N)",
            "expires_unix",
        ):
            assert anchor in sweeps_md, f"sweeps.md lost its {anchor!r} section"

    def test_lease_ops_match_the_code(self, sweeps_md):
        from repro.store.dispatch import _CLAIM_OPS

        for op in _CLAIM_OPS:
            assert f'"op": "{op}"' in sweeps_md, (
                f"sweeps.md does not document ledger op {op!r}"
            )

    def test_schema_table_matches_sweepspec_fields(self, sweeps_md):
        import dataclasses

        from repro.store import SweepSpec

        for field in dataclasses.fields(SweepSpec):
            assert f"`{field.name}`" in sweeps_md, (
                f"sweeps.md schema table is missing SweepSpec.{field.name}"
            )

    def test_every_registered_sweep_is_documented(self, sweeps_md):
        from repro.store import sweep_names

        for name in sweep_names():
            assert name in sweeps_md, f"registered sweep {name!r} not documented"

    def test_target_rules_match_the_code(self, sweeps_md):
        from repro.store.spec import _TARGET_RULES

        for rule in _TARGET_RULES:
            assert f'"{rule}"' in sweeps_md
