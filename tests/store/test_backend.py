"""Backend conformance: every ``StorageBackend`` honours the same seam.

Three pillars:

* a parametric contract suite — ``LocalBackend`` (flock over a
  directory) and ``InMemoryCASBackend`` (conditional-put fake) must be
  observationally identical through the four protocol operations,
  including the zero-byte-blob-is-absent rule compaction relies on;
* the lost-CAS-race path: a claim loser must re-read (seeing the
  winner's line) and retry without ever double-appending;
* the dispatch acceptance bar, lifted to the CAS seam: N workers
  draining one shared ``InMemoryCASBackend`` store value-for-value
  identical to a single local ``Campaign.run()``, and ``fsck`` clean
  on both backends afterward.
"""

import json
import threading

import pytest

from repro.store import (
    Campaign,
    ClaimLedger,
    InMemoryCASBackend,
    LocalBackend,
    ResultStore,
    SeedPolicy,
    StorageBackend,
    SweepSpec,
    drain,
    fsck,
)
from repro.store.dispatch import CLAIMS_FILE

BACKENDS = ["local", "memory"]


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    if request.param == "local":
        return LocalBackend(tmp_path / "store")
    return InMemoryCASBackend()


class TestProtocolConformance:
    """The four operations, identical over both backends."""

    def test_satisfies_the_protocol(self, backend):
        assert isinstance(backend, StorageBackend)

    def test_absent_blob_reads_none(self, backend):
        assert backend.read_blob("claims.jsonl") is None

    def test_append_then_read_round_trips(self, backend):
        backend.append_line("claims.jsonl", '{"op": "claim"}')
        backend.append_line("claims.jsonl", '{"op": "done"}')
        data, etag = backend.read_blob("claims.jsonl")
        assert data == b'{"op": "claim"}\n{"op": "done"}\n'
        assert etag

    def test_etag_moves_when_content_changes(self, backend):
        backend.append_line("a.jsonl", "one")
        _, before = backend.read_blob("a.jsonl")
        backend.append_line("a.jsonl", "two")
        data, after = backend.read_blob("a.jsonl")
        assert before != after
        assert data == b"one\ntwo\n"

    def test_list_prefix_sorted_and_filtered(self, backend):
        backend.append_line("shards/ff.jsonl", "x")
        backend.append_line("shards/00.jsonl", "y")
        backend.append_line("claims.jsonl", "z")
        assert backend.list_prefix("shards/") == [
            "shards/00.jsonl",
            "shards/ff.jsonl",
        ]
        assert "claims.jsonl" in backend.list_prefix("")

    def test_cas_create_only_if_absent(self, backend):
        etag = backend.compare_and_swap("meta.json", b'{"v": 1}', None)
        assert etag is not None
        # a second create-only put loses: the blob already exists
        assert backend.compare_and_swap("meta.json", b'{"v": 2}', None) is None
        data, _ = backend.read_blob("meta.json")
        assert data == b'{"v": 1}'

    def test_cas_with_matching_etag_replaces(self, backend):
        first = backend.compare_and_swap("meta.json", b"old", None)
        second = backend.compare_and_swap("meta.json", b"new", first)
        assert second is not None and second != first
        data, etag = backend.read_blob("meta.json")
        assert data == b"new" and etag == second

    def test_cas_with_stale_etag_fails(self, backend):
        stale = backend.compare_and_swap("meta.json", b"old", None)
        backend.compare_and_swap("meta.json", b"mid", stale)
        assert backend.compare_and_swap("meta.json", b"new", stale) is None
        data, _ = backend.read_blob("meta.json")
        assert data == b"mid"

    def test_zero_byte_blob_is_absent(self, backend):
        # compaction may truncate a shard to nothing; both backends
        # must then report it absent, hide it from listings, and let a
        # create-only CAS through (the post-compaction append path)
        etag = backend.compare_and_swap("shards/00.jsonl", b"row\n", None)
        assert backend.compare_and_swap("shards/00.jsonl", b"", etag) is not None
        assert backend.read_blob("shards/00.jsonl") is None
        assert backend.list_prefix("shards/") == []
        assert backend.compare_and_swap("shards/00.jsonl", b"back\n", None)
        data, _ = backend.read_blob("shards/00.jsonl")
        assert data == b"back\n"

    def test_append_after_truncation(self, backend):
        etag = backend.compare_and_swap("claims.jsonl", b"old\n", None)
        backend.compare_and_swap("claims.jsonl", b"", etag)
        backend.append_line("claims.jsonl", "fresh")
        data, _ = backend.read_blob("claims.jsonl")
        assert data == b"fresh\n"


class RacingBackend:
    """Proxy that injects a rival append just before the first CAS on
    the claim ledger — a deterministic re-enactment of two workers
    racing ``try_claim``."""

    def __init__(self, inner, rival_line: str) -> None:
        self.inner = inner
        self.rival_line = rival_line
        self.cas_calls = 0

    def read_blob(self, key):
        return self.inner.read_blob(key)

    def append_line(self, key, line):
        self.inner.append_line(key, line)

    def list_prefix(self, prefix):
        return self.inner.list_prefix(prefix)

    def compare_and_swap(self, key, data, etag):
        self.cas_calls += 1
        if key == CLAIMS_FILE and self.cas_calls == 1:
            # the rival's claim lands first: our ETag is now stale
            self.inner.append_line(key, self.rival_line)
        return self.inner.compare_and_swap(key, data, etag)


class TestLostCASRace:
    def test_loser_rereads_and_retries_without_double_append(self, backend):
        rival = json.dumps(
            {
                "op": "claim",
                "hash": "h1",
                "owner": "rival",
                "expires_unix": 9e12,
                "ts": 0.0,
            },
            sort_keys=True,
        )
        racing = RacingBackend(backend, rival)
        ledger = ClaimLedger(racing)
        won = ledger.try_claim(["h1", "h2"], owner="loser", limit=None)
        # first swap failed against the rival's append; the retry saw
        # the rival holding h1 and claimed only h2
        assert racing.cas_calls == 2
        assert won == ["h2"]
        leases = ledger.active(now=1.0)
        assert leases["h1"].owner == "rival"
        assert leases["h2"].owner == "loser"
        # exactly one claim line per hash: nothing double-appended
        claims = [r["hash"] for r in ledger.records() if r["op"] == "claim"]
        assert sorted(claims) == ["h1", "h2"]


def _spec(**over):
    base = dict(
        name="backend-drain",
        process="cobra",
        graph="grid",
        graph_grid={"n": [6, 8], "d": [2]},
        params_grid={"k": [1, 2]},
        trials=3,
        seed=SeedPolicy(root=5),
    )
    base.update(over)
    return SweepSpec(**base)


class TestDispatchOverCAS:
    """The acceptance bar every storage layer met before this one:
    concurrent drain == single-worker local run, value for value."""

    def test_n_worker_cas_drain_matches_local_campaign(self):
        spec = _spec()
        reference = ResultStore()
        Campaign(spec, reference).run()

        shared = ResultStore(backend=InMemoryCASBackend())
        reports = {}

        def worker(name: str) -> None:
            # each worker gets its own store handle onto one backend,
            # like separate processes sharing one object store
            handle = ResultStore(backend=shared.backend)
            reports[name] = drain(spec, handle, owner=name)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        ran = [h for r in reports.values() for h in r.ran]
        assert len(ran) == 4 and len(set(ran)) == 4, (
            "claim exclusivity broke: a cell ran twice or not at all"
        )
        shared.refresh()
        for cell in spec.expand():
            assert (
                shared.get(cell)["result"] == reference.get(cell)["result"]
            ), "a CAS-drained cell diverged from Campaign.run()"

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_fsck_clean_on_both_backends(self, kind, tmp_path):
        spec = _spec()
        backend = (
            LocalBackend(tmp_path / "s") if kind == "local"
            else InMemoryCASBackend()
        )
        store = ResultStore(backend=backend)
        report = drain(spec, store, owner="w1")
        assert report.complete
        check = fsck(store)
        assert check.clean, check.summary()
        assert check.cells == 4 and not check.live_leases
