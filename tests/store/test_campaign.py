"""Campaign cache correctness: zero recompute, resume parity, provenance.

These are the acceptance tests of the sweep store: a completed
``SweepSpec`` re-runs with **zero** ``run_batch`` calls (counted by
monkeypatching the campaign's ``run_batch`` binding), a corrupted
shard forces exactly the affected cell to re-run, and an interrupted
campaign resumed in a fresh process state is seed-for-seed identical
to an uninterrupted one.
"""

import pytest

import repro.store.campaign as campaign_mod
from repro.store import (
    Campaign,
    ResultStore,
    SeedPolicy,
    SweepSpec,
)


def make_spec(**over):
    base = dict(
        name="camp",
        process="cobra",
        graph="grid",
        graph_grid={"n": [6, 8], "d": [2]},
        params_grid={"k": [1, 2]},
        trials=3,
        seed=SeedPolicy(root=5),
    )
    base.update(over)
    return SweepSpec(**base)


@pytest.fixture()
def run_counter(monkeypatch):
    """Count (and pass through) the campaign's run_batch calls."""
    calls = []
    real = campaign_mod.run_batch

    def counting(*args, **kwargs):
        calls.append(kwargs)
        return real(*args, **kwargs)

    monkeypatch.setattr(campaign_mod, "run_batch", counting)
    return calls


class TestZeroRecompute:
    def test_second_run_is_pure_cache(self, run_counter):
        store = ResultStore()
        spec = make_spec()
        first = Campaign(spec, store).run()
        assert len(run_counter) == 4 and len(first.ran) == 4
        second = Campaign(spec, store).run()
        assert len(run_counter) == 4, "re-running a completed sweep recomputed"
        assert second.ran == [] and len(second.cached) == 4
        assert second.complete

    def test_cross_sweep_sharing(self, run_counter):
        # same cells under a different sweep name: still zero recompute
        store = ResultStore()
        Campaign(make_spec(name="one"), store).run()
        second = Campaign(make_spec(name="two"), store)
        report = second.run()
        assert len(run_counter) == 4
        assert report.ran == []
        # frame() addresses cells by content, so the deduped results
        # still surface under THIS campaign's name
        frame = second.frame()
        assert len(frame) == 4
        assert set(frame.column("sweep")) == {"two"}

    def test_changed_trials_recomputes(self, run_counter):
        store = ResultStore()
        Campaign(make_spec(), store).run()
        Campaign(make_spec(trials=4), store).run()
        assert len(run_counter) == 8

    def test_changed_seed_policy_recomputes(self, run_counter):
        store = ResultStore()
        Campaign(make_spec(), store).run()
        Campaign(make_spec(seed=SeedPolicy(root=5, kind="fixed")), store).run()
        assert len(run_counter) == 8

    def test_corrupted_cell_reruns_only_itself(self, run_counter, tmp_path):
        spec = make_spec()
        store = ResultStore(tmp_path / "s")
        Campaign(spec, store).run()
        victim = spec.expand()[1]
        shard = tmp_path / "s" / "shards" / f"{victim.hash[:2]}.jsonl"
        text = [
            line
            for line in shard.read_text(encoding="utf-8").splitlines()
            if victim.hash not in line
        ]
        shard.write_text("\n".join(text + ["{torn"]) + "\n", encoding="utf-8")
        with pytest.warns(UserWarning, match="corrupt"):
            report = Campaign(spec, ResultStore(tmp_path / "s")).run()
        assert report.ran == [victim.hash]
        assert len(run_counter) == 5


class TestResumeParity:
    def test_interrupted_resume_is_seed_for_seed_identical(self, tmp_path):
        spec = make_spec()
        cells = spec.expand()

        # uninterrupted reference
        reference = ResultStore()
        Campaign(spec, reference).run()

        # killed after 1 cell, resumed after 2 more, finished after the rest
        store_path = tmp_path / "s"
        for budget in (1, 2, None):
            Campaign(spec, ResultStore(store_path)).run(max_cells=budget)
        resumed = ResultStore(store_path)
        for cell in cells:
            a = reference.get(cell)["result"]["values"]
            b = resumed.get(cell)["result"]["values"]
            assert a == b, "resume changed a cell's trial values"

    def test_expansion_order_does_not_shift_streams(self):
        # a cell's values are identical whether it is swept alone or as
        # part of a bigger grid (content-derived seeds)
        lone = make_spec(graph_grid={"n": [8], "d": [2]}, params_grid={"k": [2]})
        grid = make_spec()
        store = ResultStore()
        Campaign(grid, store).run()
        lone_store = ResultStore()
        Campaign(lone, lone_store).run()
        cell = lone.expand()[0]
        assert (
            store.get(cell)["result"]["values"]
            == lone_store.get(cell)["result"]["values"]
        )

    def test_max_cells_zero_runs_nothing(self):
        store = ResultStore()
        report = Campaign(make_spec(), store).run(max_cells=0)
        assert report.ran == [] and len(report.pending) == 4


class TestStatusAndProvenance:
    def test_status_counts(self):
        spec = make_spec()
        store = ResultStore()
        campaign = Campaign(spec, store)
        assert campaign.status().pending == 4
        campaign.run(max_cells=3)
        status = campaign.status()
        assert (status.total, status.done, status.pending) == (4, 3, 1)
        assert not status.complete
        campaign.run()
        assert campaign.status().complete

    def test_provenance_fields(self):
        spec = make_spec()
        store = ResultStore()
        Campaign(spec, store).run()
        record = store.get(spec.expand()[0])
        prov = record["provenance"]
        assert prov["sweep"] == "camp"
        assert prov["engine"] == "vectorized"
        assert prov["wall_time_s"] >= 0
        assert prov["graph_name"].startswith("grid")
        assert prov["graph_n"] == 49
        assert prov["graph_kind"] == "csr"
        assert prov["seed_entropy"][0] == 5
        # observability additions: backend/worker/per-phase timings ride
        # along even for untraced runs, and surface as Frame columns
        assert prov["backend"] == "numpy"
        assert prov["worker"]
        assert set(prov["phase_s"]) == {"build_graph", "lower", "engine"}
        row = store.frame().rows[0]
        assert row["backend"] == "numpy" and row["t_engine_s"] >= 0

    def test_oracle_cells_record_their_topology_kind(self):
        spec = SweepSpec(
            name="implicit",
            process="cobra",
            graph="torus_oracle",
            graph_grid={"n": [4], "d": [2]},
            trials=2,
            max_steps=2000,
        )
        store = ResultStore()
        report = Campaign(spec, store).run()
        assert report.complete
        record = store.get(spec.expand()[0])
        prov = record["provenance"]
        assert prov["graph_kind"] == "torus"
        assert prov["graph_n"] == 25
        # the kind is queryable through the Frame row schema
        assert store.frame().column("graph_kind") == ["torus"]

    def test_serial_engine_label_for_min_metric(self):
        spec = SweepSpec(
            name="minima",
            process="branching_minima",
            graph="path_graph",
            graph_grid={"n": [65]},
            params_grid={"generations": [6]},
            trials=2,
        )
        store = ResultStore()
        Campaign(spec, store).run()
        record = store.get(spec.expand()[0])
        assert record["provenance"]["engine"] == "serial"
        assert record["key"]["metric"] == "min"
        # generation-6 minimum of a supercritical BRW is within [-6, 0]
        values = record["result"]["values"]
        assert all(-6 <= v <= 0 for v in values)

    def test_hit_sweep_with_target_rule(self):
        spec = SweepSpec(
            name="hits",
            process="cobra",
            graph="cycle_graph",
            graph_grid={"n": [16, 24]},
            metric="hit",
            target="center",
            trials=3,
        )
        store = ResultStore()
        report = Campaign(spec, store).run()
        assert report.complete and len(report.ran) == 2
        frame = store.frame()
        assert set(frame.column("target")) == {"center"}
        assert all(v is not None for v in frame.column("mean"))

    def test_sharded_campaign_matches_unsharded_values(self):
        spec = make_spec(graph_grid={"n": [6], "d": [2]}, params_grid={"k": [2]})
        plain, sharded = ResultStore(), ResultStore()
        Campaign(spec, plain).run()
        Campaign(spec, sharded, shards=2, max_workers=1).run()
        cell = spec.expand()[0]
        # sharded execution uses per-trial streams; unsharded auto uses
        # the vectorized engine — same cell key either way, and the
        # sharded label lands in provenance
        assert sharded.get(cell)["provenance"]["engine"] == "sharded(shards=2)"
        assert len(sharded.get(cell)["result"]["values"]) == 3
