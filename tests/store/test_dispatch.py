"""Lease/claim dispatch over a shared store: parity, fsck, compaction.

The acceptance test of the dispatcher is :class:`TestWorkerPool`: a
2-worker concurrent drain of a sweep stores values **identical** to an
uninterrupted single-worker ``Campaign.run()`` for every cell, and
``fsck`` reports a clean store afterward (the CI dispatch smoke proves
the same thing with two separate ``sweep work`` OS processes).
"""

import json
import time

import pytest

from repro.store import (
    Campaign,
    ClaimLedger,
    ResultStore,
    SeedPolicy,
    SweepSpec,
    compact,
    drain,
    fsck,
)


def make_spec(**over):
    base = dict(
        name="dispatch",
        process="cobra",
        graph="grid",
        graph_grid={"n": [6, 8], "d": [2]},
        params_grid={"k": [1, 2]},
        trials=3,
        seed=SeedPolicy(root=5),
    )
    base.update(over)
    return SweepSpec(**base)


@pytest.fixture()
def reference():
    """Uninterrupted single-worker values for the 2x2 spec."""
    store = ResultStore()
    Campaign(make_spec(), store).run()
    return store


class TestClaimLedger:
    def test_claim_is_exclusive(self, tmp_path):
        a = ClaimLedger(tmp_path)
        b = ClaimLedger(tmp_path)
        assert a.try_claim(["h1", "h2"], owner="A") == ["h1"]
        # a second worker (separate handle) cannot win a live lease
        assert b.try_claim(["h1"], owner="B") == []
        assert b.try_claim(["h1", "h2"], owner="B") == ["h2"]
        leases = a.active()
        assert leases["h1"].owner == "A" and leases["h2"].owner == "B"

    def test_release_clears_the_lease(self, tmp_path):
        ledger = ClaimLedger(tmp_path)
        ledger.try_claim(["h1"], owner="A")
        ledger.release("h1", owner="A")
        assert ledger.active() == {}
        # and the cell is claimable again
        assert ledger.try_claim(["h1"], owner="B") == ["h1"]

    def test_expired_lease_is_reclaimable(self, tmp_path):
        ledger = ClaimLedger(tmp_path)
        t0 = 1000.0
        ledger.try_claim(["h1"], owner="A", ttl=10.0, now=t0)
        # still live at t0+5: the claim is refused
        assert ledger.try_claim(["h1"], owner="B", now=t0 + 5) == []
        # expired at t0+11: worker B takes over
        assert ledger.try_claim(["h1"], owner="B", now=t0 + 11) == ["h1"]
        assert ledger.leases()["h1"].owner == "B"

    def test_limit_one_claims_in_preference_order(self, tmp_path):
        ledger = ClaimLedger(tmp_path)
        assert ledger.try_claim(["h3", "h1"], owner="A", limit=1) == ["h3"]
        assert ledger.try_claim(["h3", "h1"], owner="A", limit=None) == ["h1"]

    def test_torn_ledger_lines_are_skipped(self, tmp_path):
        ledger = ClaimLedger(tmp_path)
        ledger.try_claim(["h1"], owner="A")
        with ledger.path.open("a", encoding="utf-8") as fh:
            fh.write('{"op": "claim", "hash": "h2", torn')
        assert set(ledger.leases()) == {"h1"}

    def test_release_validates_op(self, tmp_path):
        with pytest.raises(ValueError, match="done/abandon"):
            ClaimLedger(tmp_path).release("h1", owner="A", op="lost")


class TestDrain:
    def test_single_drain_matches_campaign_values(self, tmp_path, reference):
        spec = make_spec()
        store = ResultStore(tmp_path / "s")
        report = drain(spec, store, owner="w1")
        assert len(report.ran) == 4 and report.complete
        for cell in spec.expand():
            assert (
                store.get(cell)["result"] == reference.get(cell)["result"]
            ), "a dispatched cell diverged from Campaign.run()"
            assert store.get(cell)["provenance"]["worker"] == "w1"

    def test_drain_on_complete_store_is_pure_cache(self, tmp_path):
        spec = make_spec()
        drain(spec, ResultStore(tmp_path / "s"), owner="w1")
        report = drain(spec, ResultStore(tmp_path / "s"), owner="w2")
        assert report.ran == [] and len(report.cached) == 4

    def test_max_cells_defers_the_rest(self, tmp_path):
        spec = make_spec()
        report = drain(spec, ResultStore(tmp_path / "s"), owner="w1", max_cells=1)
        assert len(report.ran) == 1 and len(report.deferred) == 3
        assert not report.complete
        # the claim ledger holds no leases for the deferred cells
        assert ClaimLedger(tmp_path / "s").active() == {}

    def test_cells_leased_elsewhere_are_deferred_not_stolen(self, tmp_path):
        spec = make_spec()
        cells = spec.expand()
        store = ResultStore(tmp_path / "s")
        ledger = ClaimLedger(tmp_path / "s")
        ledger.try_claim([cells[0].hash], owner="other", ttl=3600)
        report = drain(spec, store, owner="w1")
        assert len(report.ran) == 3
        assert report.deferred == [cells[0].hash]
        assert ledger.active()[cells[0].hash].owner == "other"

    def test_expired_foreign_lease_is_reclaimed(self, tmp_path, reference):
        # a worker "crashed" mid-cell: its lease expired without release
        spec = make_spec()
        cells = spec.expand()
        store = ResultStore(tmp_path / "s")
        ledger = ClaimLedger(tmp_path / "s")
        ledger.try_claim([cells[0].hash], owner="dead", ttl=0.0)
        report = drain(spec, store, owner="rescue")
        assert len(report.ran) == 4 and report.complete
        assert store.get(cells[0])["result"] == reference.get(cells[0])["result"]
        assert ledger.leases() == {}  # the reclaim superseded the dead lease

    def test_failed_cell_abandons_its_lease(self, tmp_path, monkeypatch):
        import repro.store.dispatch as dispatch_mod

        spec = make_spec()
        store = ResultStore(tmp_path / "s")

        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(dispatch_mod, "run_cell", boom)
        with pytest.raises(RuntimeError, match="exploded"):
            drain(spec, store, owner="w1")
        ledger = ClaimLedger(tmp_path / "s")
        assert ledger.leases() == {}  # abandoned, not leaked
        assert any(r["op"] == "abandon" for r in ledger.records())

    def test_memory_store_is_rejected(self):
        with pytest.raises(ValueError, match="disk-backed"):
            drain(make_spec(), ResultStore())

    def test_cell_committed_between_scan_and_claim_is_not_recomputed(
        self, tmp_path, monkeypatch
    ):
        # the claim/commit race: another worker commits a cell after our
        # pending scan; winning the claim must not recompute it
        import repro.store.dispatch as dispatch_mod
        from repro.store.campaign import run_cell

        spec = make_spec()
        cells = spec.expand()
        store = ResultStore(tmp_path / "s")
        other = ResultStore(tmp_path / "s")
        real = dispatch_mod.ClaimLedger.try_claim
        fired = []

        def racy(self, hashes, **kwargs):
            won = real(self, hashes, **kwargs)
            if won and not fired:
                fired.append(won[0])
                key = next(c for c in cells if c.hash == won[0])
                run_cell(key, other, sweep="other-worker")
            return won

        monkeypatch.setattr(dispatch_mod.ClaimLedger, "try_claim", racy)
        report = drain(spec, store, owner="w1")
        assert len(report.ran) == 3 and report.cached == fired
        assert fsck(store).duplicates == {}

    def test_multi_spec_drain_dedups_shared_cells(self, tmp_path):
        one = make_spec(name="one")
        two = make_spec(name="two")  # same cells, different sweep label
        report = drain([one, two], ResultStore(tmp_path / "s"), owner="w1")
        assert len(report.ran) == 4  # not 8


class TestWorkerPool:
    """The acceptance criterion: concurrent drain == single-worker run."""

    def test_two_worker_drain_is_value_identical_and_fsck_clean(
        self, tmp_path, reference
    ):
        spec = make_spec()
        store = ResultStore(tmp_path / "s")
        report = Campaign(spec, store, workers=2).run()
        assert report.complete and len(report.ran) == 4
        for cell in spec.expand():
            assert (
                store.get(cell)["result"] == reference.get(cell)["result"]
            ), "2-worker drain diverged from single-worker Campaign.run()"
        check = fsck(store)
        assert check.clean, check.summary()
        assert check.cells == 4 and not check.live_leases

    def test_pool_resumes_a_partial_store(self, tmp_path, reference):
        spec = make_spec()
        drain(spec, ResultStore(tmp_path / "s"), owner="w0", max_cells=2)
        store = ResultStore(tmp_path / "s")
        report = Campaign(spec, store, workers=2).run()
        assert len(report.cached) == 2 and len(report.ran) == 2
        for cell in spec.expand():
            assert store.get(cell)["result"] == reference.get(cell)["result"]

    def test_workers_require_disk_store(self):
        with pytest.raises(ValueError, match="disk-backed"):
            Campaign(make_spec(), ResultStore(), workers=2)

    def test_workers_reject_per_process_hooks(self, tmp_path):
        campaign = Campaign(
            make_spec(), ResultStore(tmp_path / "s"), workers=2
        )
        with pytest.raises(ValueError, match="max_cells"):
            campaign.run(max_cells=1)


class TestFsck:
    def test_clean_store(self, tmp_path):
        spec = make_spec()
        store = ResultStore(tmp_path / "s")
        drain(spec, store, owner="w1")
        report = fsck(store)
        assert report.clean
        assert report.records == 4 and report.cells == 4
        assert report.duplicates == {}

    def test_torn_line_is_flagged(self, tmp_path):
        spec = make_spec()
        store = ResultStore(tmp_path / "s")
        drain(spec, store, owner="w1")
        shard = store.shard_paths()[0]
        with shard.open("a", encoding="utf-8") as fh:
            fh.write('{"hash": "abc", "key": {torn')
        report = fsck(store)
        assert not report.clean
        assert report.corrupt_lines == {shard.stem: 1}

    def test_tampered_key_fails_the_rehash(self, tmp_path):
        spec = make_spec()
        store = ResultStore(tmp_path / "s")
        drain(spec, store, owner="w1")
        victim = spec.expand()[0]
        shard = store.root / "shards" / f"{victim.hash[:2]}.jsonl"
        lines = shard.read_text(encoding="utf-8").splitlines()
        doctored = []
        for line in lines:
            record = json.loads(line)
            if record["hash"] == victim.hash:
                record["key"]["trials"] = 999  # silent result inflation
            doctored.append(json.dumps(record, sort_keys=True))
        shard.write_text("\n".join(doctored) + "\n", encoding="utf-8")
        report = fsck(store)
        assert report.hash_mismatches == [victim.hash]
        assert not report.clean

    def test_misplaced_record_is_flagged(self, tmp_path):
        spec = make_spec()
        store = ResultStore(tmp_path / "s")
        drain(spec, store, owner="w1")
        cell = spec.expand()[0]
        record_line = json.dumps(store.get(cell), sort_keys=True)
        wrong_prefix = "00" if cell.hash[:2] != "00" else "ff"
        orphan_shard = store.root / "shards" / f"{wrong_prefix}.jsonl"
        with orphan_shard.open("a", encoding="utf-8") as fh:
            fh.write(record_line + "\n")
        report = fsck(store)
        assert (wrong_prefix, cell.hash) in report.misplaced
        assert not report.clean

    def test_duplicates_are_hygiene_not_errors(self, tmp_path):
        spec = make_spec()
        store = ResultStore(tmp_path / "s")
        drain(spec, store, owner="w1")
        cell = spec.expand()[0]
        # a second (identical) commit — the benign lease-expiry overlap
        shard = store.root / "shards" / f"{cell.hash[:2]}.jsonl"
        first = [
            line
            for line in shard.read_text(encoding="utf-8").splitlines()
            if json.loads(line)["hash"] == cell.hash
        ][0]
        with shard.open("a", encoding="utf-8") as fh:
            fh.write(first + "\n")
        report = fsck(store)
        assert report.duplicates == {cell.hash: 2}
        assert report.clean  # duplicates are legal (last-write-wins)

    def test_stale_lease_is_flagged_live_is_not(self, tmp_path):
        spec = make_spec()
        store = ResultStore(tmp_path / "s")
        drain(spec, store, owner="w1")
        ledger = ClaimLedger(store.root)
        t0 = time.time()
        ledger.try_claim(["dead-hash"], owner="crashed", ttl=-1.0, now=t0)
        report = fsck(store, now=t0)
        assert [ls.owner for ls in report.stale_leases] == ["crashed"]
        assert not report.clean
        # a live lease (worker still running) keeps the store clean
        compact(store, force=True)
        ledger.try_claim(["busy-hash"], owner="active", ttl=3600.0)
        report = fsck(store)
        assert [ls.owner for ls in report.live_leases] == ["active"]
        assert report.clean

    def test_memory_store_is_rejected(self):
        with pytest.raises(ValueError, match="disk-backed"):
            fsck(ResultStore())


class TestCompact:
    def test_drops_duplicates_keeps_last_write_and_live_cells(self, tmp_path):
        spec = make_spec()
        cells = spec.expand()
        store = ResultStore(tmp_path / "s")
        drain(spec, store, owner="w1")
        # hand-append a superseding record for cell 0 with a sentinel mean
        doctored = dict(store.get(cells[0]))
        doctored["result"] = dict(doctored["result"], mean=1234.5)
        shard = store.root / "shards" / f"{cells[0].hash[:2]}.jsonl"
        with shard.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(doctored, sort_keys=True) + "\n")
        # and a torn line
        with shard.open("a", encoding="utf-8") as fh:
            fh.write("{torn")

        report = compact(store)
        assert report.duplicates_dropped == 1
        assert report.corrupt_dropped == 1
        assert report.records_out == 4

        fresh = ResultStore(tmp_path / "s")
        assert fresh.get(cells[0])["result"]["mean"] == 1234.5  # last write won
        for cell in cells[1:]:
            assert fresh.get(cell) is not None  # live cells survived
        assert fsck(fresh).clean
        assert fsck(fresh).duplicates == {}

    def test_relocates_misplaced_records(self, tmp_path):
        spec = make_spec()
        store = ResultStore(tmp_path / "s")
        drain(spec, store, owner="w1")
        cell = spec.expand()[0]
        record_line = json.dumps(store.get(cell), sort_keys=True)
        wrong_prefix = "00" if cell.hash[:2] != "00" else "ff"
        (store.root / "shards" / f"{wrong_prefix}.jsonl").write_text(
            record_line + "\n", encoding="utf-8"
        )
        report = compact(store)
        # the emptied shard stays as a zero-byte file (unlinking would
        # race a blocked appender onto an orphaned inode)
        orphan = store.root / "shards" / f"{wrong_prefix}.jsonl"
        assert orphan.read_text(encoding="utf-8") == ""
        fresh = ResultStore(tmp_path / "s")
        assert fsck(fresh).clean
        assert fresh.get(cell) is not None

    def test_prunes_the_ledger(self, tmp_path):
        spec = make_spec()
        store = ResultStore(tmp_path / "s")
        drain(spec, store, owner="w1")  # 4 claims + 4 dones
        report = compact(store)
        assert report.claims_dropped == 8
        assert ClaimLedger(store.root).records() == []

    def test_refuses_live_leases_without_force(self, tmp_path):
        spec = make_spec()
        store = ResultStore(tmp_path / "s")
        drain(spec, store, owner="w1")
        ClaimLedger(store.root).try_claim(["h"], owner="busy", ttl=3600.0)
        with pytest.raises(RuntimeError, match="live lease"):
            compact(store)
        report = compact(store, force=True)
        assert report.records_out == 4
        # the live lease survives the forced compaction
        assert set(ClaimLedger(store.root).active()) == {"h"}

    def test_memory_store_is_rejected(self):
        with pytest.raises(ValueError, match="disk-backed"):
            compact(ResultStore())

    def test_concurrent_lease_less_writer_loses_nothing(self, tmp_path):
        # a plain Campaign.run() holds no lease; its locked appends must
        # serialize with the in-place shard rewrites, never vanish
        import threading

        spec = make_spec()
        store_path = tmp_path / "s"
        drain(make_spec(graph_grid={"n": [6], "d": [2]}), ResultStore(store_path))

        def writer():
            Campaign(spec, ResultStore(store_path)).run()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            while thread.is_alive():
                compact(ResultStore(store_path), force=True)
        finally:
            thread.join()
        compact(ResultStore(store_path), force=True)
        fresh = ResultStore(store_path)
        for cell in spec.expand():
            assert fresh.get(cell) is not None, "compaction lost a committed cell"
        assert fsck(fresh).clean
