"""SweepSpec expansion and RunKey content-hash semantics."""

import numpy as np
import pytest

from repro.store import RunKey, SeedPolicy, SweepSpec


def make_spec(**over):
    base = dict(
        name="demo",
        process="cobra",
        graph="grid",
        graph_grid={"n": [8, 16], "d": [2]},
        params_grid={"k": [1, 2]},
        trials=4,
        seed=SeedPolicy(root=7),
    )
    base.update(over)
    return SweepSpec(**base)


class TestExpansion:
    def test_cross_product_size_and_determinism(self):
        spec = make_spec()
        cells = spec.expand()
        assert len(cells) == 2 * 1 * 2
        again = make_spec().expand()
        assert [c.hash for c in cells] == [c.hash for c in again]

    def test_axis_order_is_sorted_names_declared_values(self):
        spec = make_spec(graph_grid={"n": [16, 8], "d": [2]})
        ns = [dict(c.graph_params)["n"] for c in spec.expand()]
        # axis values keep their declared order
        assert ns == [16, 16, 8, 8]

    def test_metric_defaults_from_registry(self):
        assert make_spec().expand()[0].metric == "cover"
        spec = make_spec(process="push", params_grid={})
        assert spec.expand()[0].metric == "spread"

    def test_unknown_process_raises(self):
        with pytest.raises(KeyError, match="unknown process"):
            make_spec(process="nope").expand()

    def test_unsupported_metric_raises(self):
        with pytest.raises(ValueError, match="does not support"):
            make_spec(metric="coalesce").expand()

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            make_spec(graph_grid={"n": []})
        with pytest.raises(ValueError, match="sequence"):
            make_spec(graph_grid={"n": 8})
        with pytest.raises(ValueError, match="scalar"):
            make_spec(graph_grid={"n": [np.array([1, 2])]})
        with pytest.raises(ValueError, match="trials"):
            make_spec(trials=0)
        with pytest.raises(ValueError, match="both graph_grid and"):
            make_spec(graph_grid={"k": [2], "depth": [3]}, params_grid={"k": [1]})
        with pytest.raises(ValueError, match="target rule"):
            make_spec(target="middle")

    def test_numpy_scalars_normalise(self):
        spec = make_spec(graph_grid={"n": [np.int64(8)], "d": [2]})
        assert dict(spec.expand()[0].graph_params)["n"] == 8


class TestContentHash:
    def test_name_is_not_part_of_the_hash(self):
        a = make_spec(name="one").expand()
        b = make_spec(name="two").expand()
        assert [c.hash for c in a] == [c.hash for c in b]

    @pytest.mark.parametrize(
        "override",
        [
            {"trials": 5},
            {"seed": SeedPolicy(root=8)},
            {"seed": SeedPolicy(root=7, kind="fixed")},
            {"max_steps": 1000},
            {"params_grid": {"k": [2, 3]}},
            {"graph_grid": {"n": [8, 32], "d": [2]}},
            {"process": "simple", "params_grid": {}},
            {"metric": "hit", "target": "last"},
        ],
        ids=lambda o: next(iter(o)),
    )
    def test_hash_changes_when_content_changes(self, override):
        base = {c.hash for c in make_spec().expand()}
        changed = {c.hash for c in make_spec(**override).expand()}
        assert base != changed

    def test_hash_stable_across_processes_of_the_grid(self):
        # every cell of a sweep has a distinct hash
        hashes = [c.hash for c in make_spec().expand()]
        assert len(set(hashes)) == len(hashes)

    def test_explicit_default_param_shares_the_hash(self):
        # params canonicalize against the registry defaults: spelling
        # cobra's default k=2 out loud is the same cell as omitting it
        explicit = make_spec(params_grid={"k": [2]}).expand()
        implicit = make_spec(params_grid={}).expand()
        assert [c.hash for c in explicit] == [c.hash for c in implicit]
        assert dict(implicit[0].params)["k"] == 2


class TestSeedDerivation:
    def test_content_seed_is_position_independent(self):
        small = make_spec(graph_grid={"n": [8], "d": [2]})
        big = make_spec(graph_grid={"n": [4, 8, 16], "d": [2]})
        by_hash_small = {c.hash: c.seed_entropy() for c in small.expand()}
        by_hash_big = {c.hash: c.seed_entropy() for c in big.expand()}
        for h, entropy in by_hash_small.items():
            assert by_hash_big[h] == entropy

    def test_fixed_policy_shares_the_root(self):
        spec = make_spec(seed=SeedPolicy(root=11, kind="fixed"))
        entropies = {tuple(c.seed_entropy()) for c in spec.expand()}
        assert entropies == {(11,)}

    def test_root_changes_every_stream(self):
        a = [tuple(c.seed_entropy()) for c in make_spec(seed=SeedPolicy(0)).expand()]
        b = [tuple(c.seed_entropy()) for c in make_spec(seed=SeedPolicy(1)).expand()]
        assert not set(a) & set(b)

    def test_bad_policy(self):
        with pytest.raises(ValueError, match="kind"):
            SeedPolicy(root=0, kind="chaotic")
        with pytest.raises(ValueError, match="int"):
            SeedPolicy(root="zero")


class TestRunKey:
    def test_build_graph_and_resolve_target(self):
        key = RunKey(
            process="cobra",
            metric="hit",
            graph_builder="cycle_graph",
            graph_params=(("n", 12),),
            target="last",
        )
        g = key.build_graph()
        assert g.n == 12
        assert key.resolve_target(g) == 11

    def test_target_rules_and_validation(self):
        key = RunKey(
            process="cobra", metric="hit", graph_builder="cycle_graph",
            graph_params=(("n", 10),), target="center",
        )
        g = key.build_graph()
        assert key.resolve_target(g) == 5
        bad = RunKey(
            process="cobra", metric="hit", graph_builder="cycle_graph",
            graph_params=(("n", 10),), target=10,
        )
        with pytest.raises(ValueError, match="out of range"):
            bad.resolve_target(g)

    def test_unknown_builder(self):
        key = RunKey(
            process="cobra", metric="cover", graph_builder="not_a_builder",
            graph_params=(),
        )
        with pytest.raises(ValueError, match="builder"):
            key.build_graph()

    def test_farthest_target_rule(self):
        # on a cycle the BFS-farthest vertex from 0 is the antipode
        key = RunKey(
            process="cobra", metric="hit", graph_builder="cycle_graph",
            graph_params=(("n", 12),), target="farthest",
        )
        assert key.resolve_target(key.build_graph()) == 6
        # on a path it is the far end
        path = RunKey(
            process="cobra", metric="hit", graph_builder="path_graph",
            graph_params=(("n", 9),), target="farthest",
        )
        assert path.resolve_target(path.build_graph()) == 8


class TestSequenceGraphValues:
    def test_sequence_axis_expands_builds_and_hashes(self):
        spec = make_spec(
            graph="circulant",
            graph_grid={"n": [16, 24], "offsets": [(1, 2)]},
            params_grid={},
        )
        cells = spec.expand()
        assert len(cells) == 2
        for cell in cells:
            assert dict(cell.graph_params)["offsets"] == (1, 2)
            g = cell.build_graph()
            assert g.n == dict(cell.graph_params)["n"]
        # payload serialises the tuple as a JSON list
        assert cells[0].payload()["graph"]["params"]["offsets"] == [1, 2]

    def test_list_and_tuple_values_are_the_same_cell(self):
        as_tuple = make_spec(
            graph="circulant", graph_grid={"n": [16], "offsets": [(1, 2)]},
            params_grid={},
        ).expand()
        as_list = make_spec(
            graph="circulant", graph_grid={"n": [16], "offsets": [[1, 2]]},
            params_grid={},
        ).expand()
        assert [c.hash for c in as_tuple] == [c.hash for c in as_list]

    def test_sequence_content_changes_the_hash(self):
        a = make_spec(
            graph="circulant", graph_grid={"n": [16], "offsets": [(1, 2)]},
            params_grid={},
        ).expand()[0]
        b = make_spec(
            graph="circulant", graph_grid={"n": [16], "offsets": [(1, 3)]},
            params_grid={},
        ).expand()[0]
        assert a.hash != b.hash

    def test_bad_sequence_values_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            make_spec(graph_grid={"n": [()], "d": [2]})
        with pytest.raises(ValueError, match="scalar"):
            make_spec(graph_grid={"n": [({},)], "d": [2]})
        # process params stay scalar-only
        with pytest.raises(ValueError, match="scalar"):
            make_spec(params_grid={"k": [(1, 2)]})
