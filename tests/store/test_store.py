"""ResultStore persistence, corruption tolerance, and the Frame API."""

import json

import numpy as np
import pytest

from repro.sim.montecarlo import summarize_trials
from repro.store import ResultStore, SeedPolicy, SweepSpec


@pytest.fixture()
def cells():
    return SweepSpec(
        name="demo",
        process="cobra",
        graph="grid",
        graph_grid={"n": [6, 8], "d": [2]},
        params_grid={"k": [1, 2]},
        trials=3,
        seed=SeedPolicy(root=3),
    ).expand()


def put_fake(store, key, values):
    return store.put(
        key,
        summarize_trials(np.asarray(values, dtype=np.float64)),
        {"sweep": "demo", "engine": "vectorized", "wall_time_s": 0.1,
         "graph_name": "g", "graph_n": 49},
    )


class TestRoundTrip:
    def test_memory_store(self, cells):
        store = ResultStore()
        assert not store.has(cells[0])
        put_fake(store, cells[0], [1.0, 2.0, 3.0])
        assert store.has(cells[0])
        assert store.get(cells[0].hash)["result"]["mean"] == 2.0
        assert len(store) == 1

    def test_disk_store_survives_reopen(self, cells, tmp_path):
        store = ResultStore(tmp_path / "s")
        for i, c in enumerate(cells):
            put_fake(store, c, [float(i)] * 3)
        again = ResultStore(tmp_path / "s")
        assert len(again) == len(cells)
        for i, c in enumerate(cells):
            assert again.get(c)["result"]["mean"] == float(i)
        assert (tmp_path / "s" / "meta.json").exists()

    def test_nan_values_roundtrip(self, cells, tmp_path):
        store = ResultStore(tmp_path / "s")
        put_fake(store, cells[0], [1.0, float("nan")])
        rec = ResultStore(tmp_path / "s").get(cells[0])
        assert rec["result"]["failures"] == 1
        values = np.asarray(rec["result"]["values"])
        assert np.isnan(values).sum() == 1

    def test_summary_rehydrates(self, cells):
        store = ResultStore()
        put_fake(store, cells[0], [2.0, 4.0, 6.0])
        summary = store.summary(cells[0])
        assert summary.mean == 4.0 and summary.trials == 3
        assert store.summary(cells[1]) is None

    def test_point_lookup_loads_one_shard(self, cells, tmp_path):
        store = ResultStore(tmp_path / "s")
        for c in cells:
            put_fake(store, c, [1.0])
        again = ResultStore(tmp_path / "s")
        again.get(cells[0])
        assert len(again._loaded_shards) == 1


class TestCorruption:
    def test_corrupt_line_is_skipped_and_cell_rerenders_as_missing(
        self, cells, tmp_path
    ):
        store = ResultStore(tmp_path / "s")
        put_fake(store, cells[0], [1.0, 2.0])
        shard = tmp_path / "s" / "shards" / f"{cells[0].hash[:2]}.jsonl"
        # simulate a torn write: truncate the record mid-JSON
        text = shard.read_text(encoding="utf-8")
        shard.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.warns(UserWarning, match="corrupt"):
            fresh = ResultStore(tmp_path / "s")
            assert not fresh.has(cells[0])

    def test_partial_trailing_line_keeps_earlier_records(self, cells, tmp_path):
        store = ResultStore(tmp_path / "s")
        a, b = cells[0], cells[1]
        put_fake(store, a, [1.0])
        record = put_fake(store, b, [2.0])
        if a.hash[:2] != b.hash[:2]:
            # force both into one shard file to model the torn tail
            shard = tmp_path / "s" / "shards" / f"{a.hash[:2]}.jsonl"
            with shard.open("a", encoding="utf-8") as fh:
                fh.write(json.dumps(record)[:40])
            with pytest.warns(UserWarning, match="corrupt"):
                fresh = ResultStore(tmp_path / "s")
                assert fresh.has(a)
        else:
            shard = tmp_path / "s" / "shards" / f"{a.hash[:2]}.jsonl"
            with shard.open("a", encoding="utf-8") as fh:
                fh.write("{\"hash\": \"zz\", broken")
            with pytest.warns(UserWarning, match="corrupt"):
                fresh = ResultStore(tmp_path / "s")
                assert fresh.has(a) and fresh.has(b)

    def test_record_missing_result_fields_is_corrupt(self, cells, tmp_path):
        store = ResultStore(tmp_path / "s")
        put_fake(store, cells[0], [1.0])
        shard = tmp_path / "s" / "shards" / f"{cells[0].hash[:2]}.jsonl"
        record = json.loads(shard.read_text(encoding="utf-8"))
        del record["result"]["mean"]
        shard.write_text(json.dumps(record) + "\n", encoding="utf-8")
        with pytest.warns(UserWarning, match="corrupt"):
            assert not ResultStore(tmp_path / "s").has(cells[0])

    def test_last_write_wins_on_duplicates(self, cells, tmp_path):
        store = ResultStore(tmp_path / "s")
        put_fake(store, cells[0], [1.0])
        put_fake(store, cells[0], [9.0])
        assert ResultStore(tmp_path / "s").get(cells[0])["result"]["mean"] == 9.0


class TestFrame:
    def test_rows_filter_sort_column(self, cells):
        store = ResultStore()
        for i, c in enumerate(cells):
            put_fake(store, c, [10.0 * (i + 1)])
        frame = store.frame()
        assert len(frame) == 4
        k2 = frame.filter(k=2)
        assert len(k2) == 2
        assert set(k2.column("k")) == {2}
        ordered = k2.sort_by("g_n").column("g_n")
        assert ordered == sorted(ordered)
        assert len(frame.filter(process="nope")) == 0

    def test_frame_prefilter_kwargs(self, cells):
        store = ResultStore()
        for c in cells:
            put_fake(store, c, [1.0])
        assert len(store.frame(k=1, g_n=6)) == 1

    def test_summarize_and_fit(self, cells):
        store = ResultStore()
        for c in cells:
            n = dict(c.graph_params)["n"]
            put_fake(store, c, [float(n) * 2])
        frame = store.frame(k=2).sort_by("g_n")
        summary = frame.summarize("mean")
        assert summary.n == 2
        fit = frame.fit_power_law(x="g_n")
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)

    def test_to_table_renders_missing_as_dash(self, cells):
        store = ResultStore()
        put_fake(store, cells[0], [1.0])
        table = store.frame().to_table(["g_n", "k", "mean", "absent"], title="t")
        text = table.render()
        assert "t" in text and "-" in text

    def test_groupby_single_column(self, cells):
        store = ResultStore()
        for i, c in enumerate(cells):
            put_fake(store, c, [float(i)])
        groups = dict(store.frame().groupby("k"))
        assert set(groups) == {1, 2}
        assert all(len(sub) == 2 for sub in groups.values())
        assert set(groups[1].column("k")) == {1}

    def test_groupby_multiple_columns_keys_are_tuples(self, cells):
        store = ResultStore()
        for c in cells:
            put_fake(store, c, [1.0])
        groups = store.frame().groupby("k", "g_n")
        assert len(groups) == 4
        assert all(isinstance(key, tuple) and len(sub) == 1
                   for key, sub in groups)

    def test_groupby_preserves_first_appearance_order(self, cells):
        store = ResultStore()
        for c in cells:
            put_fake(store, c, [1.0])
        keys = [key for key, _ in store.frame().sort_by("g_n").groupby("g_n")]
        assert keys == sorted(keys)

    def test_groupby_needs_a_column(self, cells):
        with pytest.raises(ValueError, match="at least one column"):
            ResultStore().frame().groupby()

    def test_aggregate_mean_per_group(self, cells):
        store = ResultStore()
        for c in cells:
            n = dict(c.graph_params)["n"]
            put_fake(store, c, [float(n), float(n) + 2.0])
        rows = store.frame().aggregate("g_n")
        assert {r["g_n"]: r["mean"] for r in rows} == {6: 7.0, 8: 9.0}
        assert all(r["rows"] == 2 for r in rows)

    def test_aggregate_count_and_max(self, cells):
        store = ResultStore()
        for i, c in enumerate(cells):
            put_fake(store, c, [float(i)])
        counts = store.frame().aggregate("k", agg="count")
        assert all(r["count"] == 2 for r in counts)
        peaks = store.frame().aggregate("k", column="mean", agg="max")
        assert all(r["max"] >= 0.0 for r in peaks)

    def test_aggregate_rejects_unknown_reduction(self, cells):
        store = ResultStore()
        put_fake(store, cells[0], [1.0])
        with pytest.raises(ValueError, match="unknown aggregation"):
            store.frame().aggregate("k", agg="mode")
