"""The registered sweep declarations behind the migrated experiments."""

import pytest

from repro.store import build_sweep, sweep_names
from repro.store.sweeps import base_compare_graphs

EXPECTED_SWEEPS = {
    "BASE_compare",
    "BRW_minima",
    "C9_expander",
    "DEMO_grid2x2",
    "KCOBRA_k",
    "SCALE_torus_vs_hypercube",
    "STAR_lb",
    "T15_regular",
    "T20_general",
    "T3_grid",
    "TREES_kary",
}


class TestRegistry:
    def test_expected_sweeps_registered(self):
        assert set(sweep_names()) >= EXPECTED_SWEEPS

    def test_unknown_sweep_lists_options(self):
        with pytest.raises(KeyError, match="T3_grid"):
            build_sweep("nope")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            build_sweep("T3_grid", scale="huge")

    @pytest.mark.parametrize("name", sorted(EXPECTED_SWEEPS))
    @pytest.mark.parametrize("scale", ["quick", "full"])
    def test_specs_expand_deterministically(self, name, scale):
        specs = build_sweep(name, scale=scale, seed=3)
        assert specs
        hashes = [c.hash for spec in specs for c in spec.expand()]
        again = [
            c.hash for spec in build_sweep(name, scale=scale, seed=3)
            for c in spec.expand()
        ]
        assert hashes == again
        # cells are distinct across the whole sweep (shared store safe)
        assert len(set(hashes)) == len(hashes)

    def test_seed_threads_into_every_spec(self):
        for spec in build_sweep("T3_grid", seed=41):
            assert spec.seed.root == 41

    def test_scales_differ(self):
        quick = {c.hash for s in build_sweep("T3_grid") for c in s.expand()}
        full = {
            c.hash for s in build_sweep("T3_grid", scale="full") for c in s.expand()
        }
        # different trial counts/ladders: full is a different, larger
        # cell population (scales never alias in the store)
        assert len(full) > len(quick)
        assert quick != full


class TestBaseCompare:
    def test_rw_arms_carry_the_budget_cap(self):
        for spec in build_sweep("BASE_compare"):
            arm = spec.name.rsplit("/", 1)[-1]
            if arm in ("simple", "lazy"):
                assert spec.max_steps is not None
                assert spec.trials == 3
            else:
                assert spec.max_steps is None

    def test_graph_ladder_shape(self):
        graphs = base_compare_graphs("quick", 0)
        assert [label for label, *_ in graphs] == [
            "expander", "grid", "lollipop", "star",
        ]
        for _label, _builder, params, n in graphs:
            assert n >= 24 and params


class TestT15Regular:
    def test_families_and_targets(self):
        specs = build_sweep("T15_regular", seed=3)
        assert [s.name for s in specs] == [
            "T15_regular/cycle", "T15_regular/circulant", "T15_regular/random3",
        ]
        for spec in specs:
            assert spec.metric == "hit" and spec.target == "farthest"
        # the circulant family rides the sequence-valued graph axis
        circ = specs[1].expand()[0]
        assert dict(circ.graph_params)["offsets"] == (1, 2)
        # the random-regular builder seed is pinned into the cells
        rand = specs[2].expand()[0]
        assert dict(rand.graph_params)["seed"] == 3

    def test_farthest_resolves_to_the_antipode_on_the_cycle(self):
        cell = build_sweep("T15_regular")[0].expand()[0]
        g = cell.build_graph()
        assert cell.resolve_target(g) == g.n // 2


class TestStarLb:
    def test_two_arms_share_the_ladder(self):
        cobra, push = build_sweep("STAR_lb", seed=1)
        assert cobra.process == "cobra" and push.process == "push"
        assert cobra.graph_grid["n"] == push.graph_grid["n"]
        assert push.trials <= cobra.trials


class TestDemoGrid2x2:
    def test_four_cells_scale_independent(self):
        (quick,) = build_sweep("DEMO_grid2x2")
        (full,) = build_sweep("DEMO_grid2x2", scale="full")
        assert len(quick.expand()) == 4
        assert [c.hash for c in quick.expand()] == [c.hash for c in full.expand()]


class TestC9Expander:
    def test_two_arms_with_capped_rw_ladder(self):
        cobra, rw = build_sweep("C9_expander", seed=2)
        assert cobra.process == "cobra" and rw.process == "simple"
        assert set(rw.graph_grid["n"]) <= set(cobra.graph_grid["n"])
        assert max(rw.graph_grid["n"]) <= 512  # quick rw budget cap


class TestT20General:
    def test_witness_arms_cover_both_families(self):
        specs = build_sweep("T20_general", seed=2)
        names = [s.name for s in specs]
        for witness in ("lollipop", "barbell"):
            assert f"T20_general/{witness}/cobra" in names
        rw = [s for s in specs if s.name.endswith("/rw")]
        assert rw and all(s.process == "simple" for s in rw)
        for s in rw:
            (n,) = s.graph_grid["n"]
            assert s.max_steps == 60 * n**3  # the cubic serial budget


class TestScaleTorusVsHypercube:
    def test_quick_arms_are_oracle_built(self):
        torus, cube = build_sweep("SCALE_torus_vs_hypercube", seed=2)
        assert torus.graph == "torus_oracle"
        assert cube.graph == "hypercube_oracle"
        for spec in (torus, cube):
            (cell,) = spec.expand()
            g = cell.build_graph()
            assert g.kind in ("torus", "hypercube")

    def test_full_scale_is_the_million_vertex_pair(self):
        torus, cube = build_sweep(
            "SCALE_torus_vs_hypercube", scale="full", seed=2
        )
        (tcell,) = torus.expand()
        (ccell,) = cube.expand()
        # size check without building: the axes name the constructions
        assert dict(tcell.graph_params) == {"n": 999, "d": 2}  # 1000^2
        assert dict(ccell.graph_params) == {"dim": 20}  # 2^20
        assert torus.max_steps == cube.max_steps == 256


class TestBrwMinima:
    def test_runs_through_the_store(self):
        from repro.store import Campaign, ResultStore

        (spec,) = build_sweep("BRW_minima", seed=1)
        store = ResultStore()
        report = Campaign(spec, store).run()
        assert report.complete
        frame = store.frame(process="branching_minima")
        assert len(frame) == len(spec.expand())
        # deeper generations reach lower minima (k=2 arm)
        rows = frame.filter(k=2).sort_by("generations")
        means = rows.column("mean")
        assert means[0] > means[-1]
        # the minimum of generation g is within [-g, g]
        for row in frame:
            assert -row["generations"] <= row["mean"] <= row["generations"]
