"""``SweepService`` route semantics and the live HTTP wiring.

The service is transport-free by design — ``handle()`` returns
``(status, headers, body)`` — so most of this file exercises exact
request semantics without sockets: cell lookups with hash-as-ETag
revalidation, canonical ``repro.frame/1`` frame queries, and the
conditional blob seam ``HTTPCASBackend`` speaks.  One class boots a
real ``make_server()`` and re-proves the core flows over loopback.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.store import (
    Campaign,
    FRAME_SCHEMA,
    Frame,
    HTTPCASBackend,
    InMemoryCASBackend,
    ResultStore,
    SeedPolicy,
    SweepSpec,
    drain,
)
from repro.store.service import SweepService, make_server


def _spec(**over):
    base = dict(
        name="serve",
        process="cobra",
        graph="grid",
        graph_grid={"n": [6, 8], "d": [2]},
        params_grid={"k": [1, 2]},
        trials=3,
        seed=SeedPolicy(root=5),
    )
    base.update(over)
    return SweepSpec(**base)


@pytest.fixture(scope="module")
def served():
    """A drained in-memory store and its service, shared read-only."""
    store = ResultStore(backend=InMemoryCASBackend())
    spec = _spec()
    drain(spec, store, owner="w0")
    return SweepService(store), store, spec


class TestConstruction:
    def test_memory_only_store_is_rejected(self):
        with pytest.raises(ValueError, match="backend-backed"):
            SweepService(ResultStore())


class TestHealth:
    def test_health(self, served):
        service, store, _ = served
        status, headers, body = service.handle("GET", "/health")
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok" and doc["store"] == store.location


class TestCellRoute:
    def test_lookup_by_hash_with_strong_etag(self, served):
        service, store, spec = served
        cell = spec.expand()[0]
        status, headers, body = service.handle("GET", f"/cell/{cell.hash}")
        assert status == 200
        assert headers["ETag"] == f'"{cell.hash}"'
        assert json.loads(body) == store.get(cell)

    def test_revalidation_is_304_with_empty_body(self, served):
        service, _, spec = served
        h = spec.expand()[0].hash
        status, headers, body = service.handle(
            "GET", f"/cell/{h}", headers={"If-None-Match": f'"{h}"'}
        )
        assert status == 304 and body == b""
        assert headers["ETag"] == f'"{h}"'

    def test_unknown_hash_is_404(self, served):
        service, _, _ = served
        status, _, body = service.handle("GET", "/cell/" + "0" * 64)
        assert status == 404
        assert "no record" in json.loads(body)["error"]

    def test_short_hash_is_400(self, served):
        service, _, _ = served
        status, _, _ = service.handle("GET", "/cell/a")
        assert status == 400


class TestFrameRoute:
    def test_filter_matches_local_frame(self, served):
        service, store, _ = served
        status, headers, body = service.handle("GET", "/frame?g_n=6")
        assert status == 200
        frame = Frame.from_json(body.decode("utf-8"))
        local = store.frame(g_n=6)
        assert len(frame) == len(local) == 2
        assert frame.payload()["schema"] == FRAME_SCHEMA
        assert set(frame.column("hash")) == set(local.column("hash"))

    def test_groupby_aggregate_matches_local(self, served):
        service, store, _ = served
        status, _, body = service.handle(
            "GET", "/frame?process=%22cobra%22&groupby=g_n&aggregate=mean"
        )
        assert status == 200
        remote = Frame.from_json(body.decode("utf-8"))
        local = Frame(
            store.frame(process="cobra").aggregate("g_n", column="mean")
        )
        assert remote.rows == local.rows

    def test_etag_revalidation_304(self, served):
        service, _, _ = served
        _, headers, _ = service.handle("GET", "/frame?groupby=g_n")
        etag = headers["ETag"]
        status, again, body = service.handle(
            "GET", "/frame?groupby=g_n", headers={"If-None-Match": etag}
        )
        assert status == 304 and body == b""
        assert again["ETag"] == etag

    def test_etag_moves_when_the_store_grows(self):
        spec = _spec()
        store = ResultStore(backend=InMemoryCASBackend())
        service = SweepService(store)
        drain(spec, store, owner="w0", max_cells=2)
        _, first, _ = service.handle("GET", "/frame")
        drain(spec, store, owner="w0")
        status, second, _ = service.handle(
            "GET", "/frame", headers={"If-None-Match": first["ETag"]}
        )
        assert status == 200  # stale validator: full body again
        assert second["ETag"] != first["ETag"]

    def test_duplicate_parameter_is_400(self, served):
        service, _, _ = served
        status, _, body = service.handle("GET", "/frame?g_n=6&g_n=8")
        assert status == 400
        assert "duplicate" in json.loads(body)["error"]

    def test_bad_aggregate_is_400(self, served):
        service, _, _ = served
        status, _, _ = service.handle(
            "GET", "/frame?groupby=g_n&aggregate=warp"
        )
        assert status == 400


class TestBlobRoutes:
    @pytest.fixture()
    def service(self):
        return SweepService(ResultStore(backend=InMemoryCASBackend()))

    def test_put_needs_a_precondition(self, service):
        status, _, body = service.handle("PUT", "/blob/claims.jsonl", body=b"x")
        assert status == 428
        assert "If-Match" in json.loads(body)["error"]

    def test_create_get_swap_cycle(self, service):
        status, headers, _ = service.handle(
            "PUT", "/blob/meta.json", body=b'{"v": 1}',
            headers={"If-None-Match": "*"},
        )
        assert status == 200
        etag = headers["ETag"]
        status, headers, body = service.handle("GET", "/blob/meta.json")
        assert status == 200 and body == b'{"v": 1}' and headers["ETag"] == etag
        status, _, _ = service.handle(
            "PUT", "/blob/meta.json", body=b'{"v": 2}',
            headers={"If-Match": etag},
        )
        assert status == 200

    def test_stale_if_match_is_412(self, service):
        _, headers, _ = service.handle(
            "PUT", "/blob/meta.json", body=b"old",
            headers={"If-None-Match": "*"},
        )
        service.handle(
            "PUT", "/blob/meta.json", body=b"mid",
            headers={"If-Match": headers["ETag"]},
        )
        status, _, _ = service.handle(
            "PUT", "/blob/meta.json", body=b"new",
            headers={"If-Match": headers["ETag"]},
        )
        assert status == 412

    def test_blob_list_by_prefix(self, service):
        for key in ("shards/00.jsonl", "shards/ff.jsonl", "claims.jsonl"):
            service.handle(
                "PUT", f"/blob/{key}", body=b"x\n",
                headers={"If-None-Match": "*"},
            )
        status, _, body = service.handle("GET", "/blobs?prefix=shards/")
        assert status == 200
        assert json.loads(body) == ["shards/00.jsonl", "shards/ff.jsonl"]

    def test_unknown_route_and_method(self, service):
        assert service.handle("GET", "/nope")[0] == 404
        assert service.handle("PUT", "/frame")[0] == 405


class TestSpans:
    def test_requests_emit_http_spans(self):
        from repro.obs import load_events, tracer_for_store

        backend = InMemoryCASBackend()
        store = ResultStore(backend=backend)
        service = SweepService(
            store, tracer=tracer_for_store(backend, worker="srv")
        )
        service.handle("GET", "/health")
        events = load_events(backend)
        spans = [row for row in events.rows if row.get("kind") == "http"]
        assert len(spans) == 1
        assert spans[0]["route"] == "/health"


class TestLiveServer:
    """The socket wiring: a real ThreadingHTTPServer over loopback."""

    @pytest.fixture()
    def live(self):
        store = ResultStore(backend=InMemoryCASBackend())
        server = make_server(store)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        yield f"http://{host}:{port}", store
        server.shutdown()
        server.server_close()
        thread.join()

    def test_http_cas_backend_drains_through_the_server(self, live):
        url, store = live
        spec = _spec()
        reference = ResultStore()
        Campaign(spec, reference).run()

        remote = ResultStore(backend=HTTPCASBackend(url))
        report = drain(spec, remote, owner="remote-w")
        assert report.complete and len(report.ran) == 4
        store.refresh()
        for cell in spec.expand():
            assert (
                store.get(cell)["result"] == reference.get(cell)["result"]
            ), "an HTTP-drained cell diverged from Campaign.run()"

    def test_frame_query_and_304_over_http(self, live):
        url, store = live
        drain(_spec(), ResultStore(backend=HTTPCASBackend(url)), owner="w")
        with urllib.request.urlopen(f"{url}/frame?groupby=g_n") as resp:
            assert resp.status == 200
            etag = resp.headers["ETag"]
            frame = Frame.from_json(resp.read().decode("utf-8"))
        assert len(frame) == 2
        req = urllib.request.Request(
            f"{url}/frame?groupby=g_n", headers={"If-None-Match": etag}
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req)
        assert exc.value.code == 304
