"""Property-based tests (hypothesis) for the kernels' two substrates.

The compiled backend leans on exactly two data-structure contracts:

* :class:`repro.sim.bitmask.BitMask` — the five mask operations must
  agree with a dense ``bool`` array bit-for-bit, including duplicate
  scatters, shared-byte ids and empty frontiers (the kernels' dense
  ``covered`` arrays are validated against the same reference);
* implicit-oracle ``neighbor_at`` — slot ``s`` of vertex ``v`` must be
  ``indices[indptr[v] + s]`` of the materialised CSR twin, the exact
  lookup the CSR-lowered kernels perform, so lowering cannot change a
  single neighbour draw.

Random shapes, degrees and id patterns come from hypothesis; every
case is checked against the obvious dense reference implementation.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    circulant_oracle,
    hypercube_oracle,
    kronecker_oracle,
    torus_oracle,
)
from repro.graphs.implicit import to_csr
from repro.sim.bitmask import BitMask, DenseMask


@st.composite
def mask_shapes(draw, max_rows=6, max_n=70):
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    n = draw(st.integers(min_value=1, max_value=max_n))
    return rows, n


@st.composite
def flat_ids(draw, rows, n, *, unique=False, max_size=200):
    """Flat ids ``r * n + v``, sorted ascending (the engines' frontier
    contract), optionally unique, possibly empty."""
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=rows * n - 1),
            min_size=0,
            max_size=max_size,
            unique=unique,
        )
    )
    return np.sort(np.asarray(ids, dtype=np.int64))


class TestBitMaskAgainstDenseReference:
    @given(data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_test_and_set_sorted_matches_dense_bool(self, data):
        rows, n = data.draw(mask_shapes())
        mask = BitMask(rows, n)
        ref = np.zeros(rows * n, dtype=bool)
        # several rounds against the same state: freshness depends on
        # everything set before, which is where fused test+set can rot
        for _ in range(data.draw(st.integers(min_value=1, max_value=4))):
            flat = data.draw(flat_ids(rows, n, unique=True))
            fresh = mask.test_and_set_sorted(flat)
            expect = ~ref[flat]
            ref[flat] = True
            assert fresh.dtype == bool and fresh.shape == flat.shape
            assert np.array_equal(fresh, expect)
            assert np.array_equal(mask.test_flat(np.arange(rows * n)), ref)

    @given(data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_set_sorted_flat_handles_duplicate_scatters(self, data):
        rows, n = data.draw(mask_shapes())
        mask = BitMask(rows, n)
        ref = np.zeros(rows * n, dtype=bool)
        flat = data.draw(flat_ids(rows, n, unique=False))
        mask.set_sorted_flat(flat)
        ref[flat] = True
        assert np.array_equal(mask.test_flat(np.arange(rows * n)), ref)
        assert int(mask.counts().sum()) == int(ref.sum())

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_counts_and_keep_rows_match_dense(self, data):
        rows, n = data.draw(mask_shapes())
        mask = BitMask(rows, n)
        dense = DenseMask(rows, n)
        flat = data.draw(flat_ids(rows, n, unique=False))
        mask.set_sorted_flat(flat)
        dense.set_sorted_flat(flat)
        assert np.array_equal(mask.counts(), dense.counts())
        keep = np.asarray(
            data.draw(
                st.lists(st.booleans(), min_size=rows, max_size=rows)
            ),
            dtype=bool,
        )
        mask.keep_rows(keep)
        dense.keep_rows(keep)
        assert mask.rows == dense.rows == int(keep.sum())
        if mask.rows:
            alive = np.arange(mask.rows * n)
            assert np.array_equal(mask.test_flat(alive), dense.test_flat(alive))

    def test_empty_frontier_is_a_no_op(self):
        mask = BitMask(3, 17)
        empty = np.empty(0, dtype=np.int64)
        mask.set_sorted_flat(empty)
        mask.set_unique_rows(empty)
        assert mask.test_and_set_sorted(empty).shape == (0,)
        assert mask.test_flat(empty).shape == (0,)
        assert int(mask.counts().sum()) == 0


@st.composite
def oracles(draw):
    """A random implicit oracle spanning all four arithmetic families
    (constant-degree tables and the ragged Kronecker one)."""
    kind = draw(st.sampled_from(["torus", "hypercube", "circulant", "kronecker"]))
    if kind == "torus":
        return torus_oracle(
            draw(st.integers(min_value=3, max_value=9)),
            draw(st.integers(min_value=1, max_value=3)),
        )
    if kind == "hypercube":
        return hypercube_oracle(draw(st.integers(min_value=1, max_value=7)))
    if kind == "circulant":
        n = draw(st.integers(min_value=5, max_value=40))
        offsets = draw(
            st.lists(
                st.integers(min_value=1, max_value=(n - 1) // 2),
                min_size=1,
                max_size=4,
                unique=True,
            )
        )
        return circulant_oracle(n, sorted(offsets))
    # symmetric 2x2 seeds without isolated digit patterns
    base = draw(st.sampled_from([[1, 1, 1, 1], [0, 1, 1, 1], [1, 1, 1, 0]]))
    return kronecker_oracle(base, draw(st.integers(min_value=1, max_value=4)))


class TestOracleAgainstCSRTwin:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_neighbor_at_matches_materialised_csr(self, data):
        oracle = data.draw(oracles())
        csr = to_csr(oracle)
        verts = np.asarray(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=oracle.n - 1),
                    min_size=0,
                    max_size=64,
                )
            ),
            dtype=np.int64,
        )
        deg = oracle.degree(verts)
        assert np.array_equal(deg, csr.indptr[verts + 1] - csr.indptr[verts])
        nonzero = verts[deg > 0]
        if nonzero.size:
            d = oracle.degree(nonzero)
            # random valid slot per vertex, duplicates across verts fine
            u = np.asarray(
                data.draw(
                    st.lists(
                        st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
                        min_size=nonzero.size,
                        max_size=nonzero.size,
                    )
                )
            )
            slots = (u * d).astype(np.int64)
            got = oracle.neighbor_at(nonzero, slots)
            want = csr.indices[csr.indptr[nonzero] + slots]
            assert np.array_equal(got, want)
        # empty frontier round-trips with empty results
        empty = np.empty(0, dtype=np.int64)
        assert oracle.neighbor_at(empty, empty).shape == (0,)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_every_slot_of_every_vertex_agrees(self, data):
        """Exhaustive slot sweep on a small oracle: the CSR twin is the
        definition of the slot order, not merely a sample of it."""
        oracle = data.draw(oracles())
        if oracle.n > 40:
            return
        csr = to_csr(oracle)
        deg = oracle.degree(np.arange(oracle.n, dtype=np.int64))
        verts = np.repeat(np.arange(oracle.n, dtype=np.int64), deg)
        slots = np.concatenate(
            [np.arange(d, dtype=np.int64) for d in deg]
        ) if verts.size else np.empty(0, dtype=np.int64)
        assert np.array_equal(oracle.neighbor_at(verts, slots), csr.indices)
