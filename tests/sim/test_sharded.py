"""Tests for the sharded ``run_batch`` executor.

The contract under test: per-trial seeds are spawned up front from the
root seed, and shards merely execute contiguous slices of that list —
so ``shards=k`` is seed-for-seed identical to ``shards=1``, to the
unsharded serial path, and to any ``max_workers`` (placement
independence), for **every** registered process.
"""

import numpy as np
import pytest

from repro.graphs import complete_graph, grid, path_graph
from repro.sim import process_names, run_batch


@pytest.fixture(scope="module")
def g():
    # complete graph: fast for every process, non-bipartite (so the
    # coalescing walkers actually meet and the coalesce metric is finite)
    return complete_graph(8)


def _case(name, g):
    """Per-process graph/kwargs (the line-only minima walk aside, every
    process runs on the shared complete graph)."""
    kw = {}
    if name == "biased":
        kw["target"] = g.n - 1
    if name == "coalescing":
        kw["walkers"] = 4
    if name == "branching_minima":
        return path_graph(17), {"generations": 4}
    return g, kw


class TestShardDeterminism:
    @pytest.mark.parametrize("name", process_names())
    def test_shard_count_invariant_and_serial_identical(self, g, name):
        g, kw = _case(name, g)
        one = run_batch(g, name, trials=9, seed=42, shards=1, **kw)
        four = run_batch(g, name, trials=9, seed=42, shards=4, **kw)
        serial = run_batch(g, name, trials=9, seed=42, strategy="serial", **kw)
        assert np.array_equal(one.values, four.values, equal_nan=True)
        assert np.array_equal(one.values, serial.values, equal_nan=True)

    def test_worker_count_invariant(self, g):
        """Placement independence: the pool width never changes values."""
        inline = run_batch(g, "cobra", trials=8, seed=7, shards=4, max_workers=1)
        pooled = run_batch(g, "cobra", trials=8, seed=7, shards=4, max_workers=3)
        assert np.array_equal(inline.values, pooled.values, equal_nan=True)

    def test_more_shards_than_trials(self, g):
        few = run_batch(g, "cobra", trials=3, seed=1, shards=8)
        ref = run_batch(g, "cobra", trials=3, seed=1, strategy="serial")
        assert np.array_equal(few.values, ref.values, equal_nan=True)

    def test_hit_metric_sharded(self, g):
        sh = run_batch(
            g, "cobra", trials=6, seed=5, metric="hit", target=g.n - 1, shards=3
        )
        ref = run_batch(
            g, "cobra", trials=6, seed=5, metric="hit", target=g.n - 1,
            strategy="serial",
        )
        assert np.array_equal(sh.values, ref.values, equal_nan=True)


class TestShardValidation:
    def test_shards_and_processes_exclusive(self, g):
        with pytest.raises(ValueError, match="not both"):
            run_batch(g, "cobra", trials=4, shards=2, processes=2)

    def test_vectorized_strategy_rejected(self, g):
        with pytest.raises(ValueError, match="vectorized"):
            run_batch(g, "cobra", trials=4, shards=2, strategy="vectorized")

    def test_max_workers_requires_shards(self, g):
        with pytest.raises(ValueError, match="max_workers"):
            run_batch(g, "cobra", trials=4, max_workers=2)

    def test_bad_counts(self, g):
        with pytest.raises(ValueError, match="shards"):
            run_batch(g, "cobra", trials=4, shards=0)
        with pytest.raises(ValueError, match="max_workers"):
            run_batch(g, "cobra", trials=4, shards=2, max_workers=0)

    def test_bad_target_rejected_before_fanout(self, g):
        with pytest.raises(ValueError, match="target"):
            run_batch(g, "cobra", trials=4, metric="hit", target=g.n, shards=2)


class TestShardSummary:
    def test_summary_matches_serial_statistics(self):
        g = grid(5, 2)
        sh = run_batch(g, "push", trials=12, seed=3, shards=3)
        ref = run_batch(g, "push", trials=12, seed=3, strategy="serial")
        assert sh.mean == ref.mean
        assert sh.failures == ref.failures
        assert sh.trials == 12
