"""Tests for the simulation harness (rng, engine, montecarlo, record)."""

import numpy as np
import pytest

from repro.core import CobraWalk
from repro.graphs import cycle_graph, grid
from repro.sim import (
    coverage_curve,
    random_choice_weighted,
    resolve_rng,
    resolve_seed_sequence,
    run_process,
    run_trials,
    spawn_rngs,
    spawn_seeds,
    summarize_trials,
    time_to_cover_fraction,
)


class TestRng:
    def test_resolve_int(self):
        a = resolve_rng(7).random(3)
        b = resolve_rng(7).random(3)
        assert np.array_equal(a, b)

    def test_resolve_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert resolve_rng(g) is g

    def test_resolve_seed_sequence(self):
        ss = np.random.SeedSequence(5)
        assert resolve_seed_sequence(ss) is ss
        assert resolve_seed_sequence(5).entropy == 5

    def test_generator_rejected_as_seed_sequence(self):
        with pytest.raises(TypeError):
            resolve_seed_sequence(np.random.default_rng(0))

    def test_spawn_independence(self):
        a, b = spawn_rngs(3, 2)
        x, y = a.random(1000), b.random(1000)
        assert abs(np.corrcoef(x, y)[0, 1]) < 0.1

    def test_spawn_deterministic(self):
        s1 = [np.random.default_rng(s).random() for s in spawn_seeds(9, 4)]
        s2 = [np.random.default_rng(s).random() for s in spawn_seeds(9, 4)]
        assert s1 == s2

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_weighted_choice_distribution(self):
        rng = resolve_rng(1)
        picks = random_choice_weighted(rng, np.array([1.0, 3.0]), size=8000)
        assert abs((picks == 1).mean() - 0.75) < 0.03

    def test_weighted_choice_scalar(self):
        rng = resolve_rng(2)
        assert random_choice_weighted(rng, np.array([0.0, 1.0])) == 1

    def test_weighted_choice_validation(self):
        rng = resolve_rng(3)
        with pytest.raises(ValueError):
            random_choice_weighted(rng, np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            random_choice_weighted(rng, np.array([-1.0, 2.0]))


class TestEngine:
    def test_runs_until_predicate(self):
        g = grid(6, 2)
        w = CobraWalk(g, seed=4)
        fired = run_process(w, max_steps=100_000, until=lambda p: p.num_covered >= 20)
        assert fired and w.num_covered >= 20

    def test_budget_stops(self):
        w = CobraWalk(cycle_graph(200), seed=5)
        fired = run_process(w, max_steps=10, until=lambda p: p.all_covered)
        assert not fired and w.t == 10

    def test_on_step_callback(self):
        w = CobraWalk(cycle_graph(20), seed=6)
        sizes = []
        run_process(w, max_steps=15, on_step=lambda p: sizes.append(p.active.size))
        assert len(sizes) == 15

    def test_immediate_predicate(self):
        w = CobraWalk(cycle_graph(20), seed=7)
        assert run_process(w, max_steps=100, until=lambda p: True)
        assert w.t == 0

    def test_negative_budget(self):
        w = CobraWalk(cycle_graph(20), seed=8)
        with pytest.raises(ValueError):
            run_process(w, max_steps=-1)


def _trial_mean_of_uniform(seed, scale):
    rng = np.random.default_rng(seed)
    return scale * rng.random()


class TestMonteCarlo:
    def test_serial_deterministic(self):
        a = run_trials(_trial_mean_of_uniform, 10, seed=1, args=(2.0,))
        b = run_trials(_trial_mean_of_uniform, 10, seed=1, args=(2.0,))
        assert np.array_equal(a.values, b.values)

    def test_parallel_matches_serial(self):
        ser = run_trials(_trial_mean_of_uniform, 12, seed=2, args=(1.0,))
        par = run_trials(_trial_mean_of_uniform, 12, seed=2, args=(1.0,), processes=3)
        assert np.allclose(ser.values, par.values)

    def test_summary_fields(self):
        s = summarize_trials(np.array([1.0, 2.0, 3.0, np.nan]))
        assert s.mean == pytest.approx(2.0)
        assert s.failures == 1
        assert s.trials == 4
        assert s.median == pytest.approx(2.0)

    def test_all_nan_summary(self):
        s = summarize_trials(np.array([np.nan, np.nan]))
        assert np.isnan(s.mean) and s.failures == 2

    def test_single_trial_has_nan_spread(self):
        """Regression: one successful trial used to report std=0.0 and a
        zero-width CI, presenting a point estimate as certainty."""
        s = summarize_trials(np.array([7.0]))
        assert s.mean == 7.0 and s.median == 7.0 and s.n == 1
        assert np.isnan(s.std) and np.isnan(s.ci95_half_width)

    def test_single_success_among_failures_has_nan_spread(self):
        s = summarize_trials(np.array([np.nan, 5.0, np.nan]))
        assert s.mean == 5.0 and s.failures == 2
        assert np.isnan(s.std) and np.isnan(s.ci95_half_width)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_trials(_trial_mean_of_uniform, 0, args=(1.0,))

    def test_pool_context_without_fork(self, monkeypatch):
        # platforms without fork (Windows/macOS-spawn) must fall back to
        # the default context instead of raising
        import multiprocessing as mp

        from repro.sim import montecarlo

        monkeypatch.setattr(mp, "get_all_start_methods", lambda: ["spawn"])
        # must not raise (the old code passed "fork" unconditionally);
        # the platform default context is whatever mp considers default
        ctx = montecarlo._pool_context()
        assert hasattr(ctx, "Pool")

    def test_pool_context_prefers_fork(self):
        import multiprocessing as mp

        from repro.sim import montecarlo

        if "fork" in mp.get_all_start_methods():
            assert montecarlo._pool_context().get_start_method() == "fork"


class TestUnifiedSummary:
    """One TrialSummary type across sim and analysis (satellite)."""

    def test_analysis_summarize_is_trial_summary(self):
        from repro.analysis import SummaryStats, summarize
        from repro.sim import TrialSummary

        assert SummaryStats is TrialSummary
        s = summarize([1.0, 2.0, 3.0, np.nan])
        assert isinstance(s, TrialSummary)
        assert s.n == 3 and s.nan_count == 1 and s.failures == 1

    def test_quantile_fields(self):
        s = summarize_trials(np.array([1.0, 2.0, 3.0, 4.0]))
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.q25 == pytest.approx(1.75) and s.q75 == pytest.approx(3.25)

    def test_all_nan_quantiles(self):
        s = summarize_trials(np.array([np.nan]))
        assert np.isnan(s.q25) and np.isnan(s.minimum) and s.n == 0


class TestCoverageRecord:
    def test_curve_from_first_activation(self):
        fa = np.array([0, 2, 1, 2, -1])
        curve = coverage_curve(fa)
        assert curve.counts.tolist() == [1, 2, 4]
        assert curve.n == 5
        assert curve.fractions[-1] == pytest.approx(0.8)

    def test_time_to_fraction(self):
        fa = np.array([0, 1, 2, 3])
        assert time_to_cover_fraction(fa, 0.5) == 1
        assert time_to_cover_fraction(fa, 1.0) == 3

    def test_unreachable_fraction(self):
        fa = np.array([0, -1, -1, -1])
        assert time_to_cover_fraction(fa, 0.9) is None

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            time_to_cover_fraction(np.array([0, 1]), 0.0)

    def test_real_run_consistency(self):
        g = grid(5, 2)
        w = CobraWalk(g, seed=9)
        res = w.run_until_cover(100_000)
        curve = coverage_curve(res.first_activation)
        assert curve.counts[-1] == g.n
        assert curve.time_to_fraction(1.0) == res.cover_time
