"""BitMask/DenseMask: the engines' (trial, vertex) visited state.

The engines see the visited mask only through the shared five-op
surface (test / sorted scatter-set / unique-row set / fused
test-and-set / popcount audit), behind the ``visited_mask`` size
dispatch; every operation is pinned against a dense boolean reference
for both backends.
"""

import numpy as np
import pytest

from repro.sim.bitmask import (
    DENSE_LIMIT,
    BitMask,
    DenseMask,
    popcount,
    visited_mask,
)


def dense_reference(mask):
    """Unpack either backend into the dense bool[rows, n] it models."""
    if isinstance(mask, DenseMask):
        return mask.data.reshape(mask.rows, mask.n).copy()
    bits = np.unpackbits(
        mask.data.reshape(mask.rows, mask.nbytes_row), axis=1, bitorder="little"
    )
    return bits[:, : mask.n].astype(bool)


@pytest.fixture(params=[BitMask, DenseMask], ids=["bitpacked", "dense"])
def backend(request):
    return request.param


class TestMaskBackends:
    def test_starts_empty(self, backend):
        mask = backend(5, 13)
        assert not mask.test_flat(np.arange(5 * 13, dtype=np.int64)).any()
        assert np.array_equal(mask.counts(), np.zeros(5, dtype=np.int64))

    def test_rejects_degenerate_shapes(self, backend):
        with pytest.raises(ValueError):
            backend(-1, 4)
        with pytest.raises(ValueError):
            backend(3, 0)

    def test_set_sorted_flat_matches_dense(self, backend):
        rng = np.random.default_rng(3)
        mask = backend(4, 37)
        dense = np.zeros((4, 37), dtype=bool)
        for _ in range(5):
            flat = np.sort(rng.integers(0, 4 * 37, size=50))
            mask.set_sorted_flat(flat.astype(np.int64))
            dense[flat // 37, flat % 37] = True
            assert np.array_equal(dense_reference(mask), dense)
            got = mask.test_flat(np.arange(4 * 37, dtype=np.int64))
            assert np.array_equal(got, dense.reshape(-1))

    def test_set_unique_rows_one_id_per_trial(self, backend):
        mask = backend(6, 11)
        flat = np.arange(6, dtype=np.int64) * 11 + np.array([0, 3, 3, 10, 7, 1])
        mask.set_unique_rows(flat)
        assert mask.test_flat(flat).all()
        assert np.array_equal(mask.counts(), np.ones(6, dtype=np.int64))

    def test_test_and_set_reports_fresh_bits_once(self, backend):
        mask = backend(2, 19)
        first = np.array([0, 1, 7, 8, 19 + 5], dtype=np.int64)
        assert mask.test_and_set_sorted(first).all()
        # overlap {1, 8}: only the new ids read as fresh
        second = np.array([1, 2, 8, 9, 19 + 5], dtype=np.int64)
        fresh = mask.test_and_set_sorted(second)
        assert fresh.tolist() == [False, True, False, True, False]
        assert mask.test_flat(np.union1d(first, second)).all()

    def test_test_and_set_equals_test_then_set(self, backend):
        rng = np.random.default_rng(11)
        fused, split = backend(3, 29), backend(3, 29)
        for _ in range(4):
            flat = np.unique(rng.integers(0, 3 * 29, size=40)).astype(np.int64)
            got = fused.test_and_set_sorted(flat)
            want = ~split.test_flat(flat)
            split.set_sorted_flat(flat)
            assert np.array_equal(got, want)
            assert np.array_equal(fused.data, split.data)

    def test_empty_scatter_is_a_noop(self, backend):
        mask = backend(2, 9)
        empty = np.empty(0, dtype=np.int64)
        mask.set_sorted_flat(empty)
        mask.set_unique_rows(empty)
        assert mask.test_and_set_sorted(empty).size == 0
        assert not dense_reference(mask).any()

    def test_counts_per_row(self, backend):
        mask = backend(3, 20)
        mask.set_sorted_flat(np.array([0, 5, 19, 20, 47], dtype=np.int64))
        assert np.array_equal(mask.counts(), np.array([3, 1, 1]))

    def test_keep_rows_compacts_in_order(self, backend):
        mask = backend(4, 10)
        mask.set_unique_rows(np.arange(4, dtype=np.int64) * 10 + 2)
        mask.set_sorted_flat(np.array([0, 35], dtype=np.int64))
        before = dense_reference(mask)
        keep = np.array([True, False, True, True])
        mask.keep_rows(keep)
        assert mask.rows == 3
        assert np.array_equal(dense_reference(mask), before[keep])


class TestVisitedMaskDispatch:
    def test_small_state_is_dense(self):
        assert isinstance(visited_mask(32, 1089), DenseMask)

    def test_large_state_is_bitpacked(self):
        rows, n = 2, 1_000_000  # the memory-budget smoke's shape
        assert rows * n > DENSE_LIMIT
        mask = visited_mask(rows, n)
        assert isinstance(mask, BitMask)
        assert mask.data.nbytes == rows * ((n + 7) // 8)

    def test_threshold_is_exact(self):
        assert isinstance(visited_mask(1, DENSE_LIMIT), DenseMask)
        assert isinstance(visited_mask(1, DENSE_LIMIT + 1), BitMask)


class TestBitPackedLayout:
    def test_row_is_byte_padded(self):
        mask = BitMask(5, 13)
        assert mask.nbytes_row == 2
        assert mask.data.size == 10

    def test_popcount_matches_python(self):
        rng = np.random.default_rng(7)
        data = rng.integers(0, 256, size=64, dtype=np.uint8)
        assert popcount(data) == sum(int(b).bit_count() for b in data)
