"""Conformance tests for the unified process API.

Three pillars:

* every registered :class:`ProcessSpec` yields a stepping process
  satisfying :class:`repro.sim.engine.SteppingProcess`;
* ``simulate()`` reproduces the legacy per-process helpers
  seed-for-seed for every registered process;
* ``run_batch``'s serial strategy is bit-exact with the legacy
  ``*_trials`` helpers, and its vectorized strategy matches serial
  distributionally.
"""

import numpy as np
import pytest

from repro.core import CobraWalk, simulate_biased_hit, walt_cover_time
from repro.sim import (
    ProcessSpec,
    RunResult,
    SteppingProcess,
    batched_cobra_cover_trials,
    get_default_processes,
    get_process,
    process_names,
    register_process,
    run_batch,
    set_default_processes,
    simulate,
)
from repro.sim.rng import spawn_seeds
from repro.graphs import cycle_graph, grid, kary_tree, star_graph
from repro.walks import (
    branching_cover_time,
    coalescence_time,
    parallel_cover_time,
    pull_spread_time,
    push_pull_spread_time,
    push_spread_time,
    rw_cover_time,
)


@pytest.fixture(scope="module")
def g():
    return grid(10, 2)


class TestRegistry:
    def test_at_least_eight_processes(self):
        assert len(process_names()) >= 8

    def test_expected_names_present(self):
        names = set(process_names())
        assert {
            "cobra",
            "walt",
            "simple",
            "lazy",
            "parallel",
            "branching",
            "coalescing",
            "push",
            "pull",
            "push_pull",
            "biased",
        } <= names

    def test_get_unknown_lists_known(self):
        with pytest.raises(KeyError, match="cobra"):
            get_process("nope")

    def test_duplicate_rejected(self):
        spec = get_process("cobra")
        with pytest.raises(ValueError, match="duplicate"):
            register_process(spec)

    def test_bad_capability_rejected(self):
        with pytest.raises(ValueError, match="capabilities"):
            ProcessSpec(
                name="x",
                factory=lambda graph, **kw: None,
                capabilities=frozenset({"cover", "teleport"}),
                default_metric="cover",
                default_budget=lambda graph, p: 10,
            )

    def test_default_metric_must_be_declared(self):
        with pytest.raises(ValueError, match="default metric"):
            ProcessSpec(
                name="x",
                factory=lambda graph, **kw: None,
                capabilities=frozenset({"cover"}),
                default_metric="hit",
                default_budget=lambda graph, p: 10,
            )


class TestConformance:
    """Every registered spec yields a SteppingProcess."""

    @pytest.mark.parametrize("name", sorted(
        ["cobra", "walt", "simple", "lazy", "parallel", "branching",
         "coalescing", "push", "pull", "push_pull", "biased"]
    ))
    def test_factory_yields_stepping_process(self, g, name):
        spec = get_process(name)
        proc = spec.factory(g, start=0, seed=np.random.SeedSequence(1), target=g.n - 1)
        assert isinstance(proc, SteppingProcess)
        assert proc.t == 0
        proc.step()
        assert proc.t == 1

    @pytest.mark.parametrize("name", sorted(
        ["cobra", "walt", "simple", "lazy", "parallel", "branching",
         "coalescing", "push", "pull", "push_pull", "biased"]
    ))
    def test_simulate_returns_runresult(self, g, name):
        res = simulate(g, name, seed=5, target=g.n - 1, max_steps=50)
        assert isinstance(res, RunResult)
        assert res.process == name
        assert res.steps <= 50


# (process, params, metric, legacy runner returning the scalar to match)
PARITY_CASES = [
    ("simple", {}, "cover", lambda g, s: rw_cover_time(g, seed=s)),
    ("lazy", {}, "cover", lambda g, s: rw_cover_time(g, seed=s, lazy=True)),
    ("walt", {}, "cover", lambda g, s: walt_cover_time(g, seed=s).cover_time),
    ("walt", {"delta": 0.25, "lazy": False}, "cover",
     lambda g, s: walt_cover_time(g, seed=s, delta=0.25, lazy=False).cover_time),
    ("parallel", {"walkers": 3}, "cover",
     lambda g, s: parallel_cover_time(g, walkers=3, seed=s)),
    ("branching", {}, "cover",
     lambda g, s: branching_cover_time(g, seed=s).cover_time),
    ("push", {}, "spread", lambda g, s: push_spread_time(g, seed=s)),
    ("pull", {}, "spread", lambda g, s: pull_spread_time(g, seed=s)),
    ("push_pull", {}, "spread", lambda g, s: push_pull_spread_time(g, seed=s)),
]


class TestSeedForSeedParity:
    @pytest.mark.parametrize(
        "name,params,metric,legacy",
        PARITY_CASES,
        ids=[f"{c[0]}-{c[2]}-{i}" for i, c in enumerate(PARITY_CASES)],
    )
    def test_simulate_matches_legacy(self, g, name, params, metric, legacy):
        for seed in (0, 7, 123):
            res = simulate(g, name, metric=metric, seed=seed, **params)
            assert res.value == legacy(g, seed)

    def test_cobra_matches_class_runner(self, g):
        # cobra_cover_time is itself a facade shim now; pin against the
        # underlying class runner instead
        for seed in (0, 7, 123):
            res = simulate(g, "cobra", seed=seed)
            ref = CobraWalk(g, k=2, start=0, seed=seed).run_until_cover(10**6)
            assert res.cover_time == ref.cover_time
            assert np.array_equal(res.first_activation, ref.first_activation)

    def test_cobra_hit_matches_class_runner(self, g):
        target = g.n - 1
        for seed in (1, 9):
            res = simulate(g, "cobra", metric="hit", target=target, seed=seed)
            ref = CobraWalk(g, k=2, start=0, seed=seed).run_until_hit(target, 10**6)
            assert res.extras["hit_time"] == ref

    def test_coalescing_matches_legacy(self):
        # odd cycle: even cycles are bipartite and never fully coalesce
        c = cycle_graph(13)
        for seed in (3, 11):
            res = simulate(c, "coalescing", metric="coalesce", seed=seed)
            legacy = coalescence_time(c, seed=seed)
            assert legacy is not None
            assert res.extras["coalescence_time"] == legacy

    def test_biased_hit_matches_legacy(self, g):
        target = g.n - 1
        for seed in (2, 13):
            res = simulate(g, "biased", metric="hit", target=target, seed=seed)
            assert res.extras["hit_time"] == simulate_biased_hit(g, target, seed=seed)


class TestRunBatch:
    def test_serial_matches_per_trial_class_runs(self, g):
        s = run_batch(g, "cobra", trials=6, seed=42, strategy="serial")
        ref = [
            CobraWalk(g, k=2, start=0, seed=sd).run_until_cover(10**6).cover_time
            for sd in spawn_seeds(42, 6)
        ]
        assert np.array_equal(s.values, np.array(ref, dtype=np.float64))

    def test_pool_matches_serial(self, g):
        ser = run_batch(g, "walt", trials=4, seed=5, strategy="serial")
        par = run_batch(g, "walt", trials=4, seed=5, strategy="serial", processes=2)
        assert np.array_equal(ser.values, par.values)

    def test_vectorized_matches_serial_distributionally(self):
        gg = grid(8, 2)
        vec = run_batch(gg, "cobra", trials=64, seed=17, strategy="vectorized")
        ser = run_batch(gg, "cobra", trials=64, seed=17, strategy="serial")
        assert vec.failures == 0 and ser.failures == 0
        assert abs(vec.mean - ser.mean) < 0.25 * ser.mean

    def test_simple_vectorized_engine(self):
        c = cycle_graph(20)
        s = run_batch(c, "simple", trials=8, seed=3)
        assert s.trials == 8 and np.isfinite(s.mean)

    def test_auto_without_engine_is_serial(self, g):
        # the biased walk is the one process without a batched engine,
        # so auto falls back to the seed-spawned serial loop
        # (lazy/branching/coalescing now vectorize too)
        t = g.n - 1
        s = run_batch(g, "biased", trials=3, seed=1, target=t)
        ref = [
            simulate(g, "biased", target=t, seed=sd).value for sd in spawn_seeds(1, 3)
        ]
        assert np.array_equal(s.values, np.array(ref, dtype=np.float64))

    def test_vectorized_unavailable_raises(self, g):
        with pytest.raises(ValueError, match="no vectorized engine"):
            run_batch(g, "biased", trials=2, target=1, strategy="vectorized")
        # gossip closed its hit gap in PR 10; parallel and branching
        # are the remaining hit-less batch family
        with pytest.raises(ValueError, match="no vectorized engine"):
            run_batch(g, "parallel", trials=2, metric="hit", target=1,
                      strategy="vectorized")

    def test_bad_strategy(self, g):
        with pytest.raises(ValueError, match="strategy"):
            run_batch(g, "cobra", trials=2, strategy="warp")

    def test_needs_trials(self, g):
        with pytest.raises(ValueError, match="trial"):
            run_batch(g, "cobra", trials=0)

    def test_unregistered_spec_runs_serially(self, g):
        spec = get_process("cobra")
        anon = ProcessSpec(
            name="anon-cobra",
            factory=spec.factory,
            capabilities=spec.capabilities,
            default_metric=spec.default_metric,
            default_budget=spec.default_budget,
        )
        s = run_batch(g, anon, trials=3, seed=8, strategy="serial")
        ref = run_batch(g, "cobra", trials=3, seed=8, strategy="serial")
        assert np.array_equal(s.values, ref.values)

    def test_default_processes_roundtrip(self):
        assert get_default_processes() is None
        set_default_processes(2)
        try:
            assert get_default_processes() == 2
        finally:
            set_default_processes(None)
        with pytest.raises(ValueError):
            set_default_processes(0)


class TestBatchedEngine:
    def test_multi_source(self):
        c = cycle_graph(40)
        times = batched_cobra_cover_trials(
            c, trials=8, start=np.array([0, 20]), seed=2, max_steps=10**5
        )
        single = batched_cobra_cover_trials(c, trials=8, start=0, seed=2, max_steps=10**5)
        assert np.nanmean(times) < np.nanmean(single)

    def test_k_one_matches_simple_walk_scale(self):
        c = cycle_graph(16)
        k1 = batched_cobra_cover_trials(c, trials=16, k=1, seed=4, max_steps=10**6)
        assert np.isfinite(k1).all()

    def test_full_start_covers_at_zero(self):
        c = cycle_graph(12)
        t = batched_cobra_cover_trials(
            c, trials=3, start=np.arange(12), seed=0, max_steps=10
        )
        assert np.array_equal(t, np.zeros(3))

    def test_budget_exhaustion_nan(self):
        c = cycle_graph(200)
        t = batched_cobra_cover_trials(c, trials=4, seed=0, max_steps=3)
        assert np.isnan(t).all()

    def test_validation(self):
        c = cycle_graph(10)
        with pytest.raises(ValueError):
            batched_cobra_cover_trials(c, trials=0)
        with pytest.raises(ValueError):
            batched_cobra_cover_trials(c, trials=2, k=0)
        with pytest.raises(ValueError):
            batched_cobra_cover_trials(c, trials=2, start=99)

    @pytest.mark.parametrize(
        "make",
        [
            lambda: grid(8, 2),
            lambda: star_graph(40),          # hub degree 39: float64 pair path
            lambda: kary_tree(3, 3),
            lambda: cycle_graph(30),
        ],
        ids=["grid", "star", "tree", "cycle"],
    )
    def test_distribution_matches_serial(self, make):
        gg = make()
        vec = batched_cobra_cover_trials(gg, trials=48, seed=11, max_steps=10**6)
        ser = run_batch(gg, "cobra", trials=48, seed=11, strategy="serial").values
        assert np.isnan(vec).sum() == 0 and np.isnan(ser).sum() == 0
        assert abs(np.mean(vec) - np.mean(ser)) < 0.3 * np.mean(ser) + 2.0


class TestSimulateSemantics:
    def test_unknown_metric(self, g):
        with pytest.raises(ValueError, match="does not support"):
            simulate(g, "simple", metric="coalesce")

    def test_hit_requires_target(self, g):
        with pytest.raises(ValueError, match="target"):
            simulate(g, "cobra", metric="hit")

    def test_hit_target_range(self, g):
        with pytest.raises(ValueError, match="target"):
            simulate(g, "cobra", metric="hit", target=g.n)

    def test_budget_exhaustion(self, g):
        res = simulate(g, "simple", seed=0, max_steps=5)
        assert not res.covered and res.cover_time is None and np.isnan(res.value)

    def test_spread_counts_as_cover(self, g):
        res = simulate(g, "push", metric="cover", seed=1)
        assert res.covered and res.cover_time == res.first_activation.max()

    def test_coalesce_extras(self):
        c = cycle_graph(9)
        res = simulate(c, "coalescing", seed=6)
        assert res.extras["coalesced"]
        assert res.extras["walkers_left"] == 1
        assert res.extras["coalescence_time"] == res.steps

    def test_branching_extras(self, g):
        res = simulate(g, "branching", seed=2)
        assert res.extras["population"] >= 1
        assert "hit_cap" in res.extras

    def test_multi_source_cobra(self):
        c = cycle_graph(30)
        res = simulate(c, "coalescing", metric="cover", seed=1,
                       start=np.arange(30))
        assert res.covered and res.cover_time == 0

    def test_coalescing_rejects_scalar_start(self):
        c = cycle_graph(9)
        with pytest.raises(ValueError, match="walker positions"):
            simulate(c, "coalescing", seed=1, start=7)
        # the facade default (0) still reproduces coalescence_time
        res = simulate(c, "coalescing", seed=1)
        assert res.extras["coalescence_time"] == coalescence_time(c, seed=1)
