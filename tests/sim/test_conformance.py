"""Cross-backend conformance: the compiled engines against NumPy.

Three pillars:

* every :data:`conformance.BACKEND_CASES` row is bit-exact — the numba
  backend reproduces the NumPy backend seed-for-seed on CSR and
  implicit-oracle topologies (the kernels run as pure Python when
  numba is absent, so the whole dispatch path is exercised either
  way);
* ``select_execution_path`` fallback behaviour: auto degrades to the
  NumPy engines without numba, explicit ``backend="numba"`` raises a
  clear error, non-vectorized paths reject the compiled backend;
* provenance records the backend that actually ran, never the one
  requested.
"""

import numpy as np
import pytest

from conformance import BACKEND_CASES, ConformanceCase, assert_backend_match

from repro.graphs import cycle_graph, grid
from repro.sim import get_process, kernels_numba, run_batch
from repro.sim.facade import select_execution_path
from repro.store import Campaign, ResultStore, SweepSpec


@pytest.fixture
def numba_on(monkeypatch):
    """Pretend numba imported: the identity-decorated kernels run as
    pure Python, exercising the full numba dispatch path bit-for-bit
    on hosts without numba (and the real kernels where it exists)."""
    monkeypatch.setattr(kernels_numba, "NUMBA_AVAILABLE", True)


@pytest.fixture
def numba_off(monkeypatch):
    monkeypatch.setattr(kernels_numba, "NUMBA_AVAILABLE", False)


class TestBackendMatrix:
    @pytest.mark.parametrize(
        "case", BACKEND_CASES, ids=[c.id for c in BACKEND_CASES]
    )
    def test_numba_backend_matches_numpy_seed_for_seed(self, case, numba_on):
        ref = case.run("numpy")
        for backend in case.backends:
            if backend == "numpy":
                continue
            assert_backend_match(case, ref, case.run(backend))

    def test_matrix_covers_every_kernel(self):
        """Every registered kernel engine appears in the matrix — a new
        kernel without a conformance row is a gap, not a choice."""
        cased = {
            (c.engine, "cover" if c.metric in ("cover", "spread") else c.metric)
            for c in BACKEND_CASES
        }
        assert set(kernels_numba.KERNEL_ENGINES) <= cased

    def test_all_current_rows_bit_exact(self):
        """The shipped kernels all share the RNG stream; a KS-validated
        row would mean a kernel silently stopped being bit-exact."""
        assert all(c.kind == "bit_exact" for c in BACKEND_CASES)

    def test_budget_exhaustion_nan_parity(self, numba_on):
        case = ConformanceCase("cobra", "cycle24", metric="hit", target="last")
        g = case.build_graph()
        # antipodal target: unreachable within the 2-step budget
        kw = dict(trials=6, metric="hit", target=g.n // 2, seed=0, max_steps=2)
        a = run_batch(g, "cobra", backend="numba", **kw)
        b = run_batch(g, "cobra", backend="numpy", **kw)
        assert np.isnan(a.values).all()
        assert np.array_equal(a.values, b.values, equal_nan=True)

    def test_multi_source_start_parity(self, numba_on):
        g = cycle_graph(40)
        kw = dict(trials=8, seed=3, start=np.array([0, 20]))
        a = run_batch(g, "cobra", backend="numba", **kw)
        b = run_batch(g, "cobra", backend="numpy", **kw)
        assert np.array_equal(a.values, b.values, equal_nan=True)


class TestSelectExecutionPathBackend:
    """The backend knob inside the one strategy-selection rule."""

    @pytest.fixture
    def spec(self):
        return get_process("cobra")

    def test_unknown_backend_rejected(self, spec):
        with pytest.raises(ValueError, match="backend"):
            select_execution_path(spec, "cover", backend="jax")

    def test_auto_without_numba_is_numpy(self, spec, numba_off):
        assert select_execution_path(spec, "cover", backend="auto") == "vectorized"

    def test_auto_with_numba_picks_kernel(self, spec, numba_on):
        path = select_execution_path(spec, "cover", backend="auto")
        assert path == "vectorized[numba]"

    def test_explicit_numba_without_numba_raises(self, spec, numba_off):
        with pytest.raises(RuntimeError, match="numba"):
            select_execution_path(spec, "cover", backend="numba")

    def test_explicit_numpy_never_takes_kernel(self, spec, numba_on):
        assert select_execution_path(spec, "cover", backend="numpy") == "vectorized"

    def test_kernelless_process_falls_back(self, numba_on):
        push = get_process("push")
        assert select_execution_path(push, "spread", backend="auto") == "vectorized"
        with pytest.raises(ValueError, match="kernel"):
            select_execution_path(push, "spread", backend="numba")

    def test_numba_rejected_off_the_vectorized_path(self, spec, numba_on):
        with pytest.raises(ValueError, match="vectorized"):
            select_execution_path(spec, "cover", backend="numba", shards=2)
        with pytest.raises(ValueError, match="vectorized"):
            select_execution_path(spec, "cover", backend="numba", processes=4)

    def test_unlowerable_oracle_falls_back(self, spec, numba_on):
        """Auto must keep million-vertex implicit oracles on the NumPy
        engines (to_csr refuses them); explicit numba fails clearly."""

        class Huge:
            n = 6_000_000

        from repro.graphs.implicit import NeighborOracle

        huge = Huge()
        huge.__class__ = type("HugeOracle", (NeighborOracle,), {"n": 6_000_000})
        assert (
            select_execution_path(spec, "cover", backend="auto", graph=huge)
            == "vectorized"
        )
        with pytest.raises(ValueError, match="CSR"):
            select_execution_path(spec, "cover", backend="numba", graph=huge)

    def test_default_args_unchanged(self, spec):
        """The pre-backend return values are pinned: existing callers
        see identical behaviour."""
        assert select_execution_path(spec, "cover") == "vectorized"
        assert select_execution_path(spec, "cover", shards=3) == "sharded"
        assert select_execution_path(spec, "cover", processes=4) == "pool"
        assert select_execution_path(spec, "cover", strategy="serial") == "serial"


class TestRunBatchBackend:
    def test_explicit_numba_without_numba_raises(self, numba_off):
        with pytest.raises(RuntimeError, match="numba"):
            run_batch(grid(4, 2), "cobra", trials=2, backend="numba")

    def test_auto_without_numba_runs_numpy(self, numba_off):
        s = run_batch(grid(4, 2), "cobra", trials=4, seed=1, backend="auto")
        assert s.n == 4 and s.failures == 0

    def test_backend_does_not_change_values(self, numba_on):
        g = grid(4, 2)
        auto = run_batch(g, "cobra", trials=6, seed=9)
        numba = run_batch(g, "cobra", trials=6, seed=9, backend="numba")
        numpy_ = run_batch(g, "cobra", trials=6, seed=9, backend="numpy")
        assert np.array_equal(auto.values, numba.values, equal_nan=True)
        assert np.array_equal(auto.values, numpy_.values, equal_nan=True)


class TestBackendProvenance:
    """Provenance records the backend actually used, not the request."""

    @pytest.fixture
    def sweep(self):
        return SweepSpec(
            name="conf",
            process="cobra",
            graph="cycle_graph",
            graph_grid={"n": [8]},
            trials=4,
        )

    def _provenance(self, sweep):
        store = ResultStore()
        Campaign(sweep, store).run()
        return store.get(sweep.expand()[0])["provenance"]

    def test_records_numpy_when_numba_absent(self, sweep, numba_off):
        prov = self._provenance(sweep)
        assert prov["engine"] == "vectorized"
        assert prov["backend"] == "numpy"

    def test_records_numba_when_it_actually_ran(self, sweep, numba_on):
        prov = self._provenance(sweep)
        assert prov["engine"] == "vectorized[numba]"
        assert prov["backend"] == "numba"

    def test_auto_request_records_outcome_not_request(self, sweep, numba_off):
        # the spec requested "auto"; what ran (and is recorded) is numpy
        assert sweep.backend == "auto"
        assert self._provenance(sweep)["backend"] == "numpy"

    def test_explicit_numba_spec_fails_clearly_when_unavailable(self, numba_off):
        sweep = SweepSpec(
            name="conf",
            process="cobra",
            graph="cycle_graph",
            graph_grid={"n": [8]},
            trials=2,
            backend="numba",
        )
        with pytest.raises(RuntimeError, match="numba"):
            Campaign(sweep, ResultStore()).run()

    def test_spec_backend_validated(self):
        with pytest.raises(ValueError, match="backend"):
            SweepSpec(
                name="conf",
                process="cobra",
                graph="cycle_graph",
                graph_grid={"n": [8]},
                backend="cupy",
            )

    def test_backend_not_hashed_into_cells(self):
        """Bit-exact engines ⇒ identical values ⇒ the backend is an
        execution detail (like shards), deliberately outside the cell
        content hash — results stay shared across backends."""
        a = SweepSpec(
            name="conf", process="cobra", graph="cycle_graph",
            graph_grid={"n": [8]}, backend="numpy",
        )
        b = SweepSpec(
            name="conf", process="cobra", graph="cycle_graph",
            graph_grid={"n": [8]}, backend="numba",
        )
        assert [k.hash for k in a.expand()] == [k.hash for k in b.expand()]
