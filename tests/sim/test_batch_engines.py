"""Tests for the generalized batched-engine layer.

Three pillars:

* each new vectorized engine (gossip push/pull/push_pull, parallel
  walks, Walt, cobra hit, simple hit) matches ``strategy="serial"``
  distributionally at fixed seeds (means within a pooled CI);
* ``run_batch`` auto-selects the vectorized engine for every process
  that has one, including ``metric="hit"``, and validates the target
  before any fan-out;
* engine-specific semantics: multi-source starts, budget-exhaustion
  NaNs, degenerate starts, validation errors.
"""

import numpy as np
import pytest

from repro.graphs import cycle_graph, grid, star_graph
from repro.sim import (
    batched_cobra_hit_trials,
    batched_gossip_spread_trials,
    batched_parallel_walks_cover_trials,
    batched_walt_cover_trials,
    get_process,
    run_batch,
)


@pytest.fixture(scope="module")
def g():
    return grid(8, 2)


def _assert_means_close(vec, ser):
    """Means within a pooled 95% CI (3 sigma of the combined SEM, plus
    a small absolute slack for tiny cover times)."""
    assert vec.failures == 0 and ser.failures == 0
    sem = float(np.hypot(vec.std / np.sqrt(vec.n), ser.std / np.sqrt(ser.n)))
    assert abs(vec.mean - ser.mean) <= 3.0 * sem + 2.0, (
        f"vectorized mean {vec.mean:.2f} vs serial {ser.mean:.2f} "
        f"(pooled sem {sem:.2f})"
    )


ENGINE_CASES = [
    ("push", {}, None, None),
    ("pull", {}, None, None),
    ("push_pull", {}, None, None),
    ("parallel", {"walkers": 4}, None, None),
    ("walt", {}, None, None),
    ("walt", {"delta": 0.25, "lazy": False}, None, None),
    ("cobra", {}, "hit", 63),
    ("simple", {}, "hit", 63),
]


class TestSerialParity:
    @pytest.mark.parametrize(
        "name,params,metric,target",
        ENGINE_CASES,
        ids=[f"{c[0]}-{c[2] or 'cover'}-{i}" for i, c in enumerate(ENGINE_CASES)],
    )
    def test_vectorized_matches_serial_distributionally(
        self, g, name, params, metric, target
    ):
        kw = dict(trials=48, metric=metric, target=target, seed=29, **params)
        vec = run_batch(g, name, strategy="vectorized", **kw)
        ser = run_batch(g, name, strategy="serial", **kw)
        _assert_means_close(vec, ser)


class TestAutoSelection:
    """auto must pick the vectorized engine wherever one exists: the
    auto values are bit-exact with strategy="vectorized" (same engine,
    same seed) for every process with an engine."""

    @pytest.mark.parametrize(
        "name", ["cobra", "simple", "walt", "parallel", "push", "pull", "push_pull"]
    )
    def test_auto_cover_is_vectorized(self, g, name):
        assert get_process(name).batch_cover is not None
        auto = run_batch(g, name, trials=6, seed=3)
        vec = run_batch(g, name, trials=6, seed=3, strategy="vectorized")
        assert np.array_equal(auto.values, vec.values)

    @pytest.mark.parametrize("name", ["cobra", "simple"])
    def test_auto_hit_is_vectorized(self, g, name):
        assert get_process(name).batch_hit is not None
        auto = run_batch(g, name, trials=6, metric="hit", target=g.n - 1, seed=4)
        vec = run_batch(
            g, name, trials=6, metric="hit", target=g.n - 1, seed=4,
            strategy="vectorized",
        )
        assert np.array_equal(auto.values, vec.values)

    def test_engine_coverage_floor(self):
        """The acceptance bar: >= 5 processes with a cover engine plus
        cobra hit."""
        covered = [
            s.name for s in map(get_process, ["cobra", "simple", "walt", "parallel",
                                              "push", "pull", "push_pull"])
            if s.batch_cover is not None
        ]
        assert len(covered) >= 5
        assert get_process("cobra").batch_hit is not None


class TestHitTargetValidation:
    """run_batch must reject bad targets before any fan-out."""

    def test_missing_target(self, g):
        with pytest.raises(ValueError, match="target"):
            run_batch(g, "cobra", trials=2, metric="hit")

    def test_out_of_range_target(self, g):
        with pytest.raises(ValueError, match="target"):
            run_batch(g, "cobra", trials=2, metric="hit", target=g.n)

    def test_rejected_before_pool_fanout(self, g):
        # processes=4 would previously explode inside the workers
        with pytest.raises(ValueError, match="target"):
            run_batch(g, "cobra", trials=2, metric="hit", target=-1, processes=4)


class TestGossipEngine:
    def test_pull_on_star_is_fast(self):
        # every leaf polls the hub: pull informs all leaves in one round
        s = star_graph(30)
        t = batched_gossip_spread_trials(s, trials=8, seed=1, push=False, pull=True)
        assert (t <= 2).all()

    def test_budget_exhaustion_nan(self):
        t = batched_gossip_spread_trials(cycle_graph(64), trials=4, seed=0, max_steps=2)
        assert np.isnan(t).all()

    def test_two_vertex_graph_trivial(self):
        from repro.graphs import path_graph

        t = batched_gossip_spread_trials(path_graph(2), trials=3, seed=0)
        assert np.isfinite(t).all()

    def test_validation(self, g):
        with pytest.raises(ValueError, match="push/pull"):
            batched_gossip_spread_trials(g, trials=2, push=False, pull=False)
        with pytest.raises(ValueError, match="start"):
            batched_gossip_spread_trials(g, trials=2, start=g.n)
        with pytest.raises(ValueError, match="trial"):
            batched_gossip_spread_trials(g, trials=0)


class TestParallelEngine:
    def test_more_walkers_cover_faster(self):
        c = cycle_graph(40)
        few = batched_parallel_walks_cover_trials(c, trials=16, walkers=2, seed=5)
        many = batched_parallel_walks_cover_trials(c, trials=16, walkers=8, seed=5)
        assert np.nanmean(many) < np.nanmean(few)

    def test_start_array_per_walker(self):
        # one walker per vertex: everything is covered at t=0
        c = cycle_graph(12)
        t = batched_parallel_walks_cover_trials(
            c, trials=5, walkers=12, start=np.arange(12), seed=6, max_steps=5
        )
        assert np.array_equal(t, np.zeros(5))

    def test_budget_exhaustion_nan(self):
        t = batched_parallel_walks_cover_trials(
            cycle_graph(64), trials=4, walkers=2, seed=0, max_steps=3
        )
        assert np.isnan(t).all()

    def test_validation(self, g):
        with pytest.raises(ValueError, match="walker"):
            batched_parallel_walks_cover_trials(g, trials=2, walkers=0)
        with pytest.raises(ValueError, match="length"):
            batched_parallel_walks_cover_trials(
                g, trials=2, walkers=3, start=np.array([0, 1])
            )


class TestWaltEngine:
    def test_delta_one_any_start_covers_quickly(self):
        c = cycle_graph(16)
        t = batched_walt_cover_trials(c, trials=8, delta=1.0, seed=7, max_steps=10**4)
        assert np.isfinite(t).all()

    def test_full_random_placement_can_cover_at_zero(self):
        # delta=1 random placement on a 2-vertex graph covers at t=0
        # often; just check the t=0 path doesn't crash and times are valid
        from repro.graphs import path_graph

        t = batched_walt_cover_trials(path_graph(2), trials=32, delta=1.0,
                                      start=None, seed=8)
        assert np.isfinite(t).all() and (t >= 0).all()
        assert (t == 0).any()  # 32 trials of 2 uniform pebbles: whp one covers

    def test_multi_source_start_array(self):
        c = cycle_graph(40)
        spread = batched_walt_cover_trials(
            c, trials=12, start=np.array([0, 20]), seed=9, max_steps=10**5
        )
        together = batched_walt_cover_trials(c, trials=12, start=0, seed=9,
                                             max_steps=10**5)
        assert np.nanmean(spread) < np.nanmean(together)

    def test_budget_exhaustion_nan(self):
        t = batched_walt_cover_trials(cycle_graph(64), trials=4, seed=0, max_steps=2)
        assert np.isnan(t).all()

    def test_validation(self, g):
        with pytest.raises(ValueError, match="delta"):
            batched_walt_cover_trials(g, trials=2, delta=0.0)
        with pytest.raises(ValueError, match="start"):
            batched_walt_cover_trials(g, trials=2, start=g.n)


class TestCobraHitEngine:
    def test_hit_at_start_is_zero(self, g):
        t = batched_cobra_hit_trials(g, 0, trials=4, seed=1)
        assert np.array_equal(t, np.zeros(4))

    def test_hit_at_least_distance(self):
        c = cycle_graph(30)
        t = batched_cobra_hit_trials(c, 15, trials=16, seed=2)
        assert (t[~np.isnan(t)] >= 15).all()

    def test_multi_source(self):
        c = cycle_graph(40)
        near = batched_cobra_hit_trials(
            c, 20, trials=16, start=np.array([0, 18]), seed=3
        )
        far = batched_cobra_hit_trials(c, 20, trials=16, start=0, seed=3)
        assert np.nanmean(near) < np.nanmean(far)

    def test_budget_exhaustion_nan(self):
        c = cycle_graph(100)
        t = batched_cobra_hit_trials(c, 50, trials=4, seed=0, max_steps=3)
        assert np.isnan(t).all()

    def test_validation(self, g):
        with pytest.raises(ValueError, match="target"):
            batched_cobra_hit_trials(g, g.n, trials=2)
        with pytest.raises(ValueError, match="k must be"):
            batched_cobra_hit_trials(g, 0, trials=2, k=0)

    def test_k_three_path(self):
        c = cycle_graph(24)
        t = batched_cobra_hit_trials(c, 12, trials=8, k=3, seed=4)
        assert np.isfinite(t).all()
