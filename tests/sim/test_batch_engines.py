"""Tests for the generalized batched-engine layer.

Three pillars:

* each vectorized engine (gossip push/pull/push_pull, parallel walks,
  Walt, cobra hit, simple hit, lazy, branching, coalescing) matches
  ``strategy="serial"`` distributionally at fixed seeds (means within
  a pooled CI);
* ``run_batch`` auto-selects the vectorized engine for every process
  that has one, including ``metric="hit"``, and validates the target
  before any fan-out;
* engine-specific semantics: multi-source starts, budget-exhaustion
  NaNs, degenerate starts, population caps, validation errors.
"""

import numpy as np
import pytest

from conformance import SERIAL_PARITY_CASES, assert_means_close

from repro.graphs import cycle_graph, grid, star_graph
from repro.sim import (
    batched_biased_cover_trials,
    batched_branching_cover_trials,
    batched_coalescing_cover_trials,
    batched_cobra_active_sizes,
    batched_cobra_hit_trials,
    batched_gossip_hit_trials,
    batched_gossip_spread_trials,
    batched_lazy_cover_trials,
    batched_lazy_hit_trials,
    batched_parallel_walks_cover_trials,
    batched_walt_cover_trials,
    batched_walt_positions_at,
    get_process,
    run_batch,
)


@pytest.fixture(scope="module")
def g():
    return grid(8, 2)


class TestSerialParity:
    """Parity rows live in ``conformance.SERIAL_PARITY_CASES`` — the
    shared engine × metric matrix that cross-backend suites reuse."""

    @pytest.mark.parametrize(
        "name,params,metric,target",
        SERIAL_PARITY_CASES,
        ids=[
            f"{c[0]}-{c[2] or 'cover'}-{i}"
            for i, c in enumerate(SERIAL_PARITY_CASES)
        ],
    )
    def test_vectorized_matches_serial_distributionally(
        self, g, name, params, metric, target
    ):
        kw = dict(trials=48, metric=metric, target=target, seed=29, **params)
        vec = run_batch(g, name, strategy="vectorized", **kw)
        ser = run_batch(g, name, strategy="serial", **kw)
        assert_means_close(vec, ser)


class TestAutoSelection:
    """auto must pick the vectorized engine wherever one exists: the
    auto values are bit-exact with strategy="vectorized" (same engine,
    same seed) for every process with an engine."""

    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("cobra", {}),
            ("simple", {}),
            ("walt", {}),
            ("parallel", {}),
            ("push", {}),
            ("pull", {}),
            ("push_pull", {}),
            ("lazy", {}),
            ("branching", {}),
            ("coalescing", {"metric": "cover", "walkers": 6}),
            ("biased", {"metric": "cover", "target": 63, "eps": 0.1}),
        ],
    )
    def test_auto_cover_is_vectorized(self, g, name, kwargs):
        assert get_process(name).batch_cover is not None
        auto = run_batch(g, name, trials=6, seed=3, **kwargs)
        vec = run_batch(g, name, trials=6, seed=3, strategy="vectorized", **kwargs)
        assert np.array_equal(auto.values, vec.values)

    def test_coalesce_metric_stays_serial(self, g):
        """The coalescing engine covers cover/spread only; the default
        coalesce metric must keep taking the per-trial path."""
        auto = run_batch(g, "coalescing", trials=3, seed=3, walkers=4)
        ser = run_batch(g, "coalescing", trials=3, seed=3, walkers=4,
                        strategy="serial")
        assert np.array_equal(auto.values, ser.values, equal_nan=True)

    @pytest.mark.parametrize(
        "name",
        ["cobra", "simple", "lazy", "walt", "push", "pull", "push_pull"],
    )
    def test_auto_hit_is_vectorized(self, g, name):
        assert get_process(name).batch_hit is not None
        auto = run_batch(g, name, trials=6, metric="hit", target=g.n - 1, seed=4)
        vec = run_batch(
            g, name, trials=6, metric="hit", target=g.n - 1, seed=4,
            strategy="vectorized",
        )
        assert np.array_equal(auto.values, vec.values)

    def test_engine_coverage_floor(self):
        """The "every process is batched" milestone: every registered
        cover/spread-capable process — the biased walk included — has a
        cover engine, plus hit engines for cobra/simple/lazy/walt and
        all three gossip variants."""
        covered = [
            s.name
            for s in map(
                get_process,
                ["cobra", "simple", "lazy", "walt", "parallel", "branching",
                 "coalescing", "push", "pull", "push_pull", "biased"],
            )
            if s.batch_cover is not None
        ]
        assert len(covered) == 11
        for name in ("cobra", "simple", "lazy", "walt",
                     "push", "pull", "push_pull"):
            assert get_process(name).batch_hit is not None


class TestHitTargetValidation:
    """run_batch must reject bad targets before any fan-out."""

    def test_missing_target(self, g):
        with pytest.raises(ValueError, match="target"):
            run_batch(g, "cobra", trials=2, metric="hit")

    def test_out_of_range_target(self, g):
        with pytest.raises(ValueError, match="target"):
            run_batch(g, "cobra", trials=2, metric="hit", target=g.n)

    def test_rejected_before_pool_fanout(self, g):
        # processes=4 would previously explode inside the workers
        with pytest.raises(ValueError, match="target"):
            run_batch(g, "cobra", trials=2, metric="hit", target=-1, processes=4)


class TestGossipEngine:
    def test_pull_on_star_is_fast(self):
        # every leaf polls the hub: pull informs all leaves in one round
        s = star_graph(30)
        t = batched_gossip_spread_trials(s, trials=8, seed=1, push=False, pull=True)
        assert (t <= 2).all()

    def test_budget_exhaustion_nan(self):
        t = batched_gossip_spread_trials(cycle_graph(64), trials=4, seed=0, max_steps=2)
        assert np.isnan(t).all()

    def test_two_vertex_graph_trivial(self):
        from repro.graphs import path_graph

        t = batched_gossip_spread_trials(path_graph(2), trials=3, seed=0)
        assert np.isfinite(t).all()

    def test_validation(self, g):
        with pytest.raises(ValueError, match="push/pull"):
            batched_gossip_spread_trials(g, trials=2, push=False, pull=False)
        with pytest.raises(ValueError, match="start"):
            batched_gossip_spread_trials(g, trials=2, start=g.n)
        with pytest.raises(ValueError, match="trial"):
            batched_gossip_spread_trials(g, trials=0)


class TestGossipHitEngine:
    def test_hit_at_start_is_zero(self, g):
        t = batched_gossip_hit_trials(g, 0, trials=4, seed=1)
        assert (t == 0.0).all()

    def test_hit_at_least_distance(self):
        # push-only on a cycle: the informed set is an interval growing
        # by at most one vertex per side per round, so reaching the
        # antipode takes at least its graph distance
        c = cycle_graph(31)
        t = batched_gossip_hit_trials(c, 15, trials=8, seed=7, pull=False)
        assert np.isfinite(t).all()
        assert (t >= 15).all()

    def test_pull_on_star_leaf_is_fast(self):
        # every leaf polls the hub each round: any leaf target is
        # informed within two rounds under pull
        s = star_graph(30)
        t = batched_gossip_hit_trials(
            s, s.n - 1, trials=8, seed=2, push=False, pull=True
        )
        assert (t <= 2).all()

    def test_budget_exhaustion_nan(self):
        t = batched_gossip_hit_trials(
            cycle_graph(64), 32, trials=4, seed=0, max_steps=2
        )
        assert np.isnan(t).all()

    def test_validation(self, g):
        with pytest.raises(ValueError, match="push/pull"):
            batched_gossip_hit_trials(g, 1, trials=2, push=False, pull=False)
        with pytest.raises(ValueError, match="target"):
            batched_gossip_hit_trials(g, g.n, trials=2)
        with pytest.raises(ValueError, match="start"):
            batched_gossip_hit_trials(g, 1, trials=2, start=g.n)


class TestParallelEngine:
    def test_more_walkers_cover_faster(self):
        c = cycle_graph(40)
        few = batched_parallel_walks_cover_trials(c, trials=16, walkers=2, seed=5)
        many = batched_parallel_walks_cover_trials(c, trials=16, walkers=8, seed=5)
        assert np.nanmean(many) < np.nanmean(few)

    def test_start_array_per_walker(self):
        # one walker per vertex: everything is covered at t=0
        c = cycle_graph(12)
        t = batched_parallel_walks_cover_trials(
            c, trials=5, walkers=12, start=np.arange(12), seed=6, max_steps=5
        )
        assert np.array_equal(t, np.zeros(5))

    def test_budget_exhaustion_nan(self):
        t = batched_parallel_walks_cover_trials(
            cycle_graph(64), trials=4, walkers=2, seed=0, max_steps=3
        )
        assert np.isnan(t).all()

    def test_validation(self, g):
        with pytest.raises(ValueError, match="walker"):
            batched_parallel_walks_cover_trials(g, trials=2, walkers=0)
        with pytest.raises(ValueError, match="length"):
            batched_parallel_walks_cover_trials(
                g, trials=2, walkers=3, start=np.array([0, 1])
            )


class TestWaltEngine:
    def test_delta_one_any_start_covers_quickly(self):
        c = cycle_graph(16)
        t = batched_walt_cover_trials(c, trials=8, delta=1.0, seed=7, max_steps=10**4)
        assert np.isfinite(t).all()

    def test_full_random_placement_can_cover_at_zero(self):
        # delta=1 random placement on a 2-vertex graph covers at t=0
        # often; just check the t=0 path doesn't crash and times are valid
        from repro.graphs import path_graph

        t = batched_walt_cover_trials(path_graph(2), trials=32, delta=1.0,
                                      start=None, seed=8)
        assert np.isfinite(t).all() and (t >= 0).all()
        assert (t == 0).any()  # 32 trials of 2 uniform pebbles: whp one covers

    def test_multi_source_start_array(self):
        c = cycle_graph(40)
        spread = batched_walt_cover_trials(
            c, trials=12, start=np.array([0, 20]), seed=9, max_steps=10**5
        )
        together = batched_walt_cover_trials(c, trials=12, start=0, seed=9,
                                             max_steps=10**5)
        assert np.nanmean(spread) < np.nanmean(together)

    def test_budget_exhaustion_nan(self):
        t = batched_walt_cover_trials(cycle_graph(64), trials=4, seed=0, max_steps=2)
        assert np.isnan(t).all()

    def test_validation(self, g):
        with pytest.raises(ValueError, match="delta"):
            batched_walt_cover_trials(g, trials=2, delta=0.0)
        with pytest.raises(ValueError, match="start"):
            batched_walt_cover_trials(g, trials=2, start=g.n)


class TestCobraHitEngine:
    def test_hit_at_start_is_zero(self, g):
        t = batched_cobra_hit_trials(g, 0, trials=4, seed=1)
        assert np.array_equal(t, np.zeros(4))

    def test_hit_at_least_distance(self):
        c = cycle_graph(30)
        t = batched_cobra_hit_trials(c, 15, trials=16, seed=2)
        assert (t[~np.isnan(t)] >= 15).all()

    def test_multi_source(self):
        c = cycle_graph(40)
        near = batched_cobra_hit_trials(
            c, 20, trials=16, start=np.array([0, 18]), seed=3
        )
        far = batched_cobra_hit_trials(c, 20, trials=16, start=0, seed=3)
        assert np.nanmean(near) < np.nanmean(far)

    def test_budget_exhaustion_nan(self):
        c = cycle_graph(100)
        t = batched_cobra_hit_trials(c, 50, trials=4, seed=0, max_steps=3)
        assert np.isnan(t).all()

    def test_validation(self, g):
        with pytest.raises(ValueError, match="target"):
            batched_cobra_hit_trials(g, g.n, trials=2)
        with pytest.raises(ValueError, match="k must be"):
            batched_cobra_hit_trials(g, 0, trials=2, k=0)

    def test_k_three_path(self):
        c = cycle_graph(24)
        t = batched_cobra_hit_trials(c, 12, trials=8, k=3, seed=4)
        assert np.isfinite(t).all()


class TestLazyEngine:
    def test_slower_than_simple(self, g):
        lazy = batched_lazy_cover_trials(g, trials=32, seed=5)
        simple = run_batch(g, "simple", trials=32, seed=5).values
        # half the lazy steps are holds: cover should be ~2x, surely >1.3x
        assert np.nanmean(lazy) > 1.3 * np.nanmean(simple)

    def test_budget_censoring_nan(self):
        t = batched_lazy_cover_trials(cycle_graph(64), trials=8, seed=0, max_steps=70)
        assert np.isnan(t).all()  # even the move chain cannot cover in 70

    def test_holds_count_against_budget(self):
        # generous move budget but tight step budget: reconstructed
        # totals above max_steps must censor to nan
        c = cycle_graph(16)
        unlimited = batched_lazy_cover_trials(c, trials=64, seed=9)
        capped = batched_lazy_cover_trials(
            c, trials=64, seed=9, max_steps=int(np.nanmedian(unlimited))
        )
        assert np.isnan(capped).sum() > 0

    def test_validation(self, g):
        with pytest.raises(ValueError, match="start"):
            batched_lazy_cover_trials(g, trials=2, start=g.n)
        with pytest.raises(ValueError, match="trial"):
            batched_lazy_cover_trials(g, trials=0)


class TestBranchingEngine:
    def test_small_cap_still_covers(self):
        c = cycle_graph(16)
        t = batched_branching_cover_trials(c, trials=8, seed=1, population_cap=4)
        assert np.isfinite(t).all()

    def test_larger_k_covers_faster(self, g):
        k2 = batched_branching_cover_trials(g, trials=16, k=2, seed=2)
        k4 = batched_branching_cover_trials(g, trials=16, k=4, seed=2)
        assert np.nanmean(k4) < np.nanmean(k2)

    def test_k_one_is_single_walker(self):
        # k=1, cap anything: exactly one particle forever — the cover
        # law of the simple random walk
        c = cycle_graph(12)
        t = batched_branching_cover_trials(c, trials=24, k=1, seed=3)
        s = run_batch(c, "simple", trials=24, seed=3).values
        assert np.isfinite(t).all()
        assert abs(np.mean(t) - np.mean(s)) < 3.0 * np.std(s) / np.sqrt(6)

    def test_star_hub_degree_path(self):
        s = star_graph(20)
        t = batched_branching_cover_trials(s, trials=8, seed=4)
        assert np.isfinite(t).all()

    def test_budget_exhaustion_nan(self):
        t = batched_branching_cover_trials(
            cycle_graph(64), trials=4, seed=0, max_steps=3
        )
        assert np.isnan(t).all()

    def test_validation(self, g):
        with pytest.raises(ValueError, match="k must be"):
            batched_branching_cover_trials(g, trials=2, k=0)
        with pytest.raises(ValueError, match="population_cap"):
            batched_branching_cover_trials(g, trials=2, population_cap=0)
        with pytest.raises(ValueError, match="start"):
            batched_branching_cover_trials(g, trials=2, start=-1)


class TestCoalescingEngine:
    def test_all_vertices_cover_at_zero(self, g):
        t = batched_coalescing_cover_trials(g, trials=5, seed=1)
        assert np.array_equal(t, np.zeros(5))

    def test_more_walkers_cover_faster(self):
        c = cycle_graph(40)
        few = batched_coalescing_cover_trials(c, trials=12, walkers=3, seed=5)
        many = batched_coalescing_cover_trials(c, trials=12, walkers=12, seed=5)
        assert np.nanmean(many) < np.nanmean(few)

    def test_explicit_start_array(self):
        c = cycle_graph(12)
        t = batched_coalescing_cover_trials(
            c, trials=4, start=np.arange(12), seed=6, max_steps=5
        )
        assert np.array_equal(t, np.zeros(4))

    def test_budget_exhaustion_nan(self):
        t = batched_coalescing_cover_trials(
            cycle_graph(64), trials=4, walkers=4, seed=0, max_steps=3
        )
        assert np.isnan(t).all()

    def test_validation(self, g):
        with pytest.raises(ValueError, match="scalar start"):
            batched_coalescing_cover_trials(g, trials=2, start=3)
        with pytest.raises(ValueError, match="walker"):
            batched_coalescing_cover_trials(g, trials=2, walkers=0)
        with pytest.raises(ValueError, match="position"):
            batched_coalescing_cover_trials(g, trials=2, start=np.array([0, g.n]))


class TestBiasedEngine:
    def test_weakly_biased_cover_is_finite(self):
        c = cycle_graph(16)
        t = batched_biased_cover_trials(c, 8, trials=8, seed=1, eps=0.05)
        assert np.isfinite(t).all() and (t >= 15).all()

    def test_inverse_degree_default(self):
        # eps=None selects the 1/d(v) bias; on a cycle that is a strong
        # pull toward the target, and coverage still completes
        c = cycle_graph(12)
        t = batched_biased_cover_trials(c, 6, trials=8, seed=2, max_steps=10**5)
        assert np.isfinite(t).all()

    def test_pure_controller_never_covers(self):
        # eps=1: deterministic descent to the target, then pinned there
        c = cycle_graph(16)
        t = batched_biased_cover_trials(c, 8, trials=4, seed=3, eps=1.0,
                                        max_steps=200)
        assert np.isnan(t).all()

    def test_budget_exhaustion_nan(self):
        t = batched_biased_cover_trials(
            cycle_graph(64), 32, trials=4, seed=0, eps=0.05, max_steps=3
        )
        assert np.isnan(t).all()

    def test_validation(self, g):
        with pytest.raises(ValueError, match="target"):
            batched_biased_cover_trials(g, g.n, trials=2)
        with pytest.raises(ValueError, match="start"):
            batched_biased_cover_trials(g, 0, trials=2, start=g.n)
        with pytest.raises(ValueError, match="eps"):
            batched_biased_cover_trials(g, 0, trials=2, eps=1.5)
        with pytest.raises(ValueError, match="controller"):
            batched_biased_cover_trials(g, 0, trials=2, controller=np.arange(3))

    def test_run_batch_requires_target(self, g):
        # the facade forwards target to the cover engine; without one
        # the engine fails exactly like the serial factory
        with pytest.raises(ValueError, match="target"):
            run_batch(g, "biased", trials=2, metric="cover", eps=0.1)


class TestLazyHitEngine:
    def test_hit_at_start_is_zero(self, g):
        t = batched_lazy_hit_trials(g, 0, trials=4, seed=1)
        assert np.array_equal(t, np.zeros(4))

    def test_slower_than_simple(self, g):
        lazy = batched_lazy_hit_trials(g, 63, trials=64, seed=5)
        simple = run_batch(g, "simple", trials=64, metric="hit", target=63,
                           seed=5).values
        # half the lazy steps are holds: hitting should be ~2x
        assert np.nanmean(lazy) > 1.3 * np.nanmean(simple)

    def test_hit_at_least_distance(self):
        c = cycle_graph(30)
        t = batched_lazy_hit_trials(c, 15, trials=16, seed=2)
        assert (t[~np.isnan(t)] >= 15).all()

    def test_holds_count_against_budget(self):
        c = cycle_graph(16)
        unlimited = batched_lazy_hit_trials(c, 8, trials=64, seed=9)
        capped = batched_lazy_hit_trials(
            c, 8, trials=64, seed=9, max_steps=int(np.nanmedian(unlimited))
        )
        assert np.isnan(capped).sum() > 0

    def test_budget_exhaustion_nan(self):
        t = batched_lazy_hit_trials(cycle_graph(64), 32, trials=4, seed=0,
                                    max_steps=5)
        assert np.isnan(t).all()

    def test_validation(self, g):
        with pytest.raises(ValueError, match="target"):
            batched_lazy_hit_trials(g, g.n, trials=2)
        with pytest.raises(ValueError, match="start"):
            batched_lazy_hit_trials(g, 0, trials=2, start=-1)
        with pytest.raises(ValueError, match="trial"):
            batched_lazy_hit_trials(g, 0, trials=0)


class TestFixedHorizonEngines:
    def test_active_sizes_shape_and_start(self, g):
        sizes = batched_cobra_active_sizes(g, trials=6, steps=20, seed=1)
        assert sizes.shape == (6, 21)
        assert (sizes[:, 0] == 1).all()
        assert (sizes >= 1).all() and (sizes <= g.n).all()

    def test_active_sizes_matches_serial_history(self, g):
        from repro.core import CobraWalk

        steps = 60
        batched = batched_cobra_active_sizes(g, trials=24, steps=steps, seed=2)
        serial = []
        for s in range(24):
            w = CobraWalk(g, seed=s, record_history=True)
            for _ in range(steps):
                w.step()
            serial.append(w.history)
        bt, st = batched.mean(axis=0), np.mean(serial, axis=0)
        # saturation plateaus must agree (tolerant distributional check)
        assert abs(bt[-10:].mean() - st[-10:].mean()) < 0.15 * g.n

    def test_walt_positions_shape_and_range(self, g):
        pos = batched_walt_positions_at(g, trials=5, steps=10, seed=3, pebbles=7)
        assert pos.shape == (5, 7)
        assert (pos >= 0).all() and (pos < g.n).all()

    def test_walt_positions_zero_steps_identity(self, g):
        pos = batched_walt_positions_at(g, trials=4, steps=0, start=2, seed=4)
        assert (pos == 2).all()

    def test_walt_positions_validation(self, g):
        with pytest.raises(ValueError, match="steps"):
            batched_walt_positions_at(g, trials=2, steps=-1)
        with pytest.raises(ValueError, match="pebble"):
            batched_walt_positions_at(g, trials=2, steps=1, pebbles=0)
