"""The cross-backend engine conformance harness (not itself a test file).

One declarative matrix — engine × topology × metric × backend — drives
every engine-parity suite, so a new backend (numba today, a JAX/CuPy
path tomorrow) inherits the full matrix by adding one ``backends``
entry instead of copying dozens of tests:

* :data:`SERIAL_PARITY_CASES` — the engines' distributional contract:
  each vectorized engine matches ``strategy="serial"`` at fixed seeds
  (means within a pooled CI).  These are the rows formerly scattered
  through ``test_batch_engines.py``.
* :data:`BACKEND_CASES` — the compiled backend's **bit-exactness**
  contract: for every (engine, topology, metric) with a kernel, the
  numba backend must reproduce the NumPy backend seed-for-seed,
  value-for-value.  Engines that cannot share the RNG stream would
  register here as ``kind="distributional"`` and be validated with a
  KS test instead; every kernel shipped today is bit-exact.

``tests/sim/test_batch_engines.py`` (serial parity) and
``tests/sim/test_conformance.py`` (backend parity) parametrize over
these tables; the helpers below are the single shared implementation
of "run this case under that backend".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.graphs import cycle_graph, grid, hypercube_oracle, star_graph
from repro.sim import run_batch

#: named topologies the matrix draws from — CSR and implicit-oracle
#: graphs, so backend lowering is exercised both ways
TOPOLOGIES: dict[str, Callable[[], Any]] = {
    "grid8x2": lambda: grid(8, 2),
    "cycle24": lambda: cycle_graph(24),
    "star16": lambda: star_graph(16),
    "hypercube5": lambda: hypercube_oracle(5),
}


@dataclass(frozen=True)
class ConformanceCase:
    """One engine-conformance row.

    ``kind="bit_exact"`` rows assert value-for-value equality between
    backends; ``kind="distributional"`` rows assert a two-sample KS
    statistic below :data:`KS_LIMIT` (for engines that cannot share
    the reference RNG stream).
    """

    engine: str
    topology: str
    metric: str = "cover"
    target: str | None = None  # "last" → n - 1, resolved per topology
    params: dict[str, Any] = field(default_factory=dict)
    backends: tuple[str, ...] = ("numpy", "numba")
    kind: str = "bit_exact"
    trials: int = 12
    seed: int = 29

    @property
    def id(self) -> str:
        extras = "".join(f"-{k}{v}" for k, v in sorted(self.params.items()))
        return f"{self.engine}-{self.metric}-{self.topology}{extras}"

    def build_graph(self) -> Any:
        return TOPOLOGIES[self.topology]()

    def resolve_target(self, graph: Any) -> int | None:
        if self.target is None:
            return None
        if self.target == "last":
            return graph.n - 1
        raise ValueError(f"unknown conformance target rule {self.target!r}")

    def run(self, backend: str, *, strategy: str = "vectorized") -> np.ndarray:
        """The case's trial values under *backend* (one fresh graph)."""
        graph = self.build_graph()
        summary = run_batch(
            graph,
            self.engine,
            trials=self.trials,
            metric=self.metric,
            target=self.resolve_target(graph),
            seed=self.seed,
            strategy=strategy,
            backend=backend,
            **self.params,
        )
        return summary.values


#: maximal two-sample KS statistic for distributional rows
KS_LIMIT = 0.5


def assert_backend_match(case: ConformanceCase, ref: np.ndarray, got: np.ndarray) -> None:
    """The backend contract: bit-exact rows must agree value-for-value,
    distributional rows within a KS bound."""
    if case.kind == "bit_exact":
        assert np.array_equal(ref, got, equal_nan=True), (
            f"{case.id}: backend values diverge from the NumPy reference\n"
            f"  numpy: {ref}\n  other: {got}"
        )
        return
    from scipy.stats import ks_2samp

    stat = ks_2samp(ref[~np.isnan(ref)], got[~np.isnan(got)]).statistic
    assert stat <= KS_LIMIT, f"{case.id}: KS statistic {stat:.3f} > {KS_LIMIT}"


def assert_means_close(vec: Any, ser: Any) -> None:
    """Serial-parity contract: means within a pooled 95% CI (3 sigma of
    the combined SEM, plus a small absolute slack for tiny cover
    times)."""
    assert vec.failures == 0 and ser.failures == 0
    sem = float(np.hypot(vec.std / np.sqrt(vec.n), ser.std / np.sqrt(ser.n)))
    assert abs(vec.mean - ser.mean) <= 3.0 * sem + 2.0, (
        f"vectorized mean {vec.mean:.2f} vs serial {ser.mean:.2f} "
        f"(pooled sem {sem:.2f})"
    )


# ----------------------------------------------------------------------
# the matrices
# ----------------------------------------------------------------------
#: vectorized-vs-serial distributional parity (48 trials, seed 29, the
#: 8x2 grid): one row per engine configuration, formerly inline in
#: test_batch_engines.py.  (engine, params, metric, target)
SERIAL_PARITY_CASES: list[tuple[str, dict[str, Any], str | None, int | None]] = [
    ("push", {}, None, None),
    ("pull", {}, None, None),
    ("push_pull", {}, None, None),
    ("push", {}, "hit", 63),
    ("pull", {}, "hit", 63),
    ("push_pull", {}, "hit", 63),
    ("parallel", {"walkers": 4}, None, None),
    ("walt", {}, None, None),
    ("walt", {"delta": 0.25, "lazy": False}, None, None),
    ("cobra", {}, "hit", 63),
    ("simple", {}, "hit", 63),
    ("walt", {}, "hit", 63),
    ("lazy", {}, None, None),
    ("lazy", {}, "hit", 63),
    ("branching", {}, None, None),
    ("branching", {"k": 3, "population_cap": 64}, None, None),
    ("coalescing", {"walkers": 8}, "cover", None),
    # weak constant bias: the inverse-degree default pins the walk to
    # the target and pushes serial cover past 80k steps/trial — too
    # slow for a 48-trial parity check
    ("biased", {"eps": 0.05}, "cover", 63),
]

#: the compiled-backend matrix: every (engine, metric) pair with a
#: kernel, over CSR and implicit-oracle topologies.  All bit-exact —
#: a future non-bit-exact backend flips ``kind`` per row.
BACKEND_CASES: list[ConformanceCase] = [
    # cobra: cover + hit, pair (k=2, float32) and k-draw (k=3) paths
    ConformanceCase("cobra", "grid8x2"),
    ConformanceCase("cobra", "cycle24"),
    ConformanceCase("cobra", "star16"),
    ConformanceCase("cobra", "hypercube5"),
    ConformanceCase("cobra", "grid8x2", params={"k": 3}),
    ConformanceCase("cobra", "grid8x2", metric="hit", target="last"),
    ConformanceCase("cobra", "cycle24", metric="hit", target="last"),
    ConformanceCase("cobra", "hypercube5", metric="hit", target="last"),
    # simple walk: cover + hit
    ConformanceCase("simple", "grid8x2"),
    ConformanceCase("simple", "star16"),
    ConformanceCase("simple", "grid8x2", metric="hit", target="last"),
    ConformanceCase("simple", "cycle24", metric="hit", target="last"),
    # parallel walkers
    ConformanceCase("parallel", "grid8x2", params={"walkers": 4}),
    ConformanceCase("parallel", "cycle24", params={"walkers": 2}),
    ConformanceCase("parallel", "hypercube5", params={"walkers": 3}),
    # walt: lazy + non-lazy cover, hit
    ConformanceCase("walt", "grid8x2"),
    ConformanceCase("walt", "cycle24", params={"delta": 0.25, "lazy": False}),
    ConformanceCase("walt", "hypercube5"),
    ConformanceCase("walt", "grid8x2", metric="hit", target="last"),
    ConformanceCase("walt", "star16", metric="hit", target="last"),
]
