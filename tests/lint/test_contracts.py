"""The import-time contract audit (RPL200/201/202/203).

Positive direction: the live registries and the committed docs must
audit clean — this is the same check CI runs via ``--contracts``.
Negative direction: injected broken specs / a stripped docs tree must
produce the right findings.
"""

from pathlib import Path

from repro.lint.contracts import (
    DOC_ANCHORS,
    audit_docs,
    audit_implicit_oracles,
    audit_process_engines,
    audit_sweeps,
    run_contract_audit,
)
from repro.sim.processes import ProcessSpec

REPO = Path(__file__).resolve().parent.parent.parent


class TestLiveRegistriesAuditClean:
    def test_every_registered_sweep_expands(self):
        assert audit_sweeps() == []

    def test_every_registered_engine_binds_the_protocol(self):
        assert audit_process_engines() == []

    def test_committed_docs_resolve_every_anchor(self):
        assert audit_docs(REPO) == []

    def test_every_implicit_topology_binds_the_oracle_contract(self):
        assert audit_implicit_oracles() == []

    def test_full_audit_is_clean(self):
        assert run_contract_audit(REPO) == []


class TestEngineAuditNegative:
    def test_factory_missing_protocol_keywords_is_flagged(self):
        def bad_factory(graph):  # no start/seed/target
            return None

        spec = ProcessSpec(
            name="broken",
            factory=bad_factory,
            capabilities=frozenset({"cover"}),
            default_metric="cover",
            default_budget=10,
            batch_cover=lambda *, trials, start, seed, max_steps: None,
        )
        findings = audit_process_engines([spec])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "RPL201"
        assert "factory" in finding.message
        assert "process:broken" in finding.path

    def test_batch_engine_missing_keywords_is_flagged(self):
        spec = ProcessSpec(
            name="broken",
            factory=lambda *, start, seed, target=None: None,
            capabilities=frozenset({"cover"}),
            default_metric="cover",
            default_budget=10,
            batch_cover=lambda trials: None,  # cannot bind start/seed/max_steps
        )
        findings = audit_process_engines([spec])
        assert [f.rule for f in findings] == ["RPL201"]
        assert "batch_cover" in findings[0].message

    def test_var_keyword_engines_pass(self):
        spec = ProcessSpec(
            name="kwargs-ok",
            factory=lambda **kwargs: None,
            capabilities=frozenset({"cover", "hit"}),
            default_metric="cover",
            default_budget=10,
            batch_cover=lambda **kwargs: None,
            batch_hit=lambda **kwargs: None,
        )
        assert audit_process_engines([spec]) == []


class TestDocsAuditNegative:
    def test_missing_page_is_flagged(self, tmp_path):
        findings = audit_docs(tmp_path)
        flagged_pages = {f.path for f in findings}
        assert flagged_pages == set(DOC_ANCHORS)
        assert all(f.rule == "RPL202" for f in findings)

    def test_missing_anchor_is_flagged_by_name(self, tmp_path):
        page = tmp_path / "docs" / "static-analysis.md"
        page.parent.mkdir(parents=True)
        anchors = DOC_ANCHORS["docs/static-analysis.md"]
        page.write_text("\n".join(anchors[:-1]), encoding="utf-8")
        findings = [
            f for f in audit_docs(tmp_path) if f.path == "docs/static-analysis.md"
        ]
        assert len(findings) == 1
        assert anchors[-1] in findings[0].message


class TestImplicitAuditNegative:
    """Injected broken registry entries produce RPL203 findings."""

    def _findings_for(self, monkeypatch, entry):
        import repro.graphs.implicit as implicit

        monkeypatch.setitem(implicit.IMPLICIT_TOPOLOGIES, "bogus", entry)
        return [f for f in audit_implicit_oracles() if f.path == "implicit:bogus"]

    def test_unexported_builder_is_flagged(self, monkeypatch):
        findings = self._findings_for(monkeypatch, ("no_such_builder", {}))
        assert [f.rule for f in findings] == ["RPL203"]
        assert "not exported" in findings[0].message

    def test_non_oracle_builder_is_flagged(self, monkeypatch):
        # cycle_graph resolves and builds, but returns a CSR Graph
        findings = self._findings_for(monkeypatch, ("cycle_graph", {"n": 8}))
        assert [f.rule for f in findings] == ["RPL203"]
        assert "not a NeighborOracle" in findings[0].message

    def test_broken_example_params_are_flagged(self, monkeypatch):
        findings = self._findings_for(monkeypatch, ("torus_oracle", {"n": 0}))
        assert [f.rule for f in findings] == ["RPL203"]
        assert "build/round-trip failed" in findings[0].message


class TestAnchorHygiene:
    def test_anchor_lists_are_non_empty_and_unique(self):
        for page, anchors in DOC_ANCHORS.items():
            assert anchors, page
            assert len(anchors) == len(set(anchors)), page
