"""Per-rule fixtures for the AST rules in ``repro.lint.rules``.

Each rule gets at least one positive fixture (the violation fires, at
the right line, with the right severity) and one negative fixture (the
compliant spelling stays silent).  Paths are synthetic POSIX strings —
the rules scope themselves by path substring, so a fixture opts into a
scope by naming itself e.g. ``src/repro/store/foo.py``.
"""

import textwrap

import pytest

from repro.lint import ERROR, WARNING, all_rules, get_rule, lint_source

# paths inside / outside the scopes the rules key on
ENGINE = "src/repro/sim/engine.py"
STORE = "src/repro/store/store.py"
LOCKING = "src/repro/store/locking.py"
BACKEND = "src/repro/store/backend.py"
RNG = "src/repro/sim/rng.py"
DISPATCH = "src/repro/store/dispatch.py"
FACADE = "src/repro/sim/facade.py"
EXAMPLE = "examples/demo.py"


def findings_for(source: str, path: str, rule_id: str | None = None):
    found = lint_source(textwrap.dedent(source), path)
    if rule_id is None:
        return found
    return [f for f in found if f.rule == rule_id]


class TestRegistry:
    def test_rule_ids_are_unique_and_sorted(self):
        ids = [r.id for r in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_every_rule_has_invariant_and_fix(self):
        for rule in all_rules():
            assert rule.invariant, rule.id
            assert rule.fix, rule.id
            assert rule.severity in (ERROR, WARNING), rule.id

    def test_get_rule_raises_on_unknown_id(self):
        with pytest.raises(KeyError):
            get_rule("RPL999")


class TestRPL010Parse:
    def test_syntax_error_becomes_a_finding_not_a_crash(self):
        (finding,) = findings_for("def broken(:\n", EXAMPLE)
        assert finding.rule == "RPL010"
        assert finding.severity == ERROR
        assert "does not parse" in finding.message


class TestRPL100LegacyNumpyRandom:
    def test_np_random_seed_fires_anywhere(self):
        src = """\
        import numpy as np
        np.random.seed(0)
        """
        (finding,) = findings_for(src, EXAMPLE, "RPL100")
        assert finding.line == 2
        assert finding.severity == ERROR
        assert "global RNG" in finding.message

    def test_legacy_distribution_calls_fire(self):
        src = """\
        import numpy as np
        x = np.random.normal(0, 1, size=10)
        """
        assert findings_for(src, EXAMPLE, "RPL100")

    def test_from_import_alias_fires(self):
        src = """\
        from numpy.random import seed as np_seed
        np_seed(0)
        """
        assert findings_for(src, EXAMPLE, "RPL100")

    def test_generator_methods_do_not_fire(self):
        src = """\
        from repro.sim.rng import resolve_rng
        rng = resolve_rng(0)
        x = rng.normal(0, 1, size=10)
        """
        assert not findings_for(src, EXAMPLE, "RPL100")


class TestRPL101StdlibRandom:
    def test_import_random_in_engine_scope_fires(self):
        (finding,) = findings_for("import random\n", ENGINE, "RPL101")
        assert finding.severity == ERROR

    def test_from_random_import_fires(self):
        assert findings_for("from random import choice\n", STORE, "RPL101")

    def test_outside_engine_scope_is_allowed(self):
        assert not findings_for("import random\n", EXAMPLE, "RPL101")


class TestRPL102RngConstruction:
    def test_default_rng_outside_rng_module_fires(self):
        src = """\
        import numpy as np
        rng = np.random.default_rng(3)
        """
        (finding,) = findings_for(src, STORE, "RPL102")
        assert "sim/rng.py" in finding.message

    def test_from_import_generator_fires(self):
        src = """\
        from numpy.random import default_rng
        rng = default_rng(3)
        """
        assert findings_for(src, EXAMPLE, "RPL102")

    def test_rng_module_itself_is_exempt(self):
        src = """\
        import numpy as np
        rng = np.random.default_rng(3)
        """
        assert not findings_for(src, RNG, "RPL102")


class TestRPL103WallClock:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nt = time.time()\n",
            "import datetime\nnow = datetime.datetime.now()\n",
            "from datetime import datetime\nnow = datetime.utcnow()\n",
            "import os\nnoise = os.urandom(8)\n",
        ],
    )
    def test_wallclock_reads_fire_outside_allowlist(self, snippet):
        (finding,) = findings_for(snippet, ENGINE, "RPL103")
        assert finding.severity == ERROR
        assert "allowlist" in finding.message

    def test_dispatch_module_is_allowlisted(self):
        assert not findings_for("import time\nt = time.time()\n", DISPATCH, "RPL103")

    def test_monotonic_clock_is_allowed(self):
        assert not findings_for(
            "import time\nt = time.monotonic()\n", ENGINE, "RPL103"
        )


class TestRPL110RawStoreWrites:
    def test_builtin_open_write_mode_fires(self):
        src = 'handle = open("shards/x.jsonl", "w")\n'
        (finding,) = findings_for(src, STORE, "RPL110")
        assert "locking" in finding.message

    def test_path_open_append_mode_fires(self):
        src = """\
        from pathlib import Path
        with Path("claims.jsonl").open("a") as fh:
            fh.write("x")
        """
        assert findings_for(src, STORE, "RPL110")

    def test_mode_keyword_fires(self):
        src = 'open("x", mode="a+")\n'
        assert findings_for(src, STORE, "RPL110")

    def test_read_mode_is_allowed(self):
        assert not findings_for('open("x", "r")\n', STORE, "RPL110")

    @pytest.mark.parametrize("method", ["write_text", "write_bytes"])
    def test_whole_blob_rewrite_fires(self, method):
        src = f"""\
        from pathlib import Path
        Path("shards/x.jsonl").{method}(data)
        """
        (finding,) = findings_for(src, STORE, "RPL110")
        assert "compare_and_swap" in finding.message

    @pytest.mark.parametrize("path", [LOCKING, BACKEND])
    def test_seam_modules_are_exempt(self, path):
        assert not findings_for('open("x", "a")\n', path, "RPL110")
        assert not findings_for(
            'Path("x").write_text("y")\n', path, "RPL110"
        )

    def test_outside_store_is_allowed(self):
        assert not findings_for('open("x", "w")\n', EXAMPLE, "RPL110")
        assert not findings_for(
            'Path("x").write_text("y")\n', EXAMPLE, "RPL110"
        )


class TestRPL111FlockRelease:
    def test_bare_acquire_fires(self):
        src = """\
        import fcntl
        def grab(fh):
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            fh.write("claim")
        """
        (finding,) = findings_for(src, DISPATCH, "RPL111")
        assert finding.severity == ERROR
        assert "finally" in finding.message

    def test_acquire_inside_with_is_allowed(self):
        src = """\
        import fcntl
        def grab(path):
            with open(path) as fh:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                fh.write("claim")
        """
        assert not findings_for(src, EXAMPLE, "RPL111")

    def test_try_finally_unlock_is_allowed(self):
        src = """\
        import fcntl
        def grab(fh):
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                fh.write("claim")
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        """
        assert not findings_for(src, EXAMPLE, "RPL111")

    def test_unlock_call_itself_does_not_fire(self):
        src = """\
        import fcntl
        def drop(fh):
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        """
        assert not findings_for(src, EXAMPLE, "RPL111")


class TestRPL111LeaseRelease:
    """The seam generalisation: try_claim must pair with a release on
    the error path, the lease analogue of flock/LOCK_UN."""

    def test_claim_without_abandon_path_fires(self):
        src = """\
        def work(ledger, hashes, owner):
            won = ledger.try_claim(hashes, owner=owner)
            for h in won:
                run(h)
                ledger.release(h, owner=owner, op="done")
        """
        (finding,) = findings_for(src, DISPATCH, "RPL111")
        assert "abandon" in finding.message

    def test_release_in_except_handler_is_allowed(self):
        src = """\
        def work(ledger, hashes, owner):
            won = ledger.try_claim(hashes, owner=owner)
            for h in won:
                try:
                    run(h)
                except BaseException:
                    ledger.release(h, owner=owner, op="abandon")
                    raise
                ledger.release(h, owner=owner, op="done")
        """
        assert not findings_for(src, DISPATCH, "RPL111")

    def test_release_in_finally_is_allowed(self):
        src = """\
        def work(ledger, h, owner):
            ledger.try_claim([h], owner=owner)
            try:
                run(h)
            finally:
                ledger.release(h, owner=owner)
        """
        assert not findings_for(src, DISPATCH, "RPL111")


SPEC_PREFIX = "from repro.sim.processes import ProcessSpec\n"


class TestRPL120CoverEngine:
    def test_cover_without_batch_cover_is_an_error(self):
        src = SPEC_PREFIX + (
            'spec = ProcessSpec(name="x", factory=object,'
            ' capabilities=frozenset({"cover"}))\n'
        )
        (finding,) = findings_for(src, ENGINE, "RPL120")
        assert finding.severity == ERROR

    def test_cover_with_batch_cover_is_allowed(self):
        src = SPEC_PREFIX + (
            'spec = ProcessSpec(name="x", factory=object,'
            ' capabilities=frozenset({"cover"}), batch_cover=object)\n'
        )
        assert not findings_for(src, ENGINE, "RPL120")


class TestRPL121HitEngineGap:
    def test_hit_without_batch_hit_is_a_warning(self):
        src = SPEC_PREFIX + (
            'spec = ProcessSpec(name="x", factory=object,'
            ' capabilities=frozenset({"hit"}))\n'
        )
        (finding,) = findings_for(src, ENGINE, "RPL121")
        assert finding.severity == WARNING

    def test_hit_with_batch_hit_is_allowed(self):
        src = SPEC_PREFIX + (
            'spec = ProcessSpec(name="x", factory=object,'
            ' capabilities=frozenset({"hit"}), batch_hit=object)\n'
        )
        assert not findings_for(src, ENGINE, "RPL121")


class TestRPL130Annotations:
    def test_unannotated_public_function_fires_in_gated_module(self):
        src = """\
        def simulate(graph, seed):
            return None
        """
        found = findings_for(src, FACADE, "RPL130")
        assert found
        assert any("graph" in f.message for f in found)
        assert any("return" in f.message for f in found)

    def test_fully_annotated_function_is_silent(self):
        src = """\
        def simulate(graph: object, seed: int | None = None) -> None:
            return None
        """
        assert not findings_for(src, FACADE, "RPL130")

    def test_private_functions_are_exempt(self):
        assert not findings_for("def _helper(x):\n    return x\n", FACADE, "RPL130")

    def test_public_method_self_is_exempt_but_args_are_not(self):
        src = """\
        class Facade:
            def run(self, trials):
                return trials
        """
        found = findings_for(src, FACADE, "RPL130")
        assert found
        assert all("self" not in f.message for f in found)

    def test_ungated_modules_are_exempt(self):
        assert not findings_for("def f(x):\n    return x\n", EXAMPLE, "RPL130")

    def test_kernels_module_is_gated(self):
        src = "def kernel_for(process, metric):\n    return None\n"
        assert findings_for(src, "src/repro/sim/kernels_numba.py", "RPL130")


class TestRPL140KernelRNG:
    KERNELS = "src/repro/sim/kernels_numba.py"

    def test_rng_draw_inside_njit_kernel_fires(self):
        src = """\
        @_njit
        def _step(indptr, indices, rng, pos):
            u = rng.random(pos.size)
            return u
        """
        found = findings_for(src, self.KERNELS, "RPL140")
        assert found
        assert any("rng.random" in f.message for f in found)
        assert any("RNG parameter" in f.message for f in found)

    def test_rng_construction_inside_kernel_fires(self):
        src = """\
        @njit(cache=True)
        def _step(seed):
            g = resolve_rng(seed)
            return g
        """
        found = findings_for(src, self.KERNELS, "RPL140")
        assert found and "resolve_rng" in found[0].message

    def test_numba_attribute_decorator_is_recognised(self):
        src = """\
        import numba

        @numba.njit
        def _step(child_rng):
            return child_rng
        """
        assert findings_for(src, self.KERNELS, "RPL140")

    def test_draws_outside_kernels_are_fine(self):
        # the Python-level engine wrapper is exactly where draws belong
        src = """\
        def engine(graph, *, trials, seed=None):
            rng = resolve_rng(seed)
            return rng.random(trials)
        """
        assert not findings_for(src, self.KERNELS, "RPL140")

    def test_deterministic_kernel_is_silent(self):
        src = """\
        @_njit
        def _step(indptr, indices, u, pos):
            for i in range(pos.shape[0]):
                pos[i] = indices[indptr[pos[i]] + int(u[i] * 3)]
        """
        assert not findings_for(src, self.KERNELS, "RPL140")

    def test_fires_in_any_module_not_just_kernels(self):
        # a kernel snuck into an example file is the same violation
        src = """\
        @njit
        def bad(rng):
            return rng.integers(10)
        """
        assert findings_for(src, EXAMPLE, "RPL140")

    def test_shipped_kernels_module_is_clean(self):
        from pathlib import Path

        import repro.sim.kernels_numba as km

        path = Path(km.__file__)
        assert not findings_for(
            path.read_text(encoding="utf-8"), "src/repro/sim/kernels_numba.py",
            "RPL140",
        )


class TestRPL150RawClockReads:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nt = time.perf_counter()\n",
            "import time\nt = time.monotonic()\n",
            "import time\nt = time.time()\n",
            "import time\nt = time.process_time_ns()\n",
            "from time import perf_counter\nt = perf_counter()\n",
            "from time import perf_counter as pc\nt = pc()\n",
        ],
    )
    def test_clock_reads_fire_in_sim_and_store(self, snippet):
        for path in (ENGINE, STORE):
            (finding,) = findings_for(snippet, path, "RPL150")
            assert finding.severity == ERROR
            assert "Tracer clock" in finding.message

    def test_outside_sim_store_is_silent(self):
        src = "import time\nt = time.perf_counter()\n"
        assert not findings_for(src, EXAMPLE, "RPL150")

    def test_dispatch_lease_ttls_are_allowlisted(self):
        assert not findings_for(
            "import time\nt = time.time()\n", DISPATCH, "RPL150"
        )

    def test_sleep_is_waiting_not_reading(self):
        assert not findings_for(
            "import time\ntime.sleep(0.1)\n", ENGINE, "RPL150"
        )

    def test_injected_tracer_clock_is_the_compliant_spelling(self):
        src = """\
        from repro.obs.trace import current_tracer
        t0 = current_tracer().clock()
        """
        assert not findings_for(src, ENGINE, "RPL150")

    def test_shipped_sim_and_store_trees_are_clean(self):
        from pathlib import Path

        import repro.sim as sim

        src_root = Path(sim.__file__).resolve().parent.parent
        for module in sorted(src_root.glob("sim/*.py")) + sorted(
            src_root.glob("store/*.py")
        ):
            rel = f"src/repro/{module.parent.name}/{module.name}"
            assert not findings_for(
                module.read_text(encoding="utf-8"), rel, "RPL150"
            ), rel


class TestOrderingAndRendering:
    def test_findings_sorted_by_position(self):
        src = """\
        import numpy as np
        import random
        np.random.seed(0)
        """
        found = findings_for(src, ENGINE)
        assert [f.line for f in found] == sorted(f.line for f in found)

    def test_render_is_path_line_col_rule(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        (finding,) = findings_for(src, EXAMPLE, "RPL100")
        rendered = finding.render()
        assert rendered.startswith(f"{EXAMPLE}:2:")
        assert "RPL100" in rendered and "[error]" in rendered
