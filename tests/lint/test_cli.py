"""The ``python -m repro.lint`` CLI: exit codes, JSON, explain, and the
acceptance fixture (a file holding ``np.random.seed(0)`` must fail)."""

import io
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import Finding, all_rules
from repro.lint.cli import KNOWN_RULE_IDS, main

REPO = Path(__file__).resolve().parent.parent.parent

VIOLATION = "import numpy as np\nnp.random.seed(0)\n"
CLEAN = "from repro.sim.rng import resolve_rng\nrng = resolve_rng(0)\n"


def run_cli(*argv: str):
    out = io.StringIO()
    status = main(list(argv), out=out)
    return status, out.getvalue()


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text(CLEAN)
        status, text = run_cli(str(target))
        assert status == 0
        assert "0 error(s)" in text

    def test_np_random_seed_fixture_exits_one_with_rpl100(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(VIOLATION)
        status, text = run_cli(str(target))
        assert status == 1
        assert "RPL100" in text
        assert "dirty.py:2:" in text

    def test_warnings_alone_exit_zero(self, tmp_path):
        target = tmp_path / "src" / "repro" / "sim" / "procs.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "from repro.sim.processes import ProcessSpec\n"
            'spec = ProcessSpec(name="x", factory=object,'
            ' capabilities=frozenset({"hit"}))\n'
        )
        status, text = run_cli(str(target))
        assert status == 0
        assert "RPL121" in text and "1 warning(s)" in text

    def test_no_paths_no_contracts_is_a_usage_error(self):
        status, _ = run_cli()
        assert status == 2

    def test_missing_path_is_a_usage_error(self, tmp_path):
        status, _ = run_cli(str(tmp_path / "no-such-dir"))
        assert status == 2


class TestJsonFormat:
    def test_json_round_trips_through_finding_from_dict(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(VIOLATION)
        status, text = run_cli(str(target), "--format=json")
        assert status == 1
        doc = json.loads(text)
        assert doc["errors"] == 1 and doc["warnings"] == 0
        findings = [Finding.from_dict(entry) for entry in doc["findings"]]
        assert [f.rule for f in findings] == ["RPL100"]
        assert findings[0].to_dict() == doc["findings"][0]

    def test_clean_json_document(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text(CLEAN)
        status, text = run_cli(str(target), "--format=json")
        assert status == 0
        assert json.loads(text) == {"findings": [], "errors": 0, "warnings": 0}


class TestExplainAndList:
    def test_explain_prints_invariant_and_fix(self):
        status, text = run_cli("--explain", "RPL100")
        assert status == 0
        assert "RPL100" in text and "Invariant:" in text and "Fix:" in text

    def test_explain_is_case_insensitive(self):
        status, _ = run_cli("--explain", "rpl103")
        assert status == 0

    def test_explain_unknown_rule_is_a_usage_error(self):
        status, _ = run_cli("--explain", "RPL999")
        assert status == 2

    def test_list_names_every_registered_rule(self):
        status, text = run_cli("--list")
        assert status == 0
        for rule in all_rules():
            assert rule.id in text

    def test_known_rule_ids_cover_the_registry(self):
        assert set(KNOWN_RULE_IDS) == {rule.id for rule in all_rules()}


class TestCommittedTreeIsClean:
    """The acceptance criterion: the merged tree lints clean."""

    @pytest.mark.parametrize(
        "paths",
        [("src",), ("src", "benchmarks", "examples", "ci")],
        ids=["src", "all-ci-paths"],
    )
    def test_module_invocation_exits_zero(self, paths):
        env_src = str(REPO / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", *paths],
            cwd=REPO,
            env={**os.environ, "PYTHONPATH": env_src},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_the_linter_lints_itself(self):
        status, text = run_cli(str(REPO / "src" / "repro" / "lint"))
        assert status == 0, text
