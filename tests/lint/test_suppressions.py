"""Suppression directives: line scope, file scope, and the RPL000 audit."""

import textwrap

from repro.lint import lint_source
from repro.lint.suppressions import parse_suppressions

PATH = "examples/demo.py"


def lint(source: str):
    return lint_source(textwrap.dedent(source), PATH)


class TestParsing:
    def test_line_and_file_scopes(self):
        supp = parse_suppressions(
            "x = 1  # repro-lint: disable=RPL100\n"
            "# repro-lint: disable-file=RPL103\n"
        )
        assert supp.by_line == {1: {"RPL100"}}
        assert supp.by_file == {"RPL103": 2}

    def test_comma_separated_ids(self):
        supp = parse_suppressions("x = 1  # repro-lint: disable=RPL100, RPL102\n")
        assert supp.by_line == {1: {"RPL100", "RPL102"}}

    def test_directive_inside_string_literal_is_ignored(self):
        supp = parse_suppressions('text = "# repro-lint: disable=RPL100"\n')
        assert not supp.by_line and not supp.by_file


class TestLineSuppression:
    def test_same_line_directive_silences_the_finding(self):
        found = lint(
            """\
            import numpy as np
            np.random.seed(0)  # repro-lint: disable=RPL100
            """
        )
        assert found == []

    def test_directive_on_another_line_does_not_apply(self):
        found = lint(
            """\
            import numpy as np  # repro-lint: disable=RPL100
            np.random.seed(0)
            """
        )
        rules = {f.rule for f in found}
        # the violation still fires AND the misplaced directive is stale
        assert rules == {"RPL100", "RPL000"}

    def test_directive_for_a_different_rule_does_not_apply(self):
        found = lint(
            """\
            import numpy as np
            np.random.seed(0)  # repro-lint: disable=RPL103
            """
        )
        assert {f.rule for f in found} == {"RPL100", "RPL000"}


class TestFileSuppression:
    def test_disable_file_silences_every_occurrence(self):
        found = lint(
            """\
            # repro-lint: disable-file=RPL100
            import numpy as np
            np.random.seed(0)
            np.random.seed(1)
            """
        )
        assert found == []


class TestUnusedSuppressionAudit:
    def test_stale_directive_is_an_error(self):
        found = lint("x = 1  # repro-lint: disable=RPL100\n")
        (finding,) = found
        assert finding.rule == "RPL000"
        assert finding.severity == "error"
        assert finding.line == 1
        assert "RPL100" in finding.message

    def test_stale_disable_file_is_an_error(self):
        found = lint("# repro-lint: disable-file=RPL110\nx = 1\n")
        (finding,) = found
        assert finding.rule == "RPL000"

    def test_used_directive_is_not_reported(self):
        found = lint(
            """\
            import numpy as np
            np.random.seed(0)  # repro-lint: disable=RPL100
            x = 1
            """
        )
        assert not [f for f in found if f.rule == "RPL000"]
