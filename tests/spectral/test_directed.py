"""Tests for Chung's directed Cheeger machinery against Lemma 11."""

import numpy as np
import pytest

from repro.graphs import complete_graph, cycle_graph, walt_pair_chain
from repro.spectral import (
    chung_convergence_steps,
    chung_lambda_bounds,
    circulation,
    circulation_balance_residual,
    chi_square_distance,
    directed_cheeger_exact,
    directed_laplacian_lambda1,
    evolve,
    walt_pair_cheeger_lower_bound,
)
from repro.spectral.matrices import transition_matrix


class TestCirculation:
    def test_pair_chain_circulation_balances(self):
        chain = walt_pair_chain(cycle_graph(5))
        f = circulation(chain.transition, chain.stationary)
        assert circulation_balance_residual(f) < 1e-14

    def test_non_stationary_does_not_balance(self):
        chain = walt_pair_chain(cycle_graph(5))
        wrong = np.full(25, 1 / 25)
        f = circulation(chain.transition, wrong)
        assert circulation_balance_residual(f) > 1e-4


class TestDirectedCheeger:
    def test_undirected_walk_reduces_to_conductance_like_value(self):
        # For a reversible chain, h equals the lazy walk's bottleneck ratio.
        g = cycle_graph(6)
        p = transition_matrix(g, lazy=True)
        pi = np.full(6, 1 / 6)
        h = directed_cheeger_exact(p, pi)
        # cut of 3 consecutive vertices: flow = 2 edges * pi/d * 1/2(lazy)
        # F(bnd) = 2 * (1/6)*(1/4); F(S) = 3*(1/6)*(1/2) [off-diagonal mass]
        expect = (2 * (1 / 6) * (1 / 4)) / (3 * (1 / 6) * (1 / 2))
        assert h == pytest.approx(expect)

    def test_guard_on_size(self):
        chain = walt_pair_chain(cycle_graph(7))
        with pytest.raises(ValueError, match="infeasible"):
            directed_cheeger_exact(chain.transition, chain.stationary)

    def test_paper_lower_bound_holds_exactly(self):
        # exact h of the pair chain must exceed phi/(4 d^2)
        g = complete_graph(4)  # 3-regular, n=4 -> 16 states, enumerable
        chain = walt_pair_chain(g)
        h = directed_cheeger_exact(chain.transition, chain.stationary, max_states=16)
        phi = 1.0  # K4: any S with vol<=half has cut/vol >= ... exact: |S|=2: cut 4, vol 6 -> 2/3; |S|=1: 3/3=1 -> phi=2/3
        phi = 2 / 3
        assert h >= walt_pair_cheeger_lower_bound(phi, 3) - 1e-12


class TestChungBounds:
    def test_lambda_bounds_bracket_lambda1(self):
        g = complete_graph(4)
        chain = walt_pair_chain(g)
        h = directed_cheeger_exact(chain.transition, chain.stationary, max_states=16)
        lam = directed_laplacian_lambda1(chain.transition, chain.stationary)
        lo, hi = chung_lambda_bounds(h)
        assert lo - 1e-12 <= lam <= hi + 1e-12

    def test_convergence_steps_bound_is_sufficient(self):
        # after the prescribed steps the chi-square distance <= e^{-c}
        g = cycle_graph(5)
        chain = walt_pair_chain(g)
        lam = directed_laplacian_lambda1(chain.transition, chain.stationary)
        c = 2.0
        t = chung_convergence_steps(lam, chain.stationary.min(), c)
        start = np.zeros(25)
        start[chain.state_id(0, 2)] = 1.0
        dist = evolve(chain.transition, start, t)
        assert chi_square_distance(dist, chain.stationary) <= np.exp(-c) + 1e-9

    def test_collision_probability_matches_lemma11_bound(self):
        # Pr[pebbles i,j collide at a given v at time s] <= 2/(n^2+n) + 1/n^4
        # (odd cycle: bipartite bases make the pair chain reducible)
        n = 7
        chain = walt_pair_chain(cycle_graph(n))
        lam = directed_laplacian_lambda1(chain.transition, chain.stationary)
        c = 4 * np.log(n * n)
        s = chung_convergence_steps(lam, chain.stationary.min(), c)
        start = np.zeros(n * n)
        start[chain.state_id(0, 3)] = 1.0
        dist = evolve(chain.transition, start, s)
        bound = 2 / (n * n + n) + 1 / n**4
        for v in range(n):
            assert dist[chain.state_id(v, v)] <= bound + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            chung_convergence_steps(0.0, 0.1, 1.0)
        with pytest.raises(ValueError):
            chung_convergence_steps(0.5, 0.0, 1.0)
        with pytest.raises(ValueError):
            chung_lambda_bounds(-1.0)
        with pytest.raises(ValueError):
            walt_pair_cheeger_lower_bound(0.0, 2)
