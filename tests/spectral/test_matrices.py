"""Tests for sparse matrix views."""

import numpy as np
import pytest

from repro.graphs import cycle_graph, from_edge_list, path_graph, star_graph
from repro.spectral import (
    adjacency_matrix,
    combinatorial_laplacian,
    normalized_adjacency,
    normalized_laplacian,
    transition_matrix,
)


class TestAdjacency:
    def test_symmetric(self, any_graph):
        a = adjacency_matrix(any_graph)
        assert (a != a.T).nnz == 0

    def test_row_sums_are_degrees(self, any_graph):
        a = adjacency_matrix(any_graph)
        rows = np.asarray(a.sum(axis=1)).ravel()
        assert np.array_equal(rows, any_graph.degrees)

    def test_entries(self):
        a = adjacency_matrix(path_graph(3)).toarray()
        assert np.array_equal(a, [[0, 1, 0], [1, 0, 1], [0, 1, 0]])


class TestTransition:
    def test_row_stochastic(self, any_graph):
        p = transition_matrix(any_graph)
        rows = np.asarray(p.sum(axis=1)).ravel()
        assert np.allclose(rows, 1.0)

    def test_lazy_halves(self):
        g = cycle_graph(5)
        p = transition_matrix(g, lazy=True).toarray()
        assert np.allclose(np.diag(p), 0.5)
        assert p[0, 1] == pytest.approx(0.25)

    def test_star_rows(self):
        p = transition_matrix(star_graph(5)).toarray()
        assert np.allclose(p[0, 1:], 0.25)
        assert p[1, 0] == 1.0

    def test_isolated_vertex_raises(self):
        g = from_edge_list(3, [(0, 1)])
        with pytest.raises(ValueError, match="isolated"):
            transition_matrix(g)

    def test_detailed_balance(self, any_graph):
        # pi(u) P(u,v) = pi(v) P(v,u) for the simple walk
        from repro.spectral import stationary_distribution

        p = transition_matrix(any_graph).toarray()
        pi = stationary_distribution(any_graph)
        flux = pi[:, None] * p
        assert np.allclose(flux, flux.T)


class TestLaplacians:
    def test_normalized_laplacian_psd(self, any_graph):
        lap = normalized_laplacian(any_graph).toarray()
        vals = np.linalg.eigvalsh(lap)
        assert vals.min() > -1e-10
        assert vals.max() < 2 + 1e-10
        assert abs(vals[0]) < 1e-10  # constant-in-D^{1/2} kernel

    def test_combinatorial_laplacian_rowsum_zero(self, any_graph):
        lap = combinatorial_laplacian(any_graph)
        assert np.allclose(np.asarray(lap.sum(axis=1)).ravel(), 0.0)

    def test_normalized_adjacency_spectrum_matches_walk(self):
        g = cycle_graph(7)
        na = normalized_adjacency(g).toarray()
        p = transition_matrix(g).toarray()
        va = np.sort(np.linalg.eigvalsh(na))
        vp = np.sort(np.linalg.eigvals(p).real)
        assert np.allclose(va, vp, atol=1e-8)
