"""Tests for conductance computation layers."""

import numpy as np
import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid,
    hypercube,
    lollipop,
    path_graph,
    random_regular,
)
from repro.spectral import (
    cheeger_interval,
    conductance_estimate,
    conductance_exact,
    conductance_sweep,
    cut_size,
    lambda2_normalized_laplacian,
    set_conductance,
)


class TestCutAndSetConductance:
    def test_cut_size_half_cycle(self):
        g = cycle_graph(10)
        member = np.zeros(10, dtype=bool)
        member[:5] = True
        assert cut_size(g, member) == 2

    def test_cut_size_single_vertex(self):
        g = complete_graph(6)
        member = np.zeros(6, dtype=bool)
        member[3] = True
        assert cut_size(g, member) == 5

    def test_set_conductance_paper_definition(self):
        # phi(S) = cut / vol(S), not the min-side volume
        g = cycle_graph(8)
        assert set_conductance(g, range(4)) == pytest.approx(2 / 8)
        assert set_conductance(g, [0]) == pytest.approx(2 / 2)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            set_conductance(cycle_graph(5), [])


class TestExactConductance:
    @pytest.mark.parametrize(
        "graph,phi",
        [
            (cycle_graph(8), 2 / 8),
            (cycle_graph(12), 2 / 12),
            (complete_graph(6), 9 / 15),  # K6: |S|=3 gives cut 9, vol 15
            (path_graph(8), 1 / 8),  # half path: cut 1, vol 8 (degrees 1+2+2+2... wait)
        ],
    )
    def test_known_families(self, graph, phi):
        if graph.name.startswith("path"):
            # path(8): best cut isolates 4 vertices at one end:
            # vol = 1+2+2+2 = 7, cut = 1 -> 1/7
            phi = 1 / 7
        assert conductance_exact(graph, max_n=16) == pytest.approx(phi)

    def test_hypercube_dimension_cut(self):
        g = hypercube(3)
        assert conductance_exact(g, max_n=8) == pytest.approx(1 / 3)

    def test_guard(self):
        with pytest.raises(ValueError, match="infeasible"):
            conductance_exact(cycle_graph(30))


class TestSpectralLayers:
    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(14), hypercube(4), grid(3, 2), lollipop(14)],
    )
    def test_cheeger_sandwich(self, graph):
        phi = conductance_exact(graph, max_n=16)
        lo, hi = cheeger_interval(graph)
        assert lo - 1e-9 <= phi <= hi + 1e-9

    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(14), hypercube(4), grid(3, 2), lollipop(14)],
    )
    def test_sweep_is_valid_upper_bound(self, graph):
        phi = conductance_exact(graph, max_n=16)
        sweep = conductance_sweep(graph)
        assert sweep >= phi - 1e-9
        # sweep must itself satisfy the Cheeger upper bound
        nu2 = lambda2_normalized_laplacian(graph)
        assert sweep <= np.sqrt(2 * nu2) + 1e-9

    def test_sweep_finds_cycle_cut(self):
        # the Fiedler vector orders the cycle; sweep should be exact here
        g = cycle_graph(20)
        assert conductance_sweep(g) == pytest.approx(2 / 20)

    def test_estimate_uses_meta(self):
        g = hypercube(6)
        est = conductance_estimate(g)
        assert est.method == "meta"
        assert est.estimate == pytest.approx(1 / 6)

    def test_estimate_exact_small(self):
        est = conductance_estimate(cycle_graph(10))
        assert est.method == "exact"
        assert est.estimate == pytest.approx(0.2)

    def test_estimate_spectral_bracket(self):
        g = random_regular(80, 4, seed=3)
        est = conductance_estimate(g)
        assert est.method == "spectral"
        assert 0 < est.lower <= est.upper
        assert est.lower <= est.estimate <= est.upper + 1e-12
