"""Tests for spectral gaps, stationary laws, and mixing estimates."""

import numpy as np
import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    from_edge_list,
    hypercube,
    star_graph,
)
from repro.spectral import (
    chi_square_distance,
    evolve,
    lambda2_normalized_laplacian,
    mixing_time_tv,
    pointwise_mixing_bound_steps,
    relaxation_time,
    spectral_gap,
    stationary_distribution,
    stationary_of_chain,
    theorem8_epoch_length,
    total_variation,
    transition_matrix,
)


class TestSpectralGap:
    def test_complete_graph_gap(self):
        # K_n walk eigenvalues: 1 and -1/(n-1) -> gap = n/(n-1)
        n = 9
        assert spectral_gap(complete_graph(n)) == pytest.approx(n / (n - 1))

    def test_cycle_gap_formula(self):
        # lambda_2 = cos(2*pi/n)
        n = 12
        assert spectral_gap(cycle_graph(n)) == pytest.approx(1 - np.cos(2 * np.pi / n))

    def test_hypercube_nu2(self):
        # normalized Laplacian eigenvalues are 2k/d -> nu2 = 2/d
        d = 5
        assert lambda2_normalized_laplacian(hypercube(d)) == pytest.approx(2 / d)

    def test_disconnected_gap_zero(self):
        g = from_edge_list(4, [(0, 1), (2, 3)])
        assert lambda2_normalized_laplacian(g) == pytest.approx(0.0, abs=1e-9)

    def test_lazy_halves_gap(self):
        g = cycle_graph(10)
        assert spectral_gap(g, lazy=True) == pytest.approx(spectral_gap(g) / 2)

    def test_relaxation_time_positive(self, any_graph):
        assert relaxation_time(any_graph) > 0


class TestStationary:
    def test_degree_proportional(self, any_graph):
        pi = stationary_distribution(any_graph)
        assert pi.sum() == pytest.approx(1.0)
        assert np.allclose(pi, any_graph.degrees / (2 * any_graph.m))

    def test_stationary_fixed_point(self, any_graph):
        p = transition_matrix(any_graph)
        pi = stationary_distribution(any_graph)
        assert np.allclose(pi @ p, pi)

    def test_power_iteration_agrees(self):
        g = star_graph(8)
        p = transition_matrix(g, lazy=True)
        pi = stationary_of_chain(p)
        assert np.allclose(pi, stationary_distribution(g), atol=1e-8)

    def test_power_iteration_periodic_fails(self):
        # non-lazy star walk: hub/leaf mass alternates 1/n <-> (n-1)/n
        # forever because the uniform start has the wrong class masses
        p = transition_matrix(star_graph(5))
        with pytest.raises(RuntimeError):
            stationary_of_chain(p, max_iters=500)


class TestDistances:
    def test_total_variation_range(self):
        assert total_variation([1, 0], [0, 1]) == 1.0
        assert total_variation([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_chi_square_dominates_tv(self):
        rng = np.random.default_rng(3)
        pi = rng.random(10)
        pi /= pi.sum()
        p = rng.random(10)
        p /= p.sum()
        assert chi_square_distance(p, pi) >= total_variation(p, pi)

    def test_chi_square_zero_at_stationary(self):
        pi = np.full(5, 0.2)
        assert chi_square_distance(pi, pi) == 0.0

    def test_evolve_preserves_mass(self):
        g = cycle_graph(9)
        p = transition_matrix(g, lazy=True)
        d0 = np.zeros(9)
        d0[0] = 1.0
        d5 = evolve(p, d0, 5)
        assert d5.sum() == pytest.approx(1.0)

    def test_evolve_zero_steps_identity(self):
        g = cycle_graph(5)
        p = transition_matrix(g)
        d = np.full(5, 0.2)
        assert np.array_equal(evolve(p, d, 0), d)


class TestMixing:
    def test_complete_graph_mixes_instantly(self):
        assert mixing_time_tv(complete_graph(20), lazy=False) <= 2

    def test_cycle_mixing_grows(self):
        t8 = mixing_time_tv(cycle_graph(8))
        t16 = mixing_time_tv(cycle_graph(16))
        assert t16 > t8

    def test_mixing_guard(self):
        with pytest.raises(ValueError):
            mixing_time_tv(cycle_graph(100), dense_limit=50)

    def test_pointwise_bound_is_sufficient(self):
        # after the bound's step count, every entry is within 1/2n of pi
        g = hypercube(4)
        phi = 1 / 4
        steps = pointwise_mixing_bound_steps(g.n, phi)
        p = transition_matrix(g, lazy=True).toarray()
        cur = np.linalg.matrix_power(p, steps)
        pi = stationary_distribution(g)
        assert np.abs(cur - pi[None, :]).max() <= 1 / (2 * g.n) + 1e-12

    def test_epoch_length_monotone_in_phi(self):
        assert theorem8_epoch_length(100, 3, 0.1) > theorem8_epoch_length(100, 3, 0.5)

    def test_epoch_length_validation(self):
        with pytest.raises(ValueError):
            theorem8_epoch_length(100, 3, 0.0)
        with pytest.raises(ValueError):
            pointwise_mixing_bound_steps(1, 0.5)
