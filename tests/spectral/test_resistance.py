"""Tests for effective resistance and the commute-time identity."""

import numpy as np
import pytest

from repro.graphs import complete_graph, cycle_graph, grid, kary_tree, path_graph
from repro.spectral import commute_time, effective_resistance, resistance_matrix
from repro.walks import rw_exact_hitting_times


class TestClosedForms:
    def test_path_series_resistance(self):
        g = path_graph(7)
        for u in range(7):
            for v in range(7):
                assert effective_resistance(g, u, v) == pytest.approx(abs(u - v))

    def test_cycle_parallel_resistance(self):
        # two arcs in parallel: R = k(n-k)/n
        n = 9
        g = cycle_graph(n)
        for k in range(1, n):
            assert effective_resistance(g, 0, k) == pytest.approx(k * (n - k) / n)

    def test_complete_graph(self):
        n = 8
        g = complete_graph(n)
        assert effective_resistance(g, 2, 5) == pytest.approx(2 / n)

    def test_tree_resistance_is_distance(self):
        from repro.graphs import bfs_distances

        g = kary_tree(2, 3)
        dist = bfs_distances(g, 0)
        for v in range(g.n):
            assert effective_resistance(g, 0, v) == pytest.approx(float(dist[v]))

    def test_self_resistance_zero(self):
        assert effective_resistance(cycle_graph(5), 3, 3) == 0.0


class TestCommuteTimeIdentity:
    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(11), grid(3, 2), kary_tree(2, 3), complete_graph(7)],
    )
    def test_hitting_plus_reverse_equals_2m_reff(self, graph):
        # Chandra et al.: H(u,v) + H(v,u) = 2m R_eff(u,v) — cross-checks
        # the linear-solve hitting times against pure linear algebra
        u, v = 0, graph.n - 1
        huv = rw_exact_hitting_times(graph, v)[u]
        hvu = rw_exact_hitting_times(graph, u)[v]
        assert huv + hvu == pytest.approx(commute_time(graph, u, v), rel=1e-9)


class TestResistanceMatrix:
    def test_symmetric_nonnegative_metric(self):
        g = grid(3, 2)
        r = resistance_matrix(g)
        assert np.allclose(r, r.T)
        assert np.allclose(np.diag(r), 0.0)
        assert (r >= -1e-12).all()
        # triangle inequality (resistance is a metric)
        n = g.n
        for a in range(0, n, 3):
            for b in range(1, n, 4):
                for c in range(2, n, 5):
                    assert r[a, c] <= r[a, b] + r[b, c] + 1e-9

    def test_size_guard(self):
        with pytest.raises(ValueError):
            effective_resistance(cycle_graph(2500), 0, 1)
