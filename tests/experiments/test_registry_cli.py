"""Tests for the experiment registry and CLI plumbing."""

import pytest

from repro.analysis import Table
from repro.experiments import ExperimentResult, all_experiments, get
from repro.experiments.cli import main


EXPECTED_IDS = {
    "ACTIVE_growth",
    "BASE_compare",
    "C9_expander",
    "GRIDCHAIN_drift",
    "KCOBRA_k",
    "L10_walt",
    "L11_tensor",
    "STAR_lb",
    "T13_biased",
    "T15_regular",
    "T1_matthews",
    "T20_general",
    "T3_grid",
    "T8_conductance",
    "T8_epochs",
    "TREES_kary",
}


class TestRegistry:
    def test_all_claims_registered(self):
        ids = {e.id for e in all_experiments()}
        assert ids == EXPECTED_IDS

    def test_get_known(self):
        exp = get("T3_grid")
        assert exp.id == "T3_grid"
        assert "O(n)" in exp.claim

    def test_get_unknown_lists_options(self):
        with pytest.raises(KeyError, match="T3_grid"):
            get("nope")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            get("L10_walt").run(scale="huge")

    def test_every_experiment_has_claim(self):
        for exp in all_experiments():
            assert exp.claim


class TestResultRendering:
    def test_render_contains_tables_and_findings(self):
        t = Table(["a"], title="demo")
        t.add_row([1])
        res = ExperimentResult(
            experiment_id="X", tables=[t], findings={"y": 1.5}, notes="hello"
        )
        out = res.render()
        assert "### X" in out
        assert "demo" in out
        assert "y = 1.5" in out
        assert "hello" in out


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPECTED_IDS:
            assert exp_id in out

    def test_run_single(self, capsys):
        assert main(["run", "L10_walt", "--scale", "quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "L10_walt" in out
        assert "finished in" in out

    def test_run_json(self, capsys):
        import json

        assert main(["run", "TREES_kary", "--json", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert set(doc) == {"TREES_kary"}
        entry = doc["TREES_kary"]
        assert entry["scale"] == "quick" and entry["seed"] == 1
        assert isinstance(entry["findings"], dict) and entry["findings"]

    def test_run_processes_flag(self, capsys):
        from repro.sim import get_default_processes, set_default_processes

        try:
            assert main(["run", "TREES_kary", "--processes", "2"]) == 0
            assert get_default_processes() == 2
        finally:
            set_default_processes(None)
        out = capsys.readouterr().out
        assert "TREES_kary" in out

    def test_processes_command(self, capsys):
        assert main(["processes"]) == 0
        out = capsys.readouterr().out
        assert "cobra" in out and "walt" in out and "push_pull" in out
        assert "branching_minima" in out


class TestSweepCli:
    def test_sweep_list(self, capsys):
        assert main(["sweep", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("T3_grid", "TREES_kary", "KCOBRA_k", "BASE_compare",
                     "BRW_minima"):
            assert name in out

    def test_sweep_run_status_show_roundtrip(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        # interrupt after 2 cells, then resume to completion
        assert main(["sweep", "run", "BRW_minima", "--store", store,
                     "--max-cells", "2"]) == 0
        out = capsys.readouterr().out
        assert "ran 2" in out and "pending 2" in out

        assert main(["sweep", "status", "BRW_minima", "--store", store]) == 0
        assert "2/4 cells stored" in capsys.readouterr().out

        assert main(["sweep", "run", "BRW_minima", "--store", store]) == 0
        assert "ran 2, cached 2" in capsys.readouterr().out

        # completed sweep: the third run is pure cache
        assert main(["sweep", "run", "BRW_minima", "--store", store]) == 0
        assert "ran 0, cached 4" in capsys.readouterr().out

        assert main(["sweep", "show", "BRW_minima", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "BRW_minima" in out and "generations" in out
        assert "(pending)" not in out

    def test_sweep_show_marks_pending_cells(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["sweep", "run", "BRW_minima", "--store", store,
                     "--max-cells", "1"]) == 0
        capsys.readouterr()
        assert main(["sweep", "show", "BRW_minima", "--store", store]) == 0
        assert "(pending)" in capsys.readouterr().out

    def test_sweep_unknown_name(self, capsys, tmp_path):
        # the unified exit-code contract: usage errors are exit 2 with
        # one `error:` line on stderr, never a traceback
        assert main(["sweep", "run", "nope", "--store", str(tmp_path / "s")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown sweep") and "nope" in err


class TestLintVerb:
    """`cobra-experiments lint` delegates to repro.lint with CI defaults."""

    def test_clean_path_exits_zero(self, capsys, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_violation_exits_one(self, capsys, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text("import numpy as np\nnp.random.seed(0)\n")
        assert main(["lint", str(target)]) == 1
        assert "RPL100" in capsys.readouterr().out

    def test_json_format_is_forwarded(self, capsys, tmp_path):
        import json

        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["errors"] == 0
