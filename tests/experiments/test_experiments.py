"""Integration tests: every experiment runs at quick scale and its
findings are consistent with the paper claim it reproduces.

These are the machine-checkable versions of EXPERIMENTS.md: each test
asserts the *shape* facts (exponents, bound satisfaction, orderings),
with slack for Monte-Carlo noise at quick scale.
"""

import pytest

from repro.experiments import get

# one shared seed: the quick runs are deterministic given (id, seed)
SEED = 2016


@pytest.fixture(scope="module")
def results():
    cache = {}

    def runner(exp_id):
        if exp_id not in cache:
            cache[exp_id] = get(exp_id).run(scale="quick", seed=SEED)
        return cache[exp_id]

    return runner


class TestT3Grid:
    def test_linear_exponent_d1(self, results):
        f = results("T3_grid").findings
        assert abs(f["cobra_exponent_d1"] - 1.0) < 0.15

    def test_linear_exponent_d2(self, results):
        f = results("T3_grid").findings
        assert abs(f["cobra_exponent_d2"] - 1.0) < 0.35

    def test_far_below_quadratic(self, results):
        f = results("T3_grid").findings
        for d in (1, 2, 3):
            assert f[f"cobra_exponent_d{d}"] < 1.5


class TestT8Conductance:
    def test_bound_holds_everywhere(self, results):
        f = results("T8_conductance").findings
        # measured cover never exceeds the Φ^-2 log^2 n shape even with
        # constant 1 (the paper's d^4 headroom is untouched)
        for fam in ("hypercube", "torus2d", "cycle", "random_4reg"):
            assert f[f"{fam}_bound_ratio_max"] < 1.0

    def test_constant_family_has_stable_shape(self, results):
        f = results("T8_conductance").findings
        assert f["random_4reg_max_rel_dev"] < 0.5


class TestC9Expander:
    def test_subpolynomial(self, results):
        f = results("C9_expander").findings
        assert f["cobra_power_exponent"] < 0.4

    def test_log2_shape_stable(self, results):
        f = results("C9_expander").findings
        assert f["log2_shape_max_rel_dev"] < 0.8


class TestL10Walt:
    def test_dominance(self, results):
        f = results("L10_walt").findings
        assert f["min_dominance_fraction"] >= 0.9


class TestL11Tensor:
    def test_collision_bounds(self, results):
        f = results("L11_tensor").findings
        assert f["all_collision_bounds_hold"] == 1.0

    def test_exact_cheeger_dominates_paper_bound(self, results):
        f = results("L11_tensor").findings
        assert f["k4_h_exact"] >= f["k4_h_lower_bound"]


class TestT13Biased:
    def test_thm13_bounds_hold(self, results):
        assert results("T13_biased").findings["thm13_all_hold"] == 1.0

    def test_cor17_exact(self, results):
        assert results("T13_biased").findings["cor17_worst_rel_err"] < 1e-9


class TestT15Regular:
    def test_exponents_below_bounds(self, results):
        f = results("T15_regular").findings
        assert f["exponent_cycle"] <= 1.5 + 0.1
        assert f["exponent_random"] <= 5 / 3
        # and the cycle's cobra hit is genuinely sub-RW (exponent << 2)
        assert f["exponent_cycle"] < 1.4


class TestT20General:
    def test_rw_is_cubic(self, results):
        f = results("T20_general").findings
        assert f["lollipop_rw_exponent"] > 2.6

    def test_cobra_beats_generic_bound(self, results):
        f = results("T20_general").findings
        assert f["lollipop_cobra_exponent"] < 2.75
        assert f["barbell_cobra_exponent"] < 2.75

    def test_separation(self, results):
        f = results("T20_general").findings
        assert f["lollipop_rw_exponent"] - f["lollipop_cobra_exponent"] > 1.0


class TestT1Matthews:
    def test_all_within(self, results):
        assert results("T1_matthews").findings["all_within_bound"] == 1.0


class TestT8Epochs:
    def test_hit_probability_clears_floor(self, results):
        f = results("T8_epochs").findings
        assert f["all_clear_floor"] == 1.0

    def test_floor_value(self, results):
        assert results("T8_epochs").findings["floor"] == pytest.approx(0.125)


class TestTrees:
    def test_cover_sublinear_in_n(self, results):
        f = results("TREES_kary").findings
        for k in (2, 3):
            assert f[f"k{k}_cover_exponent_in_n"] < 0.6

    def test_ratio_not_exploding(self, results):
        f = results("TREES_kary").findings
        for k in (2, 3):
            assert f[f"k{k}_ratio_spread"] < 3.0


class TestStar:
    def test_nlogn_class(self, results):
        f = results("STAR_lb").findings
        assert 1.0 < f["cover_exponent"] < 1.6
        assert f["nlogn_ratio_spread"] < 2.0


class TestGridChain:
    def test_drift_bounds(self, results):
        assert results("GRIDCHAIN_drift").findings["all_drift_bounds_hold"] == 1.0

    def test_linear_hitting(self, results):
        f = results("GRIDCHAIN_drift").findings
        for d in (1, 2):
            assert abs(f[f"hit_exponent_d{d}"] - 1.0) < 0.35


class TestBaselines:
    def test_cobra_beats_rw_everywhere_but_star(self, results):
        f = results("BASE_compare").findings
        for key, val in f.items():
            if key.startswith("rw_speedup") and "star" not in key:
                assert val > 10.0

    def test_star_no_speedup(self, results):
        f = results("BASE_compare").findings
        star_keys = [k for k in f if k.startswith("rw_speedup") and "star" in k]
        assert star_keys and all(f[k] < 10.0 for k in star_keys)


class TestActiveGrowth:
    def test_expander_grows_fastest(self, results):
        f = results("ACTIVE_growth").findings
        assert f["growth_rate_expander(8-reg)"] > f["growth_rate_torus2d"] > f[
            "growth_rate_cycle"
        ]

    def test_saturation_ordering(self, results):
        f = results("ACTIVE_growth").findings
        assert f["saturation_expander(8-reg)"] > 0.6
        assert f["saturation_cycle"] < 0.4


class TestKCobra:
    def test_monotone(self, results):
        f = results("KCOBRA_k").findings
        keys = [k for k in f if k.endswith("_monotone")]
        assert keys and all(f[k] == 1.0 for k in keys)

    def test_k1_to_k2_cliff(self, results):
        f = results("KCOBRA_k").findings
        cliffs = [v for k, v in f.items() if k.endswith("_k1_over_k2")]
        assert all(c > 20.0 for c in cliffs)
