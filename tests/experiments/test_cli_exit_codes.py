"""The CLI exit-code contract: 2 = usage error, 1 = integrity failure.

Every ``sweep`` verb (and the ``run`` experiment runner) fails the
same way: one line on stderr, no traceback, exit 2 when the *request*
was wrong and exit 1 when the *store* is unhealthy or unreachable.
This matrix pins the contract the docs promise.
"""

import json

import pytest

from repro.experiments.cli import main
from repro.store import ClaimLedger


def _seed_store(tmp_path, monkeypatch):
    """A drained DEMO_grid2x2 store directory (4 cells)."""
    store = tmp_path / "store"
    monkeypatch.chdir(tmp_path)
    assert main(["sweep", "run", "DEMO_grid2x2", "--store", str(store)]) == 0
    return store


def _one_error_line(capsys) -> str:
    err = capsys.readouterr().err.strip()
    assert err.startswith("error: "), err
    assert "\n" not in err, f"expected one line, got: {err!r}"
    assert "Traceback" not in err
    return err


class TestUsageErrorsExit2:
    def test_unknown_sweep(self, tmp_path, capsys):
        code = main(
            ["sweep", "run", "NOPE", "--store", str(tmp_path / "s")]
        )
        assert code == 2
        assert "unknown sweep" in _one_error_line(capsys)

    @pytest.mark.parametrize("verb", ["status", "show", "work", "report"])
    def test_unknown_sweep_every_verb(self, verb, tmp_path, capsys):
        code = main(["sweep", verb, "NOPE", "--store", str(tmp_path / "s")])
        assert code == 2
        assert "unknown sweep" in _one_error_line(capsys)

    def test_unknown_declare(self, tmp_path, capsys):
        code = main(
            ["sweep", "declare", "NOPE", "--store", str(tmp_path / "s")]
        )
        assert code == 2
        assert "unknown sweep" in _one_error_line(capsys)

    def test_work_needs_name_or_loop(self, tmp_path, capsys):
        code = main(["sweep", "work", "--store", str(tmp_path / "s")])
        assert code == 2
        assert "--loop" in _one_error_line(capsys)

    def test_workers_conflicts_with_max_cells(self, tmp_path, capsys):
        code = main(
            [
                "sweep", "run", "DEMO_grid2x2", "--store", str(tmp_path / "s"),
                "--workers", "2", "--max-cells", "1",
            ]
        )
        assert code == 2
        assert "mutually exclusive" in _one_error_line(capsys)

    def test_memory_store_only_for_serve(self, capsys):
        code = main(["sweep", "status", "DEMO_grid2x2", "--store", ":memory:"])
        assert code == 2
        assert "serve" in _one_error_line(capsys)

    def test_unknown_experiment(self, capsys):
        assert main(["run", "NOPE"]) == 2
        assert "unknown experiment" in _one_error_line(capsys)

    def test_argparse_usage_is_exit_2(self):
        # argparse's own rejection path already honours the contract
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "bogus-verb"])
        assert exc.value.code == 2


class TestIntegrityErrorsExit1:
    def test_fsck_unclean(self, tmp_path, monkeypatch, capsys):
        store = _seed_store(tmp_path, monkeypatch)
        shard = next((store / "shards").glob("*.jsonl"))
        with shard.open("a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        code = main(["sweep", "fsck", "--store", str(store)])
        assert code == 1
        out = capsys.readouterr()
        assert "NOT CLEAN" in out.out
        assert out.err.strip().startswith("error: ")

    def test_compact_refused_on_live_lease(self, tmp_path, monkeypatch, capsys):
        store = _seed_store(tmp_path, monkeypatch)
        ClaimLedger(store).try_claim(["ab" * 32], owner="w-live")
        code = main(["sweep", "compact", "--store", str(store)])
        assert code == 1
        assert "compact refused" in _one_error_line(capsys)

    def test_unreachable_backend(self, capsys):
        # port 9 (discard) refuses connections immediately on loopback
        code = main(
            ["sweep", "status", "DEMO_grid2x2", "--store", "http://127.0.0.1:9"]
        )
        assert code == 1
        assert "cannot reach" in _one_error_line(capsys)


class TestSuccessPaths:
    def test_fsck_clean_exit_0(self, tmp_path, monkeypatch, capsys):
        store = _seed_store(tmp_path, monkeypatch)
        assert main(["sweep", "fsck", "--store", str(store)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_show_json_is_canonical_frame(self, tmp_path, monkeypatch, capsys):
        from repro.store import FRAME_SCHEMA, Frame

        store = _seed_store(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(
            ["sweep", "show", "DEMO_grid2x2", "--store", str(store), "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == FRAME_SCHEMA
        frame = Frame.from_json(json.dumps(doc))
        assert len(frame) == 4
        assert set(frame.column("process")) == {"cobra"}
