"""Tests for the Theorem 3 pessimistic grid chain."""

import numpy as np
import pytest

from repro.core import (
    PessimisticGridWalk,
    grid_chain_hitting_time,
    lemma4_drift_bounds,
)


class TestLemma4Bounds:
    def test_d2_values(self):
        b = lemma4_drift_bounds(2)
        assert b["p_change_min"] == pytest.approx(1 / 3)
        assert b["p_decrease_given_change_min"] == pytest.approx(0.5 + 1 / 12)
        assert b["p_leave_zero_max"] == pytest.approx(2 / 3)

    def test_bias_shrinks_with_d(self):
        biases = [lemma4_drift_bounds(d)["p_decrease_given_change_min"] for d in (1, 2, 4, 8)]
        assert all(b > 0.5 for b in biases)
        assert biases == sorted(biases, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            lemma4_drift_bounds(0)


class TestPessimisticGridWalk:
    def test_steps_change_one_coordinate_by_one(self):
        w = PessimisticGridWalk(10, 3, np.zeros(3), np.full(3, 10), seed=0)
        for _ in range(100):
            before = w.pos.copy()
            w.step()
            assert np.abs(w.pos - before).sum() == 1

    def test_stays_in_box(self):
        w = PessimisticGridWalk(5, 2, np.zeros(2), np.full(2, 5), seed=1)
        for _ in range(500):
            w.step()
            assert w.pos.min() >= 0 and w.pos.max() <= 5

    def test_reaches_target(self):
        t = grid_chain_hitting_time(15, 2, seed=2)
        assert t is not None
        assert t >= 30  # Manhattan distance lower bound

    def test_empirical_drift_matches_lemma4(self):
        # measure the conditional decrease probability in the generic
        # configuration (all z_i > 0, interior): Lemma 4's 1/2 + 1/(8d-4)
        # is a lower bound; the actual interior drift is higher.
        d = 2
        n = 20_000
        w = PessimisticGridWalk(n, d, np.full(d, n // 2 - 4000), np.full(d, n // 2), seed=3)
        dec, chg = 0, 0
        z_prev = w.z().copy()
        for _ in range(20_000):
            w.step()
            z = w.z()
            if (z_prev > 0).all():
                diff = z - z_prev
                moved = np.flatnonzero(diff)
                if moved.size:
                    chg += 1
                    dec += diff[moved[0]] < 0
            z_prev = z.copy()
            if w.at_target():
                break
        assert chg > 1000
        p_dec = dec / chg
        bound = lemma4_drift_bounds(d)["p_decrease_given_change_min"]
        assert p_dec >= bound - 0.02  # sampling slack

    def test_hitting_time_scales_linearly(self):
        # Theorem 3's engine: expected time ~ O(n) per dimension pair
        times_small = [grid_chain_hitting_time(20, 2, seed=s) for s in range(20)]
        times_big = [grid_chain_hitting_time(80, 2, seed=s) for s in range(20)]
        ratio = np.mean(times_big) / np.mean(times_small)
        # linear scaling predicts 4; quadratic would be 16
        assert 2.0 < ratio < 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PessimisticGridWalk(0, 2, np.zeros(2), np.zeros(2))
        with pytest.raises(ValueError):
            PessimisticGridWalk(5, 2, np.array([0, 9]), np.zeros(2))
