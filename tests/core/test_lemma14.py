"""Lemma 14: cobra hitting time is dominated by the inverse-degree-
biased walk's hitting time.

The lemma's coupling gives, for every start u and target v,
``H_cobra(u, v) <= H*(u, v)`` where ``H*`` is the best
inverse-degree-biased walk.  We compute ``H*`` exactly (linear solve
with the toward-target controller — an upper bound on the optimum,
which is the conservative direction) and compare against Monte-Carlo
cobra hitting times.
"""

import numpy as np
import pytest

from repro.core import (
    cobra_hitting_trials,
    exact_hitting_times,
    inverse_degree_biased_transition,
)
from repro.graphs import bfs_distances, cycle_graph, grid, kary_tree, lollipop


@pytest.mark.parametrize(
    "graph,target",
    [
        (cycle_graph(24), 12),
        (grid(5, 2), 35),
        (kary_tree(2, 4), 30),
        (lollipop(20), 19),
    ],
)
def test_cobra_hitting_below_biased_walk(graph, target):
    p = inverse_degree_biased_transition(graph, target)
    h_star = exact_hitting_times(p, target)
    # farthest start = the lemma's hardest instance
    start = int(np.argmax(bfs_distances(graph, target)))
    times = cobra_hitting_trials(graph, target, start=start, trials=40, seed=7)
    mean = float(np.nanmean(times))
    # Monte-Carlo slack: the inequality is in expectation
    assert mean <= h_star[start] * 1.15 + 2.0


def test_transition_probability_inequality():
    # the pointwise fact the coupling rests on:
    # P[cobra activates y | x active] = 1-(1-1/d)^2 >= P_biased(x -> y)
    g = lollipop(16)
    target = g.n - 1
    p = inverse_degree_biased_transition(g, target)
    for x in range(g.n):
        d = g.degree(x)
        cobra_marginal = 1.0 - (1.0 - 1.0 / d) ** 2
        if x == target:
            continue
        for y in g.neighbors(x):
            assert cobra_marginal >= p[x, y] - 1e-12


def test_biased_walk_is_valid_distribution():
    g = grid(4, 2)
    p = inverse_degree_biased_transition(g, 0)
    assert np.allclose(p.sum(axis=1), 1.0)
    assert (p >= 0).all()
