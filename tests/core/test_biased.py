"""Tests for biased walks and the Section 5 machinery."""

import numpy as np
import pytest

from repro.core import (
    epsilon_biased_transition,
    exact_hitting_times,
    exact_return_time,
    inverse_degree_biased_transition,
    metropolis_chain_lemma16,
    return_time_bound_cor17,
    sigma_hat_exact,
    sigma_hat_lemma18_bound,
    simulate_biased_hit,
    stationary_lower_bound_thm13,
    toward_target_controller,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid,
    kary_tree,
    lollipop,
    path_graph,
    star_graph,
)
from repro.spectral import stationary_of_chain
from repro.walks import rw_exact_hitting_times


class TestController:
    def test_moves_closer(self):
        g = grid(4, 2)
        target = 12
        ctrl = toward_target_controller(g, target)
        from repro.graphs import bfs_distances

        dist = bfs_distances(g, target)
        for v in range(g.n):
            if v != target:
                assert dist[ctrl[v]] == dist[v] - 1

    def test_target_self_maps(self):
        ctrl = toward_target_controller(cycle_graph(8), 3)
        assert ctrl[3] == 3


class TestTransitionMatrices:
    def test_eps_biased_rows(self, small_cycle):
        ctrl = toward_target_controller(small_cycle, 0)
        p = epsilon_biased_transition(small_cycle, ctrl, 0.3)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_eps_zero_is_simple_walk(self, small_cycle):
        from repro.spectral import transition_matrix

        ctrl = toward_target_controller(small_cycle, 0)
        p = epsilon_biased_transition(small_cycle, ctrl, 0.0)
        assert np.allclose(p, transition_matrix(small_cycle).toarray())

    def test_eps_one_is_deterministic(self, small_cycle):
        ctrl = toward_target_controller(small_cycle, 0)
        p = epsilon_biased_transition(small_cycle, ctrl, 1.0)
        for v in range(small_cycle.n):
            assert p[v, ctrl[v]] == pytest.approx(1.0)

    def test_inverse_degree_rows(self):
        g = lollipop(15)
        p = inverse_degree_biased_transition(g, 0)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_inverse_degree_target_unbiased(self):
        g = cycle_graph(9)
        p = inverse_degree_biased_transition(g, 4)
        assert p[4, 3] == pytest.approx(0.5)
        assert p[4, 5] == pytest.approx(0.5)

    def test_bias_magnitude(self):
        # off-target vertex v: controller neighbor gets 1/d + (1-1/d)/d
        g = cycle_graph(9)
        ctrl = toward_target_controller(g, 0)
        p = inverse_degree_biased_transition(g, 0, ctrl)
        v = 4
        c = ctrl[v]
        assert p[v, c] == pytest.approx(1 / 2 + (1 - 1 / 2) / 2)

    def test_invalid_eps(self, small_cycle):
        ctrl = toward_target_controller(small_cycle, 0)
        with pytest.raises(ValueError):
            epsilon_biased_transition(small_cycle, ctrl, 1.5)


class TestHittingAlgebra:
    def test_biased_beats_simple_walk_on_cycle(self):
        n = 24
        g = cycle_graph(n)
        p = inverse_degree_biased_transition(g, 0)
        h_biased = exact_hitting_times(p, 0)
        h_simple = rw_exact_hitting_times(g, 0)
        # simple walk: h(k) = k(n-k); biased drift cuts it to O(n)
        assert h_biased.max() < h_simple.max() / 3

    def test_simulation_matches_exact(self):
        g = cycle_graph(12)
        p = inverse_degree_biased_transition(g, 0)
        h = exact_hitting_times(p, 0)
        times = [
            simulate_biased_hit(g, 0, start=6, seed=s, max_steps=100_000)
            for s in range(300)
        ]
        assert abs(np.mean(times) - h[6]) < 0.15 * h[6]

    def test_return_time_is_inverse_stationary(self):
        g = cycle_graph(9)
        p = inverse_degree_biased_transition(g, 0)
        pi = stationary_of_chain(0.5 * np.eye(g.n) + 0.5 * p, tol=1e-13)
        assert exact_return_time(p, 0) == pytest.approx(1.0 / pi[0], rel=1e-6)


class TestTheorem13:
    def test_bound_in_unit_interval(self):
        g = grid(4, 2)
        b = stationary_lower_bound_thm13(g, [0], 0.25)
        assert 0.0 < b < 1.0

    def test_bound_monotone_in_eps(self):
        g = cycle_graph(20)
        b1 = stationary_lower_bound_thm13(g, [0], 0.1)
        b2 = stationary_lower_bound_thm13(g, [0], 0.5)
        assert b2 > b1

    def test_eps_biased_walk_achieves_bound_on_cycle(self):
        # the toward-target controller on a cycle is the optimal one;
        # its stationary mass at the target must meet Theorem 13's bound
        g = cycle_graph(15)
        eps = 0.5
        ctrl = toward_target_controller(g, 0)
        p = epsilon_biased_transition(g, ctrl, eps)
        pi = stationary_of_chain(0.5 * np.eye(g.n) + 0.5 * p, tol=1e-13)
        assert pi[0] >= stationary_lower_bound_thm13(g, [0], eps) - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            stationary_lower_bound_thm13(cycle_graph(5), [], 0.5)
        with pytest.raises(ValueError):
            stationary_lower_bound_thm13(cycle_graph(5), [0], 0.0)


class TestSigmaHat:
    def test_cycle_closed_form(self):
        # cycle: every vertex degree 2 -> sigma_hat(x,v) = (1/2)^{dist+1}
        g = cycle_graph(12)
        s = sigma_hat_exact(g, 0)
        from repro.graphs import bfs_distances

        dist = bfs_distances(g, 0)
        assert np.allclose(s, 0.5 ** (dist + 1))

    def test_leaf_vertices_zero(self):
        g = star_graph(6)
        s = sigma_hat_exact(g, 0)
        # leaves have degree 1 -> any path through them has factor 0;
        # sigma_hat(leaf, hub) includes the leaf itself -> 0
        assert np.allclose(s[1:], 0.0)

    def test_lemma18_upper_bound(self, any_graph):
        if any_graph.n < 3:
            return
        s = sigma_hat_exact(any_graph, 0)
        b = sigma_hat_lemma18_bound(any_graph, 0)
        assert (s <= b + 1e-12).all()

    def test_monotone_decreasing_in_distance_on_path(self):
        g = path_graph(10)
        s = sigma_hat_exact(g, 0)
        assert (np.diff(s[1:-1]) <= 1e-15).all()


class TestLemma16Metropolis:
    def test_m_is_stochastic_and_stationary(self):
        g = lollipop(12)
        mc = metropolis_chain_lemma16(g, [g.n - 1])
        assert np.allclose(mc.m.sum(axis=1), 1.0)
        assert np.allclose(mc.target_pi @ mc.m, mc.target_pi, atol=1e-12)

    def test_p_is_inverse_degree_biased(self):
        # Lemma 16 asserts P(x,y) >= (1-1/d(x))/d(x); the provable form
        # (via sigma_hat(y,S) >= (1-1/d(y)) sigma_hat(x,S) — the paper
        # slips d(x) for d(y) here) is P(x,y) >= (1-1/d(y))/d(x).
        # See EXPERIMENTS.md, reproduction note R2.
        g = lollipop(12)
        mc = metropolis_chain_lemma16(g, [0])
        for x in range(g.n):
            dx = g.degree(x)
            for y in g.neighbors(x):
                dy = g.degree(int(y))
                assert mc.p[x, y] >= (1 - 1 / dy) / dx - 1e-12

    def test_regular_graph_matches_paper_form(self):
        # on regular graphs d(x) == d(y) and the paper's bound is exact
        g = cycle_graph(12)
        mc = metropolis_chain_lemma16(g, [0])
        for x in range(g.n):
            dx = g.degree(x)
            for y in g.neighbors(x):
                assert mc.p[x, y] >= (1 - 1 / dx) / dx - 1e-12

    def test_cor17_bound_exact_for_metropolis_chain(self):
        # Cor 17's value equals 1/pi_M(v), i.e. the return time of the
        # self-loop-ed Metropolis chain M — exactly.
        for graph in [cycle_graph(16), complete_graph(8), kary_tree(2, 3)]:
            v = 0
            mc = metropolis_chain_lemma16(graph, [v])
            ret_m = exact_return_time(mc.m, v)
            assert ret_m == pytest.approx(return_time_bound_cor17(graph, v), rel=1e-9)

    def test_cor17_loop_free_chain_within_holding_factor(self):
        # removing self-loops (M -> P) stretches the return time by at
        # most 1/(1 - M(v,v)); the O(n^{11/4}) shape is unaffected.
        # (Reproduction note R2 in EXPERIMENTS.md.)
        for graph in [cycle_graph(16), complete_graph(8), kary_tree(2, 3)]:
            v = 0
            mc = metropolis_chain_lemma16(graph, [v])
            ret_p = exact_return_time(mc.p, v)
            hold = 1.0 / (1.0 - mc.m[v, v])
            assert ret_p <= hold * return_time_bound_cor17(graph, v) + 1e-6

    def test_empty_targets(self):
        with pytest.raises(ValueError):
            metropolis_chain_lemma16(cycle_graph(5), [])
