"""Tests for the generalized (variable-branching) cobra walk — the
extension the paper's §1 names but leaves unexplored."""

import numpy as np
import pytest

from repro.core import (
    DegreeProportionalBranching,
    GeneralizedCobraWalk,
    RandomBranching,
    cobra_cover_time,
    generalized_cobra_cover_time,
)
from repro.graphs import complete_graph, cycle_graph, grid, random_regular, star_graph


class TestRandomBranching:
    def test_mean(self):
        rb = RandomBranching({1: 0.5, 3: 0.5})
        assert rb.mean == pytest.approx(2.0)

    def test_draws_match_distribution(self, rng):
        rb = RandomBranching({1: 0.25, 2: 0.75})
        counts = rb(0, np.zeros(20_000, dtype=np.int64), rng)
        assert set(np.unique(counts)) <= {1, 2}
        assert abs((counts == 2).mean() - 0.75) < 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomBranching({})
        with pytest.raises(ValueError):
            RandomBranching({0: 1.0})
        with pytest.raises(ValueError):
            RandomBranching({1: 0.4, 2: 0.4})


class TestDegreeProportionalBranching:
    def test_counts_follow_degree(self):
        g = star_graph(10)
        sched = DegreeProportionalBranching(g, lambda deg: np.where(deg > 1, 3, 1))
        rng = np.random.default_rng(0)
        ks = sched(0, np.array([0, 1, 2]), rng)
        assert ks.tolist() == [3, 1, 1]

    def test_shape_mismatch_rejected(self):
        g = cycle_graph(6)
        sched = DegreeProportionalBranching(g, lambda deg: deg[:1])
        with pytest.raises(ValueError):
            sched(0, np.array([0, 1]), np.random.default_rng(0))


class TestGeneralizedCobraWalk:
    def test_constant_schedule_matches_cobra(self):
        # identical seeds: same RNG consumption pattern => same trajectory
        g = grid(8, 2)
        ref = cobra_cover_time(g, k=2, seed=42)
        gen = generalized_cobra_cover_time(g, 2, seed=42)
        assert gen == ref.cover_time

    def test_frontier_stays_in_graph(self):
        g = cycle_graph(20)
        walk = GeneralizedCobraWalk(g, RandomBranching({1: 0.3, 2: 0.7}), seed=1)
        for _ in range(100):
            active = walk.step()
            assert active.min() >= 0 and active.max() < g.n
            assert np.array_equal(active, np.unique(active))

    def test_ek_interpolates_cover_time(self):
        # E[k] -> 1 approaches the random walk; E[k] = 2 the cobra walk.
        g = random_regular(128, 4, seed=2)
        covers = []
        for p2 in (0.1, 0.5, 1.0):
            sched = RandomBranching({1: 1.0 - p2, 2: p2})
            times = [
                generalized_cobra_cover_time(g, sched, seed=s, max_steps=500_000)
                for s in range(5)
            ]
            covers.append(np.mean([t for t in times if t is not None]))
        assert covers[0] > covers[1] > covers[2]

    def test_supercritical_random_branching_is_fast(self):
        # even E[k]=1.5 covers the expander in polylog-like time
        g = random_regular(256, 8, seed=3)
        sched = RandomBranching({1: 0.5, 2: 0.5})
        t = generalized_cobra_cover_time(g, sched, seed=4)
        assert t is not None and t < 200

    def test_time_dependent_schedule(self):
        # branch heavily only every third step
        g = complete_graph(30)
        sched = lambda t, verts, rng: np.full(
            verts.size, 3 if t % 3 == 0 else 1, dtype=np.int64
        )
        t = generalized_cobra_cover_time(g, sched, seed=5)
        assert t is not None

    def test_degree_schedule_on_star(self):
        g = star_graph(40)
        sched = DegreeProportionalBranching(g, lambda deg: np.where(deg > 1, 4, 1))
        t = generalized_cobra_cover_time(g, sched, seed=6)
        # hub branches 4x: coupon collector finishes ~2x faster than k=2
        ref = cobra_cover_time(g, k=2, seed=7).cover_time
        assert t is not None and t < ref

    def test_validation(self):
        g = cycle_graph(5)
        with pytest.raises(ValueError):
            GeneralizedCobraWalk(g, 0)
        with pytest.raises(ValueError):
            GeneralizedCobraWalk(g, 2, start=np.array([], dtype=np.int64))
        walk = GeneralizedCobraWalk(g, lambda t, v, r: np.zeros(v.size, dtype=np.int64))
        with pytest.raises(ValueError):
            walk.step()
