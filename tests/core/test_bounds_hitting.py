"""Tests for closed-form bounds, estimators, Matthews, and coupling."""

import numpy as np
import pytest

from repro.core import (
    cobra_cover_trials,
    cobra_hitting_trials,
    cor9_expander_cover,
    harmonic_number,
    matthews_check,
    matthews_cover_bound,
    max_hitting_time_estimate,
    pair_hitting_matrix,
    push_gossip_cover,
    rw_worst_case_cover,
    star_cobra_lower_bound,
    stochastic_dominance_fraction,
    thm3_grid_cover,
    thm8_conductance_cover,
    thm15_regular_hitting,
    thm20_general_cover,
    thm20_general_hitting,
    walt_dominates_cobra_report,
)
from repro.graphs import complete_graph, cycle_graph, grid, hypercube


class TestBoundFormulas:
    def test_harmonic(self):
        assert harmonic_number(1) == 1.0
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)
        # asymptotic branch agrees with exact at the crossover scale
        assert harmonic_number(2_000_000) == pytest.approx(
            np.log(2_000_000) + 0.5772156649, rel=1e-6
        )

    def test_matthews_formula(self):
        assert matthews_cover_bound(10.0, 4) == pytest.approx(10 * harmonic_number(4))

    def test_thm15_reduces_toward_n2(self):
        # as delta grows the bound approaches the generic n^2
        n = 100
        assert thm15_regular_hitting(n, 2) == pytest.approx(n**1.5)
        assert thm15_regular_hitting(n, 100) < n**2
        assert thm15_regular_hitting(n, 100) > n**1.9

    def test_thm20_values(self):
        assert thm20_general_hitting(16) == pytest.approx(16**2.75)
        assert thm20_general_cover(16) == pytest.approx(16**2.75 * np.log(16))

    def test_ordering_of_worst_cases(self):
        # the paper's point: n^{11/4} log n grows strictly slower than
        # n^3 — the ratio must fall monotonically toward zero (the
        # unit-constant crossover sits at astronomically large n, so a
        # pointwise comparison at small n would be meaningless)
        ratios = [
            thm20_general_cover(n) / rw_worst_case_cover(n)
            for n in (10**6, 10**9, 10**12, 10**15)
        ]
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[-1] < ratios[0] / 50

    def test_star_lower_bound_vs_push(self):
        # both are Theta(n log n); our constants keep lower < upper
        assert star_cobra_lower_bound(1000) < push_gossip_cover(1000)

    def test_monotonicity(self):
        assert thm8_conductance_cover(100, 3, 0.1) > thm8_conductance_cover(100, 3, 0.2)
        assert cor9_expander_cover(10_000) > cor9_expander_cover(100)

    def test_validation(self):
        with pytest.raises(ValueError):
            thm8_conductance_cover(10, 3, 0.0)
        with pytest.raises(ValueError):
            thm15_regular_hitting(10, 1)
        with pytest.raises(ValueError):
            thm3_grid_cover(0, 2)
        with pytest.raises(ValueError):
            harmonic_number(0)


class TestTrialEstimators:
    def test_cover_trials_shape_and_determinism(self, small_hypercube):
        a = cobra_cover_trials(small_hypercube, trials=5, seed=1)
        b = cobra_cover_trials(small_hypercube, trials=5, seed=1)
        assert a.shape == (5,)
        assert np.array_equal(a, b)
        assert not np.isnan(a).any()

    def test_hitting_trials(self, small_cycle):
        t = cobra_hitting_trials(small_cycle, 6, trials=8, seed=2)
        assert (t >= 6).all()  # distance lower bound

    def test_budget_marks_nan(self):
        from repro.graphs import path_graph

        t = cobra_cover_trials(path_graph(50), trials=3, seed=3, max_steps=2)
        assert np.isnan(t).all()

    def test_trials_validation(self, small_cycle):
        with pytest.raises(ValueError):
            cobra_cover_trials(small_cycle, trials=0)

    def test_hmax_at_least_antipodal_hit(self):
        g = cycle_graph(16)
        hmax = max_hitting_time_estimate(g, trials=3, seed=4)
        assert hmax >= 8  # antipodal distance

    def test_hmax_counts_budget_exhausted_pairs(self, recwarn):
        """Regression: pairs whose every trial exhausts the budget used
        to be silently dropped (np.nanmean -> nan, nan > hmax False),
        underestimating h_max exactly where hitting is hardest.  They
        must now clamp to the budget and warn once."""
        g = cycle_graph(30)
        with pytest.warns(RuntimeWarning, match="exhausted"):
            hmax = max_hitting_time_estimate(
                g, trials=3, pairs=6, seed=4, max_steps=2
            )
        # every sampled pair at distance > 2 fails; the old code returned
        # ~0 (or only short-distance means), the fix reports the budget
        assert hmax == 2.0
        # and no numpy all-NaN RuntimeWarning leaks through
        assert not any(
            "All-NaN" in str(w.message) for w in recwarn.list
        )

    def test_hmax_clamps_partially_exhausted_pairs(self):
        """A pair where only SOME trials exhaust the budget must also be
        censored: each failed trial counts as (at least) the budget, so
        the pair mean cannot be dragged down by its lucky fast trials."""
        g = cycle_graph(20)
        budget = 12  # > distance 10, small enough that some trials miss
        with pytest.warns(RuntimeWarning, match="exhausted"):
            hmax = max_hitting_time_estimate(
                g, trials=4, pairs=8, seed=11, max_steps=budget
            )
        # clamped trials keep every pair mean within [distance, budget]
        assert hmax <= budget
        # and the maximum must reflect the censoring floor, not a
        # fast-trials-only mean below the hardest pair's distance
        assert hmax >= 10 * 0.5

    def test_hmax_no_warning_when_all_pairs_succeed(self):
        import warnings

        g = cycle_graph(10)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            hmax = max_hitting_time_estimate(g, trials=3, pairs=5, seed=4)
        assert hmax >= 1.0

    def test_pair_matrix_small(self):
        g = cycle_graph(8)
        m = pair_hitting_matrix(g, trials=2, seed=5)
        assert m.shape == (8, 8)
        assert (np.diag(m) == 0).all()
        assert m[0, 4] >= 4

    def test_pair_matrix_guard(self):
        with pytest.raises(ValueError):
            pair_hitting_matrix(cycle_graph(100))

    def test_pair_matrix_exhausted_entries_nan_without_warning(self):
        import warnings

        g = cycle_graph(12)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any RuntimeWarning -> failure
            m = pair_hitting_matrix(g, trials=2, seed=5, max_steps=1)
        # only direct neighbors can be hit in one step
        assert np.isnan(m[0, 6])
        assert np.isfinite(m[0, 1])


class TestMatthews:
    def test_check_on_hypercube(self):
        chk = matthews_check(hypercube(5), cover_trials=6, hit_trials=3, pairs=20, seed=6)
        assert chk.satisfied
        assert chk.hmax > 0
        assert chk.ratio <= harmonic_number(32) + 1e-9

    def test_ratio_definition(self):
        chk = matthews_check(cycle_graph(10), cover_trials=4, hit_trials=3, pairs=10, seed=7)
        assert chk.ratio == pytest.approx(chk.cover_mean / chk.hmax)


class TestDominance:
    def test_fraction_on_shifted_samples(self, rng):
        a = rng.normal(10, 1, 400)
        b = rng.normal(14, 1, 400)
        assert stochastic_dominance_fraction(a, b) == 1.0
        assert stochastic_dominance_fraction(b, a) < 0.3

    def test_fraction_identical_samples(self, rng):
        a = rng.normal(0, 1, 300)
        assert stochastic_dominance_fraction(a, a) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stochastic_dominance_fraction(np.array([]), np.array([1.0]))

    def test_walt_dominates_cobra_lemma10(self):
        report = walt_dominates_cobra_report(
            complete_graph(30), trials=25, seed=8
        )
        assert report.consistent_with_lemma10
        assert report.walt_mean >= report.cobra_mean

    def test_walt_dominates_on_grid(self):
        report = walt_dominates_cobra_report(grid(5, 2), trials=15, seed=9)
        assert report.consistent_with_lemma10
