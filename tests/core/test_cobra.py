"""Tests for the cobra-walk kernel and runner."""

import numpy as np
import pytest

from repro.core import (
    CobraWalk,
    cobra_cover_time,
    cobra_hitting_time,
    cobra_step,
    cobra_step_reference,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid,
    path_graph,
    star_graph,
)


class TestCobraStep:
    def test_next_frontier_in_neighborhood(self, small_grid, rng):
        active = np.array([0, 5, 12], dtype=np.int64)
        nxt = cobra_step(small_grid, active, 2, rng)
        allowed = set()
        for v in active:
            allowed.update(small_grid.neighbors(int(v)).tolist())
        assert set(nxt.tolist()) <= allowed

    def test_frontier_size_bounds(self, small_grid, rng):
        active = np.array([10], dtype=np.int64)
        for _ in range(50):
            active = cobra_step(small_grid, active, 2, rng)
            assert 1 <= active.size <= 2 * small_grid.n

    def test_branching_bound_k(self, small_complete, rng):
        # |S_{t+1}| <= k |S_t|
        active = np.array([0], dtype=np.int64)
        for _ in range(10):
            nxt = cobra_step(small_complete, active, 3, rng)
            assert nxt.size <= 3 * active.size
            active = nxt

    def test_output_sorted_unique(self, small_hypercube, rng):
        active = np.arange(small_hypercube.n, dtype=np.int64)
        nxt = cobra_step(small_hypercube, active, 2, rng)
        assert np.array_equal(nxt, np.unique(nxt))

    def test_k1_is_plain_random_walk_step(self, small_cycle, rng):
        active = np.array([4], dtype=np.int64)
        nxt = cobra_step(small_cycle, active, 1, rng)
        assert nxt.size == 1
        assert int(nxt[0]) in (3, 5)

    def test_invalid_k(self, small_cycle, rng):
        with pytest.raises(ValueError):
            cobra_step(small_cycle, np.array([0]), 0, rng)

    def test_empty_active_rejected(self, small_cycle, rng):
        with pytest.raises(ValueError):
            cobra_step(small_cycle, np.empty(0, dtype=np.int64), 2, rng)

    def test_dense_and_sparse_paths_agree_distributionally(self, rng):
        # K20 with a full frontier forces the dense path; star with one
        # vertex the sparse path.  Check marginal frequencies on K6.
        g = complete_graph(6)
        active = np.array([0], dtype=np.int64)
        hits = np.zeros(6)
        for _ in range(4000):
            nxt = cobra_step(g, active, 2, rng)
            hits[nxt] += 1
        # each neighbor of 0 should be next-active with prob 1-(4/5)^2=0.36
        freq = hits[1:] / 4000
        assert np.allclose(freq, 0.36, atol=0.04)

    def test_reference_agreement(self):
        # kernel and reference have the same next-frontier distribution
        g = cycle_graph(8)
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(2)
        counts_kernel: dict[frozenset, int] = {}
        counts_ref: dict[frozenset, int] = {}
        for _ in range(3000):
            nk = frozenset(cobra_step(g, np.array([0]), 2, rng1).tolist())
            nr = frozenset(cobra_step_reference(g, {0}, 2, rng2))
            counts_kernel[nk] = counts_kernel.get(nk, 0) + 1
            counts_ref[nr] = counts_ref.get(nr, 0) + 1
        assert set(counts_kernel) == set(counts_ref) == {
            frozenset({1}),
            frozenset({7}),
            frozenset({1, 7}),
        }
        for key in counts_kernel:
            assert abs(counts_kernel[key] - counts_ref[key]) < 250


class TestCobraWalk:
    def test_initial_state(self, small_grid):
        w = CobraWalk(small_grid, start=3, seed=0)
        assert w.t == 0
        assert w.num_covered == 1
        assert w.first_activation[3] == 0

    def test_multi_source_start(self, small_grid):
        w = CobraWalk(small_grid, start=np.array([0, 10, 20]), seed=0)
        assert w.num_covered == 3

    def test_coverage_monotone(self, small_grid):
        w = CobraWalk(small_grid, seed=1)
        prev = w.num_covered
        for _ in range(100):
            w.step()
            assert w.num_covered >= prev
            prev = w.num_covered

    def test_first_activation_consistency(self, small_hypercube):
        w = CobraWalk(small_hypercube, seed=2)
        res = w.run_until_cover(10_000)
        assert res.covered
        fa = res.first_activation
        assert fa.min() == 0
        assert (fa >= 0).all()
        assert res.cover_time == fa.max()

    def test_history_recording(self, small_cycle):
        w = CobraWalk(small_cycle, seed=3, record_history=True)
        res = w.run_until_cover(10_000)
        assert res.active_size_history is not None
        assert res.active_size_history.size == res.steps + 1
        assert res.active_size_history[0] == 1
        assert (res.active_size_history >= 1).all()

    def test_run_until_hit(self, small_cycle):
        w = CobraWalk(small_cycle, start=0, seed=4)
        t = w.run_until_hit(6, 10_000)
        assert t is not None and t >= 6  # distance 6 needs >= 6 steps

    def test_budget_exhaustion(self):
        g = path_graph(200)
        w = CobraWalk(g, seed=5)
        res = w.run_until_cover(3)
        assert not res.covered
        assert res.cover_time is None
        assert res.steps == 3

    def test_invalid_start(self, small_cycle):
        with pytest.raises(ValueError):
            CobraWalk(small_cycle, start=99)
        with pytest.raises(ValueError):
            CobraWalk(small_cycle, start=np.array([], dtype=np.int64))

    def test_determinism(self, small_grid):
        a = cobra_cover_time(small_grid, seed=42)
        b = cobra_cover_time(small_grid, seed=42)
        assert a.cover_time == b.cover_time
        assert np.array_equal(a.first_activation, b.first_activation)


class TestCoverHitHelpers:
    def test_complete_graph_covers_fast(self):
        res = cobra_cover_time(complete_graph(64), seed=6)
        assert res.covered
        # K_n cobra behaves like a 2x-coupon collector: well under n
        assert res.cover_time < 64

    def test_star_cover_is_coupon_collector_like(self):
        n = 200
        res = cobra_cover_time(star_graph(n), seed=7)
        assert res.covered
        # hub informs <= 2 fresh leaves every other round: >= (n-1)/4ish
        assert res.cover_time > n / 8
        assert res.cover_time < 20 * n * np.log(n)

    def test_hitting_time_distance_lower_bound(self):
        g = grid(10, 2)
        target = g.n - 1  # opposite corner, Manhattan distance 20
        t = cobra_hitting_time(g, target, seed=8)
        assert t is not None and t >= 20

    def test_hitting_target_equals_start(self, small_cycle):
        assert cobra_hitting_time(small_cycle, 0, start=0, seed=9) == 0

    def test_invalid_target(self, small_cycle):
        w = CobraWalk(small_cycle, seed=0)
        with pytest.raises(ValueError):
            w.run_until_hit(-1, 10)
