"""Tests for the Walt process."""

import numpy as np
import pytest

from repro.core import WaltProcess, walt_cover_time, walt_step_positions
from repro.graphs import complete_graph, cycle_graph, random_regular


class TestWaltStep:
    def test_pebble_count_invariant(self, small_grid, rng):
        pos = rng.integers(0, small_grid.n, size=17).astype(np.int64)
        for _ in range(50):
            pos = walt_step_positions(small_grid, pos, rng)
            assert pos.size == 17

    def test_moves_are_edges(self, small_grid, rng):
        pos = rng.integers(0, small_grid.n, size=9).astype(np.int64)
        nxt = walt_step_positions(small_grid, pos, rng)
        for a, b in zip(pos, nxt):
            assert small_grid.has_edge(int(a), int(b))

    def test_followers_join_leader_or_vice(self, rng):
        # all pebbles on one K5 vertex: after a move, positions must be
        # a subset of the two leaders' destinations
        g = complete_graph(5)
        pos = np.zeros(10, dtype=np.int64)
        nxt = walt_step_positions(g, pos, rng)
        leaders = {int(nxt[0]), int(nxt[1])}
        assert set(nxt.tolist()) <= leaders

    def test_two_pebbles_independent(self, rng):
        # with exactly two co-located pebbles both move independently:
        # over many trials they should land on distinct vertices ~ often
        g = complete_graph(6)
        distinct = 0
        for _ in range(2000):
            nxt = walt_step_positions(g, np.zeros(2, dtype=np.int64), rng)
            distinct += nxt[0] != nxt[1]
        # P(distinct) = 4/5
        assert 0.75 < distinct / 2000 < 0.85

    def test_follower_split_is_fair(self, rng):
        # 3rd pebble picks leader vs vice with probability 1/2 each
        g = cycle_graph(10)
        to_leader = 0
        trials = 4000
        for _ in range(trials):
            nxt = walt_step_positions(g, np.zeros(3, dtype=np.int64), rng)
            if nxt[2] == nxt[0]:
                to_leader += 1
            else:
                assert nxt[2] == nxt[1]
        # unconditionally P(follow leader's vertex) >= 1/2 (ties when
        # leader and vice coincide); on the cycle P(same)=1/2 so
        # P(nxt2 == nxt0) = 1/2 + 1/2*1/2 = 3/4
        assert 0.70 < to_leader / trials < 0.80

    def test_empty_rejected(self, small_cycle, rng):
        with pytest.raises(ValueError):
            walt_step_positions(small_cycle, np.empty(0, dtype=np.int64), rng)


class TestWaltProcess:
    def test_initial_coverage(self, small_grid):
        proc = WaltProcess(small_grid, np.array([0, 0, 5]), seed=0)
        assert proc.num_covered == 2
        assert proc.num_pebbles == 3

    def test_lazy_steps_hold_everything(self, small_grid):
        proc = WaltProcess(small_grid, np.array([3, 7]), lazy=True, seed=1)
        held = 0
        for _ in range(200):
            before = proc.positions.copy()
            proc.step()
            if np.array_equal(before, proc.positions):
                held += 1
        assert 60 < held  # ~half the steps hold (unequal moves possible too)

    def test_non_lazy_always_moves(self, small_cycle):
        proc = WaltProcess(small_cycle, np.array([0]), lazy=False, seed=2)
        before = proc.positions.copy()
        proc.step()
        assert not np.array_equal(before, proc.positions)

    def test_cover_run(self, small_hypercube):
        res = walt_cover_time(small_hypercube, delta=0.5, start=0, seed=3)
        assert res.covered
        assert res.cover_time is not None and res.cover_time > 0

    def test_first_visit_consistency(self, small_grid):
        res = walt_cover_time(small_grid, delta=0.3, start=0, seed=4)
        assert res.covered
        assert res.first_visit.min() == 0
        assert res.cover_time == res.first_visit.max()

    def test_uniform_start(self, small_grid):
        res = walt_cover_time(small_grid, delta=0.5, start=None, seed=5)
        assert res.covered

    def test_delta_validation(self, small_grid):
        with pytest.raises(ValueError):
            walt_cover_time(small_grid, delta=0.0)
        with pytest.raises(ValueError):
            walt_cover_time(small_grid, delta=1.5)

    def test_position_validation(self, small_cycle):
        with pytest.raises(ValueError):
            WaltProcess(small_cycle, np.array([99]))
        with pytest.raises(ValueError):
            WaltProcess(small_cycle, np.empty(0, dtype=np.int64))

    def test_determinism(self):
        g = random_regular(40, 4, seed=6)
        a = walt_cover_time(g, seed=7)
        b = walt_cover_time(g, seed=7)
        assert a.cover_time == b.cover_time
