"""Property-based tests (hypothesis) on the core processes."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import CobraWalk, cobra_step
from repro.core.walt import walt_step_positions
from repro.graphs import cycle_graph, from_edge_list, grid, random_regular


@st.composite
def connected_graphs(draw):
    """Small connected graphs of varied shape."""
    kind = draw(st.sampled_from(["cycle", "grid", "regular", "dense"]))
    if kind == "cycle":
        return cycle_graph(draw(st.integers(min_value=3, max_value=40)))
    if kind == "grid":
        return grid(draw(st.integers(min_value=2, max_value=6)), 2)
    if kind == "regular":
        n = draw(st.sampled_from([8, 12, 20, 30]))
        return random_regular(n, 3, seed=draw(st.integers(0, 100)))
    # dense: random connected graph via a tree plus extra edges
    n = draw(st.integers(min_value=3, max_value=20))
    edges = [(i, draw(st.integers(min_value=0, max_value=i - 1))) for i in range(1, n)]
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda e: e[0] != e[1]),
            max_size=2 * n,
        )
    )
    return from_edge_list(n, edges + extra)


@given(connected_graphs(), st.integers(min_value=1, max_value=4), st.integers(0, 10**6))
@settings(max_examples=50, deadline=None)
def test_cobra_step_invariants(g, k, seed):
    rng = np.random.default_rng(seed)
    active = np.unique(rng.integers(0, g.n, size=max(1, g.n // 3)))
    nxt = cobra_step(g, active, k, rng)
    # frontier bounds
    assert 1 <= nxt.size <= min(g.n, k * active.size)
    # sorted unique output
    assert np.array_equal(nxt, np.unique(nxt))
    # every next vertex adjacent to some active vertex
    neighborhood = np.unique(
        np.concatenate([g.neighbors(int(v)) for v in active])
    )
    assert np.isin(nxt, neighborhood).all()


@given(connected_graphs(), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_cobra_coverage_monotone_and_consistent(g, seed):
    walk = CobraWalk(g, seed=seed)
    seen = {int(walk.active[0])}
    for _ in range(30):
        active = walk.step()
        seen.update(int(v) for v in active)
        # num_covered matches the union of everything ever active
        assert walk.num_covered == len(seen)
        fa = walk.first_activation
        assert ((fa >= 0).sum()) == len(seen)
        # activation times never exceed current step
        assert fa.max() <= walk.t
        if walk.all_covered:
            break


@given(connected_graphs(), st.integers(1, 30), st.integers(0, 10**6))
@settings(max_examples=50, deadline=None)
def test_walt_invariants(g, pebbles, seed):
    rng = np.random.default_rng(seed)
    pos = rng.integers(0, g.n, size=pebbles).astype(np.int64)
    nxt = walt_step_positions(g, pos, rng)
    # pebble conservation
    assert nxt.size == pebbles
    # every pebble moved along an edge
    for a, b in zip(pos, nxt):
        assert g.has_edge(int(a), int(b))
    # rule 2: vertices holding >= 3 pebbles scatter to at most 2 targets
    vals, counts = np.unique(pos, return_counts=True)
    for v, c in zip(vals, counts):
        if c >= 3:
            dests = np.unique(nxt[pos == v])
            assert dests.size <= 2


@given(
    st.integers(min_value=2, max_value=60),
    st.integers(min_value=1, max_value=3),
    st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_grid_chain_state_stays_valid(n, d, seed):
    from repro.core import PessimisticGridWalk

    rng = np.random.default_rng(seed)
    start = rng.integers(0, n + 1, size=d)
    target = rng.integers(0, n + 1, size=d)
    w = PessimisticGridWalk(n, d, start, target, seed=seed)
    for _ in range(50):
        if w.at_target():
            break
        z_before = int(w.z().sum())
        w.step()
        z_after = int(w.z().sum())
        # one coordinate moved by exactly 1
        assert abs(z_after - z_before) == 1
        assert w.pos.min() >= 0 and w.pos.max() <= n
