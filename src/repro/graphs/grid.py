"""d-dimensional grid and torus generators.

The paper's Section 3 studies the grid ``[0, n]^d`` — ``(n+1)^d``
lattice points with an edge between points at Manhattan distance 1.
Vertex ids use mixed-radix encoding: the point ``(c_0, .., c_{d-1})``
has id ``Σ c_i · (n+1)^i`` (dimension 0 is the fastest-varying digit).
"""

from __future__ import annotations

import numpy as np

from .base import Graph
from .builders import csr_from_sorted_edges

__all__ = [
    "grid",
    "torus",
    "grid_coords",
    "grid_vertex",
    "grid_manhattan",
]


def _lattice(side: int, d: int, periodic: bool, name: str) -> Graph:
    if side < 2:
        raise ValueError(f"side length must be >= 2, got {side}")
    if d < 1:
        raise ValueError(f"dimension must be >= 1, got {d}")
    total = side**d
    if total > 5_000_000:
        raise ValueError(f"grid too large: {side}^{d} vertices")
    ids = np.arange(total, dtype=np.int64)
    src_parts, dst_parts = [], []
    stride = 1
    for _ in range(d):
        coord = (ids // stride) % side
        fwd = coord < side - 1
        src_parts.append(ids[fwd])
        dst_parts.append(ids[fwd] + stride)
        if periodic and side > 2:
            wrap = coord == side - 1
            src_parts.append(ids[wrap])
            dst_parts.append(ids[wrap] - (side - 1) * stride)
        stride *= side
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    g = csr_from_sorted_edges(
        total,
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        name=name,
        meta={"side": side, "d": d, "periodic": periodic},
    )
    return g


def grid(n: int, d: int = 2) -> Graph:
    """The grid ``[0, n]^d``: ``(n+1)^d`` vertices, paper Section 3.

    ``n`` is the *side extent* (maximum coordinate), matching the
    paper's convention — the number of vertices per dimension is
    ``n + 1``.
    """
    return _lattice(n + 1, d, periodic=False, name=f"grid[0,{n}]^{d}")


def torus(n: int, d: int = 2) -> Graph:
    """The d-dimensional torus with ``n + 1`` vertices per dimension.

    The paper notes boundary effects can be avoided by "working on the
    toroidal grid"; the torus is also the 2d-regular testbed for the
    conductance experiments.
    """
    return _lattice(n + 1, d, periodic=True, name=f"torus[0,{n}]^{d}")


def grid_coords(vertices: np.ndarray | int, n: int, d: int) -> np.ndarray:
    """Decode ids into coordinates, shape ``(len(vertices), d)``."""
    side = n + 1
    v = np.atleast_1d(np.asarray(vertices, dtype=np.int64))
    out = np.empty((v.size, d), dtype=np.int64)
    rem = v.copy()
    for i in range(d):
        out[:, i] = rem % side
        rem //= side
    return out


def grid_vertex(coords: np.ndarray, n: int, d: int) -> int | np.ndarray:
    """Encode coordinates (shape ``(d,)`` or ``(k, d)``) into vertex ids."""
    side = n + 1
    c = np.asarray(coords, dtype=np.int64)
    single = c.ndim == 1
    c = np.atleast_2d(c)
    if c.shape[1] != d:
        raise ValueError(f"expected {d} coordinates per point")
    if c.min() < 0 or c.max() > n:
        raise ValueError("coordinate out of range")
    weights = (side ** np.arange(d, dtype=np.int64)).astype(np.int64)
    ids = c @ weights
    return int(ids[0]) if single else ids


def grid_manhattan(u: int, v: int, n: int, d: int) -> int:
    """Manhattan distance between two grid vertex ids."""
    cu = grid_coords(u, n, d)[0]
    cv = grid_coords(v, n, d)[0]
    return int(np.abs(cu - cv).sum())
