"""Immutable CSR graph substrate.

Every process in :mod:`repro` steps over a :class:`Graph`: a simple,
undirected graph stored in compressed-sparse-row form.  The two arrays

* ``indptr``  — ``int64[n + 1]``, neighbor-list offsets, and
* ``indices`` — ``int64[2m]``, concatenated sorted neighbor lists,

are the only state, which keeps the hot sampling kernel
(:func:`sample_uniform_neighbors`) a pair of gathers plus one multiply —
the vectorization idiom the HPC guides prescribe (no per-vertex Python
loop, contiguous access, preallocated outputs).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

import numpy as np

__all__ = ["Graph", "sample_uniform_neighbors"]


class Graph:
    """A simple undirected graph in CSR form.

    Instances are immutable: the underlying arrays are flagged
    non-writeable at construction.  Use the builders in
    :mod:`repro.graphs.builders` or the generators under
    :mod:`repro.graphs` rather than calling the constructor with raw
    arrays unless you already hold a valid CSR pair.

    Parameters
    ----------
    indptr:
        ``int64`` array of shape ``(n + 1,)`` with ``indptr[0] == 0`` and
        non-decreasing entries; ``indices[indptr[v]:indptr[v+1]]`` are the
        neighbors of vertex ``v``.
    indices:
        ``int64`` array of neighbor ids; each undirected edge appears
        twice (once per endpoint).  Within a vertex the list is sorted.
    name:
        Optional human-readable label used by experiment tables.
    meta:
        Optional mapping of generator-specific facts (grid shape,
        designed conductance, …).  Stored as a plain dict copy.
    validate:
        When true (default), check CSR structural invariants, symmetry,
        absence of self-loops and of parallel edges.  Generators that
        construct valid CSR directly pass ``validate=False``.
    """

    __slots__ = ("indptr", "indices", "n", "m", "name", "meta", "_degrees")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        name: str = "graph",
        meta: Mapping | None = None,
        validate: bool = True,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        self.indptr = indptr
        self.indices = indices
        self.n = int(indptr.size - 1)
        self.m = int(indices.size // 2)
        self.name = str(name)
        self.meta = dict(meta) if meta else {}
        self._degrees = np.diff(indptr)
        if validate:
            self._validate()
        self.indptr.flags.writeable = False
        self.indices.flags.writeable = False
        self._degrees.flags.writeable = False

    # ------------------------------------------------------------------
    # construction-time checks
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if self.indptr[-1] != self.indices.size:
            raise ValueError("indptr[-1] must equal len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size % 2 != 0:
            raise ValueError("undirected graph needs an even number of half-edges")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= self.n:
                raise ValueError("neighbor ids out of range")
        # per-vertex sortedness, no self-loops, no parallel edges
        for v in range(self.n):
            row = self.indices[self.indptr[v] : self.indptr[v + 1]]
            if row.size == 0:
                continue
            if np.any(np.diff(row) <= 0):
                raise ValueError(f"neighbor list of {v} must be strictly increasing")
            if np.any(row == v):
                raise ValueError(f"self-loop at vertex {v}")
        # symmetry: the multiset of (u,v) equals the multiset of (v,u)
        src = np.repeat(np.arange(self.n, dtype=np.int64), self._degrees)
        fwd = src * self.n + self.indices
        bwd = self.indices * self.n + src
        if not np.array_equal(np.sort(fwd), np.sort(bwd)):
            raise ValueError("adjacency is not symmetric")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def degrees(self) -> np.ndarray:
        """``int64[n]`` vertex degrees (read-only view)."""
        return self._degrees

    def degree(self, v: int) -> int:
        """Degree of vertex *v*."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only sorted neighbor array of vertex *v*."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        row = self.neighbors(u)
        i = int(np.searchsorted(row, v))
        return i < row.size and row[i] == v

    def edges(self) -> np.ndarray:
        """``int64[m, 2]`` array of edges with ``u < v``, lexicographic."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self._degrees)
        mask = src < self.indices
        return np.column_stack([src[mask], self.indices[mask]])

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` tuples with ``u < v``."""
        for u, v in self.edges():
            yield int(u), int(v)

    # ------------------------------------------------------------------
    # aggregate structure
    # ------------------------------------------------------------------
    @property
    def min_degree(self) -> int:
        return int(self._degrees.min()) if self.n else 0

    @property
    def max_degree(self) -> int:
        return int(self._degrees.max()) if self.n else 0

    def is_regular(self) -> bool:
        """Whether every vertex has the same degree."""
        return self.n == 0 or self.min_degree == self.max_degree

    def volume(self, vertices: Iterable[int] | np.ndarray | None = None) -> int:
        """Sum of degrees over *vertices* (whole graph when omitted)."""
        if vertices is None:
            return int(self._degrees.sum())
        idx = np.asarray(list(vertices) if not isinstance(vertices, np.ndarray) else vertices)
        return int(self._degrees[idx].sum()) if idx.size else 0

    # ------------------------------------------------------------------
    # dunder utilities
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(name={self.name!r}, n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return np.array_equal(self.indptr, other.indptr) and np.array_equal(
            self.indices, other.indices
        )

    def __hash__(self) -> int:
        return hash((self.n, self.m, self.indices.tobytes()))

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    # conversions (thin; heavy builders live in builders.py)
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (vertex labels ``0..n-1``)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(map(tuple, self.edges()))
        return g

    def adjacency_lists(self) -> list[list[int]]:
        """Plain Python adjacency lists (for reference implementations)."""
        return [self.neighbors(v).tolist() for v in range(self.n)]


def sample_uniform_neighbors(
    graph: Graph,
    vertices: np.ndarray,
    rng: np.random.Generator,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """For each entry of *vertices*, sample one uniform neighbor.

    This is the single hot kernel shared by the cobra walk, Walt, the
    gossip protocols and all random-walk baselines.  ``vertices`` may
    contain repeats (e.g. the cobra frontier repeated ``k`` times).

    Vertices must have degree ≥ 1; isolated vertices make uniform
    neighbor choice undefined and raise :class:`ValueError`.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    starts = graph.indptr[vertices]
    degs = graph.indptr[vertices + 1] - starts
    if vertices.size and degs.min() <= 0:
        raise ValueError("cannot sample a neighbor of an isolated vertex")
    # floor(U * deg) is uniform over {0..deg-1}; one vectorized draw for
    # the whole frontier instead of len(vertices) Generator calls.
    offsets = (rng.random(vertices.size) * degs).astype(np.int64)
    picks = graph.indices[starts + offsets]
    if out is not None:
        out[: picks.size] = picks
        return out[: picks.size]
    return picks
