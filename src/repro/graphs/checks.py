"""Structural queries on :class:`~repro.graphs.base.Graph`.

BFS-based: connectivity, distances, eccentricity/diameter, bipartiteness,
and girth (small graphs).  All run on the CSR arrays with preallocated
frontier buffers — no per-vertex Python object churn.
"""

from __future__ import annotations

import numpy as np

from .base import Graph

__all__ = [
    "bfs_distances",
    "is_connected",
    "connected_components",
    "diameter",
    "eccentricity",
    "is_bipartite",
    "shortest_path",
    "weighted_inverse_degree_distance",
]


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Hop distances from *source*; unreachable vertices get ``-1``."""
    if not (0 <= source < graph.n):
        raise ValueError(f"source {source} out of range")
    dist = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    indptr, indices = graph.indptr, graph.indices
    while frontier.size:
        level += 1
        # gather all neighbors of the frontier in one shot
        counts = indptr[frontier + 1] - indptr[frontier]
        nbrs = indices[_ranges(indptr[frontier], counts)]
        fresh = nbrs[dist[nbrs] == -1]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        dist[fresh] = level
        frontier = fresh
    return dist


def _ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[s, s+c)`` index ranges without a Python loop."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(counts)
    out[0] = starts[0]
    out[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    return np.cumsum(out)


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (vacuously true for ``n <= 1``)."""
    if graph.n <= 1:
        return True
    return bool((bfs_distances(graph, 0) >= 0).all())


def connected_components(graph: Graph) -> np.ndarray:
    """Component label per vertex, labels ``0..c-1`` by discovery order."""
    labels = np.full(graph.n, -1, dtype=np.int64)
    label = 0
    for v in range(graph.n):
        if labels[v] >= 0:
            continue
        reach = bfs_distances(graph, v) >= 0
        labels[np.flatnonzero(reach & (labels < 0))] = label
        label += 1
    return labels


def eccentricity(graph: Graph, v: int) -> int:
    """Maximum hop distance from *v*; raises on disconnected graphs."""
    dist = bfs_distances(graph, v)
    if (dist < 0).any():
        raise ValueError("eccentricity undefined on a disconnected graph")
    return int(dist.max())


def diameter(graph: Graph, *, exact_limit: int = 4000) -> int:
    """Graph diameter by all-sources BFS.

    For ``n > exact_limit`` this refuses (quadratic cost) — experiments
    on large graphs use family-specific closed forms instead.
    """
    if graph.n == 0:
        return 0
    if graph.n > exact_limit:
        raise ValueError(f"diameter: n={graph.n} exceeds exact_limit={exact_limit}")
    best = 0
    for v in range(graph.n):
        best = max(best, eccentricity(graph, v))
    return best


def is_bipartite(graph: Graph) -> bool:
    """Two-color the graph by BFS; true iff no odd cycle is found."""
    color = np.full(graph.n, -1, dtype=np.int8)
    for start in range(graph.n):
        if color[start] >= 0:
            continue
        color[start] = 0
        frontier = np.array([start], dtype=np.int64)
        while frontier.size:
            nxt = []
            for u in frontier:
                nbrs = graph.neighbors(u)
                clash = color[nbrs] == color[u]
                if clash.any():
                    return False
                fresh = nbrs[color[nbrs] == -1]
                color[fresh] = 1 - color[u]
                nxt.append(fresh)
            frontier = np.unique(np.concatenate(nxt)) if nxt else np.empty(0, np.int64)
    return True


def shortest_path(graph: Graph, source: int, target: int) -> list[int]:
    """One shortest hop path ``source .. target`` (inclusive).

    Raises :class:`ValueError` when *target* is unreachable.
    """
    dist = bfs_distances(graph, source)
    if dist[target] < 0:
        raise ValueError(f"{target} unreachable from {source}")
    path = [target]
    cur = target
    while cur != source:
        nbrs = graph.neighbors(cur)
        prev = nbrs[dist[nbrs] == dist[cur] - 1][0]
        path.append(int(prev))
        cur = int(prev)
    return path[::-1]


def weighted_inverse_degree_distance(graph: Graph, source: int) -> np.ndarray:
    """Dijkstra distances under vertex weights ``1/d(z)``.

    This is the quantity ``p(y, x)`` of the paper's Lemma 18 (shortest
    path where traversing vertex ``z`` costs ``1/d(z)``; endpoints are
    both charged).  Used to evaluate the ``σ̂`` upper bound of the
    Theorem 20 analysis.
    """
    import heapq

    w = 1.0 / graph.degrees.astype(np.float64)
    dist = np.full(graph.n, np.inf)
    dist[source] = w[source]
    heap = [(dist[source], source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v in graph.neighbors(u):
            nd = d + w[v]
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, int(v)))
    return dist
