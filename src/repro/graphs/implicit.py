"""Implicit-topology neighbor oracles: structured graphs without edges.

Every batched engine in :mod:`repro.sim.batch` needs exactly three
things from a graph: its vertex count, per-vertex degrees, and uniform
neighbor draws.  For structured topologies — tori, hypercubes,
circulants, Kronecker powers — all three are *arithmetic* on vertex
ids, so the CSR edge arrays (:class:`repro.graphs.base.Graph`) are
pure memory overhead: a ``10^6``-vertex 2-d torus spends ~40 MB on
``indptr``/``indices`` it never needed.

This module defines the :class:`NeighborOracle` contract the engines
sample through, with two families of implementations:

* :class:`CSRNeighborOracle` wraps an existing :class:`Graph`; its
  draws are **bit-for-bit identical** to
  :func:`repro.graphs.base.sample_uniform_neighbors`, so refactored
  engines reproduce their pre-oracle streams exactly on CSR input.
* Arithmetic oracles (:class:`TorusOracle`, :class:`HypercubeOracle`,
  :class:`CirculantOracle`, :class:`KroneckerOracle`) compute the
  ``slot``-th neighbor of a vertex on the fly, in the same ascending
  order a CSR row would store — which makes each arithmetic oracle
  **seed-for-seed identical** to the CSR adapter over the
  materialised graph (``tests/graphs/test_implicit.py`` pins this per
  topology and per engine).

``as_oracle`` is the engines' entry point; ``to_csr`` materialises any
oracle for small-instance conformance checks.  The oracle builders
(``torus_oracle``, ``hypercube_oracle``, ``circulant_oracle``,
``kronecker_oracle``) are exported from :mod:`repro.graphs`, so sweep
cells can name them as ``graph_builder`` axes in
:mod:`repro.store.spec` — provenance records the oracle ``kind`` per
cell.  ``IMPLICIT_TOPOLOGIES`` is the registry the ``RPL203`` lint
contract audits: every entry must bind the full protocol and
round-trip through the store's graph axes.
"""

from __future__ import annotations

import math

import numpy as np

from .base import Graph, sample_uniform_neighbors

__all__ = [
    "NeighborOracle",
    "CSRNeighborOracle",
    "TorusOracle",
    "HypercubeOracle",
    "CirculantOracle",
    "KroneckerOracle",
    "as_oracle",
    "to_csr",
    "torus_oracle",
    "hypercube_oracle",
    "circulant_oracle",
    "kronecker_oracle",
    "kronecker",
    "IMPLICIT_TOPOLOGIES",
]


class NeighborOracle:
    """The vectorized neighbor contract every batched engine samples.

    An oracle answers three questions, all vectorized over arrays of
    vertex ids:

    * ``degree(vertices)`` — per-vertex degrees;
    * ``neighbor_at(vertices, slots)`` — the ``slot``-th neighbor of
      each vertex **in ascending neighbor order** (the order a CSR row
      stores), broadcastable;
    * ``sample_one(vertices, rng)`` / ``sample_neighbors(vertices, k,
      rng)`` — uniform neighbor draws built on the two above, with the
      exact RNG consumption of
      :func:`repro.graphs.base.sample_uniform_neighbors` (one
      ``rng.random`` call per draw row, ``floor(U * deg)`` slots).

    Subclasses implement ``degree`` and ``neighbor_at`` and pass exact
    ``min_degree``/``max_degree`` to the constructor — engines use
    ``max_degree`` to pick float widths, so an estimate would silently
    change streams.  The arithmetic oracles guarantee ``min_degree >=
    1`` by construction; the CSR adapter inherits whatever the wrapped
    graph has, and the engines' samplability check rejects isolated
    vertices with the same message either way.

    Attributes
    ----------
    n : int
        Vertex count.
    name : str
        Display name (matches the CSR builder's name where one exists).
    meta : dict
        Builder metadata, same conventions as :class:`Graph`.
    kind : str
        Topology tag recorded in campaign provenance (``"csr"``,
        ``"torus"``, ``"hypercube"``, ``"circulant"``, ``"kronecker"``).
    min_degree, max_degree : int
        Exact degree bounds.
    """

    kind = "implicit"

    def __init__(
        self,
        n: int,
        *,
        name: str,
        min_degree: int,
        max_degree: int,
        meta: dict | None = None,
    ) -> None:
        self.n = int(n)
        self.name = name
        self.meta = dict(meta or {})
        self.min_degree = int(min_degree)
        self.max_degree = int(max_degree)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, n={self.n})"

    # -- the two primitives subclasses implement ------------------------
    def degree(self, vertices: np.ndarray) -> np.ndarray:
        """Per-vertex degrees (``int64``, same shape as *vertices*)."""
        raise NotImplementedError

    def neighbor_at(self, vertices: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """The ``slot``-th neighbor of each vertex, ascending order.

        *vertices* and *slots* broadcast against each other; slots must
        lie in ``[0, degree)`` per vertex (unchecked, hot path).
        """
        raise NotImplementedError

    # -- derived draws (shared by all oracles) --------------------------
    def sample_one(
        self,
        vertices: np.ndarray,
        rng: np.random.Generator,
        *,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """One uniform neighbor per vertex — the engines' hot kernel.

        RNG consumption is exactly that of
        :func:`~repro.graphs.base.sample_uniform_neighbors`: one
        ``rng.random(len(vertices))`` draw, ``floor(U * deg)`` slots.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        degs = self.degree(vertices)
        offsets = (rng.random(vertices.size) * degs).astype(np.int64)
        picks = self.neighbor_at(vertices, offsets)
        if out is not None:
            out[: picks.size] = picks
            return out[: picks.size]
        return picks

    def sample_neighbors(
        self, vertices: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``k`` independent uniform neighbors per vertex, shape
        ``(k, len(vertices))`` — one vectorized draw for the whole
        block."""
        vertices = np.asarray(vertices, dtype=np.int64)
        degs = self.degree(vertices)
        offsets = (rng.random((k, vertices.size)) * degs).astype(np.int64)
        return self.neighbor_at(vertices[None, :], offsets)

    def all_neighbors(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Every neighbor of every vertex, ragged-flat.

        Returns ``(nbrs_flat, deg)`` where ``nbrs_flat`` concatenates
        each vertex's full ascending neighbor list and ``deg`` gives
        the per-vertex counts (so ``np.repeat(vertices, deg)`` aligns
        sources with ``nbrs_flat``).  This is the gossip engines'
        boundary-expansion primitive and the ``to_csr`` backbone.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        deg = self.degree(vertices)
        if vertices.size == 0:
            return np.empty(0, dtype=np.int64), deg
        csum = np.cumsum(deg)
        slots = np.arange(int(csum[-1]), dtype=np.int64) - np.repeat(csum - deg, deg)
        reps = np.repeat(vertices, deg)
        return self.neighbor_at(reps, slots), deg


class CSRNeighborOracle(NeighborOracle):
    """Adapter presenting a CSR :class:`Graph` as a neighbor oracle.

    Draws delegate to :func:`~repro.graphs.base.sample_uniform_neighbors`
    on the wrapped graph, so engines running through this adapter are
    bit-for-bit identical to the pre-oracle code paths.
    """

    kind = "csr"

    def __init__(self, graph: Graph) -> None:
        super().__init__(
            graph.n,
            name=graph.name,
            meta=graph.meta,
            min_degree=graph.min_degree,
            max_degree=graph.max_degree,
        )
        self.graph = graph

    def degree(self, vertices: np.ndarray) -> np.ndarray:
        return self.graph.degrees[vertices]

    def neighbor_at(self, vertices: np.ndarray, slots: np.ndarray) -> np.ndarray:
        # indptr[vertices] broadcasts against slots, so (k, N) slot
        # blocks work without an explicit broadcast step
        return self.graph.indices[self.graph.indptr[vertices] + slots]

    def sample_one(
        self,
        vertices: np.ndarray,
        rng: np.random.Generator,
        *,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        return sample_uniform_neighbors(self.graph, vertices, rng, out=out)

    def all_neighbors(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        vertices = np.asarray(vertices, dtype=np.int64)
        deg = self.graph.degrees[vertices]
        if vertices.size == 0:
            return np.empty(0, dtype=np.int64), deg
        csum = np.cumsum(deg)
        pos = (
            np.arange(int(csum[-1]), dtype=np.int64)
            - np.repeat(csum - deg, deg)
            + np.repeat(self.graph.indptr[vertices], deg)
        )
        return self.graph.indices[pos], deg


class _CandidateTableOracle(NeighborOracle):
    """Shared ``neighbor_at`` for constant-degree arithmetic oracles
    whose per-vertex neighbor list is a small sorted candidate row."""

    def _sorted_neighbors(self, vertices: np.ndarray) -> np.ndarray:
        """``(len(vertices), degree)`` ascending candidate table."""
        raise NotImplementedError

    def degree(self, vertices: np.ndarray) -> np.ndarray:
        v = np.asarray(vertices, dtype=np.int64)
        return np.full(v.shape, self.min_degree, dtype=np.int64)

    def neighbor_at(self, vertices: np.ndarray, slots: np.ndarray) -> np.ndarray:
        v, s = np.broadcast_arrays(
            np.asarray(vertices, dtype=np.int64), np.asarray(slots, dtype=np.int64)
        )
        shape = v.shape
        vf = np.ascontiguousarray(v).ravel()
        sf = np.ascontiguousarray(s).ravel()
        cand = self._sorted_neighbors(vf)
        out = cand[np.arange(vf.size, dtype=np.int64), sf]
        return out.reshape(shape)


class TorusOracle(_CandidateTableOracle):
    """The d-dimensional torus of :func:`repro.graphs.grid.torus`,
    edge-free: neighbors are ``±1`` steps per dimension with wraparound
    on mixed-radix vertex ids.

    ``n`` is the side *extent* (``n + 1`` vertices per dimension),
    matching the CSR builder's convention; ``n >= 2`` so the wrap
    neighbors are distinct and the degree is exactly ``2 d``.  Unlike
    the CSR builder there is **no size cap** — a million-vertex torus
    costs nothing but this object.
    """

    kind = "torus"

    def __init__(self, n: int, d: int = 2) -> None:
        side = n + 1
        if side < 3:
            raise ValueError(
                f"torus oracle needs side length >= 3 (n >= 2), got n={n}"
            )
        if d < 1:
            raise ValueError(f"dimension must be >= 1, got {d}")
        super().__init__(
            side**d,
            name=f"torus[0,{n}]^{d}",
            meta={"side": side, "d": d, "periodic": True},
            min_degree=2 * d,
            max_degree=2 * d,
        )
        self.side = side
        self.d = d

    def _sorted_neighbors(self, vertices: np.ndarray) -> np.ndarray:
        side, d = self.side, self.d
        cand = np.empty((vertices.size, 2 * d), dtype=np.int64)
        stride = 1
        for j in range(d):
            coord = (vertices // stride) % side
            cand[:, 2 * j] = np.where(
                coord == side - 1, vertices - (side - 1) * stride, vertices + stride
            )
            cand[:, 2 * j + 1] = np.where(
                coord == 0, vertices + (side - 1) * stride, vertices - stride
            )
            stride *= side
        cand.sort(axis=1)
        return cand


class HypercubeOracle(_CandidateTableOracle):
    """The ``dim``-dimensional hypercube ``Q_dim`` of
    :func:`repro.graphs.expanders.hypercube`, edge-free: neighbors are
    single-bit flips.  No ``dim <= 22`` cap — ``dim = 20`` is the
    million-vertex scale point."""

    kind = "hypercube"

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError("dimension must be >= 1")
        super().__init__(
            1 << dim,
            name=f"hypercube({dim})",
            meta={"dim": dim, "conductance_exact": 1.0 / dim},
            min_degree=dim,
            max_degree=dim,
        )
        self.dim = dim

    def _sorted_neighbors(self, vertices: np.ndarray) -> np.ndarray:
        flips = np.int64(1) << np.arange(self.dim, dtype=np.int64)
        cand = vertices[:, None] ^ flips[None, :]
        cand.sort(axis=1)
        return cand


class CirculantOracle(_CandidateTableOracle):
    """The circulant graph of :func:`repro.graphs.expanders.circulant`,
    edge-free: ``x ~ x ± s (mod n)`` per offset.

    Offsets are validated so the ``2 |offsets|`` candidates are
    pairwise distinct (``s % n != 0``, ``2 s % n != 0``, and the
    ``{s, n - s}`` pairs disjoint) — the CSR builder silently dedups
    colliding offsets, which would break the oracle's constant-degree
    contract, so the oracle refuses them instead.
    """

    kind = "circulant"

    def __init__(self, n: int, offsets: list[int] | tuple[int, ...]) -> None:
        if n < 3:
            raise ValueError("circulant needs n >= 3")
        if not offsets:
            raise ValueError("need at least one offset")
        norm: list[int] = []
        seen: set[frozenset[int]] = set()
        for raw in offsets:
            s = int(raw) % n
            if s == 0:
                raise ValueError("offset 0 would create self-loops")
            if 2 * s % n == 0:
                raise ValueError(
                    f"circulant oracle offset {raw} is an involution mod {n} "
                    "(s == -s), collapsing its ± pair; use the CSR builder "
                    "for degenerate offsets"
                )
            pair = frozenset((s, n - s))
            if pair in seen:
                raise ValueError(
                    f"circulant oracle offsets collide mod ±{n} "
                    "(the CSR builder would dedup them; the oracle's "
                    "constant degree cannot)"
                )
            seen.add(pair)
            norm.append(s)
        super().__init__(
            n,
            name=f"circulant({n},{[int(s) for s in offsets]})",
            meta={"offsets": tuple(norm)},
            min_degree=2 * len(norm),
            max_degree=2 * len(norm),
        )
        self.offsets = tuple(norm)

    def _sorted_neighbors(self, vertices: np.ndarray) -> np.ndarray:
        n = self.n
        cand = np.empty((vertices.size, 2 * len(self.offsets)), dtype=np.int64)
        for j, s in enumerate(self.offsets):
            cand[:, 2 * j] = (vertices + s) % n
            cand[:, 2 * j + 1] = (vertices - s) % n
        cand.sort(axis=1)
        return cand


class KroneckerOracle(NeighborOracle):
    """The ``power``-th Kronecker power of a small 0/1 seed matrix,
    self-loops removed — the stochastic-Kronecker generator family
    (Leskovec et al.), reachable only through the implicit route at
    scale.

    *base* is the seed adjacency matrix, row-major flat (so sweep specs
    can carry it as a JSON list); it must be square, symmetric, 0/1,
    with every row non-empty.  A vertex of ``B^{⊗K}`` is a base-``b``
    string of ``K`` digits (most-significant first); ``u ~ v`` iff
    ``B[u_i, v_i] = 1`` for all digit positions, minus the diagonal.
    Degrees are products of per-digit base degrees (minus one when
    every digit carries a loop), and the ``slot``-th neighbor decodes
    by mixed-radix arithmetic over per-digit sorted neighbor lists —
    with the vertex's own self-rank skipped, which is what keeps the
    enumeration aligned with the loop-free CSR materialisation.
    """

    kind = "kronecker"

    def __init__(self, base: list[int] | tuple[int, ...], power: int) -> None:
        flat = np.asarray(base, dtype=np.int64).ravel()
        b = math.isqrt(flat.size)
        if b * b != flat.size or b < 2:
            raise ValueError(
                "Kronecker base must be a flat row-major square matrix "
                f"with side >= 2, got {flat.size} entries"
            )
        if power < 1:
            raise ValueError("Kronecker power must be >= 1")
        mat = flat.reshape(b, b)
        if not np.isin(mat, (0, 1)).all():
            raise ValueError("Kronecker base entries must be 0/1")
        if not np.array_equal(mat, mat.T):
            raise ValueError("Kronecker base must be symmetric")
        degl = mat.sum(axis=1)
        if degl.min() < 1:
            raise ValueError("every Kronecker base row needs at least one 1")
        hasloop = np.diagonal(mat) == 1
        maxdegl = int(degl.max())
        mindegl = int(degl.min())
        lists = np.zeros((b, maxdegl), dtype=np.int64)
        looppos = np.zeros(b, dtype=np.int64)
        for i in range(b):
            nbrs = np.flatnonzero(mat[i])
            lists[i, : nbrs.size] = nbrs
            looppos[i] = int(np.searchsorted(nbrs, i))
        # exact degree bounds: the self pair subtracts one exactly when
        # every digit carries a loop, so the min drops iff some
        # min-degree row has a loop (repeat it) and the max drops iff
        # every max-degree row has one (no loop-free escape digit)
        min_deg = mindegl**power - int(bool(hasloop[degl == mindegl].any()))
        max_deg = maxdegl**power - int(bool(hasloop[degl == maxdegl].all()))
        if min_deg < 1:
            raise ValueError(
                "Kronecker base would create isolated vertices "
                "(a degree-1 digit whose only neighbor is its own loop)"
            )
        super().__init__(
            b**power,
            name=f"kron[{b}^{power}]",
            meta={"base": tuple(int(x) for x in flat), "b": b, "power": power},
            min_degree=min_deg,
            max_degree=max_deg,
        )
        self.b = b
        self.power = power
        self._lists = lists
        self._degl = degl
        self._hasloop = hasloop
        self._looppos = looppos

    def _digits(self, vertices: np.ndarray) -> np.ndarray:
        """``(power, N)`` base-``b`` digits, most-significant first."""
        out = np.empty((self.power, vertices.size), dtype=np.int64)
        rem = vertices
        for i in range(self.power - 1, -1, -1):
            out[i] = rem % self.b
            rem = rem // self.b
        return out

    def degree(self, vertices: np.ndarray) -> np.ndarray:
        v = np.asarray(vertices, dtype=np.int64)
        shape = v.shape
        digs = self._digits(np.ascontiguousarray(v).ravel())
        deg = np.prod(self._degl[digs], axis=0)
        deg -= self._hasloop[digs].all(axis=0)
        return deg.reshape(shape)

    def neighbor_at(self, vertices: np.ndarray, slots: np.ndarray) -> np.ndarray:
        v, s = np.broadcast_arrays(
            np.asarray(vertices, dtype=np.int64), np.asarray(slots, dtype=np.int64)
        )
        shape = v.shape
        vf = np.ascontiguousarray(v).ravel()
        sf = np.ascontiguousarray(s).ravel()
        digs = self._digits(vf)
        degl = self._degl[digs]
        # mixed-radix weights over the candidate enumeration: weight of
        # digit i is the product of the less-significant digit degrees
        w = np.empty_like(degl)
        w[-1] = 1
        for i in range(self.power - 2, -1, -1):
            w[i] = w[i + 1] * degl[i + 1]
        # when every digit has a loop, the candidate at self_rank is the
        # vertex itself; skip it so slots enumerate proper neighbors
        self_rank = (self._looppos[digs] * w).sum(axis=0)
        all_loop = self._hasloop[digs].all(axis=0)
        slot = sf + (all_loop & (sf >= self_rank))
        out = np.zeros(vf.size, dtype=np.int64)
        pw = np.int64(1)
        for i in range(self.power - 1, -1, -1):
            choice = (slot // w[i]) % degl[i]
            out += self._lists[digs[i], choice] * pw
            pw *= self.b
        return out.reshape(shape)


# ---------------------------------------------------------------------------
# conversions and builders
# ---------------------------------------------------------------------------
def as_oracle(graph: Graph | NeighborOracle) -> NeighborOracle:
    """The engines' front door: any graph-like object as an oracle.

    A :class:`NeighborOracle` passes through; a CSR :class:`Graph`
    wraps in the bit-identical adapter.
    """
    if isinstance(graph, NeighborOracle):
        return graph
    if isinstance(graph, Graph):
        return CSRNeighborOracle(graph)
    raise TypeError(
        f"expected a Graph or NeighborOracle, got {type(graph).__name__}"
    )


def to_csr(oracle: NeighborOracle) -> Graph:
    """Materialise an oracle as a validated CSR :class:`Graph`.

    Small instances only (this allocates the edge arrays the oracle
    exists to avoid); the conformance suite uses it to check every
    arithmetic oracle against real CSR semantics.
    """
    if isinstance(oracle, CSRNeighborOracle):
        return oracle.graph
    if oracle.n > 5_000_000:
        raise ValueError(
            f"refusing to materialise {oracle.name} ({oracle.n} vertices) as "
            "CSR; the implicit oracle exists to avoid exactly this"
        )
    verts = np.arange(oracle.n, dtype=np.int64)
    nbrs, deg = oracle.all_neighbors(verts)
    indptr = np.zeros(oracle.n + 1, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])
    return Graph(
        indptr,
        np.ascontiguousarray(nbrs, dtype=np.int64),
        name=oracle.name,
        meta=dict(oracle.meta),
        validate=True,
    )


def torus_oracle(n: int, d: int = 2) -> TorusOracle:
    """Edge-free torus ``[0, n]^d`` (see :class:`TorusOracle`)."""
    return TorusOracle(n, d)


def hypercube_oracle(dim: int) -> HypercubeOracle:
    """Edge-free hypercube ``Q_dim`` (see :class:`HypercubeOracle`)."""
    return HypercubeOracle(dim)


def circulant_oracle(n: int, offsets: list[int]) -> CirculantOracle:
    """Edge-free circulant on ``Z_n`` (see :class:`CirculantOracle`)."""
    return CirculantOracle(n, offsets)


def kronecker_oracle(base: list[int], power: int) -> KroneckerOracle:
    """Edge-free Kronecker power of a flat 0/1 seed matrix (see
    :class:`KroneckerOracle`)."""
    return KroneckerOracle(base, power)


def kronecker(base: list[int], power: int) -> Graph:
    """CSR materialisation of the Kronecker-power graph — the seed
    matrix's ``power``-th tensor power minus self-loops.  Small
    instances only; at scale use :func:`kronecker_oracle`."""
    return to_csr(KroneckerOracle(base, power))


#: the registry the RPL203 contract audit walks: topology kind →
#: (builder name in ``repro.graphs``, small-instance builder kwargs).
#: Every entry must bind the full oracle protocol and round-trip
#: through the store's graph axes (``repro.store.spec``).
IMPLICIT_TOPOLOGIES: dict[str, tuple[str, dict]] = {
    "torus": ("torus_oracle", {"n": 4, "d": 2}),
    "hypercube": ("hypercube_oracle", {"dim": 4}),
    "circulant": ("circulant_oracle", {"n": 11, "offsets": (1, 3)}),
    "kronecker": (
        "kronecker_oracle",
        {"base": (0, 1, 1, 1, 0, 1, 1, 1, 0), "power": 2},
    ),
}
