"""Random graph models.

Theorem 8's discussion names power-law graphs and random geometric
graphs as families with useful conductance; these generators supply
them, along with Erdős–Rényi, Barabási–Albert and Watts–Strogatz
controls.  All are seeded and implemented from scratch (skip-sampling
for sparse G(n, p), Miller–Hagberg style weight sampling for Chung–Lu,
cell lists for geometric graphs).
"""

from __future__ import annotations

import numpy as np

from .base import Graph
from .builders import from_edge_list
from ..sim.rng import SeedLike, resolve_rng

__all__ = [
    "erdos_renyi",
    "gnm_random",
    "barabasi_albert",
    "chung_lu_powerlaw",
    "random_geometric",
    "watts_strogatz",
    "largest_component",
]


def erdos_renyi(n: int, p: float, seed: SeedLike = None) -> Graph:
    """G(n, p) via geometric skip-sampling over the ``n·(n-1)/2`` pairs
    (O(m) expected work, no dense mask)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = resolve_rng(seed)
    if p == 0.0 or n < 2:
        return from_edge_list(max(n, 0), [], name=f"gnp({n},{p})")
    if p == 1.0:
        from .classic import complete_graph

        return complete_graph(n)
    total = n * (n - 1) // 2
    edges = []
    pos = -1
    log1mp = np.log1p(-p)
    while True:
        # skip ~ Geometric(p): number of misses before the next edge
        skip = int(np.floor(np.log(1.0 - rng.random()) / log1mp))
        pos += skip + 1
        if pos >= total:
            break
        # decode linear pair index -> (u, v), u < v (row-major upper triangle)
        u = int((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * pos)) // 2)
        v = int(pos - u * (2 * n - u - 1) // 2 + u + 1)
        edges.append((u, v))
    return from_edge_list(n, edges, name=f"gnp({n},{p})")


def gnm_random(n: int, m: int, seed: SeedLike = None) -> Graph:
    """G(n, m): exactly ``m`` distinct uniform edges."""
    total = n * (n - 1) // 2
    if m > total:
        raise ValueError(f"m={m} exceeds the {total} possible edges")
    rng = resolve_rng(seed)
    chosen: set[int] = set()
    while len(chosen) < m:
        need = m - len(chosen)
        draw = rng.integers(0, total, size=2 * need + 8)
        for t in draw:
            chosen.add(int(t))
            if len(chosen) == m:
                break
    edges = []
    for pos in chosen:
        u = int((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * pos)) // 2)
        v = int(pos - u * (2 * n - u - 1) // 2 + u + 1)
        edges.append((u, v))
    return from_edge_list(n, edges, name=f"gnm({n},{m})")


def barabasi_albert(n: int, m: int, seed: SeedLike = None) -> Graph:
    """Preferential attachment: each arriving vertex attaches to ``m``
    distinct existing vertices chosen ∝ degree (repeated-targets list)."""
    if m < 1 or m >= n:
        raise ValueError("need 1 <= m < n")
    rng = resolve_rng(seed)
    targets = list(range(m))  # start from an m-clique-ish seed star
    repeated: list[int] = []
    edges = []
    for v in range(m, n):
        chosen = set()
        while len(chosen) < m:
            if repeated and rng.random() > 1.0 / (len(repeated) + 1):
                cand = repeated[int(rng.integers(0, len(repeated)))]
            else:
                cand = int(rng.integers(0, v))
            chosen.add(cand)
        for u in chosen:
            edges.append((u, v))
            repeated.extend([u, v])
    return from_edge_list(n, edges, name=f"ba({n},{m})")


def chung_lu_powerlaw(
    n: int,
    exponent: float = 2.5,
    *,
    avg_degree: float = 8.0,
    seed: SeedLike = None,
) -> Graph:
    """Chung–Lu graph with power-law expected degrees ``w_i ∝ (i+i0)^{-1/(β-1)}``.

    Edge ``(i, j)`` appears independently with probability
    ``min(1, w_i w_j / W)``.  Implemented with the Miller–Hagberg
    skip-sampling trick over weight-sorted vertices: O(n + m) expected
    time.
    """
    if exponent <= 2.0:
        raise ValueError("exponent must exceed 2 for bounded average degree")
    rng = resolve_rng(seed)
    i0 = 1.0
    w = (np.arange(n, dtype=np.float64) + i0) ** (-1.0 / (exponent - 1.0))
    w *= avg_degree * n / w.sum()
    order = np.argsort(-w)  # decreasing
    w = w[order]
    total_w = w.sum()
    edges = []
    for i in range(n - 1):
        # walk j > i with skip sampling at the envelope probability q = min(1, w_i w_j / W);
        # since w is sorted decreasing, q is monotone in j and we re-anchor as we go.
        j = i + 1
        p_env = min(1.0, w[i] * w[j] / total_w)
        while j < n and p_env > 0:
            if p_env < 1.0:
                skip = int(np.floor(np.log(1.0 - rng.random()) / np.log1p(-p_env)))
                j += skip
            if j >= n:
                break
            q = min(1.0, w[i] * w[j] / total_w)
            if rng.random() < q / p_env:
                edges.append((int(order[i]), int(order[j])))
            p_env = q
            j += 1
    return from_edge_list(n, edges, name=f"chung_lu({n},β={exponent})")


def random_geometric(n: int, radius: float, seed: SeedLike = None) -> Graph:
    """Random geometric graph: ``n`` uniform points in the unit square,
    edges between pairs within Euclidean *radius* (cell-list search)."""
    if not 0 < radius <= np.sqrt(2):
        raise ValueError("radius must be in (0, sqrt(2)]")
    rng = resolve_rng(seed)
    pts = rng.random((n, 2))
    cells = max(1, int(1.0 / radius))
    cx = np.minimum((pts[:, 0] * cells).astype(np.int64), cells - 1)
    cy = np.minimum((pts[:, 1] * cells).astype(np.int64), cells - 1)
    cell_id = cx * cells + cy
    order = np.argsort(cell_id, kind="stable")
    sorted_cells = cell_id[order]
    starts = np.searchsorted(sorted_cells, np.arange(cells * cells))
    ends = np.searchsorted(sorted_cells, np.arange(cells * cells), side="right")
    r2 = radius * radius
    edges = []
    for gx in range(cells):
        for gy in range(cells):
            mine = order[starts[gx * cells + gy] : ends[gx * cells + gy]]
            if mine.size == 0:
                continue
            for dx in (0, 1):
                for dy in (-1, 0, 1):
                    if dx == 0 and dy < 0:
                        continue
                    nx_, ny_ = gx + dx, gy + dy
                    if not (0 <= nx_ < cells and 0 <= ny_ < cells):
                        continue
                    other = order[starts[nx_ * cells + ny_] : ends[nx_ * cells + ny_]]
                    if other.size == 0:
                        continue
                    d2 = ((pts[mine, None, :] - pts[None, other, :]) ** 2).sum(-1)
                    ii, jj = np.nonzero(d2 <= r2)
                    for a, b in zip(mine[ii], other[jj]):
                        if (dx == 0 and dy == 0 and a < b) or (dx, dy) != (0, 0):
                            edges.append((int(a), int(b)))
    return from_edge_list(n, edges, name=f"rgg({n},r={radius:.3f})", meta={"points": pts})


def watts_strogatz(n: int, k: int, beta: float, seed: SeedLike = None) -> Graph:
    """Watts–Strogatz small world: ring lattice with ``k`` nearest
    neighbors per side, each edge rewired with probability *beta*."""
    if k < 1 or 2 * k >= n:
        raise ValueError("need 1 <= k and 2k < n")
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must be in [0, 1]")
    rng = resolve_rng(seed)
    present: set[tuple[int, int]] = set()
    for u in range(n):
        for s in range(1, k + 1):
            v = (u + s) % n
            present.add((min(u, v), max(u, v)))
    edges = list(present)
    for idx, (u, v) in enumerate(edges):
        if rng.random() < beta:
            for _ in range(32):
                w = int(rng.integers(0, n))
                cand = (min(u, w), max(u, w))
                if w != u and cand not in present:
                    present.discard((u, v))
                    present.add(cand)
                    edges[idx] = cand
                    break
    return from_edge_list(n, list(present), name=f"ws({n},{k},{beta})")


def largest_component(graph: Graph) -> Graph:
    """Restrict to the largest connected component (vertices relabelled
    by ascending original id)."""
    from .checks import connected_components

    labels = connected_components(graph)
    biggest = np.argmax(np.bincount(labels))
    keep = np.flatnonzero(labels == biggest)
    remap = -np.ones(graph.n, dtype=np.int64)
    remap[keep] = np.arange(keep.size)
    edges = graph.edges()
    mask = (remap[edges[:, 0]] >= 0) & (remap[edges[:, 1]] >= 0)
    sub = np.column_stack([remap[edges[mask, 0]], remap[edges[mask, 1]]])
    return from_edge_list(keep.size, sub, name=f"{graph.name}|lcc")
