"""Graph products and the Lemma 11 directed pair-walk construction.

Lemma 11 analyses two Walt pebbles jointly as a single walk on a
*directed, weighted* version ``D(G×G)`` of the tensor product: off the
diagonal both pebbles step independently (weight ``1/d²`` per
neighbor pair); on the diagonal the lower-priority pebble copies the
leader with probability ``1/2``, which the paper models by ``d + 1``
parallel arcs to each diagonal neighbor.  :func:`walt_pair_chain`
builds the resulting transition matrix (optionally lazy, as the paper
requires) together with the Eulerian stationary distribution
``π = 2/(n²+n)`` on the diagonal and ``1/(n²+n)`` off it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .base import Graph
from .builders import from_edge_list

__all__ = [
    "tensor_product",
    "cartesian_product",
    "walt_pair_chain",
    "WaltPairChain",
]


def tensor_product(g: Graph, h: Graph) -> Graph:
    """Tensor (categorical) product ``G × H``: ``(a, c) ~ (b, d)`` iff
    ``a ~ b`` in G and ``c ~ d`` in H.  Vertex id of ``(a, c)`` is
    ``a · |H| + c``."""
    eg = g.edges()
    eh = h.edges()
    nh = h.n
    # each G-edge (a,b) with each H-edge (c,d) yields (a,c)-(b,d) and (a,d)-(b,c)
    a = eg[:, 0][:, None]
    b = eg[:, 1][:, None]
    c = eh[:, 0][None, :]
    d = eh[:, 1][None, :]
    e1 = np.column_stack([(a * nh + c).ravel(), (b * nh + d).ravel()])
    e2 = np.column_stack([(a * nh + d).ravel(), (b * nh + c).ravel()])
    return from_edge_list(
        g.n * h.n, np.concatenate([e1, e2]), name=f"({g.name})x({h.name})"
    )


def cartesian_product(g: Graph, h: Graph) -> Graph:
    """Cartesian product ``G □ H``: step in exactly one coordinate."""
    nh = h.n
    eg = g.edges()
    eh = h.edges()
    parts = []
    if eg.size:
        a, b = eg[:, 0][:, None], eg[:, 1][:, None]
        c = np.arange(nh, dtype=np.int64)[None, :]
        parts.append(np.column_stack([(a * nh + c).ravel(), (b * nh + c).ravel()]))
    if eh.size:
        c, d = eh[:, 0][None, :], eh[:, 1][None, :]
        a = np.arange(g.n, dtype=np.int64)[:, None]
        parts.append(np.column_stack([(a * nh + c).ravel(), (a * nh + d).ravel()]))
    edges = np.concatenate(parts) if parts else np.empty((0, 2), dtype=np.int64)
    return from_edge_list(g.n * h.n, edges, name=f"({g.name})□({h.name})")


@dataclass(frozen=True)
class WaltPairChain:
    """The Lemma 11 pair walk on ``D(G×G)``.

    Attributes
    ----------
    transition:
        ``n² × n²`` row-stochastic CSR matrix (lazy if requested).
    stationary:
        The Eulerian stationary distribution: ``2/(n²+n)`` on diagonal
        states ``(u, u)``, ``1/(n²+n)`` elsewhere.
    n:
        Number of vertices of the base graph.
    lazy:
        Whether the chain includes the paper's 1/2 holding probability.
    """

    transition: sp.csr_matrix
    stationary: np.ndarray
    n: int
    lazy: bool

    def state_id(self, u: int, v: int) -> int:
        """State index of the ordered pebble pair ``(u, v)``."""
        return u * self.n + v

    def diagonal_states(self) -> np.ndarray:
        """Ids of the ``S1`` (collided) states ``(u, u)``."""
        u = np.arange(self.n, dtype=np.int64)
        return u * self.n + u


def walt_pair_chain(g: Graph, *, lazy: bool = True, allow_reducible: bool = False) -> WaltPairChain:
    """Build the Lemma 11 joint chain of two ordered Walt pebbles on a
    regular graph *g*.

    Off-diagonal state ``(u, v)``: both pebbles step independently and
    uniformly — probability ``1/(d(u)·d(v))`` to each neighbor pair.
    Diagonal state ``(u, u)``: the leader steps uniformly to ``x``; the
    follower copies ``x`` with probability 1/2, otherwise steps
    uniformly — matching the paper's ``(d+1)/2d²`` diagonal-to-diagonal
    and ``1/2d²`` diagonal-to-off arc weights.  With ``lazy=True`` the
    chain holds with probability 1/2 (the paper's technical condition).

    The graph must be regular for the Eulerian stationary form of the
    paper to hold; irregular input raises :class:`ValueError`.

    **Bipartite caveat** (a subtlety Lemma 11 leaves implicit): when
    *g* is bipartite the tensor product ``G×G`` is disconnected — the
    parity of the pebbles' color sum is invariant, so pebbles started
    on opposite colors can never collide and the pair chain is
    *reducible*.  Chung's convergence machinery then fails (``λ₁ = 0``).
    Bipartite input raises unless ``allow_reducible=True`` (useful for
    inspecting the local transition structure only).
    """
    if not g.is_regular():
        raise ValueError("walt_pair_chain requires a regular graph (as in Lemma 11)")
    from .checks import is_bipartite

    if not allow_reducible and is_bipartite(g):
        raise ValueError(
            "walt_pair_chain on a bipartite graph is reducible (G×G is "
            "disconnected); Lemma 11 requires a non-bipartite base graph. "
            "Pass allow_reducible=True to build the chain anyway."
        )
    n = g.n
    d = g.degree(0) if n else 0
    if d == 0:
        raise ValueError("graph must have positive degree")
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    inv_d2 = 1.0 / (d * d)
    for u in range(n):
        nu = g.neighbors(u)
        for v in range(n):
            state = u * n + v
            nv = g.neighbors(v)
            if u != v:
                targets = (nu[:, None] * n + nv[None, :]).ravel()
                rows.append(np.full(targets.size, state, dtype=np.int64))
                cols.append(targets)
                vals.append(np.full(targets.size, inv_d2))
            else:
                # leader to x (1/d); follower copies (1/2) or re-draws (1/2d)
                diag_targets = nu * n + nu
                rows.append(np.full(nu.size, state, dtype=np.int64))
                cols.append(diag_targets)
                vals.append(np.full(nu.size, (d + 1) / (2 * d * d)))
                xy = np.transpose([np.repeat(nu, nu.size), np.tile(nu, nu.size)])
                offmask = xy[:, 0] != xy[:, 1]
                off_targets = xy[offmask, 0] * n + xy[offmask, 1]
                rows.append(np.full(off_targets.size, state, dtype=np.int64))
                cols.append(off_targets)
                vals.append(np.full(off_targets.size, 1.0 / (2 * d * d)))
    size = n * n
    p = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(size, size),
    )
    p.sum_duplicates()
    if lazy:
        p = 0.5 * sp.eye(size, format="csr") + 0.5 * p
    pi = np.full(size, 1.0 / (n * n + n))
    u = np.arange(n, dtype=np.int64)
    pi[u * n + u] = 2.0 / (n * n + n)
    return WaltPairChain(transition=p.tocsr(), stationary=pi, n=n, lazy=lazy)
