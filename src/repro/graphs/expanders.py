"""Expander-family generators.

Theorem 8 / Corollary 9 are exercised on regular graphs whose
conductance we can either compute or control: hypercubes, random
regular graphs (configuration model with switching repairs), the
Margulis–Gabber–Galil construction, chordal-cycle (inverse-map)
expanders, and circulants.
"""

from __future__ import annotations

import numpy as np

from .base import Graph
from .builders import from_edge_list
from .checks import is_connected
from ..sim.rng import SeedLike, resolve_rng

__all__ = [
    "hypercube",
    "random_regular",
    "margulis",
    "chordal_cycle",
    "circulant",
    "is_prime",
]


def hypercube(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube ``Q_dim`` (``2^dim`` vertices,
    ``dim``-regular, conductance ``Θ(1/dim)``)."""
    if dim < 1:
        raise ValueError("dimension must be >= 1")
    if dim > 22:
        raise ValueError("hypercube too large")
    n = 1 << dim
    ids = np.arange(n, dtype=np.int64)
    nbrs = ids[:, None] ^ (np.int64(1) << np.arange(dim, dtype=np.int64))[None, :]
    nbrs.sort(axis=1)
    indptr = np.arange(0, n * dim + 1, dim, dtype=np.int64)
    return Graph(
        indptr,
        nbrs.ravel(),
        name=f"hypercube({dim})",
        meta={"dim": dim, "conductance_exact": 1.0 / dim},
        validate=False,
    )


def random_regular(n: int, d: int, seed: SeedLike = None, *, max_tries: int = 60) -> Graph:
    """Random ``d``-regular simple graph by configuration-model pairing
    with defect-repair switching.

    A uniformly random stub pairing is drawn; self-loops and parallel
    edges are then removed by double-edge switches that strictly reduce
    the defect count (each switch replaces a defective edge and a
    random healthy edge by a crosswise pair).  The result is connected
    with probability ``1 - O(n^{-(d-2)})`` for ``d >= 3``; disconnected
    draws are rejected and resampled.
    """
    if n * d % 2 != 0:
        raise ValueError("n*d must be even")
    if d < 1 or d >= n:
        raise ValueError("need 1 <= d < n")
    rng = resolve_rng(seed)
    for _ in range(max_tries):
        edges = _pair_and_repair(n, d, rng)
        if edges is None:
            continue
        g = from_edge_list(n, edges, name=f"random_regular({n},{d})", meta={"d": d})
        if g.degrees.min() == d == g.degrees.max() and (d < 3 or is_connected(g)):
            if d >= 3 or is_connected(g):
                return g
    raise RuntimeError(f"failed to sample a connected {d}-regular graph on {n} vertices")


def _pair_and_repair(n: int, d: int, rng: np.random.Generator) -> np.ndarray | None:
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    rng.shuffle(stubs)
    src = stubs[0::2].copy()
    dst = stubs[1::2].copy()
    m = src.size
    for _ in range(200):
        key = np.minimum(src, dst) * np.int64(n) + np.maximum(src, dst)
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        dup = np.zeros(m, dtype=bool)
        dup[order[1:]] = sorted_key[1:] == sorted_key[:-1]
        bad = dup | (src == dst)
        nbad = int(bad.sum())
        if nbad == 0:
            return np.column_stack([src, dst])
        bad_idx = np.flatnonzero(bad)
        partner = rng.integers(0, m, size=bad_idx.size)
        for i, j in zip(bad_idx, partner):
            if i == j:
                continue
            # propose swap: (a,b),(c,e) -> (a,e),(c,b)
            a, b = src[i], dst[i]
            c, e = src[j], dst[j]
            if a == e or c == b:
                continue
            src[i], dst[i], src[j], dst[j] = a, e, c, b
    return None


def margulis(m: int) -> Graph:
    """Margulis–Gabber–Galil expander on ``Z_m × Z_m`` (simplified).

    Vertex ``(x, y)`` is joined to ``(x ± y, y)``, ``(x ± y + 1, y)``? —
    we use the standard 8-map variant ``(x ± y, y)``, ``(x ± (y+1), y)``,
    ``(x, y ± x)``, ``(x, y ± (x+1))`` (arithmetic mod ``m``).  The
    textbook object is an 8-regular multigraph with constant spectral
    gap; we return its *simplification* (loops dropped, parallels
    merged), which keeps the expansion but makes degrees vary in
    ``{4..8}``.  ``meta['regular'] = False`` records this substitution.
    """
    if m < 2:
        raise ValueError("m must be >= 2")
    n = m * m
    ids = np.arange(n, dtype=np.int64)
    x, y = ids % m, ids // m

    def enc(xx: np.ndarray, yy: np.ndarray) -> np.ndarray:
        return (yy % m) * m + (xx % m)

    targets = [
        enc(x + y, y),
        enc(x - y, y),
        enc(x + y + 1, y),
        enc(x - y - 1, y),
        enc(x, y + x),
        enc(x, y - x),
        enc(x, y + x + 1),
        enc(x, y - x - 1),
    ]
    src = np.tile(ids, len(targets))
    dst = np.concatenate(targets)
    keep = src != dst
    return from_edge_list(
        n,
        np.column_stack([src[keep], dst[keep]]),
        name=f"margulis({m})",
        meta={"m": m, "regular": False},
    )


def is_prime(p: int) -> bool:
    """Deterministic Miller–Rabin for 64-bit integers."""
    if p < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if p % small == 0:
            return p == small
    d, r = p - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, p)
        if x in (1, p - 1):
            continue
        for _ in range(r - 1):
            x = x * x % p
            if x == p - 1:
                break
        else:
            return False
    return True


def chordal_cycle(p: int) -> Graph:
    """Chordal-cycle expander on ``Z_p`` (``p`` prime): ``x ~ x ± 1`` and
    ``x ~ x^{-1} (mod p)``; vertex 0 gets only the cycle edges.

    A classic 3-regular-ish expander (Lubotzky); after simplification
    (fixed points of inversion, the 0 vertex) a handful of vertices
    have degree 2.
    """
    if not is_prime(p):
        raise ValueError(f"p={p} must be prime")
    x = np.arange(p, dtype=np.int64)
    nxt = (x + 1) % p
    edges = [np.column_stack([x, nxt])]
    xs = np.arange(1, p, dtype=np.int64)
    inv = np.array([pow(int(v), p - 2, p) for v in xs], dtype=np.int64)
    keep = inv != xs
    edges.append(np.column_stack([xs[keep], inv[keep]]))
    return from_edge_list(p, np.concatenate(edges), name=f"chordal_cycle({p})")


def circulant(n: int, offsets: list[int]) -> Graph:
    """Circulant graph: ``x ~ x ± s (mod n)`` for each offset ``s``."""
    if n < 3:
        raise ValueError("circulant needs n >= 3")
    if not offsets:
        raise ValueError("need at least one offset")
    x = np.arange(n, dtype=np.int64)
    parts = []
    for s in offsets:
        s = s % n
        if s == 0:
            raise ValueError("offset 0 would create self-loops")
        parts.append(np.column_stack([x, (x + s) % n]))
    return from_edge_list(n, np.concatenate(parts), name=f"circulant({n},{offsets})")
