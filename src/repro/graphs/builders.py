"""Constructors that normalise assorted inputs into CSR :class:`Graph`.

All builders deduplicate parallel edges, drop self-loops on request (or
reject them), sort each neighbor list, and produce validated graphs.
Generators inside :mod:`repro.graphs` construct CSR directly and skip
these slow paths.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from .base import Graph

__all__ = [
    "from_edge_list",
    "from_adjacency",
    "from_networkx",
    "from_dense",
    "csr_from_sorted_edges",
]


def csr_from_sorted_edges(n: int, src: np.ndarray, dst: np.ndarray, **kw) -> Graph:
    """Build a Graph from *directed half-edge* arrays (both directions
    present), assumed already deduplicated and loop-free.  Sorting into
    CSR happens here; validation is skipped (trusted internal path).
    """
    order = np.lexsort((dst, src))
    src = src[order]
    dst = dst[order]
    counts = np.bincount(src, minlength=n).astype(np.int64)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return Graph(indptr, dst.astype(np.int64), validate=False, **kw)


def from_edge_list(
    n: int,
    edges: Iterable[tuple[int, int]] | np.ndarray,
    *,
    name: str = "graph",
    meta: Mapping | None = None,
    allow_self_loops: bool = False,
) -> Graph:
    """Build a graph on ``n`` vertices from an iterable of ``(u, v)`` pairs.

    Parallel edges are merged.  Self-loops are dropped when
    ``allow_self_loops`` is true and rejected otherwise (the cobra-walk
    model of the paper is defined on simple graphs).
    """
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("edges must be an iterable of (u, v) pairs")
    if arr.size and (arr.min() < 0 or arr.max() >= n):
        raise ValueError("edge endpoint out of range")
    loops = arr[:, 0] == arr[:, 1]
    if loops.any():
        if not allow_self_loops:
            raise ValueError("self-loops are not allowed (pass allow_self_loops=True to drop)")
        arr = arr[~loops]
    # canonical orientation, dedupe, then mirror
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    keys = np.unique(lo * np.int64(n) + hi)
    lo = keys // n
    hi = keys % n
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    return csr_from_sorted_edges(n, src, dst, name=name, meta=meta)


def from_adjacency(
    adjacency: Mapping[int, Sequence[int]] | Sequence[Sequence[int]],
    *,
    n: int | None = None,
    name: str = "graph",
    meta: Mapping | None = None,
) -> Graph:
    """Build a graph from adjacency lists.

    ``adjacency`` may be a mapping ``{u: [v, ...]}`` or a sequence whose
    index is the vertex id.  Edges need only be listed in one direction;
    the result is symmetrised.
    """
    if isinstance(adjacency, Mapping):
        items = adjacency.items()
        max_v = max((max([u, *vs], default=u) for u, vs in items), default=-1)
    else:
        items = enumerate(adjacency)
        max_v = len(adjacency) - 1
        for u, vs in enumerate(adjacency):
            for v in vs:
                max_v = max(max_v, v)
    count = (max_v + 1) if n is None else n
    edges = [(u, v) for u, vs in (adjacency.items() if isinstance(adjacency, Mapping) else enumerate(adjacency)) for v in vs]
    return from_edge_list(count, edges, name=name, meta=meta)


def from_networkx(g, *, name: str | None = None) -> Graph:
    """Convert a :class:`networkx.Graph`.

    Vertex labels are relabelled to ``0..n-1`` in sorted order when
    sortable, otherwise in iteration order.  Directed graphs are
    rejected; convert explicitly first.
    """

    if g.is_directed():
        raise ValueError("from_networkx expects an undirected graph")
    nodes = list(g.nodes())
    try:
        nodes = sorted(nodes)
    except TypeError:
        pass
    index = {u: i for i, u in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in g.edges() if u != v]
    return from_edge_list(len(nodes), edges, name=name or "networkx")


def from_dense(matrix: np.ndarray, *, name: str = "dense", meta: Mapping | None = None) -> Graph:
    """Build a graph from a symmetric 0/1 adjacency matrix."""
    a = np.asarray(matrix)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("adjacency matrix must be square")
    if not np.array_equal(a, a.T):
        raise ValueError("adjacency matrix must be symmetric")
    if np.any(np.diag(a) != 0):
        raise ValueError("adjacency matrix must have an empty diagonal")
    src, dst = np.nonzero(a)
    keep = src < dst
    return from_edge_list(a.shape[0], np.column_stack([src[keep], dst[keep]]), name=name, meta=meta)
