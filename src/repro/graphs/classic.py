"""Classic named graph families.

Includes the witnesses the paper's general-graph bounds are measured
against: the lollipop graph (the standard ``Θ(n³)`` random-walk
cover-time worst case) and the star graph (the ``Ω(n log n)`` cobra
lower bound from the paper's conclusion).
"""

from __future__ import annotations

import numpy as np

from .base import Graph
from .builders import csr_from_sorted_edges, from_edge_list

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "complete_bipartite",
    "lollipop",
    "barbell",
    "wheel_graph",
    "double_star",
]


def path_graph(n: int) -> Graph:
    """Path on ``n`` vertices ``0 - 1 - ... - n-1``."""
    if n < 1:
        raise ValueError("path needs at least 1 vertex")
    u = np.arange(n - 1, dtype=np.int64)
    return csr_from_sorted_edges(
        n, np.concatenate([u, u + 1]), np.concatenate([u + 1, u]), name=f"path({n})"
    )


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices — the canonical 2-regular graph."""
    if n < 3:
        raise ValueError("cycle needs at least 3 vertices")
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    return csr_from_sorted_edges(
        n, np.concatenate([u, v]), np.concatenate([v, u]), name=f"cycle({n})"
    )


def complete_graph(n: int) -> Graph:
    """Complete graph ``K_n``."""
    if n < 1:
        raise ValueError("complete graph needs at least 1 vertex")
    if n == 1:
        return Graph(np.zeros(2, dtype=np.int64), np.empty(0, dtype=np.int64), name="K1", validate=False)
    src = np.repeat(np.arange(n, dtype=np.int64), n - 1)
    dst = np.concatenate([np.delete(np.arange(n, dtype=np.int64), i) for i in range(n)])
    indptr = np.arange(0, n * (n - 1) + 1, max(n - 1, 1), dtype=np.int64)
    return Graph(indptr, dst, name=f"K{n}", validate=False)


def star_graph(n: int) -> Graph:
    """Star with one hub (vertex 0) and ``n - 1`` leaves.

    The conclusion of the paper notes the star shows cobra cover time
    can be ``Ω(n log n)`` (a coupon-collector argument: only the hub's
    two draws discover leaves).
    """
    if n < 2:
        raise ValueError("star needs at least 2 vertices")
    leaves = np.arange(1, n, dtype=np.int64)
    return from_edge_list(
        n, np.column_stack([np.zeros(n - 1, dtype=np.int64), leaves]), name=f"star({n})"
    )


def complete_bipartite(a: int, b: int) -> Graph:
    """``K_{a,b}`` with left part ``0..a-1``, right part ``a..a+b-1``."""
    if a < 1 or b < 1:
        raise ValueError("both parts need at least 1 vertex")
    left = np.repeat(np.arange(a, dtype=np.int64), b)
    right = np.tile(np.arange(a, a + b, dtype=np.int64), a)
    return from_edge_list(a + b, np.column_stack([left, right]), name=f"K{a},{b}")


def lollipop(n: int, *, clique_fraction: float = 2 / 3) -> Graph:
    """Lollipop graph: a clique on ``~clique_fraction·n`` vertices with a
    path attached to one clique vertex, total ``n`` vertices.

    The ``2n/3``-clique / ``n/3``-path split maximises the simple
    random-walk cover time at ``(4/27 + o(1)) n³`` — the witness for the
    Θ(n³) worst case the paper's Theorem 20 is measured against.
    """
    if n < 4:
        raise ValueError("lollipop needs at least 4 vertices")
    if not 0.0 < clique_fraction < 1.0:
        raise ValueError("clique_fraction must be in (0, 1)")
    c = max(3, int(round(clique_fraction * n)))
    c = min(c, n - 1)  # leave at least one path vertex
    edges = [(i, j) for i in range(c) for j in range(i + 1, c)]
    # path c-1 .. c .. n-1 hangs off clique vertex c-1
    edges += [(i, i + 1) for i in range(c - 1, n - 1)]
    return from_edge_list(
        n, edges, name=f"lollipop({n},c={c})", meta={"clique": c, "path": n - c}
    )


def barbell(n: int) -> Graph:
    """Two ``n/3``-cliques joined by an ``n/3``-path (total ``n`` vertices,
    rounded).  A second high-cover-time witness with two traps."""
    if n < 9:
        raise ValueError("barbell needs at least 9 vertices")
    c = n // 3
    path_len = n - 2 * c
    edges = [(i, j) for i in range(c) for j in range(i + 1, c)]
    hi = n - c
    edges += [(hi + i, hi + j) for i in range(c) for j in range(i + 1, c)]
    # path from clique-A vertex c-1 through bridge vertices c..hi-1 to hi
    chain = [c - 1, *range(c, hi), hi]
    edges += [(chain[i], chain[i + 1]) for i in range(len(chain) - 1)]
    return from_edge_list(n, edges, name=f"barbell({n})", meta={"clique": c, "path": path_len})


def wheel_graph(n: int) -> Graph:
    """Wheel: hub 0 joined to an ``n - 1``-cycle."""
    if n < 4:
        raise ValueError("wheel needs at least 4 vertices")
    rim = np.arange(1, n, dtype=np.int64)
    edges = [(0, int(v)) for v in rim]
    edges += [(int(rim[i]), int(rim[(i + 1) % (n - 1)])) for i in range(n - 1)]
    return from_edge_list(n, edges, name=f"wheel({n})")


def double_star(a: int, b: int) -> Graph:
    """Two adjacent hubs with ``a`` and ``b`` leaves respectively."""
    if a < 0 or b < 0:
        raise ValueError("leaf counts must be non-negative")
    n = a + b + 2
    edges = [(0, 1)]
    edges += [(0, 2 + i) for i in range(a)]
    edges += [(1, 2 + a + i) for i in range(b)]
    return from_edge_list(n, edges, name=f"double_star({a},{b})")
