"""Tree generators.

The paper remarks (Section 3) that the two-step case analysis of
Lemma 2 shows 2-cobra walks on ``k``-ary trees cover in time
proportional to the diameter for ``k ∈ {2, 3}`` and conjectures the
same for every constant ``k`` — the ``TREES_kary`` experiment probes
this.  Random trees come from uniform Prüfer sequences.
"""

from __future__ import annotations

import numpy as np

from .base import Graph
from .builders import from_edge_list
from ..sim.rng import SeedLike, resolve_rng

__all__ = [
    "kary_tree",
    "balanced_binary_tree",
    "spider",
    "caterpillar",
    "random_tree",
    "kary_tree_depth",
]


def kary_tree(k: int, depth: int) -> Graph:
    """Complete rooted ``k``-ary tree of the given *depth*.

    Depth 0 is a single root.  Vertex 0 is the root; children of vertex
    ``v`` are ``k·v + 1 .. k·v + k`` (heap order), giving
    ``(k^{depth+1} - 1) / (k - 1)`` vertices.
    """
    if k < 2:
        raise ValueError("arity k must be >= 2")
    if depth < 0:
        raise ValueError("depth must be >= 0")
    n = (k ** (depth + 1) - 1) // (k - 1)
    if n > 5_000_000:
        raise ValueError("tree too large")
    child = np.arange(1, n, dtype=np.int64)
    parent = (child - 1) // k
    return from_edge_list(
        n,
        np.column_stack([parent, child]),
        name=f"{k}-ary_tree(depth={depth})",
        meta={"k": k, "depth": depth, "diameter": 2 * depth},
    )


def balanced_binary_tree(depth: int) -> Graph:
    """Complete binary tree (``k = 2``) of the given depth."""
    return kary_tree(2, depth)


def kary_tree_depth(k: int, n_min: int) -> int:
    """Smallest depth whose complete ``k``-ary tree has ≥ ``n_min`` vertices."""
    depth, n = 0, 1
    while n < n_min:
        depth += 1
        n = (k ** (depth + 1) - 1) // (k - 1)
    return depth


def spider(legs: int, leg_length: int) -> Graph:
    """A hub with *legs* paths of *leg_length* vertices each."""
    if legs < 1 or leg_length < 1:
        raise ValueError("legs and leg_length must be >= 1")
    n = 1 + legs * leg_length
    edges = []
    for leg in range(legs):
        first = 1 + leg * leg_length
        edges.append((0, first))
        edges += [(first + i, first + i + 1) for i in range(leg_length - 1)]
    return from_edge_list(n, edges, name=f"spider({legs},{leg_length})")


def caterpillar(spine: int, legs_per_vertex: int) -> Graph:
    """A path of *spine* vertices, each with *legs_per_vertex* pendant leaves."""
    if spine < 2:
        raise ValueError("spine must have >= 2 vertices")
    if legs_per_vertex < 0:
        raise ValueError("legs_per_vertex must be >= 0")
    n = spine * (1 + legs_per_vertex)
    edges = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for s in range(spine):
        for _ in range(legs_per_vertex):
            edges.append((s, nxt))
            nxt += 1
    return from_edge_list(n, edges, name=f"caterpillar({spine},{legs_per_vertex})")


def random_tree(n: int, seed: SeedLike = None) -> Graph:
    """Uniformly random labelled tree on ``n`` vertices via Prüfer decode."""
    if n < 1:
        raise ValueError("tree needs at least 1 vertex")
    if n == 1:
        return from_edge_list(1, [], name="random_tree(1)")
    if n == 2:
        return from_edge_list(2, [(0, 1)], name="random_tree(2)")
    rng = resolve_rng(seed)
    prufer = rng.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    np.add.at(degree, prufer, 1)
    edges = []
    # classic O(n log n) decode with a heap of current leaves
    import heapq

    leaves = [int(v) for v in np.flatnonzero(degree == 1)]
    heapq.heapify(leaves)
    for code in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, int(code)))
        degree[code] -= 1
        if degree[code] == 1:
            heapq.heappush(leaves, int(code))
    last = heapq.heappop(leaves), heapq.heappop(leaves)
    edges.append((int(last[0]), int(last[1])))
    return from_edge_list(n, edges, name=f"random_tree({n})")
