"""Named graphs and structured families used across the experiments.

* :func:`petersen` / :func:`kneser_graph` — classic 3-regular
  non-bipartite expander-ish graphs, ideal Lemma 11 bases;
* :func:`de_bruijn_undirected` — the undirected de Bruijn graph, the
  classical P2P overlay topology (the dissemination motivation);
* :func:`ring_of_cliques` — a tunable low-conductance regular-ish
  family (cliques on a cycle) for conductance sweeps.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .base import Graph
from .builders import from_edge_list

__all__ = [
    "petersen",
    "kneser_graph",
    "de_bruijn_undirected",
    "ring_of_cliques",
]


def kneser_graph(n: int, k: int) -> Graph:
    """Kneser graph ``K(n, k)``: vertices are k-subsets of ``{0..n-1}``,
    edges join disjoint subsets.  ``K(5, 2)`` is the Petersen graph."""
    if k < 1 or n < 2 * k:
        raise ValueError("need 1 <= k and n >= 2k")
    subsets = list(combinations(range(n), k))
    index = {s: i for i, s in enumerate(subsets)}
    edges = []
    for i, a in enumerate(subsets):
        sa = set(a)
        for b in subsets[i + 1 :]:
            if sa.isdisjoint(b):
                edges.append((i, index[b]))
    return from_edge_list(len(subsets), edges, name=f"kneser({n},{k})")


def petersen() -> Graph:
    """The Petersen graph: 3-regular, girth 5, non-bipartite, Φ = 1/3."""
    g = kneser_graph(5, 2)
    return from_edge_list(
        g.n, g.edges(), name="petersen", meta={"conductance_exact": 1 / 3}
    )


def de_bruijn_undirected(symbols: int, length: int) -> Graph:
    """Undirected de Bruijn graph ``B(symbols, length)``.

    Vertices are strings of the given *length* over *symbols* letters;
    ``u ~ v`` iff one is a left- or right-shift of the other.  The
    classical constant-degree overlay with logarithmic diameter (a
    natural testbed for the paper's message-passing story).  Self-loops
    (constant strings) are dropped, so degrees vary in
    ``{2(symbols)-2 .. 2·symbols}``.
    """
    if symbols < 2 or length < 1:
        raise ValueError("need symbols >= 2 and length >= 1")
    n = symbols**length
    if n > 2_000_000:
        raise ValueError("de Bruijn graph too large")
    ids = np.arange(n, dtype=np.int64)
    base = symbols ** (length - 1)
    edges = []
    for s in range(symbols):
        # right shift: append symbol s -> (v mod base) * symbols + s
        targets = (ids % base) * symbols + s
        keep = targets != ids
        edges.append(np.column_stack([ids[keep], targets[keep]]))
    return from_edge_list(
        n, np.concatenate(edges), name=f"debruijn({symbols},{length})"
    )


def ring_of_cliques(num_cliques: int, clique_size: int) -> Graph:
    """``num_cliques`` copies of ``K_{clique_size}`` arranged in a cycle,
    consecutive cliques joined by one bridge edge.

    Conductance is ``Θ(1 / (num_cliques · clique_size²))`` — a tunable
    bottleneck family for Theorem 8 sweeps, with cliques as the
    "well-mixed islands" and bridges as the bottleneck.
    """
    if num_cliques < 3 or clique_size < 2:
        raise ValueError("need >= 3 cliques of size >= 2")
    n = num_cliques * clique_size
    edges = []
    for c in range(num_cliques):
        base = c * clique_size
        edges += [
            (base + i, base + j)
            for i in range(clique_size)
            for j in range(i + 1, clique_size)
        ]
        nxt = ((c + 1) % num_cliques) * clique_size
        # bridge: last vertex of this clique to first of the next
        edges.append((base + clique_size - 1, nxt))
    return from_edge_list(
        n,
        edges,
        name=f"ring_of_cliques({num_cliques},{clique_size})",
        meta={"num_cliques": num_cliques, "clique_size": clique_size},
    )
