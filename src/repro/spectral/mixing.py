"""Mixing-time estimation and the paper's convergence bounds.

Theorem 8's epoch length comes from
``|p_t(v) − π(v)| ≤ e^{−t Φ²/2}`` (citing Spielman's notes), i.e.
``t ≥ 2 log(2n)/Φ²`` suffices for every entry to be within ``1/2n`` of
``1/n`` on a regular graph.  These helpers compute both the empirical
mixing time and that closed-form epoch.
"""

from __future__ import annotations

import numpy as np

from ..graphs.base import Graph
from .matrices import transition_matrix
from .stationary import stationary_distribution

__all__ = [
    "mixing_time_tv",
    "pointwise_mixing_bound_steps",
    "theorem8_epoch_length",
]


def mixing_time_tv(
    graph: Graph,
    *,
    eps: float = 0.25,
    lazy: bool = True,
    max_steps: int = 100_000,
    dense_limit: int = 2000,
) -> int:
    """Empirical TV mixing time: smallest ``t`` with
    ``max_v ||P^t(v,·) − π||_TV ≤ eps``.

    Exact worst-start computation via dense matrix powers — guarded by
    *dense_limit* (quadratic memory).
    """
    if graph.n > dense_limit:
        raise ValueError(f"mixing_time_tv: n={graph.n} exceeds dense_limit={dense_limit}")
    p = transition_matrix(graph, lazy=lazy).toarray()
    pi = stationary_distribution(graph)
    cur = np.eye(graph.n)
    for t in range(1, max_steps + 1):
        cur = cur @ p
        worst = 0.5 * np.abs(cur - pi[None, :]).sum(axis=1).max()
        if worst <= eps:
            return t
    raise RuntimeError(f"chain did not mix to eps={eps} within {max_steps} steps")


def pointwise_mixing_bound_steps(n: int, conductance: float) -> int:
    """``t = ⌈2 log(2n) / Φ²⌉`` — after this many (lazy) steps every
    transition probability is within ``1/2n`` of stationarity on a
    regular graph (the bound invoked in the proof of Theorem 8)."""
    if conductance <= 0:
        raise ValueError("conductance must be positive")
    if n < 2:
        raise ValueError("need n >= 2")
    return int(np.ceil(2.0 * np.log(2.0 * n) / conductance**2))


def theorem8_epoch_length(n: int, d: int, conductance: float) -> int:
    """The paper's epoch length
    ``s = (32 d⁴ / Φ²) (log(n² + n) + 4 log n²)`` from Lemma 11 —
    enough lazy pair-walk steps to bring the Ξ-square distance below
    ``n⁻⁴``."""
    if conductance <= 0:
        raise ValueError("conductance must be positive")
    if n < 2 or d < 1:
        raise ValueError("need n >= 2 and d >= 1")
    return int(
        np.ceil(
            32.0 * d**4 / conductance**2 * (np.log(n * n + n) + 4.0 * np.log(n * n))
        )
    )
