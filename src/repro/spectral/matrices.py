"""Sparse matrix views of a :class:`~repro.graphs.base.Graph`.

All return :mod:`scipy.sparse` CSR matrices built directly from the
graph's CSR arrays (zero-copy for the adjacency pattern).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.base import Graph

__all__ = [
    "adjacency_matrix",
    "transition_matrix",
    "normalized_adjacency",
    "normalized_laplacian",
    "combinatorial_laplacian",
]


def adjacency_matrix(graph: Graph) -> sp.csr_matrix:
    """0/1 adjacency matrix ``A`` (symmetric)."""
    data = np.ones(graph.indices.size, dtype=np.float64)
    return sp.csr_matrix((data, graph.indices, graph.indptr), shape=(graph.n, graph.n))


def transition_matrix(graph: Graph, *, lazy: bool = False) -> sp.csr_matrix:
    """Row-stochastic simple-random-walk matrix ``P = D⁻¹A``.

    With ``lazy=True`` returns ``(I + P)/2`` — the standard device for
    killing periodicity (used by the paper whenever parity matters).
    Vertices must all have positive degree.
    """
    if graph.n and graph.degrees.min() == 0:
        raise ValueError("transition matrix undefined with isolated vertices")
    inv_deg = 1.0 / graph.degrees.astype(np.float64)
    data = np.repeat(inv_deg, graph.degrees)
    p = sp.csr_matrix((data, graph.indices, graph.indptr), shape=(graph.n, graph.n))
    if lazy:
        p = 0.5 * sp.eye(graph.n, format="csr") + 0.5 * p
    return p.tocsr()


def normalized_adjacency(graph: Graph) -> sp.csr_matrix:
    """``D^{-1/2} A D^{-1/2}`` — symmetric, same spectrum as ``P``."""
    if graph.n and graph.degrees.min() == 0:
        raise ValueError("normalized adjacency undefined with isolated vertices")
    d_inv_sqrt = 1.0 / np.sqrt(graph.degrees.astype(np.float64))
    src = np.repeat(np.arange(graph.n), graph.degrees)
    data = d_inv_sqrt[src] * d_inv_sqrt[graph.indices]
    return sp.csr_matrix((data, graph.indices, graph.indptr), shape=(graph.n, graph.n))


def normalized_laplacian(graph: Graph) -> sp.csr_matrix:
    """``L = I - D^{-1/2} A D^{-1/2}``; eigenvalues in ``[0, 2]``."""
    return (sp.eye(graph.n, format="csr") - normalized_adjacency(graph)).tocsr()


def combinatorial_laplacian(graph: Graph) -> sp.csr_matrix:
    """``L = D - A``."""
    d = sp.diags(graph.degrees.astype(np.float64), format="csr")
    return (d - adjacency_matrix(graph)).tocsr()
