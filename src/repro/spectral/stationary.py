"""Stationary distributions and distances between distributions."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.base import Graph

__all__ = [
    "stationary_distribution",
    "stationary_of_chain",
    "total_variation",
    "chi_square_distance",
    "evolve",
]


def stationary_distribution(graph: Graph) -> np.ndarray:
    """``π(v) = d(v) / 2m`` — stationary law of the simple walk."""
    if graph.m == 0:
        raise ValueError("stationary distribution needs at least one edge")
    return graph.degrees.astype(np.float64) / (2.0 * graph.m)


def stationary_of_chain(
    p: sp.spmatrix,
    *,
    tol: float = 1e-12,
    max_iters: int = 200_000,
) -> np.ndarray:
    """Stationary law of an irreducible row-stochastic matrix by power
    iteration (works for directed chains such as the Lemma 11 walk).

    Raises :class:`RuntimeError` if the iteration fails to reach *tol*
    within *max_iters* steps — e.g. for periodic chains; use a lazy
    version of the chain in that case.
    """
    n = p.shape[0]
    pi = np.full(n, 1.0 / n)
    for _ in range(max_iters):
        nxt = pi @ p
        if np.abs(nxt - pi).sum() < tol:
            return np.asarray(nxt).ravel() / nxt.sum()
        pi = nxt
    raise RuntimeError("power iteration did not converge; is the chain aperiodic?")


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """``½ Σ |p − q|``."""
    return 0.5 * float(np.abs(np.asarray(p) - np.asarray(q)).sum())


def chi_square_distance(p: np.ndarray, pi: np.ndarray) -> float:
    """``sqrt( Σ_x (p(x) − π(x))² / π(x) )`` — the Ξ-square distance the
    paper's equation (3) maximises over starting states.  Always an
    upper bound on twice the total-variation distance."""
    p = np.asarray(p, dtype=np.float64)
    pi = np.asarray(pi, dtype=np.float64)
    if np.any(pi <= 0):
        raise ValueError("reference distribution must be strictly positive")
    return float(np.sqrt(((p - pi) ** 2 / pi).sum()))


def evolve(p: sp.spmatrix, dist: np.ndarray, steps: int) -> np.ndarray:
    """Push a row distribution *steps* times through chain *p*."""
    if steps < 0:
        raise ValueError("steps must be non-negative")
    out = np.asarray(dist, dtype=np.float64).copy()
    for _ in range(steps):
        out = np.asarray(out @ p).ravel()
    return out
