"""Chung's directed-graph Cheeger machinery (Lemma 11 of the paper).

For a strongly connected chain ``P`` with stationary law ``π``:

* the *circulation* is ``F_π(x, y) = π(x) P(x, y)``;
* the directed Cheeger constant is
  ``h = inf_S F_π(∂S) / min(F_π(S), F_π(S̄))``;
* the directed-Laplacian eigenvalue satisfies ``2h ≥ λ₁ ≥ h²/2``
  (Chung 2005, Thm 5.1);
* after ``t ≥ (2/λ₁)(−log min_x π(x) + 2c)`` lazy steps the Ξ-square
  distance is at most ``e^{−c}`` (Chung 2005, Thm 7.3 — quoted as
  Theorem 12 in the paper).

The paper applies these with the lower bound
``h(D) ≥ Φ_G / (4 d²)`` for the pair chain on ``D(G×G)``.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "circulation",
    "circulation_balance_residual",
    "directed_cheeger_exact",
    "walt_pair_cheeger_lower_bound",
    "chung_lambda_bounds",
    "chung_convergence_steps",
    "directed_laplacian_lambda1",
]


def circulation(p: sp.spmatrix, pi: np.ndarray) -> sp.csr_matrix:
    """``F_π(x, y) = π(x) P(x, y)`` as a sparse matrix."""
    d = sp.diags(np.asarray(pi, dtype=np.float64))
    return (d @ p).tocsr()


def circulation_balance_residual(f: sp.spmatrix) -> float:
    """Max abs difference between in-flow and out-flow over states.

    Zero (to numerical precision) iff ``F`` is a genuine circulation,
    i.e. ``π`` is stationary for ``P``.
    """
    out_flow = np.asarray(f.sum(axis=1)).ravel()
    in_flow = np.asarray(f.sum(axis=0)).ravel()
    return float(np.abs(out_flow - in_flow).max())


def directed_cheeger_exact(p: sp.spmatrix, pi: np.ndarray, *, max_states: int = 18) -> float:
    """Exact directed Cheeger constant by subset enumeration.

    Exponential — intended for validating the closed-form lower bounds
    on small chains.
    """
    n = p.shape[0]
    if n > max_states:
        raise ValueError(f"exact directed Cheeger infeasible for {n} > {max_states} states")
    f = circulation(p, pi).toarray()
    np.fill_diagonal(f, 0.0)  # self-loops never cross a cut
    total = f.sum()
    best = np.inf
    states = list(range(n))
    for r in range(1, n):
        for subset in combinations(states[1:], r):
            s = np.zeros(n, dtype=bool)
            s[list(subset)] = True
            fs = f[s, :].sum()
            fsbar = f[~s, :].sum()
            denom = min(fs, fsbar)
            if denom <= 0:
                continue
            boundary = f[np.ix_(s, ~s)].sum()
            best = min(best, boundary / denom)
    # also consider sets containing state 0 (complements already cover these
    # for the symmetric min(), but keep the loop simple and correct)
    return float(best)


def walt_pair_cheeger_lower_bound(conductance: float, d: int) -> float:
    """The paper's bound ``h(D(G×G)) ≥ Φ_G / (4 d²)`` for a d-regular
    base graph (using ``Φ_{G×G} = Φ_G`` and the lazy ``P_max = 1/2``)."""
    if conductance <= 0 or d < 1:
        raise ValueError("need positive conductance and degree")
    return conductance / (4.0 * d * d)


def chung_lambda_bounds(h: float) -> tuple[float, float]:
    """``(h²/2, 2h)`` — Chung's two-sided bound on the directed
    Laplacian's ``λ₁`` in terms of the Cheeger constant."""
    if h < 0:
        raise ValueError("Cheeger constant must be non-negative")
    return h * h / 2.0, 2.0 * h


def chung_convergence_steps(lambda1: float, pi_min: float, accuracy: float) -> int:
    """Steps ``t ≥ (2/λ₁)(−log π_min + 2c)`` guaranteeing Ξ-square
    distance ``≤ e^{−c}`` where ``c = accuracy`` (paper Theorem 12)."""
    if lambda1 <= 0:
        raise ValueError("lambda1 must be positive")
    if not 0 < pi_min <= 1:
        raise ValueError("pi_min must be a probability")
    if accuracy < 0:
        raise ValueError("accuracy must be non-negative")
    return int(np.ceil(2.0 / lambda1 * (-np.log(pi_min) + 2.0 * accuracy)))


def directed_laplacian_lambda1(p: sp.spmatrix, pi: np.ndarray) -> float:
    """``λ₁`` of Chung's directed Laplacian
    ``L = I − (Π^{1/2} P Π^{-1/2} + Π^{-1/2} Pᵀ Π^{1/2}) / 2``.

    Dense computation — use on small chains (the Lemma 11 validation
    uses base graphs with a few dozen vertices).
    """
    pi = np.asarray(pi, dtype=np.float64)
    if np.any(pi <= 0):
        raise ValueError("stationary distribution must be strictly positive")
    n = p.shape[0]
    sq = np.sqrt(pi)
    pd = p.toarray() if sp.issparse(p) else np.asarray(p)
    sym = (sq[:, None] * pd / sq[None, :] + (sq[:, None] * pd / sq[None, :]).T) / 2.0
    lap = np.eye(n) - sym
    vals = np.linalg.eigvalsh(lap)
    return float(max(np.sort(vals)[1], 0.0))
