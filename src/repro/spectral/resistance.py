"""Effective resistance and commute times.

Independent cross-validation for the random-walk baselines: viewing
the graph as a unit-resistor network, the commute time satisfies
``H(u,v) + H(v,u) = 2m · R_eff(u,v)`` (Chandra et al.) — an exact
identity our linear-solve hitting times must reproduce.  Also gives
closed-form sanity anchors (path: ``R = dist``; complete graph:
``R = 2/n``).
"""

from __future__ import annotations

import numpy as np

from ..graphs.base import Graph
from .matrices import combinatorial_laplacian

__all__ = [
    "effective_resistance",
    "resistance_matrix",
    "commute_time",
]


def _laplacian_pinv(graph: Graph) -> np.ndarray:
    if graph.n > 2000:
        raise ValueError("dense pseudo-inverse limited to n <= 2000")
    lap = combinatorial_laplacian(graph).toarray()
    # Moore-Penrose via the rank-one trick: (L + J/n)^{-1} - J/n
    n = graph.n
    j = np.full((n, n), 1.0 / n)
    return np.linalg.inv(lap + j) - j


def effective_resistance(graph: Graph, u: int, v: int) -> float:
    """``R_eff(u, v)`` of the unit-resistance network on *graph*."""
    if u == v:
        return 0.0
    li = _laplacian_pinv(graph)
    return float(li[u, u] + li[v, v] - 2 * li[u, v])


def resistance_matrix(graph: Graph) -> np.ndarray:
    """All-pairs effective resistances (dense, small graphs)."""
    li = _laplacian_pinv(graph)
    d = np.diag(li)
    return d[:, None] + d[None, :] - 2 * li


def commute_time(graph: Graph, u: int, v: int) -> float:
    """``H(u,v) + H(v,u) = 2m · R_eff(u,v)`` for the simple walk."""
    return 2.0 * graph.m * effective_resistance(graph, u, v)
