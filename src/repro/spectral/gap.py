"""Spectral gaps and eigenvalue utilities.

The paper's Theorem 8 machinery converts conductance into a mixing rate
via ``ν₂ ≥ Φ²/2`` (Cheeger) and ``|p_t(v) − π(v)| ≤ e^{−t ν₂}``; these
helpers compute the relevant eigenvalues.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg as spla

from ..graphs.base import Graph
from .matrices import normalized_adjacency, normalized_laplacian

__all__ = [
    "lambda2_normalized_laplacian",
    "spectral_gap",
    "relaxation_time",
    "fiedler_vector",
]

_DENSE_CUTOFF = 400


def lambda2_normalized_laplacian(graph: Graph) -> float:
    """Second-smallest eigenvalue ``ν₂`` of the normalized Laplacian.

    Zero iff the graph is disconnected; equals the spectral gap of the
    (non-lazy) walk when the graph is non-bipartite-dominant.
    """
    lap = normalized_laplacian(graph)
    if graph.n <= _DENSE_CUTOFF:
        vals = np.linalg.eigvalsh(lap.toarray())
        return float(max(vals[1], 0.0))
    vals = spla.eigsh(lap, k=2, which="SM", return_eigenvectors=False, maxiter=20000)
    return float(max(np.sort(vals)[1], 0.0))


def spectral_gap(graph: Graph, *, lazy: bool = False) -> float:
    """``1 − λ₂`` where ``λ₂`` is the second-largest eigenvalue of the
    walk matrix (of the lazy walk when ``lazy=True``).

    Computed on the symmetric conjugate ``D^{-1/2} A D^{-1/2}``, which
    shares the spectrum of ``P``.
    """
    na = normalized_adjacency(graph)
    if graph.n <= _DENSE_CUTOFF:
        vals = np.sort(np.linalg.eigvalsh(na.toarray()))
        lam2 = vals[-2]
    else:
        vals = spla.eigsh(na, k=2, which="LA", return_eigenvectors=False, maxiter=20000)
        lam2 = np.sort(vals)[0]
    if lazy:
        lam2 = 0.5 + 0.5 * lam2
    return float(1.0 - lam2)


def relaxation_time(graph: Graph, *, lazy: bool = True) -> float:
    """``1 / gap`` of the (lazy) walk — the basic mixing timescale."""
    gap = spectral_gap(graph, lazy=lazy)
    if gap <= 0:
        return float("inf")
    return 1.0 / gap


def fiedler_vector(graph: Graph) -> np.ndarray:
    """Eigenvector for ``ν₂`` of the normalized Laplacian.

    Used by the sweep-cut conductance heuristic; the returned vector is
    in the ``D^{1/2}``-weighted coordinates mapped back to vertex space
    (i.e. we return ``D^{-1/2} u₂``).
    """
    lap = normalized_laplacian(graph)
    if graph.n <= _DENSE_CUTOFF:
        vals, vecs = np.linalg.eigh(lap.toarray())
        u = vecs[:, np.argsort(vals)[1]]
    else:
        vals, vecs = spla.eigsh(lap, k=2, which="SM", maxiter=20000)
        u = vecs[:, np.argsort(vals)[1]]
    return u / np.sqrt(graph.degrees.astype(np.float64))
