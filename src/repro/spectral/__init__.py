"""Spectral toolkit: matrices, gaps, conductance, mixing, directed Cheeger."""

from .conductance import (
    ConductanceEstimate,
    cheeger_interval,
    conductance_estimate,
    conductance_exact,
    conductance_sweep,
    cut_size,
    set_conductance,
)
from .directed import (
    chung_convergence_steps,
    chung_lambda_bounds,
    circulation,
    circulation_balance_residual,
    directed_cheeger_exact,
    directed_laplacian_lambda1,
    walt_pair_cheeger_lower_bound,
)
from .gap import (
    fiedler_vector,
    lambda2_normalized_laplacian,
    relaxation_time,
    spectral_gap,
)
from .matrices import (
    adjacency_matrix,
    combinatorial_laplacian,
    normalized_adjacency,
    normalized_laplacian,
    transition_matrix,
)
from .mixing import (
    mixing_time_tv,
    pointwise_mixing_bound_steps,
    theorem8_epoch_length,
)
from .resistance import commute_time, effective_resistance, resistance_matrix
from .stationary import (
    chi_square_distance,
    evolve,
    stationary_distribution,
    stationary_of_chain,
    total_variation,
)

__all__ = [
    "ConductanceEstimate",
    "cheeger_interval",
    "conductance_estimate",
    "conductance_exact",
    "conductance_sweep",
    "cut_size",
    "set_conductance",
    "chung_convergence_steps",
    "chung_lambda_bounds",
    "circulation",
    "circulation_balance_residual",
    "directed_cheeger_exact",
    "directed_laplacian_lambda1",
    "walt_pair_cheeger_lower_bound",
    "fiedler_vector",
    "lambda2_normalized_laplacian",
    "relaxation_time",
    "spectral_gap",
    "adjacency_matrix",
    "combinatorial_laplacian",
    "normalized_adjacency",
    "normalized_laplacian",
    "transition_matrix",
    "mixing_time_tv",
    "pointwise_mixing_bound_steps",
    "theorem8_epoch_length",
    "commute_time",
    "effective_resistance",
    "resistance_matrix",
    "chi_square_distance",
    "evolve",
    "stationary_distribution",
    "stationary_of_chain",
    "total_variation",
]
