"""Conductance: the combinatorial quantity of Theorem 8.

The paper defines ``φ(S) = |∂S| / vol(S)`` and
``Φ_G = min_{vol(S) ≤ vol(V)/2} φ(S)``.  Exact minimisation is
NP-hard, so three layers are provided:

* :func:`conductance_exact` — brute force over subsets (``n ≤ 20``);
* :func:`conductance_sweep` — Fiedler sweep cut, an *upper* bound;
* :func:`cheeger_interval` — ``[ν₂/2, √(2ν₂)]`` from the spectral gap.

:func:`conductance_estimate` combines them into a best-available
bracket, preferring closed forms stored by generators in
``graph.meta['conductance_exact']``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..graphs.base import Graph
from .gap import fiedler_vector, lambda2_normalized_laplacian

__all__ = [
    "cut_size",
    "set_conductance",
    "conductance_exact",
    "conductance_sweep",
    "cheeger_interval",
    "conductance_estimate",
    "ConductanceEstimate",
]


def cut_size(graph: Graph, member: np.ndarray) -> int:
    """Number of edges with exactly one endpoint in the indicator set."""
    member = np.asarray(member, dtype=bool)
    src = np.repeat(np.arange(graph.n), graph.degrees)
    boundary = member[src] & ~member[graph.indices]
    return int(boundary.sum())


def set_conductance(graph: Graph, vertices) -> float:
    """``φ(S) = |∂S| / vol(S)`` for the given vertex set (paper §2)."""
    member = np.zeros(graph.n, dtype=bool)
    member[np.asarray(list(vertices), dtype=np.int64)] = True
    vol = int(graph.degrees[member].sum())
    if vol == 0:
        raise ValueError("set has zero volume")
    return cut_size(graph, member) / vol


def conductance_exact(graph: Graph, *, max_n: int = 20) -> float:
    """Exact ``Φ_G`` by enumerating subsets with ``vol(S) ≤ vol(V)/2``.

    Exponential in ``n`` — guarded by *max_n*.  Fix one vertex out of
    ``S`` (complement symmetry of the cut) to halve the work.
    """
    if graph.n > max_n:
        raise ValueError(f"exact conductance infeasible for n={graph.n} > {max_n}")
    if graph.n < 2 or graph.m == 0:
        raise ValueError("conductance needs a graph with at least one edge")
    half_vol = graph.volume() / 2.0
    deg = graph.degrees
    best = np.inf
    verts = list(range(1, graph.n))  # vertex 0 always in the complement
    member = np.zeros(graph.n, dtype=bool)
    for r in range(1, graph.n):
        for subset in combinations(verts, r):
            member[:] = False
            member[list(subset)] = True
            vol = int(deg[member].sum())
            if vol == 0 or vol > half_vol:
                continue
            phi = cut_size(graph, member) / vol
            if phi < best:
                best = phi
    return float(best)


def conductance_sweep(graph: Graph) -> float:
    """Fiedler sweep-cut upper bound on ``Φ_G``.

    Sort vertices by the Fiedler vector and evaluate every prefix set
    with volume at most half; return the best ``φ`` found.  By Cheeger's
    constructive proof this is at most ``√(2 ν₂)``.
    """
    if graph.m == 0:
        raise ValueError("conductance needs at least one edge")
    order = np.argsort(fiedler_vector(graph))
    deg = graph.degrees.astype(np.int64)
    member = np.zeros(graph.n, dtype=bool)
    half_vol = graph.volume() / 2.0
    vol = 0
    cut = 0
    best = np.inf
    for v in order[:-1]:
        member[v] = True
        vol += int(deg[v])
        inside = member[graph.neighbors(v)].sum()
        cut += int(deg[v]) - 2 * int(inside)
        use_vol = min(vol, graph.volume() - vol)
        if use_vol <= 0:
            continue
        if vol <= half_vol:
            best = min(best, cut / vol)
        else:
            best = min(best, cut / (graph.volume() - vol))
    return float(best)


def cheeger_interval(graph: Graph) -> tuple[float, float]:
    """``(ν₂/2, √(2 ν₂))`` — Cheeger bracket containing ``Φ_G``."""
    nu2 = lambda2_normalized_laplacian(graph)
    return nu2 / 2.0, float(np.sqrt(2.0 * nu2))


@dataclass(frozen=True)
class ConductanceEstimate:
    """A bracket ``lower ≤ Φ_G ≤ upper`` with a point estimate.

    ``method`` records the provenance: ``meta`` (generator closed
    form), ``exact`` (subset enumeration), or ``spectral`` (Cheeger
    lower bound with sweep-cut upper bound).
    """

    lower: float
    upper: float
    estimate: float
    method: str


def conductance_estimate(graph: Graph, *, exact_max_n: int = 16) -> ConductanceEstimate:
    """Best-available conductance bracket for *graph*."""
    known = graph.meta.get("conductance_exact")
    if known is not None:
        return ConductanceEstimate(float(known), float(known), float(known), "meta")
    if graph.n <= exact_max_n:
        phi = conductance_exact(graph, max_n=exact_max_n)
        return ConductanceEstimate(phi, phi, phi, "exact")
    lo, hi = cheeger_interval(graph)
    sweep = conductance_sweep(graph)
    upper = min(hi, sweep)
    return ConductanceEstimate(lo, upper, sweep, "spectral")
