"""cobra-walks: coalescing-branching random walks and their bounds.

Reproduction of Mitzenmacher, Rajaraman & Roche, *Better Bounds for
Coalescing-Branching Random Walks* (SPAA 2016).  See DESIGN.md for the
system inventory and EXPERIMENTS.md for the paper-vs-measured record.

The unified process API is the front door: every process family
(cobra, Walt, simple/lazy/parallel walks, branching, coalescing,
gossip push/pull, biased walks) is a registered
:class:`~repro.sim.processes.ProcessSpec`, driven by one pair of
entry points returning one result schema::

    from repro import grid, simulate, run_batch

    res = simulate(grid(64, 2), process="cobra", k=2, seed=0)
    print(res.cover_time)                      # RunResult

    batch = run_batch(grid(64, 2), "cobra", trials=32, seed=0)
    print(batch.mean, batch.ci95_half_width)   # TrialSummary

``run_batch`` picks the vectorized batched engine where one exists
(cover/spread: cobra, simple, walt, parallel, push, pull, push_pull;
hit: cobra, simple), so sweeps advance all trials in one
``(trials, n)`` frontier instead of per-trial Python loops.  The
historical per-process helpers (``cobra_cover_time`` & co.) remain as
thin shims.

Subpackages
-----------
``repro.graphs``
    CSR graph substrate and generators.
``repro.core``
    The paper's processes and bounds (cobra, Walt, biased walks).
``repro.walks``
    Baselines: simple/parallel walks, gossip, coalescing, branching.
``repro.spectral``
    Conductance, spectral gaps, directed Cheeger machinery.
``repro.sim`` / ``repro.analysis``
    Process registry, simulate/run_batch facade, Monte-Carlo harness,
    and exponent-fit analysis.
``repro.store``
    Declarative sweep campaigns (``SweepSpec``) over a
    content-addressed result store: cached, resumable, queryable.
``repro.experiments``
    One registered experiment per paper claim, with a CLI.
"""

from ._version import __version__
from .core import (
    CobraRunResult,
    CobraWalk,
    WaltProcess,
    cobra_cover_time,
    cobra_hitting_time,
    walt_cover_time,
)
from .graphs import Graph, grid, hypercube, lollipop, random_regular, torus
from .sim import (
    ProcessSpec,
    RunResult,
    TrialSummary,
    all_processes,
    get_process,
    process_names,
    register_process,
    run_batch,
    simulate,
)
from .store import Campaign, ResultStore, SweepSpec

__all__ = [
    "__version__",
    "ProcessSpec",
    "RunResult",
    "TrialSummary",
    "simulate",
    "run_batch",
    "register_process",
    "get_process",
    "all_processes",
    "process_names",
    "SweepSpec",
    "ResultStore",
    "Campaign",
    "CobraRunResult",
    "CobraWalk",
    "WaltProcess",
    "cobra_cover_time",
    "cobra_hitting_time",
    "walt_cover_time",
    "Graph",
    "grid",
    "hypercube",
    "lollipop",
    "random_regular",
    "torus",
]
