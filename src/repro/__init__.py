"""cobra-walks: coalescing-branching random walks and their bounds.

Reproduction of Mitzenmacher, Rajaraman & Roche, *Better Bounds for
Coalescing-Branching Random Walks* (SPAA 2016).  See DESIGN.md for the
system inventory and EXPERIMENTS.md for the paper-vs-measured record.

The most used entry points are re-exported here::

    from repro import grid, CobraWalk, cobra_cover_time
    result = cobra_cover_time(grid(64, 2), seed=0)
    print(result.cover_time)

Subpackages
-----------
``repro.graphs``
    CSR graph substrate and generators.
``repro.core``
    The paper's processes and bounds (cobra, Walt, biased walks).
``repro.walks``
    Baselines: simple/parallel walks, gossip, coalescing, branching.
``repro.spectral``
    Conductance, spectral gaps, directed Cheeger machinery.
``repro.sim`` / ``repro.analysis``
    Monte-Carlo harness and exponent-fit analysis.
``repro.experiments``
    One registered experiment per paper claim, with a CLI.
"""

from ._version import __version__
from .core import (
    CobraRunResult,
    CobraWalk,
    WaltProcess,
    cobra_cover_time,
    cobra_hitting_time,
    walt_cover_time,
)
from .graphs import Graph, grid, hypercube, lollipop, random_regular, torus

__all__ = [
    "__version__",
    "CobraRunResult",
    "CobraWalk",
    "WaltProcess",
    "cobra_cover_time",
    "cobra_hitting_time",
    "walt_cover_time",
    "Graph",
    "grid",
    "hypercube",
    "lollipop",
    "random_regular",
    "torus",
]
