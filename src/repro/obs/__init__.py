"""repro.obs — structured telemetry for campaigns, workers, and engines.

The observability layer of the sweep stack (see
``docs/observability.md``):

* :mod:`repro.obs.trace` — :class:`Tracer`/:class:`NullTracer`: nested
  spans (``campaign → cell → phase``) and counters with an injected
  monotonic clock, so instrumentation never perturbs the determinism
  contracts (RPL103/RPL150);
* :mod:`repro.obs.events` — the flock-safe ``events.jsonl`` log beside
  the shards, loadable back into a store :class:`Frame`;
* :mod:`repro.obs.report` — straggler reports (``sweep report``) and
  the live drain monitor (``sweep top``);
* :mod:`repro.obs.memory` — the peak-RSS probe behind ``sweep run
  --profile``.

Tracing is strictly opt-in: the process-wide default is
:data:`NULL_TRACER`, whose spans and counters are free, so engine hot
paths stay allocation-free and seed-for-seed identical when nobody is
watching.
"""

from .events import EVENTS_FILE, EventLog, load_events, tracer_for_store
from .memory import peak_rss_mb
from .report import StragglerReport, build_report, live_top, render_top
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    activate,
    current_tracer,
    default_worker_id,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "activate",
    "default_worker_id",
    "EVENTS_FILE",
    "EventLog",
    "load_events",
    "tracer_for_store",
    "StragglerReport",
    "build_report",
    "render_top",
    "live_top",
    "peak_rss_mb",
]
