"""Process-memory probes for profiling and budget smokes.

One reusable definition of "peak RSS" — previously a private helper of
``ci/smoke_implicit_budget.py``, promoted here so ``sweep run
--profile`` (per-cell RSS provenance via
:func:`repro.store.campaign.run_cell`) and the CI memory-budget smoke
measure the same number.

``ru_maxrss`` is a process-lifetime **high-water mark**: it only ever
grows, so "per-cell peak" means the high-water reading right after the
cell — the delta against the before-reading is the cell's growth
contribution (zero when an earlier cell already drove the peak
higher).
"""

from __future__ import annotations

import resource
import sys

__all__ = ["peak_rss_mb"]


def peak_rss_mb() -> float:
    """The process peak RSS in MiB.

    Returns
    -------
    float
        ``ru_maxrss`` normalised to MiB (the raw counter is KiB on
        Linux, bytes on macOS).
    """
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return raw / divisor
