"""Deterministic, injectable tracing: nested spans + counters.

The telemetry layer's core type is :class:`Tracer`: a span stack with
an **injected monotonic clock**.  Nothing in this module draws
randomness or feeds timestamps into keyed computation — spans measure,
they never steer — which is what keeps the RPL103/RPL150 determinism
lints honest: engine and store code reads clocks *only* through a
tracer (``tracer.clock()`` / ``tracer.walltime()``), so tests can
inject a fake clock and the lint can ban raw ``time.*`` calls in
``repro/sim`` and ``repro/store`` outright.

The span model (see ``docs/observability.md``)::

    campaign                    one Campaign.run / drain loop
      cell                      one run_cell call
        build_graph             graph construction (cache misses pay here)
        lower                   target resolution + execution-path selection
        engine                  the run_batch call (wall_time_s provenance)
        record                  the locked store append

Counters attach to the innermost open span (``tracer.count`` adds,
``tracer.gauge`` keeps the max) — the batched engines report
``engine_steps`` / ``rng_draws`` / ``frontier_peak`` this way, guarded
by ``tracer.enabled`` so the hot loops stay allocation-free when
nobody is watching.

:data:`NULL_TRACER` (a :class:`NullTracer`) is the default everywhere:
spans are a reusable no-op context manager, counters are ``pass``, and
— crucially — the clock attributes are still real, so provenance wall
times are recorded whether or not tracing is on.  Engines discover the
ambient tracer through :func:`current_tracer`, installed for the
duration of a cell by :func:`activate`.
"""

from __future__ import annotations

import os
import socket
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator
from typing import Any

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "activate",
    "default_worker_id",
]


def default_worker_id() -> str:
    """A stable per-process worker id for event attribution.

    Returns
    -------
    str
        ``host-pid`` — coarser than the dispatch layer's
        :func:`repro.store.dispatch.default_owner` (no random suffix),
        because a tracer wants one id per process, not per drain call.
    """
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class Span:
    """One timed region: name, kind, clock bounds, attributes, counters.

    Attributes
    ----------
    name : str
        The span's label (``"cell"``, ``"engine"``, ...).
    kind : str
        Span class — ``"campaign"``, ``"cell"``, or ``"phase"``.
    t0 : float
        Monotonic-clock reading at entry.
    t1 : float or None
        Monotonic-clock reading at exit (``None`` while open).
    attrs : dict
        JSON-safe attribution (cell hash prefix, sweep name, ...).
    counters : dict
        Counters accumulated while this span was innermost.
    """

    name: str
    kind: str = "phase"
    t0: float = 0.0
    t1: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def dur_s(self) -> float:
        """Span duration in seconds (0.0 while the span is open)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0


class Tracer:
    """A span stack with injected clocks and an optional event sink.

    Parameters
    ----------
    clock : callable, optional
        Monotonic clock for durations (default
        ``time.perf_counter``).  Inject a fake in tests for
        deterministic span math.
    walltime : callable, optional
        Wall clock for event/provenance timestamps (default
        ``time.time``).  Timestamps are provenance-only — never keyed.
    sink : callable, optional
        ``sink(record)`` called with one flat JSON-safe dict per
        finished span (what :func:`repro.obs.events.tracer_for_store`
        wires to the ``events.jsonl`` appender).  ``None`` keeps spans
        in memory only.
    worker : str, optional
        Worker id stamped on every emitted record (default
        :func:`default_worker_id`).
    lease : str, optional
        Lease id stamped on emitted records; the dispatch worker
        mutates :attr:`lease` per claim so every event attributes to
        the lease under which it ran.
    """

    enabled: bool = True

    def __init__(
        self,
        *,
        clock: Callable[[], float] | None = None,
        walltime: Callable[[], float] | None = None,
        sink: Callable[[dict[str, Any]], None] | None = None,
        worker: str | None = None,
        lease: str | None = None,
    ) -> None:
        self.clock: Callable[[], float] = (
            clock if clock is not None else time.perf_counter
        )
        self.walltime: Callable[[], float] = (
            walltime if walltime is not None else time.time
        )
        self.sink = sink
        self.worker = worker if worker is not None else default_worker_id()
        self.lease = lease
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._seq = 0

    # -- spans ----------------------------------------------------------
    @contextmanager
    def _span_cm(self, span: Span) -> Iterator[Span]:
        self._stack.append(span)
        try:
            yield span
        finally:
            span.t1 = self.clock()
            self._stack.pop()
            self.spans.append(span)
            self._emit(span)

    def span(self, name: str, kind: str = "phase", **attrs: Any):
        """Open a span; a context manager closing it on exit.

        Parameters
        ----------
        name : str
            Span label (phase spans use the phase name).
        kind : str
            ``"campaign"``, ``"cell"``, or ``"phase"``.
        **attrs : Any
            JSON-safe attribution recorded on the span and emitted
            with its event record.

        Returns
        -------
        context manager
            Yields the open :class:`Span`.
        """
        return self._span_cm(
            Span(name=name, kind=kind, t0=self.clock(), attrs=dict(attrs))
        )

    # -- counters -------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Add *value* to counter *name* on the innermost open span.

        A no-op when no span is open (engines may run outside any
        cell), so instrumented code never has to care.
        """
        if self._stack:
            counters = self._stack[-1].counters
            counters[name] = counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record the max of *value* seen for *name* on the open span."""
        if self._stack:
            counters = self._stack[-1].counters
            counters[name] = max(counters.get(name, value), value)

    def annotate(self, **attrs: Any) -> None:
        """Merge *attrs* into the innermost open span's attributes."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    # -- emission -------------------------------------------------------
    def _emit(self, span: Span) -> None:
        if self.sink is None:
            return
        record: dict[str, Any] = {
            "kind": span.kind,
            "name": span.name,
            "seq": self._seq,
            "dur_s": round(span.dur_s, 6),
            "t_wall": round(self.walltime(), 3),
            "worker": self.worker,
        }
        if self.lease is not None:
            record["lease"] = self.lease
        record.update(span.attrs)
        for cname, cvalue in span.counters.items():
            record[f"c_{cname}"] = cvalue
        self._seq += 1
        self.sink(record)


class _NullSpan:
    """The reusable no-op span context manager (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The default tracer: spans and counters are free, clocks are real.

    Every instrumentation site calls through a tracer unconditionally;
    with this one, ``span()`` returns a shared no-op context manager
    and ``count``/``gauge``/``annotate`` do nothing — no allocation,
    no sink, seed-for-seed identical hot paths.  The :attr:`clock` and
    :attr:`walltime` attributes stay functional so ``run_cell`` records
    ``wall_time_s``/``created_unix`` provenance with or without
    tracing.
    """

    enabled = False

    def __init__(
        self,
        *,
        clock: Callable[[], float] | None = None,
        walltime: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(clock=clock, walltime=walltime, worker="")

    def span(self, name: str, kind: str = "phase", **attrs: Any):
        """A shared no-op context manager (see class docstring)."""
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        """No-op."""

    def gauge(self, name: str, value: float) -> None:
        """No-op."""

    def annotate(self, **attrs: Any) -> None:
        """No-op."""


#: the process-wide default: measuring nothing, costing nothing
NULL_TRACER = NullTracer()

#: the ambient-tracer stack :func:`activate` pushes onto
_ACTIVE: list[Tracer] = []


def current_tracer() -> Tracer:
    """The innermost activated tracer, or :data:`NULL_TRACER`.

    Returns
    -------
    Tracer
        What instrumented engines report to.  Engine code reads this
        once per call and guards per-step work with
        ``tracer.enabled``.
    """
    return _ACTIVE[-1] if _ACTIVE else NULL_TRACER


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install *tracer* as the ambient tracer for the block.

    Parameters
    ----------
    tracer : Tracer
        What :func:`current_tracer` returns inside the block.
        ``run_cell`` activates its tracer around the engine phase so
        the batched engines' counters land on the right span.

    Yields
    ------
    Tracer
        The activated tracer.
    """
    _ACTIVE.append(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.pop()
