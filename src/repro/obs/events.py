"""Append-only telemetry events beside the shards: ``events.jsonl``.

One blob per store, written through the store's
:class:`~repro.store.backend.StorageBackend` seam (the flock appender
on a shared filesystem, a conditional-put retry loop on an object
store), so any number of dispatch workers emit events concurrently
with the same whole-line guarantee the shards enjoy: readers may see a
torn tail after a crash, never interleaved bytes.  Each line is one
flat JSON event — a finished span as emitted by
:meth:`repro.obs.trace.Tracer._emit`::

    {"kind": "phase", "name": "engine", "seq": 7, "dur_s": 0.0123,
     "t_wall": 1754550000.0, "worker": "host-4242", "lease": "9f3a01c2",
     "cell": "3fa9c1d2e0b7", "sweep": "DEMO_grid2x2",
     "c_engine_steps": 118, "c_rng_draws": 4804, "c_frontier_peak": 61}

Events load back into the same :class:`~repro.store.store.Frame` the
result store serves, so telemetry is queried with the exact vocabulary
results are: ``load_events(path).filter(kind="phase",
name="engine").column("dur_s")``.
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Callable, Mapping
from typing import TYPE_CHECKING, Any

from .trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..store.backend import StorageBackend
    from ..store.store import Frame

__all__ = ["EVENTS_FILE", "EventLog", "load_events", "tracer_for_store"]

#: events file name, beside ``claims.jsonl`` and ``shards/``
EVENTS_FILE = "events.jsonl"


class EventLog:
    """The append-only event log of one store.

    Parameters
    ----------
    store : str, Path, or StorageBackend
        The store directory (events land in ``root/events.jsonl``) or
        the backend the log persists through.
    """

    def __init__(self, store: "str | Path | StorageBackend") -> None:
        # function-level import: repro.obs must stay importable from
        # inside repro.sim/repro.store module bodies (cycle guard)
        from ..store.backend import resolve_backend

        backend = resolve_backend(store)
        if backend is None:
            raise ValueError("EventLog needs a store path or backend")
        self.backend = backend
        self.root = getattr(backend, "root", None)
        self.path = self.root / EVENTS_FILE if self.root is not None else None

    def append(self, record: Mapping[str, Any]) -> None:
        """Append one event through the backend's merge-safe appender.

        Parameters
        ----------
        record : Mapping
            A flat JSON-safe event (one finished span).
        """
        self.backend.append_line(
            EVENTS_FILE, json.dumps(dict(record), sort_keys=True)
        )

    def records(self) -> list[dict[str, Any]]:
        """All parseable events, in append order (torn lines skipped).

        Returns
        -------
        list of dict
            The event records.
        """
        records, _ = self._scan()
        return records

    def torn_lines(self) -> int:
        """Count of unparseable (torn) lines in the file.

        Returns
        -------
        int
            0 for a healthy log — what ``sweep fsck`` reports.
        """
        _, torn = self._scan()
        return torn

    def frame(self) -> "Frame":
        """The events as a store :class:`~repro.store.store.Frame`.

        Returns
        -------
        Frame
            One row per event, queryable exactly like results
            (``filter``/``groupby``/``column``/``to_table``).
        """
        from ..store.store import Frame

        return Frame(self.records())

    def _scan(self) -> tuple[list[dict[str, Any]], int]:
        records: list[dict[str, Any]] = []
        torn = 0
        blob = self.backend.read_blob(EVENTS_FILE)
        if blob is None:
            return records, torn
        for line in blob[0].decode("utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                torn += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                torn += 1
        return records, torn


def load_events(root: "str | Path | StorageBackend") -> "Frame":
    """Load a store's events as a Frame (torn lines skipped).

    Parameters
    ----------
    root : str, Path, or StorageBackend
        The store directory (or backend) holding ``events.jsonl``.

    Returns
    -------
    Frame
        One row per parseable event; empty when the file is absent.
    """
    return EventLog(root).frame()


def tracer_for_store(
    root: "str | Path | StorageBackend",
    *,
    worker: str | None = None,
    lease: str | None = None,
    clock: Callable[[], float] | None = None,
    walltime: Callable[[], float] | None = None,
) -> Tracer:
    """A :class:`~repro.obs.trace.Tracer` emitting into a store's event log.

    The factory the CLI's ``--trace`` flag and the dispatch pool
    workers use: every finished span becomes one locked
    ``events.jsonl`` append, attributed to *worker* (and, for dispatch
    workers, the lease the tracer carries at emission time).

    Parameters
    ----------
    root : str, Path, or StorageBackend
        The store directory (or backend) to write events beside.
    worker : str, optional
        Worker id stamped on every event (default
        :func:`repro.obs.trace.default_worker_id`).
    lease : str, optional
        Initial lease id (dispatch workers update ``tracer.lease`` per
        claim).
    clock, walltime : callable, optional
        Clock injection, forwarded to :class:`~repro.obs.trace.Tracer`.

    Returns
    -------
    Tracer
        Ready to pass as ``Campaign(tracer=...)`` / ``drain(tracer=...)``.
    """
    log = EventLog(root)
    return Tracer(
        sink=log.append, worker=worker, lease=lease, clock=clock, walltime=walltime
    )
