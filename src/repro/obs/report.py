"""Straggler reports and the live drain monitor (``sweep report``/``sweep top``).

The paper's cover-time distributions are heavy-tailed, and so are
sweep campaigns over them: one cell can legitimately run 40× longer
than its twin.  This module turns the telemetry the store already
holds — per-cell provenance (worker, backend, per-phase timings), the
claim ledger, and the ``events.jsonl`` log — into answers:

* :func:`build_report` → :class:`StragglerReport`: per-cell wall times
  attributed to workers, p50/p95/max by ``(process, graph_kind,
  backend)``, per-worker totals, and ledger health (reclaimed leases,
  double-computed cells) — rendered by the ``sweep report`` CLI verb;
* :func:`render_top` / :func:`live_top`: a polling snapshot of a
  draining store — progress, live leases, the freshest events, and the
  slowest cells so far — the ``sweep top`` CLI verb.

Everything here is read-only over the store directory and runs happily
while workers are still draining (the load paths tolerate torn tails).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..store.spec import SweepSpec
    from ..store.store import Frame, ResultStore

__all__ = ["StragglerReport", "build_report", "render_top", "live_top"]

#: straggler-table width caps (the report stays readable on big stores)
_MAX_CELL_ROWS = 40


def _table(rows: list[dict[str, Any]], columns: Sequence[str], title: str) -> str:
    from ..analysis.tables import Table

    return Table.from_rows(rows, list(columns), title=title).render()


def _round(value: Any, digits: int = 4) -> Any:
    return round(value, digits) if isinstance(value, float) else value


@dataclass
class StragglerReport:
    """The ``sweep report`` payload: cells, groups, workers, ledger.

    Attributes
    ----------
    cells : list of dict
        One row per stored cell, slowest first — ``cell`` (hash
        prefix), ``process``, ``graph_kind``, ``backend``, ``worker``,
        ``wall_s`` and per-phase ``t_*_s`` columns.
    groups : list of dict
        p50/p95/max wall time per ``(process, graph_kind, backend)``.
    workers : list of dict
        Per-worker attribution: cells computed, total/mean/max wall
        time, slowest cell.
    ledger : dict
        Claim-ledger health: ``claims``, ``reclaimed`` (extra claims on
        an already-claimed hash — lease expiry/double-compute
        pressure), ``done``/``abandoned``, ``stale``/``live`` lease
        counts, and ``double_computed`` (cells stored more than once).
    events : dict
        ``records``/``torn`` counts of ``events.jsonl`` (zeros when
        the store was never traced).
    """

    cells: list[dict[str, Any]] = field(default_factory=list)
    groups: list[dict[str, Any]] = field(default_factory=list)
    workers: list[dict[str, Any]] = field(default_factory=list)
    ledger: dict[str, int] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        """The ``sweep report`` CLI output.

        Returns
        -------
        str
            Straggler, group, and worker tables plus ledger/event
            health lines.
        """
        if not self.cells:
            return "no stored cells to report on"
        sections = []
        shown = self.cells[:_MAX_CELL_ROWS]
        phase_cols = sorted(
            {c for row in shown for c in row if c.startswith("t_")}
        )
        sections.append(
            _table(
                shown,
                ["cell", "process", "graph_kind", "backend", "worker", "wall_s"]
                + phase_cols,
                title=f"stragglers (slowest {len(shown)} of {len(self.cells)} cells)",
            )
        )
        sections.append(
            _table(
                self.groups,
                [
                    "process", "graph_kind", "backend", "cells",
                    "p50_s", "p95_s", "max_s", "max_cell", "max_worker",
                ],
                title="wall time by process/graph_kind/backend",
            )
        )
        sections.append(
            _table(
                self.workers,
                ["worker", "cells", "total_s", "mean_s", "max_s", "slowest_cell"],
                title="worker attribution",
            )
        )
        led = self.ledger
        sections.append(
            "ledger: {claims} claim(s), {reclaimed} reclaimed, {done} done, "
            "{abandoned} abandoned, {stale} stale lease(s), {live} live "
            "lease(s), {double_computed} double-computed cell(s)".format(**led)
            if led
            else "ledger: (no claims.jsonl — single-process campaign)"
        )
        ev = self.events
        sections.append(
            f"events: {ev.get('records', 0)} record(s), "
            f"{ev.get('torn', 0)} torn line(s)"
        )
        return "\n\n".join(sections)


def _sweep_frame(store: "ResultStore", specs: Sequence["SweepSpec"] | None) -> "Frame":
    """The rows to report on: the whole store, or just *specs*' cells."""
    from ..store.store import Frame, record_row

    store.refresh()
    if specs is None:
        return store.frame()
    rows = []
    for spec in specs:
        for key in spec.expand():
            record = store.get(key)
            if record is not None:
                row = record_row(record)
                row["sweep"] = spec.name
                rows.append(row)
    return Frame(rows)


def _ledger_stats(backend: Any, *, now: float) -> dict[str, int]:
    from ..store.dispatch import ClaimLedger

    ledger = ClaimLedger(backend)
    records = ledger.records()
    if not records:
        return {}
    claim_counts: dict[str, int] = {}
    done = abandoned = 0
    for record in records:
        if record["op"] == "claim":
            claim_counts[record["hash"]] = claim_counts.get(record["hash"], 0) + 1
        elif record["op"] == "done":
            done += 1
        else:
            abandoned += 1
    leases = ledger.leases()
    stale = sum(1 for lease in leases.values() if lease.expired(now))
    return {
        "claims": sum(claim_counts.values()),
        "reclaimed": sum(c - 1 for c in claim_counts.values() if c > 1),
        "done": done,
        "abandoned": abandoned,
        "stale": stale,
        "live": len(leases) - stale,
        "double_computed": 0,  # filled in by build_report's shard scan
    }


def _double_computed(store: "ResultStore") -> int:
    """Cells stored more than once (lease-expiry recomputes)."""
    from ..store.store import parse_record

    counts: dict[str, int] = {}
    for shard_key in store.shard_keys():
        blob = store.backend.read_blob(shard_key)
        if blob is None:
            continue
        for line in blob[0].decode("utf-8").splitlines():
            if not line.strip():
                continue
            try:
                h = parse_record(line)["hash"]
            except ValueError:
                continue
            counts[h] = counts.get(h, 0) + 1
    return sum(1 for c in counts.values() if c > 1)


def build_report(
    store: "ResultStore",
    specs: Sequence["SweepSpec"] | None = None,
    *,
    now: float | None = None,
) -> StragglerReport:
    """Build the straggler report for a store (optionally one sweep's cells).

    Parameters
    ----------
    store : ResultStore
        The store to report on (disk-backed stores additionally get
        ledger and event health; memory stores report cells only).
    specs : sequence of SweepSpec, optional
        Restrict to these sweeps' cells; default is every stored cell.
    now : float, optional
        Clock override for lease-expiry classification (tests).

    Returns
    -------
    StragglerReport
        Ready to :meth:`~StragglerReport.render`.
    """
    now = time.time() if now is None else now
    frame = _sweep_frame(store, specs)
    report = StragglerReport()

    for row in frame.sort_by("wall_time_s").rows[::-1]:
        cell: dict[str, Any] = {
            "cell": (row.get("hash") or "")[:12],
            "process": row.get("process"),
            "graph_kind": row.get("graph_kind"),
            "backend": row.get("backend"),
            "worker": row.get("worker"),
            "wall_s": _round(row.get("wall_time_s") or 0.0),
        }
        for name, value in row.items():
            if name.startswith("t_") and name.endswith("_s"):
                cell[name] = _round(value)
        report.cells.append(cell)

    for key, sub in frame.groupby("process", "graph_kind", "backend"):
        walls = np.asarray(
            [w for w in sub.column("wall_time_s") if w is not None],
            dtype=np.float64,
        )
        if walls.size == 0:
            continue
        slowest = max(
            sub.rows, key=lambda r: r.get("wall_time_s") or 0.0
        )
        process, graph_kind, backend = key
        report.groups.append(
            {
                "process": process,
                "graph_kind": graph_kind,
                "backend": backend,
                "cells": len(sub),
                "p50_s": _round(float(np.percentile(walls, 50))),
                "p95_s": _round(float(np.percentile(walls, 95))),
                "max_s": _round(float(walls.max())),
                "max_cell": (slowest.get("hash") or "")[:12],
                "max_worker": slowest.get("worker"),
            }
        )

    for worker, sub in frame.groupby("worker"):
        walls = [w or 0.0 for w in sub.column("wall_time_s")]
        slowest = max(sub.rows, key=lambda r: r.get("wall_time_s") or 0.0)
        report.workers.append(
            {
                "worker": worker,
                "cells": len(sub),
                "total_s": _round(float(sum(walls))),
                "mean_s": _round(float(np.mean(walls)) if walls else 0.0),
                "max_s": _round(float(max(walls)) if walls else 0.0),
                "slowest_cell": (slowest.get("hash") or "")[:12],
            }
        )
    report.workers.sort(key=lambda r: -r["total_s"])

    if store.backend is not None:
        report.ledger = _ledger_stats(store.backend, now=now)
        if report.ledger:
            report.ledger["double_computed"] = _double_computed(store)
        from .events import EventLog

        log = EventLog(store.backend)
        records, torn = log._scan()
        report.events = {"records": len(records), "torn": torn}
    return report


def render_top(
    store: "ResultStore",
    specs: Sequence["SweepSpec"],
    *,
    now: float | None = None,
    tail: int = 8,
) -> str:
    """One ``sweep top`` screen: progress, leases, fresh events, stragglers.

    Parameters
    ----------
    store : ResultStore
        The (possibly still-draining) disk-backed store.
    specs : sequence of SweepSpec
        The sweeps being drained (progress is counted against their
        expansions).
    now : float, optional
        Clock override (tests).
    tail : int
        How many of the freshest events to show.

    Returns
    -------
    str
        The rendered snapshot.
    """
    from ..store.dispatch import ClaimLedger

    now = time.time() if now is None else now
    store.refresh()
    lines = []
    total = done = 0
    for spec in specs:
        cells = spec.expand()
        stored = sum(1 for key in cells if store.has(key))
        total += len(cells)
        done += stored
        lines.append(f"  {spec.name:28s} {stored}/{len(cells)} cells")
    header = f"sweep top — {done}/{total} cells stored"
    lines.insert(0, header)

    if store.backend is not None:
        ledger = ClaimLedger(store.backend)
        live = [
            lease for lease in ledger.leases().values() if not lease.expired(now)
        ]
        lines.append(f"live leases: {len(live)}")
        for lease in sorted(live, key=lambda ls: ls.expires_unix):
            lines.append(
                f"  {lease.hash[:12]}  {lease.owner}"
                + (f"  lease={lease.lease_id}" if lease.lease_id else "")
                + f"  expires in {max(0.0, lease.expires_unix - now):.0f}s"
            )
        from .events import EventLog

        events = EventLog(store.backend).records()
        phases = [e for e in events if e.get("kind") == "phase"]
        if phases:
            lines.append(f"recent events ({len(phases)} phase records):")
            for event in phases[-tail:]:
                lines.append(
                    f"  {event.get('worker', '?'):24s} "
                    f"{str(event.get('cell', ''))[:12]:12s} "
                    f"{event.get('name', '?'):12s} {event.get('dur_s', 0.0):.4f}s"
                )

    frame = _sweep_frame(store, specs)
    slowest = frame.sort_by("wall_time_s").rows[::-1][:5]
    if slowest:
        lines.append("slowest cells so far:")
        for row in slowest:
            lines.append(
                f"  {(row.get('hash') or '')[:12]:12s} "
                f"{row.get('process', '?'):10s} "
                f"{row.get('worker') or '-':24s} "
                f"{(row.get('wall_time_s') or 0.0):.4f}s"
            )
    return "\n".join(lines)


def live_top(
    store: "ResultStore",
    specs: Sequence["SweepSpec"],
    *,
    interval: float = 2.0,
    iterations: int | None = None,
    out: Callable[[str], None] = print,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll :func:`render_top` while workers drain (the ``sweep top`` verb).

    Parameters
    ----------
    store : ResultStore
        The store being drained.
    specs : sequence of SweepSpec
        The sweeps to watch.
    interval : float
        Seconds between polls.
    iterations : int, optional
        Stop after this many screens (``--once`` passes 1); default
        polls until every cell is stored.
    out : callable
        Screen sink (injectable for tests; default ``print``).
    sleep : callable
        Sleeper between polls (injectable for tests).

    Returns
    -------
    int
        0 once the watched sweeps are fully stored (or the iteration
        budget ran out).
    """
    shown = 0
    while True:
        out(render_top(store, specs))
        shown += 1
        store.refresh()
        complete = all(
            store.has(key) for spec in specs for key in spec.expand()
        )
        if complete or (iterations is not None and shown >= iterations):
            return 0
        sleep(interval)
