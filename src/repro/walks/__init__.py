"""Baseline stochastic processes the paper compares against."""

from .branching import BranchingRunResult, BranchingWalk, branching_cover_time
from .coalescing import CoalescingWalks, coalescence_time, coalescing_start_positions
from .gossip import (
    GossipSpread,
    pull_spread_time,
    push_pull_spread_time,
    push_spread_time,
)
from .parallel import ParallelWalks, parallel_cover_time, parallel_hitting_time
from .simple import (
    RandomWalk,
    rw_cover_time,
    rw_cover_trials,
    rw_exact_hitting_times,
    rw_hitting_time,
    rw_hitting_trials,
)

__all__ = [
    "BranchingRunResult",
    "BranchingWalk",
    "branching_cover_time",
    "CoalescingWalks",
    "coalescence_time",
    "coalescing_start_positions",
    "GossipSpread",
    "pull_spread_time",
    "push_pull_spread_time",
    "push_spread_time",
    "ParallelWalks",
    "parallel_cover_time",
    "parallel_hitting_time",
    "RandomWalk",
    "rw_cover_time",
    "rw_cover_trials",
    "rw_exact_hitting_times",
    "rw_hitting_time",
    "rw_hitting_trials",
]
