"""Branching random walk on the ℤ-line: the n'th-generation minimum.

Addario-Berry & Reed compute the expected minimum position ``E M_n``
of the n'th generation of a branching random walk to within ``O(1)``
(``γn − (3/2λ)·log n + O(1)``), and Aïdékon proves the centred minimum
converges in law — the two statistics PAPERS.md flags as the natural
next sweep axes beyond cover/hitting times.  This module provides the
simulator: a k-branching walk on a path graph standing in for ℤ (every
particle spawns ``k`` children, each stepping to a uniform neighbor —
``±1`` in the interior), tracking which line positions the current
generation occupies.

The minimum position only depends on *occupancy*, never on how many
particles stack on a vertex, so the state is an exact per-vertex count
vector with a saturation cap: counts above ``count_cap`` clamp, which
leaves the frontier law untouched for any realistically large cap
(capped vertices are deep in the flooded interior; the extremal
particles always sit at small counts).  Unlike
:class:`~repro.walks.branching.BranchingWalk` nothing is renormalised —
occupancy is preserved exactly.

Registered as the ``branching_minima`` process with the fixed-horizon
``min`` metric: ``simulate(path_graph(n), "branching_minima",
max_steps=g)`` runs ``g`` generations and reports the generation's
minimum displacement from the start vertex in
``extras["min_position"]``.
"""

from __future__ import annotations

import numpy as np

from ..graphs.base import Graph
from ..sim.rng import SeedLike, resolve_rng

__all__ = ["BranchingMinimaWalk", "validate_line_graph"]


def validate_line_graph(graph: Graph) -> None:
    """Reject graphs that are not a path with vertices in line order.

    The minimum-position statistic is defined on ℤ; the simulator
    stands a path graph in for it and reads vertex ids as line
    coordinates, so vertex ``v`` must be adjacent to exactly
    ``v − 1`` and ``v + 1`` (endpoints to their single inner
    neighbor).  ``repro.graphs.path_graph`` produces exactly this.

    Parameters
    ----------
    graph : Graph
        Candidate substrate.

    Raises
    ------
    ValueError
        When *graph* is not a line-ordered path.
    """
    n = graph.n
    if n < 2:
        raise ValueError("branching_minima needs a path with at least 2 vertices")
    deg = graph.degrees
    if deg[0] != 1 or deg[-1] != 1 or (n > 2 and (deg[1:-1] != 2).any()):
        raise ValueError(
            "branching_minima needs a ℤ-line (path) graph: use "
            "repro.graphs.path_graph(n)"
        )
    if n > 2:
        interior = np.repeat(np.arange(1, n - 1, dtype=np.int64), 2)
        interior += np.tile(np.array([-1, 1], dtype=np.int64), n - 2)
        expected = np.concatenate([[1], interior, [n - 2]])
    else:
        expected = np.array([1, 0], dtype=np.int64)
    if not np.array_equal(graph.indices, expected):
        raise ValueError(
            "branching_minima needs vertices in line order (vertex v adjacent "
            "to v-1 and v+1): use repro.graphs.path_graph(n)"
        )


class BranchingMinimaWalk:
    """k-branching walk on a line with exact occupancy tracking.

    Each generation, every particle spawns ``k`` children; a child at
    an interior vertex moves left or right with probability 1/2 each
    (endpoints send all children to their single neighbor, a reflecting
    boundary — choose the line long enough that the frontier never
    reaches it over the horizon you sweep).  Per-vertex particle
    counts saturate at ``count_cap`` instead of renormalising, so the
    occupied set — and with it :attr:`min_position` — follows the
    exact branching-random-walk law as long as the cap stays above the
    frontier counts (any cap ≫ 1 does; the default is ``10**12``).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        k: int = 2,
        start: int | None = None,
        seed: SeedLike = None,
        count_cap: int = 10**12,
    ) -> None:
        validate_line_graph(graph)
        if k < 1:
            raise ValueError(f"branching factor k must be >= 1, got {k}")
        if count_cap < 1:
            raise ValueError("count_cap must be >= 1")
        n = graph.n
        if start is None:
            start = n // 2
        if not (0 <= start < n):
            raise ValueError("start out of range")
        self.graph = graph
        self.k = int(k)
        self.cap = int(count_cap)
        self.start = int(start)
        self.rng = resolve_rng(seed)
        self.counts = np.zeros(n, dtype=np.int64)
        self.counts[start] = 1
        self.t = 0

    @property
    def population(self) -> int:
        """Total particles of the current generation (cap-saturated)."""
        return int(self.counts.sum())

    @property
    def min_position(self) -> int:
        """Leftmost occupied line coordinate, relative to the start."""
        return int(np.flatnonzero(self.counts)[0]) - self.start

    @property
    def max_position(self) -> int:
        """Rightmost occupied line coordinate, relative to the start."""
        return int(np.flatnonzero(self.counts)[-1]) - self.start

    def step(self) -> int:
        """Advance one generation; returns the new minimum position."""
        n = self.graph.n
        children = np.minimum(self.counts * self.k, self.cap)
        new = np.zeros(n, dtype=np.int64)
        if n > 2:
            inner = children[1:-1]
            left = self.rng.binomial(inner, 0.5)
            new[: n - 2] += left
            new[2:] += inner - left
        new[1] += children[0]
        new[n - 2] += children[-1]
        np.minimum(new, self.cap, out=new)
        self.counts = new
        self.t += 1
        return self.min_position
