"""Deprecation plumbing for the legacy per-run helpers in
:mod:`repro.walks`.

Every ``*_time`` helper in this package predates the
:mod:`repro.sim.facade`; they all survive as thin shims, but a shim
that stays silent (or warns generically) leaves callers guessing what
to migrate to.  :func:`warn_deprecated` pins the contract: each shim
emits a :class:`DeprecationWarning` that names its **exact** facade
replacement, spelled as the call to paste in
(``tests/walks/test_deprecation.py`` checks the wording against the
registry).
"""

from __future__ import annotations

import warnings

__all__ = ["warn_deprecated"]


def warn_deprecated(old: str, replacement: str) -> None:
    """Emit the package's standard deprecation warning.

    Parameters
    ----------
    old : str
        Name of the deprecated helper, e.g. ``"rw_cover_time"``.
    replacement : str
        The exact facade call that supersedes it, e.g.
        ``'simulate(graph, "simple", metric="cover", ...).cover_time'``.
    """
    warnings.warn(
        f"{old} is deprecated; use {replacement} from repro.sim.facade instead",
        DeprecationWarning,
        stacklevel=3,
    )
