"""Pure branching random walk (no coalescence).

Every particle spawns ``k`` children on uniform random neighbors each
step; particles at the same vertex stack instead of merging.  Without
the cobra walk's coalescence the population grows geometrically — this
baseline shows why coalescence is the interesting ingredient: coverage
is fast but the particle count (the resource the paper's model keeps
bounded by ``n``) explodes.

The population is tracked as per-vertex counts with a configurable
cap; runs that hit the cap report it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.base import Graph
from ..sim.rng import SeedLike, resolve_rng
from ._shims import warn_deprecated

__all__ = ["BranchingWalk", "BranchingRunResult", "branching_cover_time"]


@dataclass
class BranchingRunResult:
    """Outcome of a branching-walk run."""

    covered: bool
    steps: int
    cover_time: int | None
    population: int
    hit_cap: bool


class BranchingWalk:
    """k-branching walk with per-vertex particle counts."""

    def __init__(
        self,
        graph: Graph,
        *,
        k: int = 2,
        start: int = 0,
        seed: SeedLike = None,
        population_cap: int = 1_000_000,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if not (0 <= start < graph.n):
            raise ValueError("start out of range")
        self.graph = graph
        self.k = int(k)
        self.rng = resolve_rng(seed)
        self.counts = np.zeros(graph.n, dtype=np.int64)
        self.counts[start] = 1
        self.t = 0
        self.cap = int(population_cap)
        self.hit_cap = False
        self.first_visit = np.full(graph.n, -1, dtype=np.int64)
        self.first_visit[start] = 0
        self._num_covered = 1

    @property
    def population(self) -> int:
        return int(self.counts.sum())

    @property
    def all_covered(self) -> bool:
        return self._num_covered == self.graph.n

    def step(self) -> None:
        """Every particle emits k children to uniform neighbors.

        Implemented multinomially per occupied vertex: the ``k·c``
        children of the ``c`` particles at ``v`` distribute over
        ``N(v)`` as a multinomial draw (equivalent to, and much faster
        than, per-particle sampling).  When the population exceeds the
        cap, counts are renormalised down proportionally (coverage
        statistics remain valid; the flag records saturation).
        """
        self.t += 1
        occupied = np.flatnonzero(self.counts)
        new_counts = np.zeros_like(self.counts)
        for v in occupied:
            kids = self.k * int(self.counts[v])
            nbrs = self.graph.neighbors(int(v))
            split = self.rng.multinomial(kids, np.full(nbrs.size, 1.0 / nbrs.size))
            new_counts[nbrs] += split
        self.counts = new_counts
        pop = self.population
        if pop > self.cap:
            self.hit_cap = True
            scale = self.cap / pop
            self.counts = np.maximum(
                (self.counts * scale).astype(np.int64),
                (self.counts > 0).astype(np.int64),
            )
        fresh = np.flatnonzero((self.counts > 0) & (self.first_visit < 0))
        if fresh.size:
            self.first_visit[fresh] = self.t
            self._num_covered += fresh.size

    def run_until_cover(self, max_steps: int) -> BranchingRunResult:
        while not self.all_covered and self.t < max_steps:
            self.step()
        return BranchingRunResult(
            covered=self.all_covered,
            steps=self.t,
            cover_time=int(self.first_visit.max()) if self.all_covered else None,
            population=self.population,
            hit_cap=self.hit_cap,
        )


def branching_cover_time(
    graph: Graph,
    *,
    k: int = 2,
    start: int = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
    population_cap: int = 1_000_000,
) -> BranchingRunResult:
    """Run one branching walk to coverage.

    .. deprecated::
        Use the facade call named in the emitted warning; it
        reproduces this helper seed-for-seed (``extras`` carries
        ``population`` and ``hit_cap``).
    """
    warn_deprecated(
        "branching_cover_time", 'simulate(graph, "branching", metric="cover", ...)'
    )
    if max_steps is None:
        max_steps = max(10_000, 50 * graph.n)
    walk = BranchingWalk(
        graph, k=k, start=start, seed=seed, population_cap=population_cap
    )
    return walk.run_until_cover(max_steps)
