"""Coalescing random walks (the voter-model dual).

Multiple walkers; when two or more meet at a vertex they merge into
one.  The paper cites this process (Cooper et al.) as the *pure
coalescing* end of the spectrum whose combination with branching
yields the cobra walk.  We expose the meeting/coalescence time — the
time until a single walker remains — and coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.base import Graph, sample_uniform_neighbors
from ..sim.rng import SeedLike, resolve_rng
from ._shims import warn_deprecated

__all__ = ["CoalescingWalks", "coalescence_time", "coalescing_start_positions"]


@dataclass
class CoalescingRunResult:
    """Outcome of a coalescing run."""

    coalesced: bool
    steps: int
    walkers_left: int
    first_visit: np.ndarray


class CoalescingWalks:
    """Independent walkers that merge on meeting."""

    def __init__(
        self,
        graph: Graph,
        positions: np.ndarray,
        *,
        seed: SeedLike = None,
    ) -> None:
        positions = np.unique(np.asarray(positions, dtype=np.int64))
        if positions.size == 0:
            raise ValueError("need at least one walker")
        if positions.min() < 0 or positions.max() >= graph.n:
            raise ValueError("walker position out of range")
        self.graph = graph
        self.positions = positions
        self.rng = resolve_rng(seed)
        self.t = 0
        self.first_visit = np.full(graph.n, -1, dtype=np.int64)
        self.first_visit[positions] = 0
        self._num_covered = int(positions.size)

    @property
    def num_walkers(self) -> int:
        return int(self.positions.size)

    @property
    def num_covered(self) -> int:
        """Number of vertices some walker has visited."""
        return self._num_covered

    @property
    def all_covered(self) -> bool:
        return self._num_covered == self.graph.n

    def step(self) -> np.ndarray:
        """All walkers move; co-located walkers merge."""
        self.t += 1
        moved = sample_uniform_neighbors(self.graph, self.positions, self.rng)
        self.positions = np.unique(moved)
        fresh = self.positions[self.first_visit[self.positions] < 0]
        if fresh.size:
            self.first_visit[fresh] = self.t
            self._num_covered += int(fresh.size)
        return self.positions

    def run_until_coalesced(self, max_steps: int) -> CoalescingRunResult:
        while self.num_walkers > 1 and self.t < max_steps:
            self.step()
        return CoalescingRunResult(
            coalesced=self.num_walkers == 1,
            steps=self.t,
            walkers_left=self.num_walkers,
            first_visit=self.first_visit.copy(),
        )


def coalescing_start_positions(
    graph: Graph, walkers: int | None, rng: np.random.Generator
) -> np.ndarray:
    """Initial walker placement: distinct uniform vertices, one per
    vertex when *walkers* is ``None`` (the classical setting)."""
    if walkers is None or walkers >= graph.n:
        return np.arange(graph.n, dtype=np.int64)
    return rng.choice(graph.n, size=walkers, replace=False)


def coalescence_time(
    graph: Graph,
    *,
    walkers: int | None = None,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> int | None:
    """Steps until all walkers merge (see
    :func:`coalescing_start_positions` for the default placement).

    .. deprecated::
        Use the facade call named in the emitted warning; it
        reproduces this helper seed-for-seed.
    """
    warn_deprecated(
        "coalescence_time",
        'simulate(graph, "coalescing", walkers=walkers, '
        '...).extras["coalescence_time"]',
    )
    rng = resolve_rng(seed)
    positions = coalescing_start_positions(graph, walkers, rng)
    if max_steps is None:
        max_steps = max(100_000, 20 * graph.n**2)
    proc = CoalescingWalks(graph, positions, seed=rng)
    res = proc.run_until_coalesced(max_steps)
    return res.steps if res.coalesced else None
