"""Randomized rumor spreading (gossip) baselines.

The paper positions cobra walks against push gossip: in the *push*
model every informed vertex tells one uniform neighbor per round (the
informed set only grows — the key structural difference from cobra
walks, whose active set can shrink).  Feige et al. prove push
completes on any graph in ``O(n log n)`` rounds whp, a bound
conjectured to carry over to cobra walks.

:class:`GossipSpread` is the stepping process (registered as
``"push"``, ``"pull"``, and ``"push_pull"`` in
:mod:`repro.sim.processes`); the ``*_spread_time`` helpers keep their
historical signatures and drive it.
"""

from __future__ import annotations

import numpy as np

from ..graphs.base import Graph, sample_uniform_neighbors
from ..sim.rng import SeedLike, resolve_rng
from ._shims import warn_deprecated

__all__ = [
    "GossipSpread",
    "push_spread_time",
    "pull_spread_time",
    "push_pull_spread_time",
]


class GossipSpread:
    """Push and/or pull rumor spreading as a stepping process.

    Per round: every informed vertex pushes to one uniform neighbor
    (``push=True``), and/or every uninformed vertex polls one uniform
    neighbor and learns the rumor if that neighbor knows it
    (``pull=True``).  The informed set only grows.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        start: int = 0,
        push: bool = True,
        pull: bool = False,
        seed: SeedLike = None,
    ) -> None:
        if not (push or pull):
            raise ValueError("enable at least one of push/pull")
        if not (0 <= start < graph.n):
            raise ValueError("start out of range")
        self.graph = graph
        self.push = bool(push)
        self.pull = bool(pull)
        self.rng = resolve_rng(seed)
        self.t = 0
        self.informed = np.zeros(graph.n, dtype=bool)
        self.informed[start] = True
        self.first_visit = np.full(graph.n, -1, dtype=np.int64)
        self.first_visit[start] = 0
        self._num_covered = 1
        self._all_vertices = np.arange(graph.n, dtype=np.int64)

    @property
    def num_covered(self) -> int:
        """Number of informed vertices."""
        return self._num_covered

    @property
    def all_covered(self) -> bool:
        return self._num_covered == self.graph.n

    def step(self) -> np.ndarray:
        """One gossip round; returns the informed mask."""
        self.t += 1
        fresh_mask = np.zeros(self.graph.n, dtype=bool)
        if self.push:
            senders = self._all_vertices[self.informed]
            targets = sample_uniform_neighbors(self.graph, senders, self.rng)
            fresh_mask[targets] = True
        if self.pull:
            askers = self._all_vertices[~self.informed]
            if askers.size:
                sources = sample_uniform_neighbors(self.graph, askers, self.rng)
                fresh_mask[askers[self.informed[sources]]] = True
        fresh_mask &= ~self.informed
        if fresh_mask.any():
            self.informed |= fresh_mask
            self.first_visit[fresh_mask] = self.t
            self._num_covered = int(self.informed.sum())
        return self.informed


def _spread_time(
    graph: Graph,
    start: int,
    seed: SeedLike,
    max_rounds: int | None,
    *,
    push: bool,
    pull: bool,
) -> int | None:
    if max_rounds is None:
        max_rounds = _budget(graph.n)
    proc = GossipSpread(graph, start=start, push=push, pull=pull, seed=seed)
    while not proc.all_covered and proc.t < max_rounds:
        proc.step()
    return proc.t if proc.all_covered else None


def push_spread_time(
    graph: Graph,
    *,
    start: int = 0,
    seed: SeedLike = None,
    max_rounds: int | None = None,
) -> int | None:
    """Rounds for push gossip to inform every vertex (``None`` = budget).

    .. deprecated::
        Use the facade call named in the emitted warning; it
        reproduces this helper seed-for-seed.
    """
    warn_deprecated("push_spread_time", 'simulate(graph, "push", ...).cover_time')
    return _spread_time(graph, start, seed, max_rounds, push=True, pull=False)


def pull_spread_time(
    graph: Graph,
    *,
    start: int = 0,
    seed: SeedLike = None,
    max_rounds: int | None = None,
) -> int | None:
    """Rounds for pull gossip (uninformed vertices poll a neighbor).

    .. deprecated::
        Use the facade call named in the emitted warning; it
        reproduces this helper seed-for-seed.
    """
    warn_deprecated("pull_spread_time", 'simulate(graph, "pull", ...).cover_time')
    return _spread_time(graph, start, seed, max_rounds, push=False, pull=True)


def push_pull_spread_time(
    graph: Graph,
    *,
    start: int = 0,
    seed: SeedLike = None,
    max_rounds: int | None = None,
) -> int | None:
    """Rounds for combined push–pull gossip.

    .. deprecated::
        Use the facade call named in the emitted warning; it
        reproduces this helper seed-for-seed.
    """
    warn_deprecated(
        "push_pull_spread_time", 'simulate(graph, "push_pull", ...).cover_time'
    )
    return _spread_time(graph, start, seed, max_rounds, push=True, pull=True)


def _budget(n: int) -> int:
    return max(10_000, 100 * n * max(1, int(np.ceil(np.log(max(n, 2))))))
