"""Randomized rumor spreading (gossip) baselines.

The paper positions cobra walks against push gossip: in the *push*
model every informed vertex tells one uniform neighbor per round (the
informed set only grows — the key structural difference from cobra
walks, whose active set can shrink).  Feige et al. prove push
completes on any graph in ``O(n log n)`` rounds whp, a bound
conjectured to carry over to cobra walks.
"""

from __future__ import annotations

import numpy as np

from ..graphs.base import Graph, sample_uniform_neighbors
from ..sim.rng import SeedLike, resolve_rng

__all__ = ["push_spread_time", "pull_spread_time", "push_pull_spread_time"]


def _spread(
    graph: Graph,
    start: int,
    rng: np.random.Generator,
    max_rounds: int,
    *,
    push: bool,
    pull: bool,
) -> int | None:
    informed = np.zeros(graph.n, dtype=bool)
    informed[start] = True
    count = 1
    all_vertices = np.arange(graph.n, dtype=np.int64)
    for t in range(1, max_rounds + 1):
        fresh_mask = np.zeros(graph.n, dtype=bool)
        if push:
            senders = all_vertices[informed]
            targets = sample_uniform_neighbors(graph, senders, rng)
            fresh_mask[targets] = True
        if pull:
            askers = all_vertices[~informed]
            if askers.size:
                sources = sample_uniform_neighbors(graph, askers, rng)
                fresh_mask[askers[informed[sources]]] = True
        fresh_mask &= ~informed
        if fresh_mask.any():
            informed |= fresh_mask
            count = int(informed.sum())
            if count == graph.n:
                return t
    return None


def push_spread_time(
    graph: Graph,
    *,
    start: int = 0,
    seed: SeedLike = None,
    max_rounds: int | None = None,
) -> int | None:
    """Rounds for push gossip to inform every vertex (``None`` = budget)."""
    rng = resolve_rng(seed)
    if max_rounds is None:
        max_rounds = _budget(graph.n)
    return _spread(graph, start, rng, max_rounds, push=True, pull=False)


def pull_spread_time(
    graph: Graph,
    *,
    start: int = 0,
    seed: SeedLike = None,
    max_rounds: int | None = None,
) -> int | None:
    """Rounds for pull gossip (uninformed vertices poll a neighbor)."""
    rng = resolve_rng(seed)
    if max_rounds is None:
        max_rounds = _budget(graph.n)
    return _spread(graph, start, rng, max_rounds, push=False, pull=True)


def push_pull_spread_time(
    graph: Graph,
    *,
    start: int = 0,
    seed: SeedLike = None,
    max_rounds: int | None = None,
) -> int | None:
    """Rounds for combined push–pull gossip."""
    rng = resolve_rng(seed)
    if max_rounds is None:
        max_rounds = _budget(graph.n)
    return _spread(graph, start, rng, max_rounds, push=True, pull=True)


def _budget(n: int) -> int:
    return max(10_000, 100 * n * max(1, int(np.ceil(np.log(max(n, 2))))))
