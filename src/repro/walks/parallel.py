"""Parallel random walks (Alon et al.; Elsässer–Sauerwald).

``k`` independent walkers move simultaneously; the cover time is the
first step at which their union has visited every vertex.  The paper
contrasts cobra walks with this model: parallel walks keep a fixed
walker budget while the cobra frontier breathes with the topology.
"""

from __future__ import annotations

import numpy as np

from ..graphs.base import Graph, sample_uniform_neighbors
from ..sim.rng import SeedLike, resolve_rng

__all__ = ["parallel_cover_time", "parallel_hitting_time"]


def parallel_cover_time(
    graph: Graph,
    *,
    walkers: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> int | None:
    """Cover time of *walkers* independent simple walks.

    ``start`` may be one vertex (all walkers there — the setting of
    Alon et al.'s worst-case results) or an array of length *walkers*.
    """
    if walkers < 1:
        raise ValueError("need at least one walker")
    if max_steps is None:
        max_steps = max(200_000, graph.n**3 // max(walkers, 1))
    rng = resolve_rng(seed)
    pos = np.atleast_1d(np.asarray(start, dtype=np.int64))
    if pos.size == 1:
        pos = np.full(walkers, pos[0], dtype=np.int64)
    if pos.size != walkers:
        raise ValueError("start must be scalar or length == walkers")
    if pos.min() < 0 or pos.max() >= graph.n:
        raise ValueError("start out of range")
    pos = pos.copy()
    visited = np.zeros(graph.n, dtype=bool)
    visited[pos] = True
    count = int(visited.sum())
    for t in range(1, max_steps + 1):
        pos = sample_uniform_neighbors(graph, pos, rng)
        fresh = pos[~visited[pos]]
        if fresh.size:
            visited[fresh] = True
            count = int(visited.sum())
            if count == graph.n:
                return t
    return None


def parallel_hitting_time(
    graph: Graph,
    target: int,
    *,
    walkers: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> int | None:
    """First step any of the *walkers* stands on *target*."""
    if not (0 <= target < graph.n):
        raise ValueError("target out of range")
    if max_steps is None:
        max_steps = max(200_000, graph.n**3 // max(walkers, 1))
    rng = resolve_rng(seed)
    pos = np.atleast_1d(np.asarray(start, dtype=np.int64))
    if pos.size == 1:
        pos = np.full(walkers, pos[0], dtype=np.int64)
    if (pos == target).any():
        return 0
    pos = pos.copy()
    for t in range(1, max_steps + 1):
        pos = sample_uniform_neighbors(graph, pos, rng)
        if (pos == target).any():
            return t
    return None
