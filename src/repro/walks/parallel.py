"""Parallel random walks (Alon et al.; Elsässer–Sauerwald).

``k`` independent walkers move simultaneously; the cover time is the
first step at which their union has visited every vertex.  The paper
contrasts cobra walks with this model: parallel walks keep a fixed
walker budget while the cobra frontier breathes with the topology.

:class:`ParallelWalks` is the stepping process (registered as
``"parallel"`` in :mod:`repro.sim.processes`); the module-level
helpers keep their historical signatures and drive it.
"""

from __future__ import annotations

import numpy as np

from ..graphs.base import Graph, sample_uniform_neighbors
from ..sim.rng import SeedLike, resolve_rng
from ._shims import warn_deprecated

__all__ = ["ParallelWalks", "parallel_cover_time", "parallel_hitting_time"]


class ParallelWalks:
    """``walkers`` independent simple walks advanced in lock-step.

    ``start`` may be one vertex (all walkers there — the setting of
    Alon et al.'s worst-case results) or an array of length *walkers*.
    One batched neighbor draw moves every walker per step, so the RNG
    stream matches the historical loop-based helpers exactly.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        walkers: int = 2,
        start: int | np.ndarray = 0,
        seed: SeedLike = None,
    ) -> None:
        if walkers < 1:
            raise ValueError("need at least one walker")
        rng = resolve_rng(seed)
        pos = np.atleast_1d(np.asarray(start, dtype=np.int64))
        if pos.size == 1:
            pos = np.full(walkers, pos[0], dtype=np.int64)
        if pos.size != walkers:
            raise ValueError("start must be scalar or length == walkers")
        if pos.min() < 0 or pos.max() >= graph.n:
            raise ValueError("start out of range")
        self.graph = graph
        self.positions = pos.copy()
        self.rng = rng
        self.t = 0
        self.first_visit = np.full(graph.n, -1, dtype=np.int64)
        self.first_visit[np.unique(pos)] = 0
        self._num_covered = int((self.first_visit >= 0).sum())

    @property
    def num_walkers(self) -> int:
        return int(self.positions.size)

    @property
    def num_covered(self) -> int:
        return self._num_covered

    @property
    def all_covered(self) -> bool:
        return self._num_covered == self.graph.n

    def step(self) -> np.ndarray:
        """Move every walker to a uniform neighbor; returns positions."""
        self.t += 1
        self.positions = sample_uniform_neighbors(self.graph, self.positions, self.rng)
        fresh = self.positions[self.first_visit[self.positions] < 0]
        if fresh.size:
            self.first_visit[fresh] = self.t
            self._num_covered += int(np.unique(fresh).size)
        return self.positions


def _default_budget(n: int, walkers: int) -> int:
    return max(200_000, n**3 // max(walkers, 1))


def parallel_cover_time(
    graph: Graph,
    *,
    walkers: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> int | None:
    """Cover time of *walkers* independent simple walks (``None`` =
    budget exhausted).

    .. deprecated::
        Use the facade call named in the emitted warning; it
        reproduces this helper seed-for-seed.
    """
    warn_deprecated(
        "parallel_cover_time",
        'simulate(graph, "parallel", walkers=walkers, ...).cover_time',
    )
    if max_steps is None:
        max_steps = _default_budget(graph.n, walkers)
    proc = ParallelWalks(graph, walkers=walkers, start=start, seed=seed)
    while not proc.all_covered and proc.t < max_steps:
        proc.step()
    return int(proc.first_visit.max()) if proc.all_covered else None


def parallel_hitting_time(
    graph: Graph,
    target: int,
    *,
    walkers: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> int | None:
    """First step any of the *walkers* stands on *target*.

    .. deprecated::
        Use the facade call named in the emitted warning; it
        reproduces this helper seed-for-seed.
    """
    warn_deprecated(
        "parallel_hitting_time",
        'simulate(graph, "parallel", metric="hit", target=target, '
        '...).extras["hit_time"]',
    )
    if not (0 <= target < graph.n):
        raise ValueError("target out of range")
    if max_steps is None:
        max_steps = _default_budget(graph.n, walkers)
    proc = ParallelWalks(graph, walkers=walkers, start=start, seed=seed)
    while proc.first_visit[target] < 0 and proc.t < max_steps:
        proc.step()
    hit = proc.first_visit[target]
    return int(hit) if hit >= 0 else None
