"""Simple (and lazy) random-walk baselines.

Feige's classical bounds frame the paper's results: cover time of any
graph lies between ``Ω(n log n)`` and ``O(n³)``, with the lollipop
achieving ``Θ(n³)``.  The cobra experiments all compare against these
walks.

The batched variant runs many independent trials as one vectorized
process (one row of state per trial), which is how cover-time sweeps
stay fast in pure numpy.
"""

from __future__ import annotations

import numpy as np

from ..graphs.base import Graph
from ..graphs.implicit import NeighborOracle, as_oracle
from ..sim.bitmask import visited_mask
from ..sim.rng import SeedLike, resolve_rng
from ._shims import warn_deprecated

__all__ = [
    "RandomWalk",
    "rw_cover_time",
    "rw_hitting_time",
    "rw_cover_trials",
    "rw_hitting_trials",
    "rw_exact_hitting_times",
]


class RandomWalk:
    """A single simple random walk with coverage tracking."""

    def __init__(
        self,
        graph: Graph,
        *,
        start: int = 0,
        lazy: bool = False,
        seed: SeedLike = None,
    ) -> None:
        if not (0 <= start < graph.n):
            raise ValueError("start out of range")
        self.graph = graph
        self.position = int(start)
        self.lazy = bool(lazy)
        self.rng = resolve_rng(seed)
        self.t = 0
        self.first_visit = np.full(graph.n, -1, dtype=np.int64)
        self.first_visit[start] = 0
        self._num_covered = 1

    @property
    def num_covered(self) -> int:
        return self._num_covered

    @property
    def all_covered(self) -> bool:
        return self._num_covered == self.graph.n

    def step(self) -> int:
        self.t += 1
        if self.lazy and self.rng.random() < 0.5:
            return self.position
        nbrs = self.graph.neighbors(self.position)
        self.position = int(nbrs[int(self.rng.random() * nbrs.size)])
        if self.first_visit[self.position] < 0:
            self.first_visit[self.position] = self.t
            self._num_covered += 1
        return self.position

    def run_until_cover(self, max_steps: int) -> int | None:
        while not self.all_covered and self.t < max_steps:
            self.step()
        return int(self.first_visit.max()) if self.all_covered else None

    def run_until_hit(self, target: int, max_steps: int) -> int | None:
        if not (0 <= target < self.graph.n):
            raise ValueError("target out of range")
        while self.first_visit[target] < 0 and self.t < max_steps:
            self.step()
        hit = self.first_visit[target]
        return int(hit) if hit >= 0 else None


def rw_cover_time(
    graph: Graph,
    *,
    start: int = 0,
    lazy: bool = False,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> int | None:
    """Cover time of one simple-random-walk run (``None`` = budget).

    .. deprecated::
        Use the facade call named in the emitted warning; it
        reproduces this helper seed-for-seed.
    """
    process = "lazy" if lazy else "simple"
    warn_deprecated(
        "rw_cover_time",
        f'simulate(graph, "{process}", metric="cover", ...).cover_time',
    )
    if max_steps is None:
        max_steps = _cover_budget(graph.n)
    return RandomWalk(graph, start=start, lazy=lazy, seed=seed).run_until_cover(max_steps)


def rw_hitting_time(
    graph: Graph,
    target: int,
    *,
    start: int = 0,
    lazy: bool = False,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> int | None:
    """Hitting time of one run.

    .. deprecated::
        Use the facade call named in the emitted warning; it
        reproduces this helper seed-for-seed.
    """
    process = "lazy" if lazy else "simple"
    warn_deprecated(
        "rw_hitting_time",
        f'simulate(graph, "{process}", metric="hit", target=target, '
        '...).extras["hit_time"]',
    )
    if max_steps is None:
        max_steps = _cover_budget(graph.n)
    return RandomWalk(graph, start=start, lazy=lazy, seed=seed).run_until_hit(
        target, max_steps
    )


def rw_cover_trials(
    graph: Graph | NeighborOracle,
    *,
    start: int = 0,
    trials: int = 10,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Vectorized independent cover trials: all walkers advance in one
    batched neighbor draw per step; finished walkers keep stepping (the
    cost of masking exceeds the saving at these trial counts).  Visited
    state is bit-packed (``n/8`` bytes per trial) and the graph may be
    a CSR :class:`Graph` or an implicit
    :class:`~repro.graphs.implicit.NeighborOracle`."""
    if trials < 1:
        raise ValueError("need at least one trial")
    oracle = as_oracle(graph)
    n = oracle.n
    if max_steps is None:
        max_steps = _cover_budget(n)
    rng = resolve_rng(seed)
    pos = np.full(trials, start, dtype=np.int64)
    row_base = np.arange(trials, dtype=np.int64) * n
    covered = visited_mask(trials, n)
    covered.set_unique_rows(row_base + start)
    count = np.ones(trials, dtype=np.int64)
    out = np.full(trials, np.nan)
    done = np.zeros(trials, dtype=bool)
    for t in range(1, max_steps + 1):
        pos = oracle.sample_one(pos, rng)
        flat = row_base + pos
        fresh = ~covered.test_flat(flat)
        covered.set_unique_rows(flat)
        count += fresh
        newly_done = ~done & (count == n)
        if newly_done.any():
            out[newly_done] = t
            done |= newly_done
            if done.all():
                break
    return out


def rw_hitting_trials(
    graph: Graph | NeighborOracle,
    target: int,
    *,
    start: int = 0,
    trials: int = 10,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Vectorized independent hitting-time trials (CSR or implicit
    oracle graphs)."""
    if trials < 1:
        raise ValueError("need at least one trial")
    oracle = as_oracle(graph)
    if max_steps is None:
        max_steps = _cover_budget(oracle.n)
    rng = resolve_rng(seed)
    pos = np.full(trials, start, dtype=np.int64)
    out = np.full(trials, np.nan)
    if start == target:
        return np.zeros(trials)
    alive = np.ones(trials, dtype=bool)
    for t in range(1, max_steps + 1):
        pos = oracle.sample_one(pos, rng)
        hit = alive & (pos == target)
        if hit.any():
            out[hit] = t
            alive &= ~hit
            if not alive.any():
                break
    return out


def rw_exact_hitting_times(graph: Graph, target: int) -> np.ndarray:
    """Exact expected hitting times to *target* by linear solve."""
    from ..spectral.matrices import transition_matrix

    n = graph.n
    p = transition_matrix(graph).toarray()
    idx = np.array([i for i in range(n) if i != target])
    q = p[np.ix_(idx, idx)]
    h = np.linalg.solve(np.eye(n - 1) - q, np.ones(n - 1))
    out = np.zeros(n)
    out[idx] = h
    return out


def _cover_budget(n: int) -> int:
    # Feige: worst case ~ (4/27) n^3; give slack without exploding runtimes
    return max(200_000, n**3)
