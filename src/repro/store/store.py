"""Content-addressed result store: JSONL shards + an in-memory index.

Layout on disk (``root`` is the directory handed to
:class:`ResultStore`)::

    root/
      meta.json          # store schema version, for humans/tools
      shards/
        3f.jsonl         # one append-only JSONL file per 2-hex-char
        a0.jsonl         # prefix of the cell hash

Each line of a shard is one **record**::

    {"hash": "...64 hex chars...",
     "key": {...RunKey.payload()...},
     "result": {"values": [...], "mean": ..., "std": ..., "median": ...,
                "ci95_half_width": ..., "failures": ...},
     "provenance": {"sweep": ..., "engine": ..., "wall_time_s": ...,
                    "seed_entropy": [...], "created_unix": ...}}

The hash is the record's address: ``get``/``has`` only ever load the
one shard the prefix names, so point lookups on a million-cell store
touch one small file.  Shards are append-only and lines are
self-contained, which makes the store crash-tolerant by construction —
a record torn by an interrupted write fails to parse, is skipped (with
a warning) at load time, and its cell simply re-runs.  Duplicate
hashes are last-write-wins.  Appends go through an advisory per-shard
``flock`` (:mod:`repro.store.locking`) writing one whole record per
lock hold, so any number of worker processes — the
:mod:`repro.store.dispatch` layer — can commit into one store
concurrently without interleaving bytes (the merge-safe writer).

``root=None`` gives a memory-only store with the same API (what the
migrated experiments use for their ephemeral sweeps).

Querying goes through :meth:`ResultStore.frame`: every record flattens
to one plain-dict row (axes + summary statistics + provenance) inside
a lightweight :class:`Frame` with ``filter``/``sort_by``/``column``/
``summarize``/``to_table``/``fit_power_law`` — the bridge into
:mod:`repro.analysis`.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from ..sim.montecarlo import TrialSummary
from .backend import LocalBackend, StorageBackend, resolve_backend
from .spec import STORE_SCHEMA_VERSION, RunKey, canonical_json

__all__ = ["ResultStore", "Frame", "FRAME_SCHEMA", "record_row", "parse_record"]

#: schema tag stamped on every serialized Frame — the one canonical
#: wire format shared by ``Frame.to_json``, ``sweep show --json`` and
#: the ``sweep serve`` ``/frame`` endpoint
FRAME_SCHEMA = "repro.frame/1"

_RESULT_FIELDS = ("values", "mean", "std", "median", "ci95_half_width", "failures")


def parse_record(line: str) -> dict[str, Any]:
    """Parse and validate one shard line, raising on anything torn.

    The one definition of "a valid record" — shared by the load path
    (which skips invalid lines with a warning) and by ``sweep fsck``
    (which reports them).

    Parameters
    ----------
    line : str
        One line of a shard file.

    Returns
    -------
    dict
        The record (``hash``/``key``/``result``/``provenance``).

    Raises
    ------
    ValueError
        If the line is not valid JSON or lacks required fields.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"unparseable record line: {exc}") from exc
    if not isinstance(record, dict):
        raise ValueError("record line is not a JSON object")
    if not all(k in record for k in ("hash", "key", "result")):
        raise ValueError("missing record fields")
    if not isinstance(record["hash"], str) or len(record["hash"]) < 2:
        raise ValueError("record hash is not a hex string")
    if not isinstance(record["result"], dict) or any(
        f not in record["result"] for f in _RESULT_FIELDS
    ):
        raise ValueError("missing result fields")
    return record


def _summary_payload(summary: TrialSummary) -> dict[str, Any]:
    """JSON-safe form of a :class:`TrialSummary` (NaNs survive the
    round-trip via Python's JSON NaN extension)."""
    return {
        "values": [float(v) for v in np.asarray(summary.values).ravel()],
        "mean": float(summary.mean),
        "std": float(summary.std),
        "median": float(summary.median),
        "ci95_half_width": float(summary.ci95_half_width),
        "failures": int(summary.failures),
    }


def record_row(record: Mapping[str, Any]) -> dict[str, Any]:
    """Flatten a store record into one query row.

    Graph-builder arguments are prefixed ``g_`` (so a tree's ``k``
    never collides with cobra's ``k``); per-phase timings from the
    provenance ``phase_s`` dict become ``t_<phase>_s`` columns; process
    parameters keep their names; summary statistics and the remaining
    provenance (``engine``/``backend``/``worker``/``peak_rss_mb``) ride
    along unprefixed.

    Parameters
    ----------
    record : Mapping
        A record as stored (``hash``/``key``/``result``/``provenance``).

    Returns
    -------
    dict
        The flat row :class:`Frame` exposes.
    """
    key = record["key"]
    result = record["result"]
    prov = record.get("provenance", {})
    row: dict[str, Any] = {
        "hash": record["hash"],
        "sweep": prov.get("sweep"),
        "process": key["process"],
        "metric": key["metric"],
        "graph": key["graph"]["builder"],
        "graph_name": prov.get("graph_name"),
        "graph_n": prov.get("graph_n"),
        "graph_kind": prov.get("graph_kind"),
        "target": key.get("target"),
        "trials": key["trials"],
        "max_steps": key.get("max_steps"),
        "seed_root": key["seed"]["root"],
        "seed_kind": key["seed"]["kind"],
        "engine": prov.get("engine"),
        "backend": prov.get("backend"),
        "worker": prov.get("worker"),
        "wall_time_s": prov.get("wall_time_s"),
    }
    for name, value in prov.get("phase_s", {}).items():
        row[f"t_{name}_s"] = value
    if "peak_rss_mb" in prov:
        row["peak_rss_mb"] = prov["peak_rss_mb"]
    for name, value in key["graph"]["params"].items():
        row[f"g_{name}"] = value
    for name, value in key["params"].items():
        row[name] = value
    for name in _RESULT_FIELDS:
        row[name] = result[name]
    return row


@dataclass
class Frame:
    """A list of flat result rows with a tiny query vocabulary.

    Deliberately not a dataframe dependency: rows are plain dicts, and
    the methods cover what the experiments and CLI need — equality
    filters, sorting, column extraction, summary statistics, table
    rendering, and power-law fits.
    """

    rows: list[dict[str, Any]]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def filter(self, **where: Any) -> "Frame":
        """Rows whose columns equal every given value.

        Parameters
        ----------
        **where : Any
            Column-name → required value (missing column ≠ any value).

        Returns
        -------
        Frame
            The matching rows, in order.
        """
        sentinel = object()
        return Frame(
            [
                r
                for r in self.rows
                if all(r.get(k, sentinel) == v for k, v in where.items())
            ]
        )

    def sort_by(self, *columns: str) -> "Frame":
        """Rows sorted by the given columns (missing values first).

        Parameters
        ----------
        *columns : str
            Sort keys, applied left to right.

        Returns
        -------
        Frame
            A sorted copy.
        """

        def key(row: dict[str, Any]):
            return tuple(
                (row.get(c) is not None, row.get(c) if row.get(c) is not None else 0)
                for c in columns
            )

        return Frame(sorted(self.rows, key=key))

    def column(self, name: str) -> list[Any]:
        """One column as a list (``None`` where a row lacks it).

        Parameters
        ----------
        name : str
            Column name.

        Returns
        -------
        list
            The column values, in row order.
        """
        return [r.get(name) for r in self.rows]

    def groupby(self, *columns: str) -> list[tuple[Any, "Frame"]]:
        """Partition rows by the values of one or more columns.

        Groups appear in first-appearance order (the row order of the
        frame), so a frame sorted by the group column yields sorted
        groups.

        Parameters
        ----------
        *columns : str
            Columns to group on.  With one column the group key is the
            bare value; with several it is the tuple of values.
            Missing columns group under ``None``.

        Returns
        -------
        list of (key, Frame)
            One ``(group key, sub-frame)`` pair per distinct key.
        """
        if not columns:
            raise ValueError("groupby needs at least one column")
        groups: dict[Any, list[dict[str, Any]]] = {}
        for row in self.rows:
            key = (
                row.get(columns[0])
                if len(columns) == 1
                else tuple(row.get(c) for c in columns)
            )
            groups.setdefault(key, []).append(row)
        return [(key, Frame(rows)) for key, rows in groups.items()]

    def aggregate(
        self, by: str, column: str = "mean", agg: str = "mean"
    ) -> list[dict[str, Any]]:
        """Per-group reduction of one numeric column.

        Parameters
        ----------
        by : str
            Column to group on (see :meth:`groupby`).
        column : str
            Numeric column to reduce (default the per-cell ``"mean"``).
        agg : str
            Reduction: ``"mean"``, ``"median"``, ``"min"``, ``"max"``,
            ``"sum"``, ``"std"``, or ``"count"``.

        Returns
        -------
        list of dict
            One row per group: ``{by: key, agg: value, "rows": n}``.
        """
        funcs = {
            "mean": np.mean,
            "median": np.median,
            "min": np.min,
            "max": np.max,
            "sum": np.sum,
            "std": np.std,
            "count": len,
        }
        if agg not in funcs:
            raise ValueError(
                f"unknown aggregation {agg!r}; use one of {sorted(funcs)}"
            )
        out = []
        for key, sub in self.groupby(by):
            values = [v for v in sub.column(column) if v is not None]
            if agg == "count":
                value: Any = len(values)
            else:
                value = (
                    float(funcs[agg](np.asarray(values, dtype=np.float64)))
                    if values
                    else float("nan")
                )
            out.append({by: key, agg: value, "rows": len(sub)})
        return out

    def summarize(self, column: str = "mean") -> TrialSummary:
        """Summary statistics of a numeric column across rows.

        Parameters
        ----------
        column : str
            Column to aggregate (default the per-cell mean).

        Returns
        -------
        TrialSummary
            Via :func:`repro.analysis.stats.summarize` — one schema
            everywhere.
        """
        from ..analysis.stats import summarize

        values = [v for v in self.column(column) if v is not None]
        return summarize(np.asarray(values, dtype=np.float64))

    def to_table(self, columns: Sequence[str], *, title: str | None = None):
        """Render selected columns as an :class:`repro.analysis.Table`.

        Parameters
        ----------
        columns : sequence of str
            Column order of the table.
        title : str, optional
            Table title.

        Returns
        -------
        Table
            Ready to ``render()``.
        """
        from ..analysis.tables import Table

        return Table.from_rows(self.rows, columns, title=title)

    def fit_power_law(self, *, x: str, y: str = "mean"):
        """Least-squares power-law fit ``y ≈ c·x^a`` over the rows.

        Parameters
        ----------
        x : str
            Column with the size axis.
        y : str
            Column with the measured time (default ``"mean"``).

        Returns
        -------
        PowerLawFit
            Via :func:`repro.analysis.scaling.fit_power_law_rows`.
        """
        from ..analysis.scaling import fit_power_law_rows

        return fit_power_law_rows(self.rows, x=x, y=y)

    def columns(self) -> list[str]:
        """All column names, in first-appearance order across rows.

        Returns
        -------
        list of str
            The union of row keys (stable: row order, then key order
            within each row).
        """
        seen: dict[str, None] = {}
        for row in self.rows:
            for name in row:
                seen.setdefault(name)
        return list(seen)

    def payload(self) -> dict[str, Any]:
        """The canonical JSON-safe form of the frame.

        One schema for every serialized frame in the repo::

            {"schema": "repro.frame/1",
             "columns": [...],      # first-appearance order
             "rows": [{...}, ...]}  # plain dicts, row order preserved

        Returns
        -------
        dict
            What :meth:`to_json` serializes and :meth:`from_json`
            validates.
        """
        return {
            "schema": FRAME_SCHEMA,
            "columns": self.columns(),
            "rows": self.rows,
        }

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialize the frame to its canonical JSON document.

        NaNs (budget-exhausted cells, empty-sample statistics) survive
        via Python's JSON NaN extension — :meth:`from_json` reads them
        back as ``float('nan')``.

        Parameters
        ----------
        indent : int, optional
            Pretty-print indent (default: compact).

        Returns
        -------
        str
            The ``repro.frame/1`` document.
        """
        return json.dumps(self.payload(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Frame":
        """Rebuild a frame from :meth:`to_json` output.

        Parameters
        ----------
        text : str
            A ``repro.frame/1`` JSON document.

        Returns
        -------
        Frame
            Row-for-row equal to the frame that was serialized.

        Raises
        ------
        ValueError
            On malformed JSON, a wrong/missing schema tag, or rows
            that are not objects.
        """
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"not a frame document: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("schema") != FRAME_SCHEMA:
            raise ValueError(
                f"expected a {FRAME_SCHEMA!r} document, got schema "
                f"{doc.get('schema') if isinstance(doc, dict) else None!r}"
            )
        rows = doc.get("rows")
        if not isinstance(rows, list) or any(
            not isinstance(r, dict) for r in rows
        ):
            raise ValueError("frame rows must be a list of objects")
        return cls(rows)


class ResultStore:
    """Content-addressed store of sweep-cell summaries.

    Parameters
    ----------
    root : str or Path or None
        Store directory (created on first write).  ``None`` keeps
        everything in memory — same API, no persistence — unless a
        *backend* is given.
    backend : StorageBackend, optional
        Explicit persistence seam (:mod:`repro.store.backend`).  A
        path *root* is shorthand for ``backend=LocalBackend(root)``;
        an object-store backend (``InMemoryCASBackend``,
        ``HTTPCASBackend``, …) makes the store durable with **no
        filesystem at all** — same records, same layout, same claim
        ledger.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        backend: StorageBackend | None = None,
    ) -> None:
        if root is not None and backend is not None:
            raise ValueError("pass root= or backend=, not both")
        self.backend = backend if backend is not None else resolve_backend(root)
        self.root = (
            self.backend.root if isinstance(self.backend, LocalBackend) else None
        )
        self._cache: dict[str, dict[str, Any]] = {}
        self._loaded_shards: set[str] = set()
        self._all_loaded = self.backend is None
        if self.backend is not None:
            blob = self.backend.read_blob("meta.json")
            if blob is not None:
                try:
                    meta = json.loads(blob[0].decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    meta = {}
                version = meta.get("schema")
                if version not in (None, STORE_SCHEMA_VERSION):
                    warnings.warn(
                        f"store at {self.location} has schema {version!r}, "
                        f"this code writes {STORE_SCHEMA_VERSION}; old "
                        "records will simply never match new keys",
                        stacklevel=2,
                    )

    @property
    def location(self) -> str:
        """Human-readable description of where the store lives."""
        if self.root is not None:
            return str(self.root)
        if self.backend is not None:
            return f"{type(self.backend).__name__}"
        return "(memory)"

    # ------------------------------------------------------------------
    # shard plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _normalise(key_or_hash: RunKey | str) -> str:
        h = key_or_hash.hash if isinstance(key_or_hash, RunKey) else key_or_hash
        if not isinstance(h, str) or len(h) < 2:
            raise ValueError("expected a RunKey or a hex cell hash")
        return h

    @staticmethod
    def _shard_key(prefix: str) -> str:
        return f"shards/{prefix}.jsonl"

    def _load_shard(self, prefix: str) -> None:
        if self.backend is None or prefix in self._loaded_shards:
            return
        self._loaded_shards.add(prefix)
        blob = self.backend.read_blob(self._shard_key(prefix))
        if blob is None:
            return
        bad = 0
        for line in blob[0].decode("utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = parse_record(line)
            except ValueError:
                bad += 1
                continue
            self._cache[record["hash"]] = record
        if bad:
            warnings.warn(
                f"store shard {self._shard_key(prefix)} had {bad} corrupt "
                "record(s); the affected cells will re-run",
                stacklevel=2,
            )

    def _load_all(self) -> None:
        if self._all_loaded:
            return
        self._all_loaded = True
        assert self.backend is not None
        for key in self.shard_keys():
            self._load_shard(key.rsplit("/", 1)[-1].removesuffix(".jsonl"))

    # ------------------------------------------------------------------
    # the store API
    # ------------------------------------------------------------------
    def has(self, key_or_hash: RunKey | str) -> bool:
        """Whether a valid record exists for the cell.

        Parameters
        ----------
        key_or_hash : RunKey or str
            The cell, by key or by content hash.

        Returns
        -------
        bool
            ``True`` on a cache hit.
        """
        return self.get(key_or_hash) is not None

    def get(self, key_or_hash: RunKey | str) -> dict[str, Any] | None:
        """Fetch the record for a cell, or ``None``.

        Parameters
        ----------
        key_or_hash : RunKey or str
            The cell, by key or by content hash.

        Returns
        -------
        dict or None
            The stored record.
        """
        h = self._normalise(key_or_hash)
        if h not in self._cache:
            self._load_shard(h[:2])
        return self._cache.get(h)

    def put(
        self,
        key: RunKey,
        summary: TrialSummary,
        provenance: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Record a cell's summary (appends one JSONL line on disk).

        Parameters
        ----------
        key : RunKey
            The cell that was run.
        summary : TrialSummary
            ``run_batch``'s output for the cell.
        provenance : Mapping, optional
            Anything worth keeping about *how* the cell ran (sweep
            name, engine, wall time, seed entropy…).

        Returns
        -------
        dict
            The record as stored.
        """
        record = {
            "hash": key.hash,
            "key": key.payload(),
            "result": _summary_payload(summary),
            "provenance": dict(provenance or {}),
        }
        if self.backend is not None:
            self._ensure_meta()
            # merge-safe append: one whole record per backend append, so
            # any number of worker processes can commit concurrently
            self.backend.append_line(
                self._shard_key(key.hash[:2]), json.dumps(record, sort_keys=True)
            )
        self._cache[key.hash] = record
        return record

    def _ensure_meta(self) -> None:
        """Create ``meta.json`` exactly once, racing writers tolerated."""
        assert self.backend is not None
        if self.backend.read_blob("meta.json") is not None:
            return
        payload = (canonical_json({"schema": STORE_SCHEMA_VERSION}) + "\n").encode()
        # create-only CAS: a racing worker's conflict writes the same
        # bytes, so losing the race is success
        self.backend.compare_and_swap("meta.json", payload, None)

    def refresh(self) -> None:
        """Let later lookups see records appended by other processes.

        Drops the shard-was-loaded bookkeeping so the next *miss*
        re-reads its shard through the backend.  Cached records are
        kept: the store is content-addressed, so a hash→record binding
        can only ever appear, never change — which keeps a dispatch
        worker's per-round refresh O(pending shards), not O(all
        records).  A no-op for memory-only stores (there is nothing to
        re-read).
        """
        if self.backend is None:
            return
        self._loaded_shards.clear()
        self._all_loaded = False

    def shard_keys(self) -> list[str]:
        """Existing shard blob keys, sorted (``[]`` for memory stores).

        Returns
        -------
        list of str
            One ``shards/<prefix>.jsonl`` key per non-empty shard —
            the raw material of ``sweep fsck`` and ``sweep compact``,
            over any backend.
        """
        if self.backend is None:
            return []
        return [
            key
            for key in self.backend.list_prefix("shards/")
            if key.endswith(".jsonl")
        ]

    def shard_paths(self) -> list[Path]:
        """Existing shard files, sorted by name (``[]`` off-filesystem).

        Returns
        -------
        list of Path
            One path per ``shards/*.jsonl`` file — kept for
            filesystem-side tooling; backend-agnostic code should use
            :meth:`shard_keys`.
        """
        if self.root is None:
            return []
        shard_dir = self.root / "shards"
        if not shard_dir.is_dir():
            return []
        return sorted(shard_dir.glob("*.jsonl"))

    def __len__(self) -> int:
        self._load_all()
        return len(self._cache)

    def hashes(self) -> list[str]:
        """All stored cell hashes (loads every shard).

        Returns
        -------
        list of str
            Sorted hex hashes.
        """
        self._load_all()
        return sorted(self._cache)

    def frame(self, **where: Any) -> Frame:
        """All records as a :class:`Frame`, optionally pre-filtered.

        Parameters
        ----------
        **where : Any
            Equality filters applied to the flattened rows (e.g.
            ``store.frame(process="cobra", g_d=2)``).

        Returns
        -------
        Frame
            One row per stored record.
        """
        self._load_all()
        frame = Frame([record_row(r) for _, r in sorted(self._cache.items())])
        return frame.filter(**where) if where else frame

    def summary(self, key_or_hash: RunKey | str) -> TrialSummary | None:
        """Rehydrate a cell's :class:`TrialSummary` from its record.

        Parameters
        ----------
        key_or_hash : RunKey or str
            The cell, by key or by content hash.

        Returns
        -------
        TrialSummary or None
            Rebuilt from the stored trial values (identical statistics
            to the original summary), or ``None`` on a miss.
        """
        record = self.get(key_or_hash)
        if record is None:
            return None
        from ..sim.montecarlo import summarize_trials

        return summarize_trials(
            np.asarray(record["result"]["values"], dtype=np.float64)
        )
