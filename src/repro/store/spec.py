"""Declarative sweep campaigns: ``SweepSpec`` → deterministic ``RunKey`` cells.

A sweep is the paper's experimental unit — *process × graph family ×
size × parameters*, repeated over many trials — and this module makes
it a value: a :class:`SweepSpec` names the process, a graph builder
from :mod:`repro.graphs` with a grid of builder arguments, a grid of
process parameters, the metric, the trial count, and a
:class:`SeedPolicy`.  :meth:`SweepSpec.expand` turns the spec into the
deterministic cross-product list of :class:`RunKey` cells.

Every cell carries a **content hash**: the SHA-256 of its canonical
JSON payload (process, metric, graph builder + arguments, process
parameters, target rule, trials, budget, seed policy, store schema
version).  The hash is the address of the cell's result in
:class:`repro.store.ResultStore`, so identical simulation work —
within one campaign, across campaigns, across interrupted re-runs —
is computed exactly once.  Changing *anything* that affects the
result (trial count, seed policy, a parameter, the schema version)
changes the hash and therefore forces a recompute; renaming the sweep
does not.

Seeds are content-derived too: with the default ``content`` policy a
cell's RNG stream is a pure function of ``(root seed, cell payload)``
— independent of the cell's position in the grid and of every other
cell — which is what makes an interrupted campaign resume
**seed-for-seed identical** to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from functools import cached_property
from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from ..graphs.base import Graph
from ..graphs.implicit import NeighborOracle

__all__ = [
    "STORE_SCHEMA_VERSION",
    "SeedPolicy",
    "RunKey",
    "SweepSpec",
    "canonical_json",
]

#: bumping this invalidates every stored cell (it is hashed into keys)
STORE_SCHEMA_VERSION = 1

#: named target rules resolved against the built graph
_TARGET_RULES = ("last", "center", "farthest")

_SCALAR_TYPES = (bool, int, float, str, type(None))


def canonical_json(obj: Any) -> str:
    """Canonical (sorted-key, compact) JSON used for hashing payloads.

    Parameters
    ----------
    obj : Any
        A JSON-safe structure (scalars, lists, string-keyed dicts).

    Returns
    -------
    str
        Deterministic JSON text: the same payload always hashes the
        same.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def _check_scalar_params(params: Mapping[str, Any], what: str) -> dict[str, Any]:
    """Validate a params mapping down to JSON-safe scalars."""
    out: dict[str, Any] = {}
    for name, value in params.items():
        if not isinstance(name, str) or not name:
            raise ValueError(f"{what} names must be non-empty strings")
        if isinstance(value, (np.integer,)):
            value = int(value)
        elif isinstance(value, (np.floating,)):
            value = float(value)
        if not isinstance(value, _SCALAR_TYPES):
            raise ValueError(
                f"{what} {name!r} must be a JSON-safe scalar "
                f"(int/float/str/bool/None), got {type(value).__name__}"
            )
        out[name] = value
    return out


def _normalise_graph_value(axis: str, value: Any) -> Any:
    """Validate one graph-grid value: a scalar, or a tuple of scalars.

    Graph builders legitimately take short lists (``circulant``'s
    offsets), so graph axes — unlike process parameters — may carry a
    sequence of scalars.  Sequences normalise to tuples (hashable, so
    ``RunKey`` stays a frozen value and graph caches can key on it)
    and serialise back to JSON lists in :meth:`RunKey.payload`.
    """
    if isinstance(value, (list, tuple)):
        if len(value) == 0:
            raise ValueError(f"graph_grid {axis!r} sequence value is empty")
        return tuple(
            _check_scalar_params({axis: item}, "graph_grid sequence item")[axis]
            for item in value
        )
    # scalar path: same validation (and numpy-scalar normalisation) as
    # process parameters
    return _check_scalar_params({axis: value}, "graph_grid")[axis]


@dataclass(frozen=True)
class SeedPolicy:
    """How per-cell RNG streams derive from the campaign root seed.

    Attributes
    ----------
    root : int
        The campaign's root seed.
    kind : str
        ``"content"`` (default): a cell's stream entropy is
        ``[root, H(cell payload)]`` — position-independent, so adding
        or removing grid values never shifts another cell's stream and
        resume is seed-for-seed exact.  ``"fixed"``: every cell uses
        ``root`` directly (all cells share one stream family — useful
        for common-random-number comparisons across cells).
    """

    root: int = 0
    kind: str = "content"

    def __post_init__(self) -> None:
        if self.kind not in ("content", "fixed"):
            raise ValueError(
                f"unknown seed policy kind {self.kind!r}; use 'content' or 'fixed'"
            )
        if not isinstance(self.root, int) or isinstance(self.root, bool):
            raise ValueError("seed policy root must be an int")

    def payload(self) -> dict[str, Any]:
        """JSON-safe form hashed into every cell key."""
        return {"root": self.root, "kind": self.kind}


@dataclass(frozen=True)
class RunKey:
    """One sweep cell: everything needed to (re)produce one summary.

    A ``RunKey`` is a pure value — hashing it, deriving its seed, and
    building its graph are all deterministic functions of its fields,
    which is the whole reproducibility story of the store.

    Attributes
    ----------
    process : str
        Registry name of the process (``repro.sim.processes``).
    metric : str
        Resolved metric (``cover``/``spread``/``hit``/``coalesce``/``min``).
    graph_builder : str
        Name of a graph constructor in :mod:`repro.graphs`.
    graph_params : tuple of (str, value) pairs
        Sorted builder keyword arguments; a value is a scalar or a
        tuple of scalars (e.g. ``circulant`` offsets), serialised as a
        JSON list.
    params : tuple of (str, scalar) pairs
        Sorted process parameters forwarded to ``run_batch``.
    target : int or str or None
        Hit/controller target: a vertex id or a named rule (``"last"``
        = ``n - 1``, ``"center"`` = ``n // 2``, ``"farthest"`` = the
        BFS-farthest vertex from 0) resolved against the built graph.
    trials : int
        Monte-Carlo trial count.
    max_steps : int or None
        Per-trial step budget (``None`` = the process default).
    seed_policy : SeedPolicy
        The campaign seed policy (hashed into the key).
    """

    process: str
    metric: str
    graph_builder: str
    graph_params: tuple[tuple[str, Any], ...]
    params: tuple[tuple[str, Any], ...] = ()
    target: int | str | None = None
    trials: int = 8
    max_steps: int | None = None
    seed_policy: SeedPolicy = field(default_factory=SeedPolicy)

    def payload(self) -> dict[str, Any]:
        """The canonical JSON-safe payload the content hash covers."""
        return {
            "schema": STORE_SCHEMA_VERSION,
            "process": self.process,
            "metric": self.metric,
            "graph": {
                "builder": self.graph_builder,
                # tuple values (sequence-valued builder args) serialise
                # as JSON lists
                "params": {
                    name: list(value) if isinstance(value, tuple) else value
                    for name, value in self.graph_params
                },
            },
            "params": dict(self.params),
            "target": self.target,
            "trials": self.trials,
            "max_steps": self.max_steps,
            "seed": self.seed_policy.payload(),
        }

    @cached_property
    def hash(self) -> str:
        """Hex SHA-256 of :meth:`payload` — the cell's store address."""
        return hashlib.sha256(canonical_json(self.payload()).encode()).hexdigest()

    def seed_entropy(self) -> list[int]:
        """Entropy ints for the cell's :class:`numpy.random.SeedSequence`."""
        policy = self.seed_policy
        if policy.kind == "fixed":
            return [policy.root]
        return [policy.root, int(self.hash[:32], 16)]

    def seed_sequence(self) -> np.random.SeedSequence:
        """The cell's root RNG stream (see :class:`SeedPolicy`)."""
        return np.random.SeedSequence(self.seed_entropy())

    def build_graph(self) -> Graph | NeighborOracle:
        """Construct the cell's graph from the named builder.

        Returns
        -------
        Graph or NeighborOracle
            ``repro.graphs.<graph_builder>(**graph_params)`` — a CSR
            graph, or an implicit :class:`NeighborOracle` when the
            builder is one of the ``*_oracle`` constructors.
        """
        import repro.graphs as graphs_mod

        builder = getattr(graphs_mod, self.graph_builder, None)
        if builder is None or not callable(builder):
            raise ValueError(
                f"unknown graph builder {self.graph_builder!r} "
                "(must name a constructor in repro.graphs)"
            )
        kwargs = {
            name: list(value) if isinstance(value, tuple) else value
            for name, value in self.graph_params
        }
        return builder(**kwargs)

    def resolve_target(self, graph: Graph | NeighborOracle) -> int | None:
        """Resolve the declarative target against the built graph.

        Parameters
        ----------
        graph : Graph or NeighborOracle
            The graph returned by :meth:`build_graph`.

        Returns
        -------
        int or None
            A concrete vertex id, or ``None`` when the cell has no
            target.
        """
        if self.target is None:
            return None
        if isinstance(self.target, str):
            if self.target == "last":
                return graph.n - 1
            if self.target == "center":
                return graph.n // 2
            if self.target == "farthest":
                # the BFS-farthest vertex from the canonical start 0 —
                # the "far pair" the hitting-time experiments measure
                if not isinstance(graph, Graph):
                    raise ValueError(
                        "target rule 'farthest' runs a BFS over CSR edge "
                        "arrays, which an implicit oracle does not carry; "
                        "use an int target or 'last'/'center'"
                    )
                from ..graphs.checks import bfs_distances

                return int(np.argmax(bfs_distances(graph, 0)))
            raise ValueError(
                f"unknown target rule {self.target!r}; use an int or one of "
                f"{_TARGET_RULES}"
            )
        target = int(self.target)
        if not (0 <= target < graph.n):
            raise ValueError("target out of range for the built graph")
        return target


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: one process over a parameter grid.

    Attributes
    ----------
    name : str
        Campaign label (provenance only — **not** part of cell hashes,
        so two sweeps declaring the same cell share its result).
    process : str
        Registry name of the process to run.
    graph : str
        Graph builder name in :mod:`repro.graphs` (``"grid"``,
        ``"kary_tree"``, ``"random_regular"``, …).
    graph_grid : Mapping[str, Sequence]
        One axis per builder keyword: each value is the list of values
        to sweep — scalars, or short sequences of scalars for builders
        that take one (``circulant`` offsets).  The cross-product over
        all axes (sorted by axis name) is the sweep's graph ladder.
    params_grid : Mapping[str, Sequence]
        Same, for process parameters (``k``, ``delta``, ``walkers``…).
    metric : str or None
        Metric to drive; ``None`` uses the process default.
    target : int or str or None
        Target vertex or named rule (see :meth:`RunKey.resolve_target`).
    trials : int
        Trials per cell.
    max_steps : int or None
        Per-trial budget (``None`` = process default).
    seed : SeedPolicy
        Seed policy shared by all cells.
    backend : str
        Vectorized-engine backend for every cell — ``"auto"``
        (default), ``"numpy"``, or ``"numba"``.  An execution detail
        like shard count, **not** part of cell hashes: the compiled
        engines are bit-exact twins of the NumPy ones, so the same
        cell produces the same values either way (provenance records
        which backend actually ran).
    """

    name: str
    process: str
    graph: str
    graph_grid: Mapping[str, Sequence[Any]]
    params_grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    metric: str | None = None
    target: int | str | None = None
    trials: int = 8
    max_steps: int | None = None
    seed: SeedPolicy = field(default_factory=SeedPolicy)
    backend: str = "auto"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a sweep needs a name")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if self.backend not in ("auto", "numpy", "numba"):
            raise ValueError(
                f"unknown backend {self.backend!r}; use auto|numpy|numba"
            )
        if isinstance(self.target, str) and self.target not in _TARGET_RULES:
            raise ValueError(
                f"unknown target rule {self.target!r}; use an int or one of "
                f"{_TARGET_RULES}"
            )
        for grid_name, grid in (
            ("graph_grid", self.graph_grid),
            ("params_grid", self.params_grid),
        ):
            for axis, values in grid.items():
                if isinstance(values, (str, bytes)) or not isinstance(
                    values, Sequence
                ):
                    raise ValueError(
                        f"{grid_name} axis {axis!r} must be a sequence of values"
                    )
                if len(values) == 0:
                    raise ValueError(f"{grid_name} axis {axis!r} is empty")
                for value in values:
                    if grid_name == "graph_grid":
                        _normalise_graph_value(axis, value)
                    else:
                        _check_scalar_params({axis: value}, grid_name)
        overlap = set(self.graph_grid) & set(self.params_grid)
        if overlap:
            # not ambiguous for execution (builders vs run_batch), but a
            # flattened result row could not tell the axes apart
            raise ValueError(
                f"axes {sorted(overlap)} appear in both graph_grid and "
                "params_grid; rename one"
            )

    def _resolved_metric(self) -> str:
        """The metric cells carry: explicit, or the process default
        (validated against the registry either way)."""
        from ..sim.facade import _resolve_metric
        from ..sim.processes import get_process

        return _resolve_metric(get_process(self.process), self.metric)

    def expand(self) -> list[RunKey]:
        """The deterministic cell list: the cross-product of all axes.

        Axes iterate sorted by name, graph axes before process axes,
        each axis in its declared value order — the same spec always
        expands to the same list in the same order.

        Cell parameters are **canonicalized against the registry**:
        the process's ``default_params`` merge underneath the declared
        axes, so a sweep that spells a default out explicitly (e.g.
        cobra's ``k=2``) and one that omits it produce the *same* cell
        hash — and changing a registry default invalidates old results
        instead of silently matching them.

        Returns
        -------
        list of RunKey
            One key per grid cell.
        """
        from ..sim.processes import get_process

        metric = self._resolved_metric()
        defaults = _check_scalar_params(
            dict(get_process(self.process).default_params), "default param"
        )
        g_axes = sorted(self.graph_grid)
        p_axes = sorted(self.params_grid)
        g_values = [list(self.graph_grid[a]) for a in g_axes]
        p_values = [list(self.params_grid[a]) for a in p_axes]
        keys = []
        for combo in itertools.product(*g_values, *p_values):
            g_combo = combo[: len(g_axes)]
            p_combo = combo[len(g_axes):]
            params = {**defaults, **dict(zip(p_axes, p_combo))}
            keys.append(
                RunKey(
                    process=self.process,
                    metric=metric,
                    graph_builder=self.graph,
                    graph_params=tuple(
                        (axis, _normalise_graph_value(axis, value))
                        for axis, value in zip(g_axes, g_combo)
                    ),
                    params=tuple(sorted(params.items())),
                    target=self.target,
                    trials=self.trials,
                    max_steps=self.max_steps,
                    seed_policy=self.seed,
                )
            )
        return keys
