"""The ``sweep serve`` HTTP front end: point lookups, frames, blobs.

A stdlib :mod:`http.server` wrapper around one
:class:`~repro.store.store.ResultStore` that turns the store's three
read vocabularies into cacheable HTTP — plus the write seam remote
workers coordinate through:

* ``GET /cell/<hash>`` — one stored record by its content hash.  The
  hash **is** the cache key: a record is immutable by construction
  (content-addressed, last-write-wins duplicates carry identical
  values), so the response ETag is the hash itself and
  ``If-None-Match`` revalidation is a free 304 forever.
* ``GET /frame?<col>=<val>&…&groupby=&aggregate=&column=`` — the
  store's :meth:`~repro.store.store.Frame` query vocabulary
  (equality ``filter``, ``groupby``+``aggregate`` reductions) straight
  off the shards, serialized in the one canonical ``repro.frame/1``
  schema (:meth:`Frame.to_json`).  Frames are *not* immutable while a
  campaign drains, so their ETag is a digest of the response body —
  still a strong validator: equal tag ⇔ byte-identical frame.
* ``GET /blob/<key>`` / ``PUT /blob/<key>`` (with ``If-Match`` /
  ``If-None-Match: *``) / ``GET /blobs?prefix=`` — the raw
  :class:`~repro.store.backend.StorageBackend` seam over HTTP.  This
  is what :class:`~repro.store.backend.HTTPCASBackend` speaks: a
  ``sweep work --store http://host:port`` worker drains a campaign
  through these three routes with **no shared filesystem**, every
  ledger claim one conditional put against the server's backend.
* ``GET /health`` — liveness + where the store lives.

Every request is instrumented through :mod:`repro.obs` spans when the
service carries a tracer (``sweep serve --trace``): one ``kind="http"``
span per request, annotated with route and status.  See
``docs/service.md``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

from .backend import BackendError
from .store import Frame, ResultStore

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..obs.trace import Tracer

__all__ = ["SweepService", "make_server"]

#: query parameters of ``/frame`` that are operators, not filters
_FRAME_RESERVED = ("groupby", "aggregate", "column")


def _coerce(text: str) -> Any:
    """A query-string value as the JSON type the rows carry.

    ``?g_n=16`` must match the stored integer 16, so values parse as
    JSON first (numbers, booleans, null) and fall back to the raw
    string.
    """
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


class SweepService:
    """Route handlers over one store — transport-free, directly testable.

    Every handler returns ``(status, headers, body)``; the HTTP layer
    (:func:`make_server`) is a thin adapter, so tests exercise the
    exact request semantics without sockets.

    Parameters
    ----------
    store : ResultStore
        The store to serve; must be backend-backed (``sweep serve``
        refuses memory-only stores — there would be nothing shared to
        serve).
    tracer : Tracer, optional
        :mod:`repro.obs` tracer; when set, every request runs inside a
        ``kind="http"`` span annotated with route and status.
    """

    def __init__(
        self, store: ResultStore, *, tracer: "Tracer | None" = None
    ) -> None:
        if store.backend is None:
            raise ValueError("sweep serve needs a disk-backed or backend-backed store")
        self.store = store
        self.tracer = tracer

    # -- plumbing -------------------------------------------------------
    def _span(self, route: str):
        if self.tracer is None:
            return contextlib.nullcontext()
        return self.tracer.span("serve", kind="http", route=route)

    def _annotate(self, **attrs: Any) -> None:
        if self.tracer is not None:
            with contextlib.suppress(RuntimeError):
                self.tracer.annotate(**attrs)

    @staticmethod
    def _json_response(
        status: int, payload: Any, *, etag: str | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if etag is not None:
            headers["ETag"] = f'"{etag}"'
        return status, headers, body

    @staticmethod
    def _error(status: int, message: str) -> tuple[int, dict[str, str], bytes]:
        return SweepService._json_response(status, {"error": message})

    @staticmethod
    def _revalidates(if_none_match: str | None, etag: str) -> bool:
        """Whether an ``If-None-Match`` header matches the strong ETag."""
        if if_none_match is None:
            return False
        candidates = [tag.strip() for tag in if_none_match.split(",")]
        return "*" in candidates or f'"{etag}"' in candidates or etag in candidates

    # -- routes ---------------------------------------------------------
    def health(self) -> tuple[int, dict[str, str], bytes]:
        """``GET /health`` — liveness and store identity."""
        with self._span("/health"):
            return self._json_response(
                200, {"status": "ok", "store": self.store.location}
            )

    def cell(
        self, h: str, *, if_none_match: str | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        """``GET /cell/<hash>`` — one record, ETag = the content hash."""
        with self._span("/cell"):
            if len(h) < 2:
                return self._error(400, "cell hash must be at least 2 hex chars")
            if self._revalidates(if_none_match, h):
                # content-addressed ⇒ the record behind a hash can never
                # change: revalidation needs no store read at all
                self._annotate(status=304)
                return 304, {"ETag": f'"{h}"'}, b""
            self.store.refresh()
            record = self.store.get(h)
            if record is None:
                self._annotate(status=404)
                return self._error(404, f"no record for cell {h}")
            self._annotate(status=200)
            return self._json_response(200, record, etag=h)

    def frame(
        self, query: str, *, if_none_match: str | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        """``GET /frame?...`` — filter/groupby/aggregate off the shards."""
        with self._span("/frame"):
            params = urllib.parse.parse_qs(query, keep_blank_values=True)
            for name, values in params.items():
                if len(values) > 1:
                    return self._error(400, f"duplicate query parameter {name!r}")
            flat = {name: values[0] for name, values in params.items()}
            groupby = flat.pop("groupby", None)
            aggregate = flat.pop("aggregate", "mean")
            column = flat.pop("column", "mean")
            filters = {name: _coerce(value) for name, value in flat.items()}
            self.store.refresh()
            frame = self.store.frame(**filters)
            if groupby is not None:
                try:
                    frame = Frame(
                        frame.aggregate(groupby, column=column, agg=aggregate)
                    )
                except ValueError as exc:
                    return self._error(400, str(exc))
            body = frame.to_json().encode("utf-8")
            etag = hashlib.sha256(body).hexdigest()
            self._annotate(rows=len(frame))
            if self._revalidates(if_none_match, etag):
                self._annotate(status=304)
                return 304, {"ETag": f'"{etag}"'}, b""
            self._annotate(status=200)
            return (
                200,
                {"Content-Type": "application/json", "ETag": f'"{etag}"'},
                body,
            )

    def blob_get(self, key: str) -> tuple[int, dict[str, str], bytes]:
        """``GET /blob/<key>`` — raw bytes + ETag off the backend."""
        with self._span("/blob"):
            try:
                blob = self.store.backend.read_blob(key)
            except BackendError as exc:
                return self._error(400, str(exc))
            if blob is None:
                return self._error(404, f"no blob {key!r}")
            data, etag = blob
            return (
                200,
                {
                    "Content-Type": "application/octet-stream",
                    "ETag": f'"{etag}"',
                },
                data,
            )

    def blob_put(
        self,
        key: str,
        data: bytes,
        *,
        if_match: str | None = None,
        if_none_match: str | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """``PUT /blob/<key>`` — one conditional put through the seam."""
        with self._span("/blob"):
            if if_none_match is None and if_match is None:
                return self._error(
                    428, "PUT /blob needs If-Match or If-None-Match: *"
                )
            etag = None if if_none_match is not None else if_match.strip('"')
            try:
                new_etag = self.store.backend.compare_and_swap(key, data, etag)
            except BackendError as exc:
                return self._error(400, str(exc))
            if new_etag is None:
                self._annotate(status=412)
                return self._error(412, "precondition failed")
            return 200, {"ETag": f'"{new_etag}"'}, b""

    def blob_list(self, query: str) -> tuple[int, dict[str, str], bytes]:
        """``GET /blobs?prefix=`` — existing keys under a prefix."""
        with self._span("/blobs"):
            params = urllib.parse.parse_qs(query, keep_blank_values=True)
            prefix = params.get("prefix", [""])[0]
            return self._json_response(
                200, self.store.backend.list_prefix(prefix)
            )

    # -- dispatch -------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        *,
        body: bytes = b"",
        headers: "dict[str, str] | None" = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """Route one request (the HTTP adapter and the tests call this).

        Parameters
        ----------
        method : str
            ``"GET"`` or ``"PUT"``.
        path : str
            Request target including the query string.
        body : bytes
            Request body (PUT only).
        headers : dict, optional
            Request headers; only the conditional headers are read.

        Returns
        -------
        (int, dict, bytes)
            Status, response headers, response body.
        """
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        parsed = urllib.parse.urlsplit(path)
        route = urllib.parse.unquote(parsed.path)
        inm = headers.get("if-none-match")
        if method == "GET":
            if route == "/health":
                return self.health()
            if route.startswith("/cell/"):
                return self.cell(
                    route[len("/cell/"):], if_none_match=inm
                )
            if route == "/frame":
                return self.frame(parsed.query, if_none_match=inm)
            if route.startswith("/blob/"):
                return self.blob_get(route[len("/blob/"):])
            if route == "/blobs":
                return self.blob_list(parsed.query)
        elif method == "PUT":
            if route.startswith("/blob/"):
                return self.blob_put(
                    route[len("/blob/"):],
                    body,
                    if_match=headers.get("if-match"),
                    if_none_match=inm,
                )
            return self._error(405, f"cannot PUT {route}")
        return self._error(404, f"no route {method} {route}")


class _Handler(BaseHTTPRequestHandler):
    """The socket-facing shim: parse, delegate to the service, reply."""

    service: SweepService  # set by make_server's subclass
    protocol_version = "HTTP/1.1"

    def _dispatch(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        status, headers, payload = self.service.handle(
            method, self.path, body=body, headers=dict(self.headers)
        )
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        if payload:
            self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_PUT(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("PUT")

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence the default stderr access log (spans carry telemetry)."""


def make_server(
    store: ResultStore,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    tracer: "Tracer | None" = None,
) -> ThreadingHTTPServer:
    """Build a ready-to-run threaded HTTP server over *store*.

    Parameters
    ----------
    store : ResultStore
        The store to serve (backend-backed).
    host : str
        Bind address (default loopback).
    port : int
        Bind port; 0 picks a free one — read it back from
        ``server.server_address``.
    tracer : Tracer, optional
        Request instrumentation (see :class:`SweepService`).

    Returns
    -------
    ThreadingHTTPServer
        Call ``serve_forever()`` (and ``shutdown()`` from another
        thread or a signal handler to stop).
    """
    service = SweepService(store, tracer=tracer)

    class Handler(_Handler):
        pass

    Handler.service = service
    return ThreadingHTTPServer((host, port), Handler)
