"""Registered sweep declarations — the campaigns behind the experiments.

The migrated experiments (``T3_grid``, ``TREES_kary``, ``KCOBRA_k``,
``BASE_compare``, ``STAR_lb``, ``T15_regular``, ``C9_expander``,
``T20_general``) no longer hand-roll
sweep loops: each is a **sweep builder** here — a function of ``(scale, seed)`` returning the list of
:class:`~repro.store.spec.SweepSpec` declarations whose cells are the
experiment's whole Monte-Carlo surface.  The experiment runners expand
these through a :class:`~repro.store.campaign.Campaign` and read their
tables off :meth:`ResultStore.frame`; the CLI's ``sweep run/status/
show`` subcommands drive the same builders against a durable on-disk
store.

``SCALE_torus_vs_hypercube`` is the implicit-topology scaling sweep:
its cells name the arithmetic ``*_oracle`` builders, so at full scale
a million-vertex torus and a 2²⁰-vertex hypercube run through
``run_batch`` without ever materialising CSR edge arrays (the
provenance ``graph_kind`` column records which oracle served each
cell).

``BRW_minima`` sweeps the new ``branching_minima`` process — the
Addario-Berry–Reed n'th-generation minimum on the ℤ-line — purely
through the store (there is no legacy experiment for it).
``DEMO_grid2x2`` is the four-cell sweep the multi-worker dispatch
docs, tests, and CI smoke drain.

Multiple specs per name are the norm: a sweep name is an experiment's
worth of campaigns (one spec per process arm or per graph family),
sharing one store so overlapping cells are computed once.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from .spec import SeedPolicy, SweepSpec

__all__ = [
    "register_sweep",
    "build_sweep",
    "sweep_names",
]

#: builder signature: ``builder(scale, seed) -> list[SweepSpec]``
SweepBuilder = Callable[[str, int], "list[SweepSpec]"]

_SWEEPS: dict[str, SweepBuilder] = {}


def register_sweep(name: str, builder: SweepBuilder) -> SweepBuilder:
    """Register a sweep builder under *name* (rejecting duplicates).

    Parameters
    ----------
    name : str
        Sweep name (conventionally the experiment id it powers).
    builder : callable
        ``builder(scale, seed) -> list[SweepSpec]``.

    Returns
    -------
    callable
        *builder* itself, for decorator-style use.
    """
    if name in _SWEEPS:
        raise ValueError(f"duplicate sweep name {name!r}")
    _SWEEPS[name] = builder
    return builder


def build_sweep(name: str, *, scale: str = "quick", seed: int = 0) -> list[SweepSpec]:
    """Build the registered sweep's spec list for a scale and root seed.

    Parameters
    ----------
    name : str
        Registered sweep name (see :func:`sweep_names`).
    scale : str
        ``"quick"`` (seconds, the test/CI configuration) or ``"full"``.
    seed : int
        Root seed of every spec's :class:`SeedPolicy`.

    Returns
    -------
    list of SweepSpec
        The sweep's campaigns.
    """
    if scale not in ("quick", "full"):
        raise ValueError(f"unknown scale {scale!r}; use 'quick' or 'full'")
    try:
        builder = _SWEEPS[name]
    except KeyError:
        known = ", ".join(sorted(_SWEEPS))
        raise KeyError(f"unknown sweep {name!r}; known: {known}") from None
    specs = builder(scale, seed)
    return list(specs) if isinstance(specs, Sequence) else [specs]


def sweep_names() -> list[str]:
    """Sorted registered sweep names.

    Returns
    -------
    list of str
        The registry keys.
    """
    return sorted(_SWEEPS)


# ----------------------------------------------------------------------
# built-in sweeps (the migrated experiments + the minima statistic)
# ----------------------------------------------------------------------

#: T3 grid ladders, keyed by dimension (mirrors the historical exp_grid)
T3_SWEEPS = {
    "quick": {1: [64, 128, 256], 2: [8, 16, 32], 3: [4, 6, 8]},
    "full": {
        1: [64, 128, 256, 512, 1024],
        2: [8, 16, 32, 64, 128],
        3: [4, 6, 8, 12, 16],
    },
}
T3_TRIALS = {"quick": 5, "full": 15}
T3_RW_LIMIT = {"quick": 600, "full": 4000}  # vertex cap for the slow baseline


def _t3_grid(scale: str, seed: int) -> list[SweepSpec]:
    policy = SeedPolicy(root=seed)
    trials = T3_TRIALS[scale]
    specs = []
    for d, ns in T3_SWEEPS[scale].items():
        specs.append(
            SweepSpec(
                name=f"T3_grid/cobra_d{d}",
                process="cobra",
                graph="grid",
                graph_grid={"n": ns, "d": [d]},
                trials=trials,
                seed=policy,
            )
        )
        rw_ns = [n for n in ns if (n + 1) ** d <= T3_RW_LIMIT[scale]]
        if rw_ns:
            specs.append(
                SweepSpec(
                    name=f"T3_grid/rw_d{d}",
                    process="simple",
                    graph="grid",
                    graph_grid={"n": rw_ns, "d": [d]},
                    trials=max(3, trials // 2),
                    seed=policy,
                )
            )
    return specs


register_sweep("T3_grid", _t3_grid)


TREES_DEPTHS = {
    "quick": {2: [4, 6, 8], 3: [3, 4, 5], 4: [3, 4], 5: [2, 3]},
    "full": {2: [4, 6, 8, 10, 12], 3: [3, 4, 5, 6, 7], 4: [3, 4, 5], 5: [2, 3, 4]},
}
TREES_TRIALS = {"quick": 6, "full": 15}


def _trees_kary(scale: str, seed: int) -> list[SweepSpec]:
    policy = SeedPolicy(root=seed)
    return [
        SweepSpec(
            name=f"TREES_kary/k{k}",
            process="cobra",
            graph="kary_tree",
            graph_grid={"k": [k], "depth": depths},
            trials=TREES_TRIALS[scale],
            seed=policy,
        )
        for k, depths in TREES_DEPTHS[scale].items()
    ]


register_sweep("TREES_kary", _trees_kary)


KCOBRA_KS = [1, 2, 3, 4, 8]
KCOBRA_TRIALS = {"quick": 5, "full": 15}
KCOBRA_SIZE = {"quick": (15, 256), "full": (31, 1024)}  # (grid extent, expander n)


def _kcobra_k(scale: str, seed: int) -> list[SweepSpec]:
    policy = SeedPolicy(root=seed)
    trials = KCOBRA_TRIALS[scale]
    side, n = KCOBRA_SIZE[scale]
    return [
        SweepSpec(
            name="KCOBRA_k/grid",
            process="cobra",
            graph="grid",
            graph_grid={"n": [side], "d": [2]},
            params_grid={"k": KCOBRA_KS},
            trials=trials,
            seed=policy,
        ),
        SweepSpec(
            name="KCOBRA_k/expander",
            process="cobra",
            graph="random_regular",
            graph_grid={"n": [n], "d": [8], "seed": [seed]},
            params_grid={"k": KCOBRA_KS},
            trials=trials,
            seed=policy,
        ),
    ]


register_sweep("KCOBRA_k", _kcobra_k)


BASE_TRIALS = {"quick": 5, "full": 15}
BASE_SIZE = {"quick": 256, "full": 1024}


def base_compare_graphs(scale: str, seed: int) -> list[tuple[str, str, dict, int]]:
    """The BASE_compare graph ladder: ``(label, builder, params, n)``.

    ``n`` (the vertex count) is computed statically so the specs can
    size the random-walk budget without building a graph.
    """
    size = BASE_SIZE[scale]
    import numpy as np

    side = int(np.sqrt(size)) - 1
    lolli = max(24, size // 4)
    return [
        ("expander", "random_regular", {"n": size, "d": 8, "seed": seed}, size),
        ("grid", "grid", {"n": side, "d": 2}, (side + 1) ** 2),
        ("lollipop", "lollipop", {"n": lolli}, lolli),
        ("star", "star_graph", {"n": size}, size),
    ]


#: the BASE_compare process arms: (arm, process, trials-rule, params)
BASE_ARMS = [
    ("cobra", "cobra", "full", {}),
    ("walt", "walt", "half", {}),
    ("push", "push", "full", {}),
    ("parallel", "parallel", "half", {"walkers": 2}),
    ("simple", "simple", "rw", {}),
    ("lazy", "lazy", "rw", {}),
]


def _base_compare(scale: str, seed: int) -> list[SweepSpec]:
    policy = SeedPolicy(root=seed)
    trials = BASE_TRIALS[scale]
    counts = {"full": trials, "half": max(3, trials // 2), "rw": 3}
    specs = []
    for label, builder, gparams, n in base_compare_graphs(scale, seed):
        # full RW cover on the lollipop is cubic: cap the budget hard;
        # the lazy arm shares the cap (holds included) so it censors
        # where the simple RW does
        rw_budget = min(40 * n**2, 4_000_000)
        for arm, process, count_rule, params in BASE_ARMS:
            specs.append(
                SweepSpec(
                    name=f"BASE_compare/{label}/{arm}",
                    process=process,
                    graph=builder,
                    graph_grid={k: [v] for k, v in gparams.items()},
                    params_grid={k: [v] for k, v in params.items()},
                    trials=counts[count_rule],
                    max_steps=rw_budget if count_rule == "rw" else None,
                    seed=policy,
                )
            )
    return specs


register_sweep("BASE_compare", _base_compare)


STAR_NS = {"quick": [64, 128, 256, 512], "full": [64, 128, 256, 512, 1024, 2048]}
STAR_TRIALS = {"quick": 5, "full": 12}


def _star_lb(scale: str, seed: int) -> list[SweepSpec]:
    policy = SeedPolicy(root=seed)
    trials = STAR_TRIALS[scale]
    return [
        SweepSpec(
            name="STAR_lb/cobra",
            process="cobra",
            graph="star_graph",
            graph_grid={"n": STAR_NS[scale]},
            trials=trials,
            seed=policy,
        ),
        SweepSpec(
            name="STAR_lb/push",
            process="push",
            graph="star_graph",
            graph_grid={"n": STAR_NS[scale]},
            trials=max(3, trials // 2),
            seed=policy,
        ),
    ]


register_sweep("STAR_lb", _star_lb)


T15_NS = {"quick": [32, 64, 128], "full": [32, 64, 128, 256, 512]}
T15_TRIALS = {"quick": 8, "full": 20}


def t15_families(seed: int) -> list[tuple[str, str, int, str, dict]]:
    """The T15 δ-regular families: ``(key, label, delta, builder, extra_grid)``.

    ``key`` names the per-family spec (``T15_regular/<key>``); ``label``
    is the historical table title whose first token keys the findings.
    The circulant family exercises the sequence-valued graph axis
    (offsets ``(1, 2)``); the random-regular family pins its builder
    seed so the graph ladder is part of the cell content.
    """
    return [
        ("cycle", "cycle (δ=2)", 2, "cycle_graph", {}),
        ("circulant", "circulant±{1,2} (δ=4)", 4, "circulant", {"offsets": [(1, 2)]}),
        ("random3", "random 3-regular", 3, "random_regular", {"d": [3], "seed": [seed]}),
    ]


def _t15_regular(scale: str, seed: int) -> list[SweepSpec]:
    policy = SeedPolicy(root=seed)
    return [
        SweepSpec(
            name=f"T15_regular/{key}",
            process="cobra",
            graph=builder,
            graph_grid={"n": T15_NS[scale], **extra},
            metric="hit",
            target="farthest",
            trials=T15_TRIALS[scale],
            seed=policy,
        )
        for key, _label, _delta, builder, extra in t15_families(seed)
    ]


register_sweep("T15_regular", _t15_regular)


def _demo_grid2x2(scale: str, seed: int) -> list[SweepSpec]:
    # deliberately tiny and scale-independent: the sweep the dispatch
    # docs, tests, and the CI multi-worker smoke drain (seconds of work,
    # 4 cells — enough for two workers to genuinely interleave)
    del scale
    return [
        SweepSpec(
            name="DEMO_grid2x2",
            process="cobra",
            graph="grid",
            graph_grid={"n": [6, 8], "d": [2]},
            params_grid={"k": [1, 2]},
            trials=3,
            seed=SeedPolicy(root=seed),
        )
    ]


register_sweep("DEMO_grid2x2", _demo_grid2x2)


C9_NS = {"quick": [128, 256, 512, 1024], "full": [128, 256, 512, 1024, 2048, 4096]}
C9_TRIALS = {"quick": 5, "full": 15}
C9_RW_LIMIT = {"quick": 512, "full": 2048}  # vertex cap for the slow baseline


def _c9_expander(scale: str, seed: int) -> list[SweepSpec]:
    # the builder seed is a graph axis, so the random-regular ladder is
    # part of the cell content (the KCOBRA_k/expander idiom); the rw
    # arm reuses the same graphs, capped where the baseline gets slow
    policy = SeedPolicy(root=seed)
    trials = C9_TRIALS[scale]
    ns = C9_NS[scale]
    return [
        SweepSpec(
            name="C9_expander/cobra",
            process="cobra",
            graph="random_regular",
            graph_grid={"n": ns, "d": [8], "seed": [seed]},
            trials=trials,
            seed=policy,
        ),
        SweepSpec(
            name="C9_expander/rw",
            process="simple",
            graph="random_regular",
            graph_grid={
                "n": [n for n in ns if n <= C9_RW_LIMIT[scale]],
                "d": [8],
                "seed": [seed],
            },
            trials=max(3, trials // 2),
            seed=policy,
        ),
    ]


register_sweep("C9_expander", _c9_expander)


T20_NS = {"quick": [24, 48, 96], "full": [24, 48, 96, 192, 384]}
T20_TRIALS = {"quick": 6, "full": 15}
T20_RW_SIM_LIMIT = {"quick": 48, "full": 96}
T20_WITNESSES = ("lollipop", "barbell")


def _t20_general(scale: str, seed: int) -> list[SweepSpec]:
    # the rw arm's cubic budget (60·n³) is per-n, so it declares one
    # single-cell spec per size; the exact-hitting Θ(n³) certificate is
    # deterministic and stays inline in the experiment
    policy = SeedPolicy(root=seed)
    specs = []
    for witness in T20_WITNESSES:
        specs.append(
            SweepSpec(
                name=f"T20_general/{witness}/cobra",
                process="cobra",
                graph=witness,
                graph_grid={"n": T20_NS[scale]},
                trials=T20_TRIALS[scale],
                seed=policy,
            )
        )
        for n in T20_NS[scale]:
            if n <= T20_RW_SIM_LIMIT[scale]:
                specs.append(
                    SweepSpec(
                        name=f"T20_general/{witness}/rw",
                        process="simple",
                        graph=witness,
                        graph_grid={"n": [n]},
                        trials=3,
                        max_steps=60 * n**3,
                        seed=policy,
                    )
                )
    return specs


register_sweep("T20_general", _t20_general)


#: the two implicit-topology arms: (arm, oracle builder, params per scale)
SCALE_ARMS = {
    "quick": {
        "torus": ("torus_oracle", {"n": 15, "d": 2}),  # 256 vertices
        "hypercube": ("hypercube_oracle", {"dim": 8}),  # 256 vertices
    },
    "full": {
        "torus": ("torus_oracle", {"n": 999, "d": 2}),  # 10^6 vertices
        "hypercube": ("hypercube_oracle", {"dim": 20}),  # 2^20 vertices
    },
}
SCALE_TRIALS = {"quick": 3, "full": 2}
#: at full scale coverage cannot complete inside the budget — the cells
#: measure throughput/footprint and legitimately summarise to NaN
SCALE_MAX_STEPS = {"quick": None, "full": 256}


def _scale_torus_vs_hypercube(scale: str, seed: int) -> list[SweepSpec]:
    policy = SeedPolicy(root=seed)
    return [
        SweepSpec(
            name=f"SCALE_torus_vs_hypercube/{arm}",
            process="cobra",
            graph=builder,
            graph_grid={name: [value] for name, value in params.items()},
            trials=SCALE_TRIALS[scale],
            max_steps=SCALE_MAX_STEPS[scale],
            seed=policy,
        )
        for arm, (builder, params) in SCALE_ARMS[scale].items()
    ]


register_sweep("SCALE_torus_vs_hypercube", _scale_torus_vs_hypercube)


BRW_LINES = {"quick": [129], "full": [257, 513]}
BRW_GENERATIONS = {"quick": [8, 16], "full": [16, 32, 64]}
BRW_TRIALS = {"quick": 4, "full": 16}


def _brw_minima(scale: str, seed: int) -> list[SweepSpec]:
    # the line must outrun the frontier: n // 2 > max generations holds
    # for every (n, generations) pair declared above
    return [
        SweepSpec(
            name="BRW_minima",
            process="branching_minima",
            graph="path_graph",
            graph_grid={"n": BRW_LINES[scale]},
            params_grid={"k": [2, 3], "generations": BRW_GENERATIONS[scale]},
            metric="min",
            trials=BRW_TRIALS[scale],
            seed=SeedPolicy(root=seed),
        )
    ]


register_sweep("BRW_minima", _brw_minima)
