"""The campaign runner: drive a sweep's pending cells through ``run_batch``.

A :class:`Campaign` binds one :class:`~repro.store.spec.SweepSpec` to
one :class:`~repro.store.store.ResultStore` and runs only the cells
the store does not already hold — re-running a completed sweep
performs **zero** ``run_batch`` calls, and a campaign killed mid-way
resumes exactly where it stopped (per-cell seeds are content-derived,
so the completed-then-resumed results are seed-for-seed identical to
an uninterrupted run; ``tests/store/test_campaign.py`` pins both).

Execution rides the facade: each cell is one
``run_batch(graph, process, trials=, metric=, seed=, shards=, ...)``
call, so a campaign gets the vectorized batched engine, the
multiprocessing pool, or the placement-independent sharded executor
exactly as any other caller would.  Per-cell provenance (sweep name,
engine and backend used, worker id, seed entropy, wall time and
per-phase timings, graph name) is recorded next to the result; pass a
:class:`~repro.obs.trace.Tracer` to additionally stream span events
into the store's ``events.jsonl`` (see ``docs/observability.md``).

``Campaign(workers=N)`` instead spawns N local worker processes that
drain the same sweep concurrently through the lease/claim dispatcher
(:mod:`repro.store.dispatch`) — value-for-value identical to a
single-process ``run()``, because per-cell seeds are content-derived.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator, Mapping
from typing import Any

from ..obs.trace import NULL_TRACER, Tracer, activate, default_worker_id
from ..sim.facade import run_batch
from ..sim.processes import get_process
from .spec import RunKey, SweepSpec
from .store import Frame, ResultStore, record_row

__all__ = ["Campaign", "CampaignReport", "CampaignStatus", "run_cell"]


@dataclass(frozen=True)
class CampaignStatus:
    """Progress snapshot of a sweep against a store.

    Attributes
    ----------
    total : int
        Number of cells the spec expands to.
    done : int
        Cells already in the store.
    """

    total: int
    done: int

    @property
    def pending(self) -> int:
        """Cells still to run."""
        return self.total - self.done

    @property
    def complete(self) -> bool:
        """Whether every cell is stored."""
        return self.done == self.total


@dataclass
class CampaignReport:
    """What one :meth:`Campaign.run` call did.

    Attributes
    ----------
    sweep : str
        The spec's name.
    ran : list of str
        Hashes of cells actually computed this call.
    cached : list of str
        Hashes that were already stored (skipped).
    pending : list of str
        Hashes left unrun (only non-empty when ``max_cells`` stopped
        the call early).
    """

    sweep: str
    ran: list[str] = field(default_factory=list)
    cached: list[str] = field(default_factory=list)
    pending: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        """All cells of the sweep."""
        return len(self.ran) + len(self.cached) + len(self.pending)

    @property
    def complete(self) -> bool:
        """Whether the sweep is fully stored after this call."""
        return not self.pending


def _engine_label(
    process: str,
    metric: str,
    shards: int | None,
    backend: str = "auto",
    graph: Any | None = None,
) -> str:
    """The execution path ``run_batch`` takes for a cell, for
    provenance — computed by the facade's own
    :func:`~repro.sim.facade.select_execution_path` (the one selection
    rule ``run_batch`` itself uses), so the label cannot drift from
    what actually ran.  With a ``backend`` request the label records
    the backend actually used (``"vectorized[numba]"`` only when the
    compiled kernels really drive the cell)."""
    from ..sim.facade import get_default_processes, select_execution_path

    pool = get_default_processes()
    path = select_execution_path(
        get_process(process),
        metric,
        shards=shards,
        processes=pool,
        backend=backend,
        graph=graph,
    )
    if path == "sharded":
        return f"sharded(shards={shards})"
    if path == "pool":
        return f"pool(processes={pool})"
    return path


def _backend_used(engine_label: str) -> str:
    """The provenance ``backend`` field from an engine label: which
    backend actually produced the values (requests are not recorded —
    outcomes are)."""
    if engine_label == "vectorized[numba]":
        return "numba"
    if engine_label == "vectorized":
        return "numpy"
    # serial / pool / sharded paths step per-trial Python+numpy code
    return "numpy"


#: the cell phases, in execution order — every run_cell emits exactly
#: these four phase spans, traced or not (events Frame row counts are
#: cells × len(CELL_PHASES))
CELL_PHASES = ("build_graph", "lower", "engine", "record")


def run_cell(
    key: RunKey,
    store: ResultStore,
    *,
    sweep: str,
    shards: int | None = None,
    max_workers: int | None = None,
    backend: str = "auto",
    graph_cache: dict[tuple, Any] | None = None,
    extra_provenance: Mapping[str, Any] | None = None,
    tracer: Tracer | None = None,
    worker: str | None = None,
    lease: str | None = None,
    profile: bool = False,
) -> dict[str, Any]:
    """Compute one cell through ``run_batch`` and store it with provenance.

    The one execution path for a cell, shared by :class:`Campaign` and
    by the dispatch workers (:mod:`repro.store.dispatch`): the cell's
    seed stream is content-derived (``[root, H(cell)]``), so **who**
    computes a cell never changes its values — an N-worker drain is
    value-for-value identical to a single ``Campaign.run()``.

    Execution is broken into the four :data:`CELL_PHASES`
    (``build_graph → lower → engine → record``); each phase is timed
    through the tracer's injected clock and recorded in the ``phase_s``
    provenance dict (``record`` excepted — provenance is sealed before
    the store append), and emitted as a span when tracing is on.  All
    clock reads go through the tracer, so this module contains no raw
    ``time.*`` calls (rule RPL150).

    Parameters
    ----------
    key : RunKey
        The cell to compute.
    store : ResultStore
        Where the record lands (a locked single-line append).
    sweep : str
        Sweep name recorded as provenance.
    shards : int, optional
        Forwarded to ``run_batch(shards=)``.
    max_workers : int, optional
        Forwarded with *shards*.
    backend : str, optional
        Vectorized-engine backend forwarded to ``run_batch(backend=)``;
        provenance records the backend that actually ran, not the one
        requested.
    graph_cache : dict, optional
        ``(builder, params) -> Graph`` cache shared across cells of one
        runner.
    extra_provenance : Mapping, optional
        Extra provenance fields merged in last.
    tracer : Tracer, optional
        Telemetry sink (default :data:`~repro.obs.trace.NULL_TRACER`:
        spans/counters are free, clocks still tick for provenance).
        The tracer is activated around the engine phase so the batched
        engines' counters land on its span.
    worker : str, optional
        Worker id recorded in provenance (default: the tracer's id, or
        ``host-pid``).
    lease : str, optional
        Dispatch lease id recorded in provenance (additive key; absent
        for single-process campaigns).
    profile : bool
        Record the process peak RSS (MiB) after the engine phase as
        ``peak_rss_mb`` provenance (``sweep run --profile``).

    Returns
    -------
    dict
        The record as stored.
    """
    if graph_cache is None:
        graph_cache = {}
    tr = tracer if tracer is not None else NULL_TRACER
    if worker is None:
        worker = tr.worker or default_worker_id()
    clock = tr.clock
    cell = key.hash[:12]
    phase_s: dict[str, float] = {}

    @contextmanager
    def phase(name: str) -> Iterator[None]:
        t0 = clock()
        with tr.span(name, kind="phase", cell=cell, sweep=sweep):
            yield
        phase_s[name] = clock() - t0

    with tr.span("cell", kind="cell", cell=cell, sweep=sweep, process=key.process):
        with phase("build_graph"):
            gkey = (key.graph_builder, key.graph_params)
            if gkey not in graph_cache:
                graph_cache[gkey] = key.build_graph()
            graph = graph_cache[gkey]
        with phase("lower"):
            target = key.resolve_target(graph)
            engine = _engine_label(key.process, key.metric, shards, backend, graph)
        with phase("engine"), activate(tr):
            summary = run_batch(
                graph,
                key.process,
                trials=key.trials,
                metric=key.metric,
                target=target,
                seed=key.seed_sequence(),
                max_steps=key.max_steps,
                shards=shards,
                max_workers=max_workers,
                backend=backend,
                **dict(key.params),
            )
        provenance = {
            "sweep": sweep,
            "engine": engine,
            "backend": _backend_used(engine),
            "worker": worker,
            "wall_time_s": round(phase_s["engine"], 6),
            "phase_s": {name: round(dur, 6) for name, dur in phase_s.items()},
            "seed_entropy": key.seed_entropy(),
            "graph_name": graph.name,
            "graph_n": int(graph.n),
            # "csr" for materialised Graphs (which carry no kind attribute),
            # else the oracle's topology kind ("torus", "hypercube", ...)
            "graph_kind": getattr(graph, "kind", "csr"),
            "created_unix": round(tr.walltime(), 3),
        }
        if lease is not None:
            provenance["lease"] = lease
        if profile:
            from ..obs.memory import peak_rss_mb

            provenance["peak_rss_mb"] = round(peak_rss_mb(), 3)
        if extra_provenance:
            provenance.update(extra_provenance)
        with phase("record"):
            record = store.put(key, summary, provenance)
    return record


class Campaign:
    """Run one sweep against one store, cache-aware and resumable.

    Parameters
    ----------
    spec : SweepSpec
        The declarative sweep.
    store : ResultStore
        Where results live (pass a disk-backed store for durable,
        resumable campaigns; the default is an ephemeral in-memory
        store).
    shards : int, optional
        Forwarded to ``run_batch(shards=)`` per cell (the
        placement-independent sharded executor).
    max_workers : int, optional
        Forwarded with *shards*.
    workers : int, optional
        Spawn this many local worker processes that drain the sweep
        concurrently through the lease/claim dispatcher
        (:mod:`repro.store.dispatch`).  Requires a disk-backed store
        (the claim ledger lives beside the shards).  Values are
        identical to a single-process ``run()`` — per-cell seeds are
        content-derived, so worker placement cannot matter.
    tracer : Tracer, optional
        Telemetry sink threaded into every cell (default: the no-op
        :data:`~repro.obs.trace.NULL_TRACER`).  With ``workers=N`` the
        pool members cannot share this process's tracer object; when
        an *enabled* tracer is passed, each worker instead opens its
        own store-backed event tracer
        (:func:`repro.obs.events.tracer_for_store`) under its owner
        id, so the events land in the same ``events.jsonl``.
    profile : bool
        Record per-cell peak-RSS provenance (``peak_rss_mb``).
    """

    def __init__(
        self,
        spec: SweepSpec,
        store: ResultStore | None = None,
        *,
        shards: int | None = None,
        max_workers: int | None = None,
        workers: int | None = None,
        tracer: Tracer | None = None,
        profile: bool = False,
    ) -> None:
        self.spec = spec
        self.store = store if store is not None else ResultStore()
        self.shards = shards
        self.max_workers = max_workers
        self.workers = workers
        self.tracer = tracer
        self.profile = profile
        if workers is not None and workers > 1 and self.store.root is None:
            raise ValueError(
                "Campaign(workers=N) needs a disk-backed store (the claim "
                "ledger lives beside the shards); pass ResultStore(path)"
            )
        self._cells: list[RunKey] | None = None

    @property
    def cells(self) -> list[RunKey]:
        """The spec's expanded cell list (computed once)."""
        if self._cells is None:
            self._cells = self.spec.expand()
        return self._cells

    def frame(self) -> Frame:
        """This sweep's stored results, addressed by *content*.

        Looks up each of the spec's cells by hash — not by the
        ``sweep`` provenance label — so a cell that was computed by a
        *different* campaign (content dedup deliberately excludes the
        sweep name from the hash) still appears here.  Rows come back
        in expansion order with this spec's name in the ``sweep``
        column; cells not yet stored are simply absent.

        Returns
        -------
        Frame
            One row per stored cell of this sweep.
        """
        rows = []
        for key in self.cells:
            record = self.store.get(key)
            if record is None:
                continue
            row = record_row(record)
            row["sweep"] = self.spec.name
            rows.append(row)
        return Frame(rows)

    def status(self) -> CampaignStatus:
        """How much of the sweep the store already holds.

        Returns
        -------
        CampaignStatus
            Total vs stored cell counts.
        """
        done = sum(1 for key in self.cells if self.store.has(key))
        return CampaignStatus(total=len(self.cells), done=done)

    def run(
        self,
        *,
        max_cells: int | None = None,
        on_cell: Callable[[RunKey, dict[str, Any], bool], None] | None = None,
    ) -> CampaignReport:
        """Run every pending cell (or up to *max_cells* of them).

        Parameters
        ----------
        max_cells : int, optional
            Stop after computing this many cells — the hook the
            interrupt/resume tests and the CLI's incremental mode use;
            cached cells don't count against it.
        on_cell : callable, optional
            ``on_cell(key, record, cached)`` after every cell (cached
            or computed) — progress reporting.

        Returns
        -------
        CampaignReport
            Hashes ran / cached / left pending.
        """
        if self.workers is not None and self.workers > 1:
            if max_cells is not None or on_cell is not None:
                raise ValueError(
                    "max_cells/on_cell are per-process hooks; they are not "
                    "supported with Campaign(workers=N) — use "
                    "repro.store.dispatch.drain directly for finer control"
                )
            return self._run_pool()
        report = CampaignReport(sweep=self.spec.name)
        graph_cache: dict[tuple, Any] = {}
        tr = self.tracer if self.tracer is not None else NULL_TRACER
        with tr.span(
            "campaign", kind="campaign", sweep=self.spec.name, cells=len(self.cells)
        ):
            for key in self.cells:
                record = self.store.get(key)
                if record is not None:
                    report.cached.append(key.hash)
                    if on_cell is not None:
                        on_cell(key, record, True)
                    continue
                if max_cells is not None and len(report.ran) >= max_cells:
                    report.pending.append(key.hash)
                    continue
                record = self._run_cell(key, graph_cache)
                report.ran.append(key.hash)
                if on_cell is not None:
                    on_cell(key, record, False)
        return report

    def _run_pool(self) -> CampaignReport:
        """Drain the sweep with a local pool of dispatch workers.

        Each worker process opens its own store handle and claims
        cells through the shared ledger; this process only aggregates
        their reports.  See ``docs/sweeps.md`` ("Multi-worker
        dispatch").
        """
        from ..sim.montecarlo import _pool_context
        from .dispatch import pool_worker, worker_payloads

        assert self.workers is not None and self.store.root is not None
        self.store.refresh()
        report = CampaignReport(sweep=self.spec.name)
        report.cached = [k.hash for k in self.cells if self.store.has(k)]
        payloads = worker_payloads(
            self.spec,
            self.store.root,
            workers=self.workers,
            shards=self.shards,
            max_workers=self.max_workers,
            trace=self.tracer is not None and self.tracer.enabled,
            profile=self.profile,
        )
        with _pool_context().Pool(processes=self.workers) as pool:
            worker_reports = pool.map(pool_worker, payloads)
        ran = {h for wr in worker_reports for h in wr.ran}
        self.store.refresh()
        for key in self.cells:
            if key.hash in report.cached:
                continue
            if key.hash in ran:
                report.ran.append(key.hash)
            elif self.store.has(key):
                # committed by a worker whose report line we cannot see
                # (reclaimed lease overlap) — still ran this call
                report.ran.append(key.hash)
            else:
                report.pending.append(key.hash)
        return report

    def _run_cell(self, key: RunKey, graph_cache: dict) -> dict[str, Any]:
        """Compute one cell and store it with provenance."""
        return run_cell(
            key,
            self.store,
            sweep=self.spec.name,
            shards=self.shards,
            max_workers=self.max_workers,
            backend=self.spec.backend,
            graph_cache=graph_cache,
            tracer=self.tracer,
            profile=self.profile,
        )
