"""The store's I/O seam: the :class:`StorageBackend` protocol.

Everything the sweep store persists — shards, the claim ledger, the
telemetry log, ``meta.json`` — is a named **blob** of JSONL lines
addressed by a relative key (``"shards/3f.jsonl"``,
``"claims.jsonl"``, …).  This module names the four operations the
whole store layer reduces to, so that the lease/claim dispatcher
(:mod:`repro.store.dispatch`) works identically over a shared
filesystem and over an object store:

* ``read_blob(key)`` — whole-blob read, returning the bytes *and* a
  strong ETag (an opaque version token);
* ``append_line(key, line)`` — merge-safe whole-line append: any
  number of concurrent writers interleave complete records, never
  bytes;
* ``list_prefix(prefix)`` — enumerate existing keys (the raw material
  of ``fsck``/``compact``);
* ``compare_and_swap(key, data, etag)`` — replace the blob only if it
  still carries *etag* (``None`` = create only if absent).  The loser
  of a race gets ``None`` back, re-reads, and retries — the object
  store analogue of holding a ``flock`` across read-modify-append.

:class:`LocalBackend` is the flock path of PRs 4–5 refactored behind
the seam — byte-for-byte the same on-disk layout, same advisory
``flock`` discipline (:mod:`repro.store.locking`).
:class:`CASBackend` implements ``append_line`` as a conditional-put
retry loop over two primitives (``_get``/``_put``), and
:class:`InMemoryCASBackend` / :class:`HTTPCASBackend` /
:class:`S3CASBackend` supply those primitives for tests, for the
``sweep serve`` blob API, and for S3-compatible object stores.  See
``docs/service.md``.
"""

from __future__ import annotations

import hashlib
import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path
from typing import Any, Protocol, runtime_checkable

from .locking import append_line as _locked_append
from .locking import locked

__all__ = [
    "BackendError",
    "StorageBackend",
    "LocalBackend",
    "CASBackend",
    "InMemoryCASBackend",
    "HTTPCASBackend",
    "S3CASBackend",
    "resolve_backend",
]

#: retry ceiling for optimistic CAS loops — contention between N
#: workers resolves in O(N) rounds; hitting this means the remote end
#: is returning inconsistent ETags, not that the store is busy
_CAS_MAX_RETRIES = 10_000


class BackendError(RuntimeError):
    """A backend operation failed for good (network, auth, protocol).

    Raised instead of the transport's native error so callers (the
    CLI's integrity handling, the dispatch loop) need one except
    clause per seam, not one per backend.
    """


@runtime_checkable
class StorageBackend(Protocol):
    """The four operations every store backend provides.

    Keys are relative POSIX-style paths (``"shards/3f.jsonl"``).
    ETags are opaque strings: equal tag ⇔ identical blob version.
    """

    def read_blob(self, key: str) -> tuple[bytes, str] | None:
        """The blob's bytes and current ETag, or ``None`` if absent."""
        ...  # pragma: no cover - protocol

    def append_line(self, key: str, line: str) -> None:
        """Append ``line + "\\n"`` merge-safely (whole-line granularity)."""
        ...  # pragma: no cover - protocol

    def list_prefix(self, prefix: str) -> list[str]:
        """Sorted existing keys starting with *prefix*."""
        ...  # pragma: no cover - protocol

    def compare_and_swap(
        self, key: str, data: bytes, etag: str | None
    ) -> str | None:
        """Replace the blob iff its version still matches *etag*.

        Parameters
        ----------
        key : str
            Blob to replace.
        data : bytes
            The full new contents.
        etag : str or None
            The version the caller read (``None`` = create only if
            the blob does not exist yet).

        Returns
        -------
        str or None
            The new ETag on success; ``None`` when the precondition
            failed — the caller lost a race and must re-read.
        """
        ...  # pragma: no cover - protocol


def _content_etag(data: bytes) -> str:
    """Content-derived strong ETag (SHA-256) for filesystem blobs."""
    return hashlib.sha256(data).hexdigest()


class LocalBackend:
    """The shared-filesystem backend: one directory, advisory ``flock``.

    Exactly the on-disk layout :class:`~repro.store.store.ResultStore`
    has always written — ``root/meta.json``, ``root/shards/*.jsonl``,
    ``root/claims.jsonl`` — with appends through the merge-safe locked
    writer and compare-and-swap holding the *same* per-file lock the
    appenders take, so a CAS and a concurrent append serialize instead
    of corrupting.  ETags are content hashes: the filesystem keeps no
    version counter, and content equality is exactly the invariant the
    CAS loops need.  A zero-byte file reads as absent (``locked``
    creates empty files as a side effect of lock acquisition).

    Parameters
    ----------
    root : str or Path
        The store directory (created on first write).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        path = (self.root / key).resolve()
        if self.root.resolve() not in path.parents and path != self.root.resolve():
            raise BackendError(f"key {key!r} escapes the store root")
        return self.root / key

    def read_blob(self, key: str) -> tuple[bytes, str] | None:
        """The file's bytes + content ETag (``None`` if absent/empty)."""
        path = self._path(key)
        try:
            data = path.read_bytes()
        except (FileNotFoundError, IsADirectoryError):
            return None
        if not data:
            return None
        return data, _content_etag(data)

    def append_line(self, key: str, line: str) -> None:
        """One whole-line append under the file's exclusive ``flock``."""
        _locked_append(self._path(key), line)

    def list_prefix(self, prefix: str) -> list[str]:
        """Sorted relative keys of non-empty files under *prefix*."""
        keys = []
        if not self.root.is_dir():
            return keys
        for path in self.root.rglob("*"):
            if not path.is_file():
                continue
            key = path.relative_to(self.root).as_posix()
            if key.startswith(prefix) and path.stat().st_size > 0:
                keys.append(key)
        return sorted(keys)

    def compare_and_swap(
        self, key: str, data: bytes, etag: str | None
    ) -> str | None:
        """Rewrite the file under its writer lock iff the ETag matches."""
        path = self._path(key)
        with locked(path) as handle:
            handle.seek(0)
            current = handle.read().encode("utf-8")
            current_etag = _content_etag(current) if current else None
            if current_etag != etag:
                return None
            handle.truncate(0)
            # "a+" mode: the write lands at EOF, which truncate just
            # moved to 0 — same inode concurrent appenders block on
            handle.write(data.decode("utf-8"))
            return _content_etag(data)


class CASBackend:
    """Object-store backend over a conditional-put/ETag API.

    Subclasses provide three primitives —

    * ``_get(key) -> (bytes, etag) | None``
    * ``_put(key, data, *, if_match=None, if_none_match=False)
      -> etag | None`` (``None`` = precondition failed)
    * ``_list(prefix) -> list[str]``

    — and inherit the seam: ``compare_and_swap`` is one conditional
    put, and ``append_line`` is the optimistic read-extend-put loop
    (lose the race → re-read → retry), which is how an append-only
    JSONL ledger lives on a store with no append primitive.  No shared
    filesystem, no locks: the ETag precondition is the only
    synchronization.
    """

    def _get(self, key: str) -> tuple[bytes, str] | None:
        raise NotImplementedError

    def _put(
        self, key: str, data: bytes, *, if_match: str | None = None,
        if_none_match: bool = False,
    ) -> str | None:
        raise NotImplementedError

    def _list(self, prefix: str) -> list[str]:
        raise NotImplementedError

    # -- the StorageBackend surface ------------------------------------
    def read_blob(self, key: str) -> tuple[bytes, str] | None:
        """One conditional-get: bytes + ETag, or ``None`` if absent.

        A zero-byte blob reads as absent, matching
        :class:`LocalBackend` (compaction may leave a shard empty).
        """
        current = self._get(key)
        if current is None or not current[0]:
            return None
        return current

    def list_prefix(self, prefix: str) -> list[str]:
        """Sorted existing keys under *prefix*."""
        return sorted(self._list(prefix))

    def compare_and_swap(
        self, key: str, data: bytes, etag: str | None
    ) -> str | None:
        """One conditional put (``If-Match`` / ``If-None-Match: *``)."""
        if etag is None:
            result = self._put(key, data, if_none_match=True)
            if result is not None:
                return result
            current = self._get(key)
            if current is not None and not current[0]:
                # zero-byte blob ≡ absent (see read_blob): swap against
                # its real version instead of the failed create
                return self._put(key, data, if_match=current[1])
            return None
        return self._put(key, data, if_match=etag)

    def append_line(self, key: str, line: str) -> None:
        """Optimistic whole-line append: read, extend, conditional-put.

        The loser of a concurrent append gets a precondition failure,
        re-reads the blob *including the winner's line*, and retries —
        so lines are never lost and never doubled, the same whole-record
        guarantee the flock appender gives locally.
        """
        payload = (line + "\n").encode("utf-8")
        for _ in range(_CAS_MAX_RETRIES):
            current = self._get(key)
            if current is None:
                if self.compare_and_swap(key, payload, None) is not None:
                    return
            else:
                data, etag = current
                if self.compare_and_swap(key, data + payload, etag) is not None:
                    return
        raise BackendError(
            f"append_line({key!r}) lost {_CAS_MAX_RETRIES} CAS races; the "
            "backend is returning inconsistent ETags"
        )


class InMemoryCASBackend(CASBackend):
    """In-process conditional-put fake for tests and ``sweep serve``.

    A dict of ``key -> (bytes, etag)`` behind one mutex, with a
    monotonic version counter for ETags.  Thread-safe: N drain threads
    sharing one instance exercise exactly the lost-race/retry paths an
    object store would, with zero I/O — the CI-friendly stand-in the
    conformance suite (``tests/store/test_backend.py``) runs against.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._blobs: dict[str, tuple[bytes, str]] = {}
        self._version = 0

    def _next_etag(self) -> str:
        self._version += 1
        return f"v{self._version}"

    def _get(self, key: str) -> tuple[bytes, str] | None:
        with self._lock:
            return self._blobs.get(key)

    def _put(
        self, key: str, data: bytes, *, if_match: str | None = None,
        if_none_match: bool = False,
    ) -> str | None:
        with self._lock:
            current = self._blobs.get(key)
            if if_none_match and current is not None:
                return None
            if if_match is not None and (
                current is None or current[1] != if_match
            ):
                return None
            etag = self._next_etag()
            self._blobs[key] = (bytes(data), etag)
            return etag

    def _list(self, prefix: str) -> list[str]:
        with self._lock:
            return [
                k
                for k, (data, _) in self._blobs.items()
                if k.startswith(prefix) and data
            ]


class HTTPCASBackend(CASBackend):
    """Client for the ``sweep serve`` blob API — CAS over plain HTTP.

    Speaks the conditional-request subset any object-store gateway
    understands: ``GET /blob/<key>`` (200 + ``ETag`` / 404),
    ``PUT /blob/<key>`` with ``If-Match: <etag>`` or
    ``If-None-Match: *`` (200 + new ``ETag`` / 412 Precondition
    Failed), and ``GET /blobs?prefix=`` returning a JSON key list.
    This is how ``sweep work --store http://host:port`` drains a
    campaign with **no shared filesystem**: every ledger claim and
    shard commit is a conditional request against the server's
    backend.

    Parameters
    ----------
    url : str
        Base URL of a running ``sweep serve`` (no trailing slash
        needed).
    timeout : float
        Per-request timeout in seconds.
    """

    def __init__(self, url: str, *, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(
        self, method: str, path: str, *, data: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes, dict[str, str]]:
        req = urllib.request.Request(
            f"{self.url}{path}", data=data, method=method,
            headers=headers or {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, resp.read(), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            body = exc.read()
            if exc.code in (404, 412):
                return exc.code, body, dict(exc.headers)
            raise BackendError(
                f"{method} {path} failed: HTTP {exc.code}"
            ) from exc
        except urllib.error.URLError as exc:
            raise BackendError(
                f"cannot reach sweep service at {self.url}: {exc.reason}"
            ) from exc

    @staticmethod
    def _quote(key: str) -> str:
        return urllib.parse.quote(key, safe="/")

    def _get(self, key: str) -> tuple[bytes, str] | None:
        status, body, headers = self._request("GET", f"/blob/{self._quote(key)}")
        if status == 404:
            return None
        etag = headers.get("ETag", "").strip('"')
        if not etag:
            raise BackendError(f"GET /blob/{key} returned no ETag")
        return body, etag

    def _put(
        self, key: str, data: bytes, *, if_match: str | None = None,
        if_none_match: bool = False,
    ) -> str | None:
        headers = {"Content-Type": "application/octet-stream"}
        if if_none_match:
            headers["If-None-Match"] = "*"
        if if_match is not None:
            headers["If-Match"] = f'"{if_match}"'
        status, _, resp_headers = self._request(
            "PUT", f"/blob/{self._quote(key)}", data=data, headers=headers
        )
        if status == 412:
            return None
        etag = resp_headers.get("ETag", "").strip('"')
        if not etag:
            raise BackendError(f"PUT /blob/{key} returned no ETag")
        return etag

    def _list(self, prefix: str) -> list[str]:
        query = urllib.parse.urlencode({"prefix": prefix})
        status, body, _ = self._request("GET", f"/blobs?{query}")
        if status != 200:
            raise BackendError(f"GET /blobs returned HTTP {status}")
        keys = json.loads(body.decode("utf-8"))
        if not isinstance(keys, list):
            raise BackendError("GET /blobs did not return a JSON list")
        return [str(k) for k in keys]


class S3CASBackend(CASBackend):
    """S3-compatible adapter: conditional puts via ``IfMatch``/``IfNoneMatch``.

    Optional — requires ``boto3``, which is **not** a dependency of
    this repo; constructing the adapter without it raises a one-line
    :class:`BackendError` instead of an ImportError at import time.
    Uses S3's native conditional-write preconditions (supported by AWS
    S3 since 2024 and by MinIO/R2), so the claim-ledger CAS semantics
    are identical to :class:`InMemoryCASBackend`.

    Parameters
    ----------
    bucket : str
        Target bucket.
    prefix : str
        Key prefix acting as the store root (default ``""``).
    client : object, optional
        A pre-built ``boto3`` S3 client (tests inject fakes here);
        default constructs one via ``boto3.client("s3")``.
    """

    def __init__(
        self, bucket: str, prefix: str = "", *, client: Any | None = None
    ) -> None:
        if client is None:
            try:
                import boto3  # type: ignore[import-not-found]
            except ImportError as exc:  # pragma: no cover - env-dependent
                raise BackendError(
                    "S3CASBackend needs boto3, which is not installed; "
                    "use LocalBackend or a sweep-serve HTTPCASBackend instead"
                ) from exc
            client = boto3.client("s3")
        self.bucket = bucket
        self.prefix = prefix.strip("/")
        self.client = client

    def _key(self, key: str) -> str:
        return f"{self.prefix}/{key}" if self.prefix else key

    def _get(self, key: str) -> tuple[bytes, str] | None:
        try:
            resp = self.client.get_object(Bucket=self.bucket, Key=self._key(key))
        except Exception as exc:  # noqa: BLE001 - boto error classes vary
            if type(exc).__name__ in ("NoSuchKey", "ClientError") and (
                "NoSuchKey" in str(exc) or "404" in str(exc)
            ):
                return None
            raise BackendError(f"S3 GET {key} failed: {exc}") from exc
        return resp["Body"].read(), resp["ETag"].strip('"')

    def _put(
        self, key: str, data: bytes, *, if_match: str | None = None,
        if_none_match: bool = False,
    ) -> str | None:
        kwargs: dict[str, Any] = {
            "Bucket": self.bucket, "Key": self._key(key), "Body": data,
        }
        if if_match is not None:
            kwargs["IfMatch"] = if_match
        if if_none_match:
            kwargs["IfNoneMatch"] = "*"
        try:
            resp = self.client.put_object(**kwargs)
        except Exception as exc:  # noqa: BLE001 - boto error classes vary
            if "PreconditionFailed" in str(exc) or "412" in str(exc):
                return None
            raise BackendError(f"S3 PUT {key} failed: {exc}") from exc
        return resp["ETag"].strip('"')

    def _list(self, prefix: str) -> list[str]:
        full = self._key(prefix)
        try:
            paginator = self.client.get_paginator("list_objects_v2")
            keys: list[str] = []
            for page in paginator.paginate(Bucket=self.bucket, Prefix=full):
                for item in page.get("Contents", []):
                    key = item["Key"]
                    if self.prefix:
                        key = key[len(self.prefix) + 1:]
                    keys.append(key)
            return keys
        except Exception as exc:  # noqa: BLE001 - boto error classes vary
            raise BackendError(f"S3 LIST {prefix} failed: {exc}") from exc


def resolve_backend(
    store: str | Path | StorageBackend | None,
) -> StorageBackend | None:
    """Normalise a store argument into a backend.

    ``None`` stays ``None`` (memory-only store); a backend passes
    through; a path becomes a :class:`LocalBackend`.

    Parameters
    ----------
    store : str, Path, StorageBackend, or None
        Whatever the caller holds.

    Returns
    -------
    StorageBackend or None
        The backend to persist through.
    """
    if store is None:
        return None
    if isinstance(store, (str, Path)):
        return LocalBackend(store)
    return store
