"""Advisory file locking for multi-process store writers.

Everything the dispatch layer guarantees reduces to two primitives on
a shared filesystem:

* :func:`locked` — hold an exclusive ``flock`` on a file for a
  read-modify-append critical section (the claim ledger's atomic
  "read the active leases, then claim" step);
* :func:`append_line` — append one self-contained JSONL line under an
  exclusive lock, so concurrent writers interleave *whole records*
  and never interleave bytes (the merge-safe shard writer).

``flock`` is advisory: correctness requires every writer to go through
these helpers, which :class:`~repro.store.store.ResultStore` and
:class:`~repro.store.dispatch.ClaimLedger` do.  On platforms without
``fcntl`` (Windows) the helpers degrade to unlocked appends — the
single-writer story of PR 4 — which is still torn-write tolerant.
"""

from __future__ import annotations

import contextlib
from pathlib import Path
from collections.abc import Iterator
from typing import IO

try:  # POSIX; absent on Windows
    import fcntl
except ImportError:  # pragma: no cover - exercised only off-POSIX
    fcntl = None  # type: ignore[assignment]

__all__ = ["locked", "append_line"]


@contextlib.contextmanager
def _flocked(handle: IO[str]) -> Iterator[IO[str]]:
    """Hold ``LOCK_EX`` on *handle* for the block; the release (after a
    flush, so other lockers read complete records) is in a ``finally``
    — no code path exits the block still holding the lock."""
    if fcntl is not None:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
    try:
        yield handle
    finally:
        handle.flush()
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


@contextlib.contextmanager
def locked(path: str | Path) -> Iterator[IO[str]]:
    """Exclusive advisory lock on *path* for a read+append critical section.

    The file is created (empty) if missing and opened ``a+`` — reads
    see the full current contents after a ``seek(0)``, writes always
    land at the end — and the ``flock`` is held until the ``with``
    block exits, so a read-decide-append sequence inside the block is
    atomic against every other :func:`locked`/:func:`append_line` user
    of the same path.

    Parameters
    ----------
    path : str or Path
        File to lock (parent directories are created).

    Yields
    ------
    IO[str]
        The locked ``a+`` handle.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a+", encoding="utf-8") as handle:
        with _flocked(handle):
            yield handle


def append_line(path: str | Path, line: str) -> None:
    """Append one line to *path* under an exclusive lock.

    One call writes one complete ``line + "\\n"`` while holding the
    lock, so concurrent appenders serialize at record granularity: a
    reader may see a *torn tail* (a crash mid-write) but never two
    writers' bytes interleaved.

    Parameters
    ----------
    path : str or Path
        File to append to (created, with parents, if missing).
    line : str
        The record text, without a trailing newline.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        with _flocked(handle):
            handle.write(line + "\n")
