"""Declarative sweep campaigns over a content-addressed result store.

The layer above :mod:`repro.sim`: declare a sweep once
(:class:`SweepSpec`), run it through a :class:`Campaign` against a
:class:`ResultStore`, and query the accumulated results as a
:class:`Frame`.  Identical simulation work is computed exactly once —
re-running a completed sweep is pure cache hits, and an interrupted
campaign resumes seed-for-seed.  Any number of worker processes can
drain one disk-backed store concurrently through the lease/claim
dispatcher (:mod:`repro.store.dispatch`; ``Campaign(workers=N)`` or
the ``sweep work`` CLI), with ``fsck``/``compact`` for store hygiene.
See ``docs/sweeps.md``.

>>> from repro.store import Campaign, ResultStore, SweepSpec
>>> spec = SweepSpec(
...     name="demo", process="cobra", graph="grid",
...     graph_grid={"n": [8, 16], "d": [2]}, trials=4,
... )
>>> store = ResultStore("results")          # doctest: +SKIP
>>> Campaign(spec, store).run()             # doctest: +SKIP
>>> store.frame(process="cobra").column("mean")  # doctest: +SKIP
"""

from .backend import (
    BackendError,
    CASBackend,
    HTTPCASBackend,
    InMemoryCASBackend,
    LocalBackend,
    S3CASBackend,
    StorageBackend,
    resolve_backend,
)
from .campaign import Campaign, CampaignReport, CampaignStatus, run_cell
from .dispatch import (
    ClaimLedger,
    CompactReport,
    FsckReport,
    Lease,
    WorkerReport,
    compact,
    declare_sweep,
    declared_sweeps,
    drain,
    fsck,
)
from .spec import (
    STORE_SCHEMA_VERSION,
    RunKey,
    SeedPolicy,
    SweepSpec,
    canonical_json,
)
from .store import FRAME_SCHEMA, Frame, ResultStore, parse_record, record_row
from .sweeps import build_sweep, register_sweep, sweep_names

__all__ = [
    "STORE_SCHEMA_VERSION",
    "SweepSpec",
    "SeedPolicy",
    "RunKey",
    "canonical_json",
    "ResultStore",
    "Frame",
    "FRAME_SCHEMA",
    "record_row",
    "parse_record",
    "StorageBackend",
    "BackendError",
    "LocalBackend",
    "CASBackend",
    "InMemoryCASBackend",
    "HTTPCASBackend",
    "S3CASBackend",
    "resolve_backend",
    "declare_sweep",
    "declared_sweeps",
    "Campaign",
    "CampaignReport",
    "CampaignStatus",
    "run_cell",
    "ClaimLedger",
    "Lease",
    "WorkerReport",
    "drain",
    "FsckReport",
    "fsck",
    "CompactReport",
    "compact",
    "register_sweep",
    "build_sweep",
    "sweep_names",
]
