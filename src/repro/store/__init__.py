"""Declarative sweep campaigns over a content-addressed result store.

The layer above :mod:`repro.sim`: declare a sweep once
(:class:`SweepSpec`), run it through a :class:`Campaign` against a
:class:`ResultStore`, and query the accumulated results as a
:class:`Frame`.  Identical simulation work is computed exactly once —
re-running a completed sweep is pure cache hits, and an interrupted
campaign resumes seed-for-seed.  See ``docs/sweeps.md``.

>>> from repro.store import Campaign, ResultStore, SweepSpec
>>> spec = SweepSpec(
...     name="demo", process="cobra", graph="grid",
...     graph_grid={"n": [8, 16], "d": [2]}, trials=4,
... )
>>> store = ResultStore("results")          # doctest: +SKIP
>>> Campaign(spec, store).run()             # doctest: +SKIP
>>> store.frame(process="cobra").column("mean")  # doctest: +SKIP
"""

from .campaign import Campaign, CampaignReport, CampaignStatus
from .spec import (
    STORE_SCHEMA_VERSION,
    RunKey,
    SeedPolicy,
    SweepSpec,
    canonical_json,
)
from .store import Frame, ResultStore, record_row
from .sweeps import build_sweep, register_sweep, sweep_names

__all__ = [
    "STORE_SCHEMA_VERSION",
    "SweepSpec",
    "SeedPolicy",
    "RunKey",
    "canonical_json",
    "ResultStore",
    "Frame",
    "record_row",
    "Campaign",
    "CampaignReport",
    "CampaignStatus",
    "register_sweep",
    "build_sweep",
    "sweep_names",
]
