"""Multi-worker sweep dispatch: lease/claim over a shared result store.

PR 4 made a sweep cell's content hash its identity; this module makes
that hash a **work-item id**.  Any number of worker processes point at
one disk-backed :class:`~repro.store.store.ResultStore` and call
:func:`drain`: each worker repeatedly *claims* one pending cell in an
append-only JSONL ledger (``claims.jsonl``, beside the shards),
executes it through the exact same
:func:`~repro.store.campaign.run_cell` path a single-process
:class:`~repro.store.campaign.Campaign` uses, commits the record with
the store's merge-safe locked append, and *releases* the claim.

The protocol, in full:

* a **claim** is one ledger line ``{"op": "claim", "hash", "owner",
  "expires_unix", "ts"}``; it is acquired by an atomic
  read-replay-append on the ledger blob — a compare-and-swap through
  the store's :class:`~repro.store.backend.StorageBackend` seam
  (backed by an exclusive ``flock`` on a shared filesystem, by a
  conditional put with an ETag precondition on an object store) —
  so two workers can never both win one cell: the loser's swap fails,
  and it re-reads the ledger *including the winner's claim* before
  retrying;
* a **release** (``op: "done"`` after a commit, ``op: "abandon"`` on
  failure) clears the lease; replay order decides — the latest record
  per hash wins;
* every lease carries a **TTL**.  An expired lease is simply
  reclaimable: a worker that crashed mid-cell costs nothing but time.
  If the original worker *was* merely slow and finishes anyway, both
  workers commit **identical** records — cell seeds derive from
  ``[root, H(cell)]``, not from the worker — and last-write-wins
  resolves the benign duplicate (``sweep compact`` trims it later).

Because execution, seeding, and the stored schema are all shared with
``Campaign``, an N-worker drain is **value-for-value identical** to an
uninterrupted single-worker ``Campaign.run()`` — pinned by
``tests/store/test_dispatch.py`` and the CI dispatch smoke.

Store hygiene lives here too: :func:`fsck` re-hashes every stored key,
flags torn lines, misplaced records, and stale leases; :func:`compact`
rewrites shards keeping only the live last-write-wins record per cell
and prunes the ledger.  CLI: ``sweep work`` / ``sweep fsck`` /
``sweep compact``.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any

from ..obs.trace import Tracer
from .backend import StorageBackend, resolve_backend
from .campaign import run_cell
from .spec import RunKey, SweepSpec, canonical_json
from .store import ResultStore, parse_record

__all__ = [
    "DEFAULT_TTL",
    "Lease",
    "ClaimLedger",
    "WorkerReport",
    "drain",
    "FsckReport",
    "fsck",
    "CompactReport",
    "compact",
    "declare_sweep",
    "declared_sweeps",
]

#: ledger file name, beside ``meta.json`` and ``shards/``
CLAIMS_FILE = "claims.jsonl"

#: declared-sweeps registry file name — what ``sweep work --loop``
#: daemons poll for newly announced campaigns
SWEEPS_FILE = "sweeps.jsonl"

#: default lease TTL (seconds) — generous against slow cells; a crashed
#: worker's cells become reclaimable after this long
DEFAULT_TTL = 900.0

_CLAIM_OPS = ("claim", "done", "abandon")


def default_owner() -> str:
    """A worker id unique across hosts and processes.

    Returns
    -------
    str
        ``host-pid-xxxxxx`` — readable in ledgers and fsck reports.
    """
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@dataclass(frozen=True)
class Lease:
    """One cell's active claim, as replayed from the ledger.

    Attributes
    ----------
    hash : str
        The claimed cell's content hash (the work-item id).
    owner : str
        Worker id that holds the lease.
    expires_unix : float
        Absolute expiry time; past it the lease is reclaimable.
    lease_id : str
        Short random token stamped by the claiming worker (empty for
        ledgers written before lease ids existed) — events in
        ``events.jsonl`` carry the same token, so telemetry attributes
        to the *claim*, not just the owner (one owner can claim a cell
        twice across TTL expiries).
    """

    hash: str
    owner: str
    expires_unix: float
    lease_id: str = ""

    def expired(self, now: float) -> bool:
        """Whether the lease has outlived its TTL at time *now*."""
        return now >= self.expires_unix


class ClaimLedger:
    """The append-only claim ledger of one store.

    All mutation is line appends; all decisions replay the whole blob.
    The ledger is small (two lines per cell per drain) and claims are
    rare next to cell execution, so replay cost is irrelevant — what
    matters is that acquisition is an atomic read-replay-append: the
    whole candidate evaluation happens against one blob version, and
    the claim lands only if that version is still current.  On a
    shared filesystem the backend's compare-and-swap holds the same
    exclusive ``flock`` every appender takes; on an object store it is
    a conditional put — either way "check it is free, then claim it"
    is atomic against every other worker.

    Parameters
    ----------
    store : str, Path, or StorageBackend
        The store directory (the ledger is ``root/claims.jsonl``) or
        the backend it persists through.
    """

    def __init__(self, store: str | Path | StorageBackend) -> None:
        backend = resolve_backend(store)
        if backend is None:
            raise ValueError("ClaimLedger needs a store path or backend")
        self.backend = backend
        self.root = getattr(backend, "root", None)
        self.path = self.root / CLAIMS_FILE if self.root is not None else None

    # -- replay ---------------------------------------------------------
    @staticmethod
    def _parse(text: str) -> list[dict[str, Any]]:
        records = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail — same tolerance as shards
            if (
                isinstance(record, dict)
                and record.get("op") in _CLAIM_OPS
                and isinstance(record.get("hash"), str)
                and isinstance(record.get("owner"), str)
            ):
                records.append(record)
        return records

    def records(self) -> list[dict[str, Any]]:
        """All valid ledger records, in append order (torn lines skipped).

        Returns
        -------
        list of dict
            ``{"op", "hash", "owner", "expires_unix", "ts"}`` records.
        """
        blob = self.backend.read_blob(CLAIMS_FILE)
        if blob is None:
            return []
        return self._parse(blob[0].decode("utf-8"))

    @staticmethod
    def _replay(records: Iterable[Mapping[str, Any]]) -> dict[str, Lease]:
        """Final lease state per hash: claims set, releases clear."""
        state: dict[str, Lease] = {}
        for record in records:
            h = record["hash"]
            if record["op"] == "claim":
                state[h] = Lease(
                    hash=h,
                    owner=record["owner"],
                    expires_unix=float(record.get("expires_unix", 0.0)),
                    lease_id=str(record.get("lease", "")),
                )
            else:  # done / abandon
                state.pop(h, None)
        return state

    def leases(self) -> dict[str, Lease]:
        """Unreleased leases, expired ones included.

        Returns
        -------
        dict
            hash → :class:`Lease` for every claim without a later
            release — **including** expired ones (fsck wants those;
            claim acquisition filters them itself via
            :meth:`Lease.expired`).
        """
        return self._replay(self.records())

    def active(self, now: float | None = None) -> dict[str, Lease]:
        """Live (unexpired, unreleased) leases.

        Parameters
        ----------
        now : float, optional
            Clock override (tests); defaults to ``time.time()``.

        Returns
        -------
        dict
            hash → :class:`Lease` for every lease still excluding
            other workers.
        """
        now = time.time() if now is None else now
        return {
            h: lease
            for h, lease in self.leases().items()
            if not lease.expired(now)
        }

    # -- mutation -------------------------------------------------------
    def try_claim(
        self,
        hashes: Sequence[str],
        *,
        owner: str,
        ttl: float = DEFAULT_TTL,
        limit: int | None = 1,
        now: float | None = None,
        lease: str | None = None,
    ) -> list[str]:
        """Atomically claim up to *limit* of *hashes* for *owner*.

        An optimistic read-replay-swap loop: replay the current ledger
        blob, pick the free hashes, and compare-and-swap the extended
        blob back under the ETag that was read.  A hash is won only if
        no live lease covers it *in the version the swap committed
        against* — a contender that claimed concurrently moves the
        ETag, the swap fails, and this worker re-reads (now seeing the
        rival's claim) and retries.  No line is ever double-appended:
        a claim lands exactly once, in the one swap that succeeds.

        Parameters
        ----------
        hashes : sequence of str
            Candidate cell hashes, in the caller's preference order.
        owner : str
            The claiming worker's id.
        ttl : float
            Lease lifetime in seconds.
        limit : int or None
            Claim at most this many (default 1 — one cell at a time
            maximises overlap between workers); ``None`` = all free.
        now : float, optional
            Clock override (tests).
        lease : str, optional
            Lease-id token stamped on the claim line(s) — the
            attribution key telemetry events carry.  Additive field:
            old ledgers replay fine without it.

        Returns
        -------
        list of str
            The hashes won, in *hashes* order (may be empty).
        """
        t = time.time() if now is None else now
        while True:
            blob = self.backend.read_blob(CLAIMS_FILE)
            data, etag = blob if blob is not None else (b"", None)
            state = self._replay(self._parse(data.decode("utf-8")))
            won: list[str] = []
            lines: list[str] = []
            for h in hashes:
                if limit is not None and len(won) >= limit:
                    break
                existing = state.get(h)
                if existing is not None and not existing.expired(t):
                    continue
                won.append(h)
                record = {
                    "op": "claim",
                    "hash": h,
                    "owner": owner,
                    "expires_unix": round(t + ttl, 3),
                    "ts": round(t, 3),
                }
                if lease is not None:
                    record["lease"] = lease
                lines.append(json.dumps(record, sort_keys=True) + "\n")
            if not won:
                return []
            new_data = data + "".join(lines).encode("utf-8")
            if self.backend.compare_and_swap(CLAIMS_FILE, new_data, etag) is not None:
                return won
            # lost the CAS race: another worker's claim moved the ETag
            # between our read and our swap — re-read and retry

    def release(self, h: str, *, owner: str, op: str = "done") -> None:
        """Append a release for *h* (``done`` on success, ``abandon`` else).

        Parameters
        ----------
        h : str
            The cell hash being released.
        owner : str
            The releasing worker's id (provenance; replay does not
            check it — the claim lock already guaranteed exclusivity).
        op : str
            ``"done"`` or ``"abandon"``.
        """
        if op not in ("done", "abandon"):
            raise ValueError(f"release op must be done/abandon, got {op!r}")
        self.backend.append_line(
            CLAIMS_FILE,
            json.dumps(
                {
                    "op": op,
                    "hash": h,
                    "owner": owner,
                    "ts": round(time.time(), 3),
                },
                sort_keys=True,
            ),
        )


@dataclass
class WorkerReport:
    """What one :func:`drain` call did.

    Attributes
    ----------
    owner : str
        The worker's id.
    ran : list of str
        Hashes this worker claimed, computed, and committed.
    cached : list of str
        Hashes found already stored when first encountered.
    deferred : list of str
        Hashes left to others: leased elsewhere when this worker gave
        up (``wait=False``), or beyond its ``max_cells`` budget.
    """

    owner: str
    ran: list[str] = field(default_factory=list)
    cached: list[str] = field(default_factory=list)
    deferred: list[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether every cell this worker saw ended up stored."""
        return not self.deferred


def drain(
    specs: SweepSpec | Sequence[SweepSpec],
    store: ResultStore,
    *,
    owner: str | None = None,
    ttl: float = DEFAULT_TTL,
    max_cells: int | None = None,
    shards: int | None = None,
    max_workers: int | None = None,
    wait: bool = False,
    poll_s: float = 0.05,
    on_cell: Callable[[RunKey, dict[str, Any], bool], None] | None = None,
    tracer: Tracer | None = None,
    profile: bool = False,
) -> WorkerReport:
    """Drain a sweep's pending cells as one dispatch worker.

    The worker loop: refresh the store view → find pending cells →
    claim **one** through the ledger → run it via
    :func:`~repro.store.campaign.run_cell` (content-derived seeds, so
    results are identical no matter which worker computes a cell) →
    locked-append the record → release the claim → repeat.  The loop
    ends when nothing is pending, or — with ``wait=False`` — when every
    pending cell is leased to someone else.

    Parameters
    ----------
    specs : SweepSpec or sequence of SweepSpec
        The campaign(s) to drain; cells are deduplicated by hash
        across specs, in expansion order.
    store : ResultStore
        A **disk-backed** store shared by all workers.
    owner : str, optional
        Worker id for the ledger (default :func:`default_owner`).
    ttl : float
        Lease TTL in seconds; make it comfortably longer than the
        slowest cell, or a slow cell gets benignly recomputed.
    max_cells : int, optional
        Stop after computing this many cells (the CLI's incremental
        mode); cached cells don't count.
    shards : int, optional
        Forwarded to ``run_batch(shards=)`` per cell.
    max_workers : int, optional
        Forwarded with *shards*.
    wait : bool
        When pending cells are all leased elsewhere: ``False`` (default)
        returns with them in ``deferred``; ``True`` polls until they
        are stored or their leases expire (what
        ``Campaign(workers=N)`` pool members use, so the pool returns
        only when the sweep is complete).
    poll_s : float
        Sleep between polls when *wait* is set.
    on_cell : callable, optional
        ``on_cell(key, record, cached)`` after every stored cell this
        worker observed (progress reporting).
    tracer : Tracer, optional
        Telemetry sink threaded into every computed cell (see
        :func:`repro.obs.events.tracer_for_store`).  The worker stamps
        each claim's lease id on the tracer while the cell runs, so
        every emitted event attributes to worker **and** lease.
    profile : bool
        Record per-cell peak-RSS provenance.

    Returns
    -------
    WorkerReport
        Hashes ran / cached / deferred by this worker.
    """
    if store.backend is None:
        raise ValueError(
            "dispatch needs a disk-backed or backend-backed store (the "
            "claim ledger lives beside the shards); pass ResultStore(path) "
            "or ResultStore(backend=...)"
        )
    spec_list = [specs] if isinstance(specs, SweepSpec) else list(specs)
    if not spec_list:
        raise ValueError("drain needs at least one SweepSpec")
    owner = owner if owner is not None else default_owner()
    ledger = ClaimLedger(store.backend)
    report = WorkerReport(owner=owner)

    # dedup cells across specs, remembering the first declaring sweep
    # (provenance only — the hash is the identity; likewise the backend,
    # whose engines are bit-exact twins, so the winner cannot matter)
    cells: dict[str, RunKey] = {}
    sweep_of: dict[str, str] = {}
    backend_of: dict[str, str] = {}
    for spec in spec_list:
        for key in spec.expand():
            if key.hash not in cells:
                cells[key.hash] = key
                sweep_of[key.hash] = spec.name
                backend_of[key.hash] = spec.backend

    graph_cache: dict[tuple, Any] = {}
    seen_cached: set[str] = set()
    while True:
        store.refresh()
        pending: list[RunKey] = []
        for h, key in cells.items():
            if h in report.ran or h in seen_cached:
                continue
            record = store.get(key)
            if record is not None:
                seen_cached.add(h)
                report.cached.append(h)
                if on_cell is not None:
                    on_cell(key, record, True)
                continue
            pending.append(key)
        if not pending:
            break
        if max_cells is not None and len(report.ran) >= max_cells:
            report.deferred.extend(k.hash for k in pending)
            break
        lease_token = uuid.uuid4().hex[:8]
        won = ledger.try_claim(
            [k.hash for k in pending], owner=owner, ttl=ttl, limit=1,
            lease=lease_token,
        )
        if not won:
            # every pending cell is leased to another live worker
            if wait:
                time.sleep(poll_s)
                continue
            report.deferred.extend(k.hash for k in pending)
            break
        (h,) = won
        key = cells[h]
        # close the claim/commit race: another worker may have committed
        # this cell after our pending scan and released its lease before
        # our claim.  A commit is durably on disk before its release, so
        # re-reading the store *after* winning the claim is decisive.
        store.refresh()
        record = store.get(key)
        if record is not None:
            ledger.release(h, owner=owner, op="done")
            seen_cached.add(h)
            report.cached.append(h)
            if on_cell is not None:
                on_cell(key, record, True)
            continue
        if tracer is not None:
            tracer.lease = lease_token
        try:
            record = run_cell(
                key,
                store,
                sweep=sweep_of[h],
                shards=shards,
                max_workers=max_workers,
                backend=backend_of[h],
                graph_cache=graph_cache,
                tracer=tracer,
                worker=owner,
                lease=lease_token,
                profile=profile,
            )
        except BaseException:
            ledger.release(h, owner=owner, op="abandon")
            raise
        finally:
            if tracer is not None:
                tracer.lease = None
        ledger.release(h, owner=owner, op="done")
        report.ran.append(h)
        if on_cell is not None:
            on_cell(key, record, False)
    return report


# ----------------------------------------------------------------------
# the Campaign(workers=N) local pool plumbing
# ----------------------------------------------------------------------

def worker_payloads(
    spec: SweepSpec,
    root: str | Path,
    *,
    workers: int,
    ttl: float = DEFAULT_TTL,
    shards: int | None = None,
    max_workers: int | None = None,
    trace: bool = False,
    profile: bool = False,
) -> list[tuple]:
    """Picklable per-worker argument tuples for :func:`pool_worker`.

    Parameters
    ----------
    spec : SweepSpec
        The sweep every pool member drains.
    root : str or Path
        The shared store directory.
    workers : int
        Pool width (one payload per worker).
    ttl : float
        Lease TTL handed to each worker.
    shards : int, optional
        Forwarded to ``run_batch(shards=)`` per cell.
    max_workers : int, optional
        Forwarded with *shards*.
    trace : bool
        Each worker opens its own store-backed event tracer
        (a tracer object cannot cross the pool pickle boundary).
    profile : bool
        Forwarded to :func:`drain` (per-cell peak-RSS provenance).

    Returns
    -------
    list of tuple
        One ``(spec, root, owner, ttl, shards, max_workers, trace,
        profile)`` each.
    """
    return [
        (
            spec, str(root), f"{default_owner()}-w{i}", ttl, shards, max_workers,
            trace, profile,
        )
        for i in range(workers)
    ]


def pool_worker(payload: tuple) -> WorkerReport:
    """Entry point of one ``Campaign(workers=N)`` pool process.

    Opens a fresh store handle on the shared directory and drains with
    ``wait=True`` so the pool's ``map`` returns only once every cell of
    the sweep is stored (by *some* worker).  A tracing pool builds its
    own :func:`repro.obs.events.tracer_for_store` here, in the worker
    process, under the worker's owner id — every pool member appends
    to the same flock-guarded ``events.jsonl``.

    Parameters
    ----------
    payload : tuple
        One element of :func:`worker_payloads`.

    Returns
    -------
    WorkerReport
        This worker's share of the drain.
    """
    spec, root, owner, ttl, shards, max_workers, trace, profile = payload
    tracer = None
    if trace:
        from ..obs.events import tracer_for_store

        tracer = tracer_for_store(root, worker=owner)
    return drain(
        spec,
        ResultStore(root),
        owner=owner,
        ttl=ttl,
        shards=shards,
        max_workers=max_workers,
        wait=True,
        tracer=tracer,
        profile=profile,
    )


# ----------------------------------------------------------------------
# fsck — integrity check
# ----------------------------------------------------------------------

@dataclass
class FsckReport:
    """What ``sweep fsck`` found in one store directory.

    Integrity findings (any of these ⇒ not :attr:`clean`):

    Attributes
    ----------
    corrupt_lines : dict of str → int
        Shard name → number of unparseable (torn) lines.
    hash_mismatches : list of str
        Stored hashes whose key payload re-hashes to something else
        (bit rot, hand edits).
    misplaced : list of (str, str)
        ``(shard, hash)`` records filed in a shard whose prefix does
        not match their hash (orphaned records).
    stale_leases : list of Lease
        Claims that expired without a release — a worker died there.

    Hygiene findings (legal, compaction candidates, still clean):

    Attributes
    ----------
    duplicates : dict of str → int
        hash → record count, for cells stored more than once
        (last-write-wins; ``sweep compact`` trims them).
    live_leases : list of Lease
        Unexpired claims — workers are (or very recently were) active.

    Attributes
    ----------
    records : int
        Valid records seen (including duplicates).
    cells : int
        Distinct cell hashes.
    events_records : int
        Parseable telemetry events in ``events.jsonl`` (0 when the
        campaign never traced).
    events_corrupt : int
        Torn event lines — an integrity finding, same as shard tears.
    """

    records: int = 0
    cells: int = 0
    corrupt_lines: dict[str, int] = field(default_factory=dict)
    hash_mismatches: list[str] = field(default_factory=list)
    misplaced: list[tuple[str, str]] = field(default_factory=list)
    duplicates: dict[str, int] = field(default_factory=dict)
    stale_leases: list[Lease] = field(default_factory=list)
    live_leases: list[Lease] = field(default_factory=list)
    events_records: int = 0
    events_corrupt: int = 0

    @property
    def errors(self) -> int:
        """Count of integrity findings (0 for a healthy store)."""
        return (
            sum(self.corrupt_lines.values())
            + len(self.hash_mismatches)
            + len(self.misplaced)
            + len(self.stale_leases)
            + self.events_corrupt
        )

    @property
    def clean(self) -> bool:
        """No torn lines, bad hashes, orphans, or dead workers."""
        return self.errors == 0

    def summary(self) -> str:
        """One human-readable line per finding class.

        Returns
        -------
        str
            The ``sweep fsck`` CLI output.
        """
        lines = [
            f"records            {self.records} ({self.cells} distinct cells)",
            f"corrupt lines      {sum(self.corrupt_lines.values())}"
            + (f"  in {sorted(self.corrupt_lines)}" if self.corrupt_lines else ""),
            f"hash mismatches    {len(self.hash_mismatches)}",
            f"misplaced records  {len(self.misplaced)}",
            f"duplicate cells    {len(self.duplicates)} (last-write-wins; "
            "'sweep compact' trims)",
            f"stale leases       {len(self.stale_leases)}"
            + (
                "  owners: "
                + ", ".join(sorted({ls.owner for ls in self.stale_leases}))
                if self.stale_leases
                else ""
            ),
            f"live leases        {len(self.live_leases)}",
            f"events             {self.events_records} record(s), "
            f"{self.events_corrupt} torn line(s)",
            f"verdict            {'clean' if self.clean else 'NOT CLEAN'}",
        ]
        return "\n".join(lines)


def fsck(store: ResultStore, *, now: float | None = None) -> FsckReport:
    """Re-verify every record and lease of a disk-backed store.

    Reads the raw shard files (never the store's cache): each line must
    parse, its ``key`` payload must re-hash (SHA-256 of the canonical
    JSON) to the stored ``hash``, and the hash must belong in the shard
    file that holds it.  The claim ledger is replayed for leases that
    expired without a release, and the telemetry log (``events.jsonl``,
    if any) is scanned for torn lines.

    Parameters
    ----------
    store : ResultStore
        A disk-backed store (memory stores have nothing to check).
    now : float, optional
        Clock override for lease expiry (tests).

    Returns
    -------
    FsckReport
        Findings; ``report.clean`` is the CLI's exit status.
    """
    if store.backend is None:
        raise ValueError("fsck needs a disk-backed or backend-backed store")
    now = time.time() if now is None else now
    report = FsckReport()
    counts: dict[str, int] = {}
    for shard_key in store.shard_keys():
        prefix = shard_key.rsplit("/", 1)[-1].removesuffix(".jsonl")
        blob = store.backend.read_blob(shard_key)
        if blob is None:
            continue
        for line in blob[0].decode("utf-8").splitlines():
            if not line.strip():
                continue
            try:
                record = parse_record(line)
            except ValueError:
                report.corrupt_lines[prefix] = report.corrupt_lines.get(prefix, 0) + 1
                continue
            h = record["hash"]
            report.records += 1
            counts[h] = counts.get(h, 0) + 1
            recomputed = hashlib.sha256(
                canonical_json(record["key"]).encode()
            ).hexdigest()
            if recomputed != h:
                report.hash_mismatches.append(h)
            if not h.startswith(prefix):
                report.misplaced.append((prefix, h))
    report.cells = len(counts)
    report.duplicates = {h: c for h, c in counts.items() if c > 1}
    for lease in ClaimLedger(store.backend).leases().values():
        if lease.expired(now):
            report.stale_leases.append(lease)
        else:
            report.live_leases.append(lease)
    from ..obs.events import EventLog

    events = EventLog(store.backend)
    report.events_records = len(events.records())
    report.events_corrupt = events.torn_lines()
    return report


# ----------------------------------------------------------------------
# compaction — drop superseded duplicates, reroute orphans, prune leases
# ----------------------------------------------------------------------

@dataclass
class CompactReport:
    """What ``sweep compact`` rewrote.

    Attributes
    ----------
    records_in : int
        Valid records before compaction (duplicates included).
    records_out : int
        Live records after (one per cell).
    duplicates_dropped : int
        Superseded last-write-wins records removed.
    corrupt_dropped : int
        Torn lines removed.
    relocated : int
        Misplaced records rewritten into their correct shard.
    claims_dropped : int
        Ledger records pruned (everything but live leases).
    """

    records_in: int = 0
    records_out: int = 0
    duplicates_dropped: int = 0
    corrupt_dropped: int = 0
    relocated: int = 0
    claims_dropped: int = 0

    @property
    def removed(self) -> int:
        """Total shard lines dropped."""
        return self.duplicates_dropped + self.corrupt_dropped

    def summary(self) -> str:
        """One human-readable line per rewrite class.

        Returns
        -------
        str
            The ``sweep compact`` CLI output.
        """
        return "\n".join(
            [
                f"records            {self.records_in} -> {self.records_out}",
                f"duplicates dropped {self.duplicates_dropped}",
                f"corrupt dropped    {self.corrupt_dropped}",
                f"relocated          {self.relocated}",
                f"claims pruned      {self.claims_dropped}",
            ]
        )


def _cas_rewrite(
    backend: StorageBackend,
    key: str,
    transform: Callable[[str], tuple[str, Any]],
) -> Any:
    """Read one blob, transform its text, compare-and-swap it back.

    The optimistic analogue of "rewrite in place under the writer
    lock": *transform* runs against exactly one blob version, and the
    rewrite lands only if that version is still current — a concurrent
    commit moves the ETag, the swap fails, and the transform re-runs
    against the blob *including* that commit.  A committed record can
    therefore never be lost to a rewrite.  No-op transforms (output
    text == input text) skip the swap entirely.

    Returns whatever *transform* returned as its second element, from
    the attempt whose swap succeeded.
    """
    while True:
        blob = backend.read_blob(key)
        data, etag = blob if blob is not None else (b"", None)
        new_text, result = transform(data.decode("utf-8"))
        payload = new_text.encode("utf-8")
        if payload == data:
            return result
        if backend.compare_and_swap(key, payload, etag) is not None:
            return result


def compact(
    store: ResultStore, *, force: bool = False, now: float | None = None
) -> CompactReport:
    """Rewrite the store keeping one live record per cell.

    Per shard: drop torn lines, keep the **last** record per hash
    (exactly the load path's last-write-wins resolution, so the
    surviving values are identical to what reads already saw), and
    file misplaced records into the shard their hash names.  Each
    shard rewrite is one compare-and-swap through the store's
    backend — on a shared filesystem that holds the same ``flock``
    the merge-safe writer appends under; on an object store it is a
    conditional put — so a concurrent commit either lands before the
    rewrite (and is kept) or moves the ETag and forces the rewrite to
    re-read (and keep it).  Either way a committed record can never
    be lost to compaction, even from writers that hold no lease (a
    plain ``Campaign.run()``).  A crash *mid*-rewrite can tear the
    shard being written locally, which the load path already
    tolerates (the affected cells re-run; ``fsck`` flags it).  Shards
    left with no records become empty blobs (≡ absent at the seam).
    The claim ledger is rewritten the same way, keeping only live
    leases — done/abandoned/expired claims drop.

    Compaction is still an *offline* operation in intent: it refuses
    to run while live leases exist (a leased cell's commit would
    interleave with the rewrite — safely, but the report would be
    stale), unless *force* is set.

    Parameters
    ----------
    store : ResultStore
        A disk-backed or backend-backed store.
    force : bool
        Compact even with live leases (you know the workers are gone).
    now : float, optional
        Clock override for lease expiry (tests).

    Returns
    -------
    CompactReport
        What was dropped, kept, and relocated.
    """
    if store.backend is None:
        raise ValueError("compact needs a disk-backed or backend-backed store")
    now = time.time() if now is None else now
    ledger = ClaimLedger(store.backend)
    live = {
        h: lease
        for h, lease in ledger.leases().items()
        if not lease.expired(now)
    }
    if live and not force:
        raise RuntimeError(
            f"store has {len(live)} live lease(s) — workers may still be "
            "running; wait for them (or pass force=True / --force)"
        )
    report = CompactReport()

    # phase 1 — per shard, one CAS rewrite: drop torn lines, dedup in
    # line order (last write wins, as the load path resolves), pull out
    # strays whose hash belongs elsewhere.  Stats come from the attempt
    # that actually landed, so lost races never double-count.
    strays: dict[str, str] = {}
    kept_total = 0
    for shard_key in store.shard_keys():
        prefix = shard_key.rsplit("/", 1)[-1].removesuffix(".jsonl")

        def dedup(text: str, prefix: str = prefix) -> tuple[str, dict[str, Any]]:
            stats: dict[str, Any] = {
                "records_in": 0, "corrupt": 0, "dups": 0, "strays": {},
            }
            keep: dict[str, str] = {}
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    record = parse_record(line)
                except ValueError:
                    stats["corrupt"] += 1
                    continue
                stats["records_in"] += 1
                h = record["hash"]
                serialised = json.dumps(record, sort_keys=True)
                if h.startswith(prefix):
                    if h in keep:
                        stats["dups"] += 1
                    keep[h] = serialised
                else:
                    if h in stats["strays"]:
                        stats["dups"] += 1
                    stats["strays"][h] = serialised
            stats["kept"] = len(keep)
            return "".join(keep[h] + "\n" for h in sorted(keep)), stats

        stats = _cas_rewrite(store.backend, shard_key, dedup)
        report.records_in += stats["records_in"]
        report.corrupt_dropped += stats["corrupt"]
        report.duplicates_dropped += stats["dups"]
        report.relocated += len(stats["strays"])
        for h, serialised in stats["strays"].items():
            if h in strays:
                report.duplicates_dropped += 1
            strays[h] = serialised
        kept_total += stats["kept"]

    # phase 2 — refile each stray into the shard its hash names (one
    # CAS append each); if the target already holds the cell, the
    # in-place copy wins and the stray drops as one more duplicate —
    # value-irrelevant either way, duplicate records of a cell carry
    # identical values (content-derived seeds)
    for h in sorted(strays):
        target_key = f"shards/{h[:2]}.jsonl"

        def refile(text: str, h: str = h) -> tuple[str, bool]:
            present = False
            for line in text.splitlines():
                try:
                    present = present or parse_record(line)["hash"] == h
                except ValueError:
                    continue
            if present:
                return text, False
            return text + strays[h] + "\n", True

        if _cas_rewrite(store.backend, target_key, refile):
            kept_total += 1
        else:
            report.duplicates_dropped += 1
            report.relocated -= 1
    report.records_out = kept_total

    # phase 3 — prune the ledger down to live leases, one CAS rewrite
    def prune(text: str) -> tuple[str, int]:
        records = ledger._parse(text)
        state = ledger._replay(records)
        keep_lines = [
            json.dumps(r, sort_keys=True)
            for r in records
            if r["op"] == "claim"
            and r["hash"] in state
            and not state[r["hash"]].expired(now)
        ]
        return (
            "".join(line + "\n" for line in keep_lines),
            len(records) - len(keep_lines),
        )

    report.claims_dropped = _cas_rewrite(store.backend, CLAIMS_FILE, prune)

    store.refresh()
    return report


# ----------------------------------------------------------------------
# declared sweeps — the registry ``sweep work --loop`` daemons poll
# ----------------------------------------------------------------------

def declare_sweep(
    store: str | Path | StorageBackend,
    name: str,
    *,
    scale: str = "quick",
    seed: int = 0,
    by: str | None = None,
) -> dict[str, Any]:
    """Announce a sweep in the store's ``sweeps.jsonl`` registry.

    One merge-safe line append: ``{"name", "scale", "seed", "ts",
    "by"}``.  Looping workers (``sweep work --loop``) poll
    :func:`declared_sweeps` and drain anything new; declaring the same
    (name, scale, seed) twice is harmless — the registry deduplicates
    on read, and the cells are content-addressed anyway.

    Parameters
    ----------
    store : str, Path, or StorageBackend
        Where the registry lives (beside the shards).
    name : str
        A registered sweep name (see ``repro.store.spec.build_sweep``).
    scale : str
        Sweep scale preset forwarded to ``build_sweep``.
    seed : int
        Root seed forwarded to ``build_sweep``.
    by : str, optional
        Declaring principal for provenance (default
        :func:`default_owner`).

    Returns
    -------
    dict
        The registry record as appended.
    """
    backend = resolve_backend(store)
    if backend is None:
        raise ValueError("declare_sweep needs a store path or backend")
    record = {
        "name": name,
        "scale": scale,
        "seed": int(seed),
        "ts": round(time.time(), 3),
        "by": by if by is not None else default_owner(),
    }
    backend.append_line(SWEEPS_FILE, json.dumps(record, sort_keys=True))
    return record


def declared_sweeps(
    store: str | Path | StorageBackend,
) -> list[dict[str, Any]]:
    """All declared sweeps, deduplicated, in declaration order.

    Parameters
    ----------
    store : str, Path, or StorageBackend
        Where the registry lives.

    Returns
    -------
    list of dict
        One ``{"name", "scale", "seed", "ts", "by"}`` per distinct
        (name, scale, seed) declaration, first declaration wins;
        torn or malformed lines are skipped (same tolerance as every
        other ledger).
    """
    backend = resolve_backend(store)
    if backend is None:
        raise ValueError("declared_sweeps needs a store path or backend")
    blob = backend.read_blob(SWEEPS_FILE)
    if blob is None:
        return []
    out: list[dict[str, Any]] = []
    seen: set[tuple[str, str, int]] = set()
    for line in blob[0].decode("utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not (
            isinstance(record, dict)
            and isinstance(record.get("name"), str)
            and isinstance(record.get("scale"), str)
            and isinstance(record.get("seed"), int)
        ):
            continue
        ident = (record["name"], record["scale"], record["seed"])
        if ident in seen:
            continue
        seen.add(ident)
        out.append(record)
    return out