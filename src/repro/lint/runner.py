"""Collect files, run every rule, apply suppressions.

The runner is deliberately boring: deterministic file order (sorted
walk), one parse per file, every registered rule over every file (rules
scope themselves by path), findings filtered through the file's
suppression directives, unused directives reported as RPL000.
"""

from __future__ import annotations

import ast
from pathlib import Path
from collections.abc import Iterable, Sequence

from .rules import ERROR, Finding, FileContext, Rule, all_rules
from .suppressions import parse_suppressions

__all__ = ["collect_files", "lint_source", "lint_file", "run_paths"]

#: directories never descended into
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".mypy_cache"})


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand *paths* into a sorted list of ``.py`` files.

    Parameters
    ----------
    paths : sequence of str or Path
        Files and/or directories; directories are walked recursively.

    Returns
    -------
    list of Path
        Sorted, de-duplicated Python files.

    Raises
    ------
    FileNotFoundError
        If a named path does not exist.
    """
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(candidate.parts)
            )
        else:
            files.add(path)
    return sorted(files)


def lint_source(
    source: str, path: str, rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Lint one file's text (the unit the fixture tests drive).

    Parameters
    ----------
    source : str
        File contents.
    path : str
        Path used for rule scoping and reporting (POSIX-style
        substrings such as ``repro/store/`` select the scoped rules).
    rules : iterable of Rule, optional
        Rules to run; defaults to the full registry.

    Returns
    -------
    list of Finding
        Findings surviving suppression, plus RPL000 for unused
        directives and RPL010 for parse failures, sorted by position.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="RPL010",
                severity=ERROR,
                path=path,
                line=exc.lineno or 0,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(path=path, tree=tree, source=source)
    suppressions = parse_suppressions(source)
    findings: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        for finding in rule.run(ctx):
            if not suppressions.suppresses(finding.rule, finding.line):
                findings.append(finding)
    for line, rule_id in suppressions.unused():
        findings.append(
            Finding(
                rule="RPL000",
                severity=ERROR,
                path=path,
                line=line,
                col=0,
                message=(
                    f"suppression of {rule_id} matched no finding; delete "
                    "the stale directive"
                ),
            )
        )
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_file(path: str | Path, rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint one file from disk (see :func:`lint_source`).

    Parameters
    ----------
    path : str or Path
        File to read and lint.
    rules : iterable of Rule, optional
        Rules to run; defaults to the full registry.

    Returns
    -------
    list of Finding
        The file's findings.
    """
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, Path(path).as_posix(), rules)


def run_paths(
    paths: Sequence[str | Path], rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Lint every Python file under *paths*.

    Parameters
    ----------
    paths : sequence of str or Path
        Files/directories to lint.
    rules : iterable of Rule, optional
        Rules to run; defaults to the full registry.

    Returns
    -------
    list of Finding
        All findings, in file order.
    """
    rule_list = list(rules) if rules is not None else None
    findings: list[Finding] = []
    for path in collect_files(paths):
        findings.extend(lint_file(path, rule_list))
    return findings
