"""The rule registry: one :class:`Rule` per enforced invariant.

Each rule is a pure function over one parsed file (an
:class:`ast.Module` plus its path) yielding ``(node, message)`` pairs;
the :mod:`repro.lint.runner` turns those into :class:`Finding` records,
applies ``# repro-lint: disable=`` suppressions, and reports.  Rules
carry their invariant and its fix as text so ``--explain RPL###`` can
teach instead of just scold.

The rule ids are stable API (they appear in suppression comments and
in ``docs/static-analysis.md``):

========  ========  ==========================================================
id        severity  invariant
========  ========  ==========================================================
RPL000    error     a suppression comment must suppress something
RPL010    error     linted files must parse
RPL100    error     no legacy ``np.random`` global-state calls
RPL101    error     no stdlib ``random`` in engine/store code
RPL102    error     ``default_rng``/``Generator`` built only in ``sim/rng.py``
RPL103    error     no wall-clock/OS entropy outside the provenance allowlist
RPL110    error     store files append only through the locking helpers
RPL111    error     every ``flock`` acquire pairs with a guaranteed release
RPL120    error     ``cover`` capability requires a ``batch_cover`` engine
RPL121    warning   ``hit`` capability without ``batch_hit`` (the known gap)
RPL130    error     public functions in gated API modules are annotated
RPL140    error     no RNG construction or draws inside compiled kernels
RPL150    error     sim/store timing goes through the injected Tracer clock
RPL200    error     every registered sweep expands (contract audit)
RPL201    error     batch engines/factories match the protocol (contract audit)
RPL202    error     docs anchors the test suite expects resolve (contract audit)
RPL203    error     implicit topologies bind the oracle protocol (contract audit)
========  ========  ==========================================================
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from collections.abc import Callable, Iterator, Mapping
from typing import Any

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "RULES",
    "register_rule",
    "get_rule",
    "all_rules",
    "ERROR",
    "WARNING",
]

#: severity vocabulary — ``error`` findings fail the build, ``warning``
#: findings are reported but exit 0
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One reported violation: rule, location, human message."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (``--format=json`` emits a list of these)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output (round-trip)."""
        return cls(
            rule=str(data["rule"]),
            severity=str(data["severity"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            message=str(data["message"]),
        )

    def render(self) -> str:
        """The one-line text form: ``path:line:col: RPL### [sev] msg``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"


class FileContext:
    """One parsed file handed to every rule checker.

    Attributes
    ----------
    path : str
        POSIX-style path of the file (rules scope themselves by
        matching substrings such as ``repro/store/``).
    tree : ast.Module
        The parsed module.
    source : str
        Raw file text.
    """

    def __init__(self, path: str, tree: ast.Module, source: str) -> None:
        self.path = path
        self.tree = tree
        self.source = source
        self._parents: dict[int, ast.AST] | None = None

    def parent_map(self) -> dict[int, ast.AST]:
        """Map ``id(child)`` → parent node, built lazily once per file."""
        if self._parents is None:
            parents: dict[int, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ``node``'s ancestors innermost-first up to the module."""
        parents = self.parent_map()
        current = parents.get(id(node))
        while current is not None:
            yield current
            current = parents.get(id(current))


#: checker signature: yield ``(node, message)`` for each violation
Checker = Callable[[FileContext], Iterator[tuple[ast.AST, str]]]


@dataclass(frozen=True)
class Rule:
    """One registered invariant.

    Attributes
    ----------
    id : str
        Stable ``RPL###`` identifier (suppression comments name it).
    severity : str
        ``"error"`` (fails the build) or ``"warning"`` (reported only).
    title : str
        One-line summary for listings and the docs rule table.
    invariant : str
        What must hold, and why the sweep store depends on it
        (printed by ``--explain``).
    fix : str
        How to bring a violating file into compliance.
    checker : Checker or None
        The per-file AST pass; ``None`` for meta rules (RPL000/RPL010)
        and import-time contract-audit rules (RPL2xx), which the
        runner/auditor emit directly.
    """

    id: str
    severity: str
    title: str
    invariant: str
    fix: str
    checker: Checker | None = field(default=None, compare=False)

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        """Apply the checker to one file, yielding findings."""
        if self.checker is None:
            return
        for node, message in self.checker(ctx):
            yield Finding(
                rule=self.id,
                severity=self.severity,
                path=ctx.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )


RULES: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Register *rule*, rejecting duplicate ids."""
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return rule


def get_rule(rule_id: str) -> Rule:
    """Look up a rule, raising with the known ids on miss."""
    try:
        return RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(RULES))
        raise KeyError(f"unknown rule {rule_id!r}; known: {known}") from None


def all_rules() -> list[Rule]:
    """All registered rules, sorted by id."""
    return [RULES[k] for k in sorted(RULES)]


# ---------------------------------------------------------------------------
# path scoping helpers


def _posix(path: str) -> str:
    return path.replace("\\", "/")


def _in_engine_or_store(path: str) -> bool:
    """Engine/store scope: the code whose RNG discipline the store trusts."""
    p = _posix(path)
    return any(
        f"repro/{part}/" in p for part in ("sim", "store", "walks", "core")
    )


def _in_store(path: str) -> bool:
    return "repro/store/" in _posix(path)


def _is_rng_module(path: str) -> bool:
    return _posix(path).endswith("sim/rng.py")


#: files allowed to read the wall clock / OS entropy: lease TTLs in the
#: dispatch ledger, experiment-runner stamps, and the straggler report's
#: lease-expiry arithmetic — none of it keyed
_WALLCLOCK_ALLOWLIST = (
    "repro/store/dispatch.py",
    "repro/experiments/cli.py",
    "repro/obs/report.py",
)


def _wallclock_allowed(path: str) -> bool:
    p = _posix(path)
    return any(p.endswith(entry) for entry in _WALLCLOCK_ALLOWLIST)


#: modules whose public surface is the repo's API: the docstring gate
#: (ruff D1/D417) and the annotation gate (RPL130) cover the same set,
#: plus the linter itself and the store's hashed-value schema
GATED_API_MODULES = (
    "repro/sim/facade.py",
    "repro/sim/batch.py",
    "repro/sim/processes.py",
    "repro/sim/rng.py",
    "repro/sim/kernels_numba.py",
    "repro/store/spec.py",
)


def _is_gated_api(path: str) -> bool:
    p = _posix(path)
    return any(p.endswith(entry) for entry in GATED_API_MODULES) or "repro/lint/" in p


# ---------------------------------------------------------------------------
# AST pattern helpers


def _is_np_random(node: ast.AST) -> bool:
    """Match the expression ``np.random`` / ``numpy.random``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


def _numpy_random_aliases(tree: ast.Module, names: frozenset[str]) -> dict[str, str]:
    """Local aliases bound by ``from numpy.random import X [as Y]``."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
            for alias in node.names:
                if alias.name in names:
                    aliases[alias.asname or alias.name] = alias.name
    return aliases


#: ``np.random.<attr>`` calls that mutate or read hidden global state —
#: the exact surface NPY002 covers, plus the state accessors
_LEGACY_NP_RANDOM = frozenset(
    {
        "seed", "get_state", "set_state", "RandomState",
        "rand", "randn", "randint", "random_integers", "random_sample",
        "ranf", "sample", "random", "choice", "bytes", "shuffle",
        "permutation", "beta", "binomial", "chisquare", "dirichlet",
        "exponential", "f", "gamma", "geometric", "gumbel",
        "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
        "multinomial", "multivariate_normal", "negative_binomial",
        "noncentral_chisquare", "noncentral_f", "normal", "pareto",
        "poisson", "power", "rayleigh", "standard_cauchy",
        "standard_exponential", "standard_gamma", "standard_normal",
        "standard_t", "triangular", "uniform", "vonmises", "wald",
        "weibull", "zipf",
    }
)


def _check_rpl100(ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
    aliases = _numpy_random_aliases(ctx.tree, _LEGACY_NP_RANDOM)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _LEGACY_NP_RANDOM
            and _is_np_random(func.value)
        ):
            yield node, (
                f"np.random.{func.attr}() drives numpy's hidden global RNG; "
                "draw from a Generator obtained via repro.sim.rng.resolve_rng "
                "instead"
            )
        elif isinstance(func, ast.Name) and func.id in aliases:
            yield node, (
                f"numpy.random.{aliases[func.id]}() drives numpy's hidden "
                "global RNG; draw from a Generator obtained via "
                "repro.sim.rng.resolve_rng instead"
            )


def _check_rpl101(ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
    if not _in_engine_or_store(ctx.path):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield node, (
                        "stdlib `random` in engine/store code bypasses the "
                        "[root, H(cell)] seed discipline; use numpy "
                        "Generators from repro.sim.rng"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                yield node, (
                    "stdlib `random` in engine/store code bypasses the "
                    "[root, H(cell)] seed discipline; use numpy Generators "
                    "from repro.sim.rng"
                )


_RNG_CONSTRUCTORS = frozenset({"default_rng", "Generator"})


def _check_rpl102(ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
    if _is_rng_module(ctx.path):
        return
    aliases = _numpy_random_aliases(ctx.tree, _RNG_CONSTRUCTORS)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name: str | None = None
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _RNG_CONSTRUCTORS
            and _is_np_random(func.value)
        ):
            name = func.attr
        elif isinstance(func, ast.Name) and func.id in aliases:
            name = aliases[func.id]
        if name is not None:
            yield node, (
                f"np.random.{name}(...) constructed outside sim/rng.py; "
                "normalise seeds through repro.sim.rng.resolve_rng / "
                "spawn_rngs so every stream derives from the seed discipline"
            )


def _is_datetime_expr(node: ast.AST) -> bool:
    """Match ``datetime`` or ``datetime.datetime`` (class or module)."""
    if isinstance(node, ast.Name) and node.id == "datetime":
        return True
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "datetime"
        and isinstance(node.value, ast.Name)
        and node.value.id == "datetime"
    )


def _check_rpl103(ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
    if _wallclock_allowed(ctx.path):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        value = func.value
        bad: str | None = None
        if func.attr == "time" and isinstance(value, ast.Name) and value.id == "time":
            bad = "time.time()"
        elif func.attr in ("now", "utcnow") and _is_datetime_expr(value):
            bad = f"datetime.{func.attr}()"
        elif func.attr == "urandom" and isinstance(value, ast.Name) and value.id == "os":
            bad = "os.urandom()"
        if bad is not None:
            yield node, (
                f"{bad} reads wall-clock/OS entropy outside the provenance "
                "allowlist; keyed paths must be pure functions of the cell "
                "payload (see docs/static-analysis.md)"
            )


def _open_mode(node: ast.Call) -> ast.expr | None:
    """The mode argument of an ``open``/``.open`` call, if present."""
    func = node.func
    mode_index = 1 if isinstance(func, ast.Name) else 0
    for kw in node.keywords:
        if kw.arg == "mode":
            return kw.value
    if len(node.args) > mode_index:
        return node.args[mode_index]
    return None


def _is_seam_module(path: str) -> bool:
    """The two modules allowed to touch files raw: the flock helpers and
    the backend seam they sit behind."""
    p = _posix(path)
    return p.endswith("store/locking.py") or p.endswith("store/backend.py")


def _check_rpl110(ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
    if not _in_store(ctx.path) or _is_seam_module(ctx.path):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            yield node, (
                f"raw .{func.attr}(...) in store code; whole-blob rewrites "
                "must go through StorageBackend.compare_and_swap so a "
                "concurrent append or CAS cannot be silently overwritten"
            )
            continue
        is_open = (isinstance(func, ast.Name) and func.id == "open") or (
            isinstance(func, ast.Attribute) and func.attr == "open"
        )
        if not is_open:
            continue
        mode = _open_mode(node)
        if (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and any(ch in mode.value for ch in "aw")
        ):
            yield node, (
                f"raw open(..., {mode.value!r}) in store code; shard and "
                "ledger writes must route through the StorageBackend seam "
                "(append_line / compare_and_swap) or repro.store.locking so "
                "concurrent writers interleave whole records"
            )


_ACQUIRE_FLAGS = frozenset({"LOCK_EX", "LOCK_SH"})
_RELEASE_NAMES = frozenset({"release", "unlock"})


def _flock_flag(node: ast.Call) -> str | None:
    """The LOCK_* flag named in a ``flock(...)`` call, if any."""
    for arg in node.args:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Attribute) and sub.attr.startswith("LOCK_"):
                return sub.attr
            if isinstance(sub, ast.Name) and sub.id.startswith("LOCK_"):
                return sub.id
    return None


def _is_flock_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "flock"
    )


def _has_guaranteed_release(ctx: FileContext, acquire: ast.Call) -> bool:
    """True when the acquire is inside a ``with`` or its function holds a
    ``try/finally`` whose finally releases the lock."""
    scope: ast.AST = ctx.tree
    for ancestor in ctx.ancestors(acquire):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope = ancestor
            break
    for node in ast.walk(scope):
        if not (isinstance(node, ast.Try) and node.finalbody):
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if _is_flock_call(sub) and _flock_flag(sub) == "LOCK_UN":
                    return True
                if isinstance(sub, ast.Call):
                    func = sub.func
                    name = (
                        func.attr
                        if isinstance(func, ast.Attribute)
                        else func.id
                        if isinstance(func, ast.Name)
                        else ""
                    )
                    if any(part in name.lower() for part in _RELEASE_NAMES):
                        return True
    return False


def _is_try_claim_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "try_claim"
    )


def _claim_has_guaranteed_release(ctx: FileContext, claim: ast.Call) -> bool:
    """True when the claiming function releases the lease on the error
    path: a ``.release(...)`` call inside an except handler or finally
    block of the same function."""
    scope: ast.AST = ctx.tree
    for ancestor in ctx.ancestors(claim):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope = ancestor
            break
    for node in ast.walk(scope):
        if not isinstance(node, ast.Try):
            continue
        guarded = list(node.finalbody)
        for handler in node.handlers:
            guarded.extend(handler.body)
        for stmt in guarded:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "release"
                ):
                    return True
    return False


def _check_rpl111(ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
    for node in ast.walk(ctx.tree):
        if _is_flock_call(node) and _flock_flag(node) in _ACQUIRE_FLAGS:
            assert isinstance(node, ast.Call)
            if not _has_guaranteed_release(ctx, node):
                yield node, (
                    "flock acquisition without a guaranteed release: wrap "
                    "the critical section in a context manager or release "
                    "LOCK_UN in a finally block (a leaked lock deadlocks "
                    "every other store writer)"
                )
        elif _is_try_claim_call(node):
            assert isinstance(node, ast.Call)
            if not _claim_has_guaranteed_release(ctx, node):
                yield node, (
                    "try_claim without a release guaranteed on failure: the "
                    "claiming function must call ledger.release "
                    "(op=\"abandon\") in an except handler or finally block, "
                    "or the cell stays leased until the TTL expires"
                )


def _spec_capabilities(call: ast.Call) -> set[str] | None:
    """String constants inside the ``capabilities=`` keyword literal."""
    for kw in call.keywords:
        if kw.arg == "capabilities":
            return {
                sub.value
                for sub in ast.walk(kw.value)
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
            }
    return None


def _iter_process_specs(ctx: FileContext) -> Iterator[tuple[ast.Call, set[str], set[str]]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if name != "ProcessSpec":
            continue
        caps = _spec_capabilities(node)
        if caps is None:
            continue
        kwargs = {kw.arg for kw in node.keywords if kw.arg is not None}
        yield node, caps, kwargs


def _check_rpl120(ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
    for node, caps, kwargs in _iter_process_specs(ctx):
        if "cover" in caps and "batch_cover" not in kwargs:
            yield node, (
                "ProcessSpec declares the 'cover' capability without a "
                "batch_cover engine; every cover-capable process must ship "
                "its vectorized engine (run_batch depends on it)"
            )


def _check_rpl121(ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
    for node, caps, kwargs in _iter_process_specs(ctx):
        if "hit" in caps and "batch_hit" not in kwargs:
            yield node, (
                "ProcessSpec declares the 'hit' capability without a "
                "batch_hit engine; hit sweeps fall back to the serial path "
                "(the known batch_hit gap — see ROADMAP item 4)"
            )


def _unannotated_args(fn: ast.FunctionDef | ast.AsyncFunctionDef, *, skip_self: bool) -> list[str]:
    missing: list[str] = []
    args = fn.args
    positional = list(args.posonlyargs) + list(args.args)
    if skip_self and positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    for arg in positional + list(args.kwonlyargs):
        if arg.annotation is None:
            missing.append(arg.arg)
    for vararg in (args.vararg, args.kwarg):
        if vararg is not None and vararg.annotation is None:
            missing.append(vararg.arg)
    return missing


def _check_rpl130(ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
    if not _is_gated_api(ctx.path):
        return

    def check_fn(
        fn: ast.FunctionDef | ast.AsyncFunctionDef, *, skip_self: bool
    ) -> Iterator[tuple[ast.AST, str]]:
        if fn.name.startswith("_"):
            return
        missing = _unannotated_args(fn, skip_self=skip_self)
        if missing:
            yield fn, (
                f"public function {fn.name}() is missing annotations on "
                f"{', '.join(missing)}; gated API modules carry full type "
                "annotations (mypy enforces them in CI)"
            )
        if fn.returns is None:
            yield fn, (
                f"public function {fn.name}() is missing its return "
                "annotation; gated API modules carry full type annotations"
            )

    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from check_fn(node, skip_self=False)
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from check_fn(item, skip_self=True)


#: Generator draw methods a compiled kernel must never call — draws
#: stay at the Python layer so the kernel stays a pure function
_RNG_DRAW_METHODS = frozenset(
    {
        "random", "integers", "choice", "shuffle", "permutation", "bytes",
        "uniform", "normal", "standard_normal", "exponential", "poisson",
        "binomial", "geometric", "spawn",
    }
)

#: seed-normalisation entry points — constructing a stream inside a
#: kernel is the same violation as drawing from one
_RNG_FACTORY_NAMES = frozenset(
    {"resolve_rng", "spawn_rngs", "spawn_seeds"} | _RNG_CONSTRUCTORS
)


def _njit_decorated(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True for functions decorated with ``njit``/``_njit`` (bare,
    called, or attribute form like ``numba.njit(cache=True)``)."""
    for deco in fn.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr
            if isinstance(target, ast.Attribute)
            else ""
        )
        if name in ("njit", "_njit", "jit", "_jit"):
            return True
    return False


def _check_rpl140(ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _njit_decorated(fn):
            continue
        for arg in list(fn.args.posonlyargs) + list(fn.args.args) + list(
            fn.args.kwonlyargs
        ):
            if arg.arg == "rng" or "rng" in arg.arg.split("_"):
                yield arg, (
                    f"compiled kernel {fn.name}() takes an RNG parameter "
                    f"({arg.arg!r}); kernels consume precomputed uniform "
                    "arrays so the Generator call order stays identical to "
                    "the NumPy engines (the bit-exactness contract)"
                )
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in _RNG_FACTORY_NAMES:
                yield node, (
                    f"{func.id}() inside compiled kernel {fn.name}(); "
                    "streams are resolved once in the Python-level engine, "
                    "never inside a kernel"
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _RNG_DRAW_METHODS
                and isinstance(func.value, ast.Name)
                and "rng" in func.value.id.lower()
            ):
                yield node, (
                    f"{func.value.id}.{func.attr}() draws randomness inside "
                    f"compiled kernel {fn.name}(); precompute the uniforms "
                    "at the Python layer and pass them in as arrays (numba "
                    "kernels must replay the NumPy engines' exact stream)"
                )


#: ``time`` module clock readers — every way sim/store code could read
#: a clock behind the Tracer's back (``time.sleep`` is waiting, not
#: reading, and stays legal)
_CLOCK_ATTRS = frozenset(
    {
        "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
        "monotonic_ns", "process_time", "process_time_ns", "thread_time",
        "thread_time_ns",
    }
)

#: sim/store files allowed raw clock reads: the dispatch ledger's lease
#: TTLs compare against real wall time by design
_RPL150_ALLOWLIST = ("repro/store/dispatch.py",)


def _time_aliases(tree: ast.Module) -> dict[str, str]:
    """Local aliases bound by ``from time import X [as Y]`` for clock
    readers (the from-import spelling of a ``time.X()`` call)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time" and node.level == 0:
            for alias in node.names:
                if alias.name in _CLOCK_ATTRS:
                    aliases[alias.asname or alias.name] = alias.name
    return aliases


def _check_rpl150(ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
    p = _posix(ctx.path)
    if "repro/sim/" not in p and "repro/store/" not in p:
        return
    if any(p.endswith(entry) for entry in _RPL150_ALLOWLIST):
        return
    aliases = _time_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name: str | None = None
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _CLOCK_ATTRS
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            name = func.attr
        elif isinstance(func, ast.Name) and func.id in aliases:
            name = aliases[func.id]
        if name is not None:
            yield node, (
                f"time.{name}() read directly in sim/store code; take "
                "timings from the injected Tracer clock "
                "(repro.obs.trace.Tracer(clock=...)) so tests can freeze "
                "time and instrumentation stays deterministic"
            )


# ---------------------------------------------------------------------------
# registration

register_rule(
    Rule(
        id="RPL000",
        severity=ERROR,
        title="unused suppression comment",
        invariant=(
            "Every `# repro-lint: disable=` / `disable-file=` directive must "
            "suppress at least one finding. A suppression that matches "
            "nothing is a stale exemption: the violation it excused was "
            "fixed (or never existed), and leaving it in place silently "
            "licenses a future regression."
        ),
        fix="Delete the stale directive (or narrow it to the rule it suppresses).",
    )
)

register_rule(
    Rule(
        id="RPL010",
        severity=ERROR,
        title="file does not parse",
        invariant="Linted files must be valid Python: the AST pass cannot vouch for a file it cannot parse.",
        fix="Fix the syntax error reported in the message.",
    )
)

register_rule(
    Rule(
        id="RPL100",
        severity=ERROR,
        title="legacy np.random global-state call",
        invariant=(
            "No `np.random.seed()` / legacy `np.random.<dist>()` calls "
            "anywhere in the tree. The store's seed-for-seed resume and "
            "multi-worker value parity hold only if every draw flows from "
            "a cell's [root, H(cell)] SeedSequence; numpy's hidden global "
            "RandomState is process-wide mutable state that any import can "
            "perturb, which silently decouples stored results from their "
            "content hash."
        ),
        fix=(
            "Accept a `seed` argument, normalise it with "
            "repro.sim.rng.resolve_rng, and call the distribution method on "
            "that Generator (rng.normal(...), rng.integers(...), ...)."
        ),
        checker=_check_rpl100,
    )
)

register_rule(
    Rule(
        id="RPL101",
        severity=ERROR,
        title="stdlib random in engine/store code",
        invariant=(
            "No `import random` in repro/sim, repro/store, repro/walks, or "
            "repro/core. The stdlib Mersenne Twister has its own global "
            "state and no SeedSequence spawning, so it cannot participate "
            "in the [root, H(cell)] discipline the store's dedup and "
            "resume guarantees are built on."
        ),
        fix=(
            "Use a numpy Generator from repro.sim.rng (resolve_rng / "
            "spawn_rngs); for a single uniform int, rng.integers is a "
            "drop-in for random.randrange."
        ),
        checker=_check_rpl101,
    )
)

register_rule(
    Rule(
        id="RPL102",
        severity=ERROR,
        title="RNG constructed outside sim/rng.py",
        invariant=(
            "`np.random.default_rng()` / `np.random.Generator(...)` are "
            "constructed only inside repro/sim/rng.py. Everyone else goes "
            "through resolve_rng/spawn_rngs so that every stream in the "
            "system is traceable to one seed-normalisation point — ad-hoc "
            "constructors are where `default_rng()` (fresh OS entropy!) "
            "slips into a keyed path."
        ),
        fix=(
            "Replace `np.random.default_rng(seed)` with "
            "`repro.sim.rng.resolve_rng(seed)` (same Generator semantics, "
            "plus acceptance of SeedSequence/Generator inputs)."
        ),
        checker=_check_rpl102,
    )
)

register_rule(
    Rule(
        id="RPL103",
        severity=ERROR,
        title="wall-clock/OS entropy outside the allowlist",
        invariant=(
            "No `time.time()`, `datetime.now()`/`utcnow()`, or "
            "`os.urandom()` outside the allowlist (store/dispatch.py lease "
            "TTLs, experiments/cli.py run stamps, obs/report.py lease-"
            "expiry arithmetic). A wall-clock read in a keyed path makes "
            "the result a function of *when* it ran, which breaks the "
            "content hash's claim that identical payloads mean identical "
            "work. Provenance wall stamps come from the Tracer's injected "
            "`walltime` instead (repro.obs.trace)."
        ),
        fix=(
            "Thread timestamps in from the allowlisted provenance layer, or "
            "suppress the single call with `# repro-lint: disable=RPL103` "
            "when the value is provably provenance-only (never hashed, "
            "never seeded)."
        ),
        checker=_check_rpl103,
    )
)

register_rule(
    Rule(
        id="RPL110",
        severity=ERROR,
        title="raw file write in store code bypassing the I/O seam",
        invariant=(
            "In repro/store/, no raw `open(..., 'a'|'w')` and no "
            "`write_text`/`write_bytes`: every shard/ledger write goes "
            "through the StorageBackend seam (append_line / "
            "compare_and_swap) — implemented by store/locking.py and "
            "store/backend.py, the only modules allowed to touch files "
            "raw. flock is advisory and CAS is optimistic: one writer "
            "bypassing the seam can interleave bytes mid-record or "
            "silently overwrite a concurrent compare-and-swap."
        ),
        fix=(
            "Route appends through backend.append_line (or ResultStore."
            "put) and whole-blob rewrites through backend."
            "compare_and_swap; only store/locking.py and store/backend.py "
            "may open store files directly."
        ),
        checker=_check_rpl110,
    )
)

register_rule(
    Rule(
        id="RPL111",
        severity=ERROR,
        title="lock or lease acquire without guaranteed release",
        invariant=(
            "Every `flock(..., LOCK_EX|LOCK_SH)` acquisition must sit "
            "inside a `with` block or a function whose try/finally "
            "releases LOCK_UN, and every `ledger.try_claim(...)` call "
            "must sit in a function that calls `.release(...)` from an "
            "except handler or finally block. A code path that raises "
            "between acquire and release leaks the lock until process "
            "exit (deadlocking every other store writer) or leaks the "
            "lease until its TTL expires (stalling the cell for every "
            "other worker)."
        ),
        fix=(
            "Use the repro.store.locking context managers instead of "
            "calling fcntl.flock directly; pair try_claim with "
            'ledger.release(h, owner=..., op="abandon") in an except '
            "handler (see drain() in repro/store/dispatch.py)."
        ),
        checker=_check_rpl111,
    )
)

register_rule(
    Rule(
        id="RPL120",
        severity=ERROR,
        title="cover capability without batch_cover engine",
        invariant=(
            "Every ProcessSpec literal that declares the 'cover' "
            "capability declares a batch_cover engine. run_batch's sharded "
            "executor and the sweep store both assume cover sweeps "
            "vectorize; a spec without the engine silently falls back to "
            "the serial per-trial loop and regresses sweeps by an order "
            "of magnitude."
        ),
        fix=(
            "Ship a batched engine (see repro/sim/batch.py for the "
            "flat-frontier templates) and pass it as batch_cover=..., or "
            "drop the capability."
        ),
        checker=_check_rpl120,
    )
)

register_rule(
    Rule(
        id="RPL121",
        severity=WARNING,
        title="hit capability without batch_hit engine (known gap)",
        invariant=(
            "ProcessSpecs declaring 'hit' should ship a batch_hit engine. "
            "parallel/branching/gossip still run metric='hit' "
            "serially (ROADMAP item 4); this warning keeps the gap visible "
            "in every lint run without failing the build."
        ),
        fix=(
            "Port the cobra batch_hit engine pattern "
            "(batched_cobra_hit_trials) to the process, or accept the "
            "warning until ROADMAP item 4 lands."
        ),
        checker=_check_rpl121,
    )
)

register_rule(
    Rule(
        id="RPL200",
        severity=ERROR,
        title="registered sweep fails to build/expand (contract audit)",
        invariant=(
            "Every sweep in repro.store.sweeps builds and expands to a "
            "non-empty RunKey list at quick and full scale. The CLI, the "
            "dispatch workers, and the CI smokes all call expand() "
            "unconditionally; a sweep that raises there is a landmine in "
            "the registry."
        ),
        fix=(
            "Run `python -m repro.lint --contracts` locally; the message "
            "names the failing sweep and scale — fix its SweepSpec "
            "declaration."
        ),
    )
)

register_rule(
    Rule(
        id="RPL201",
        severity=ERROR,
        title="batch engine/factory breaks the driver protocol (contract audit)",
        invariant=(
            "Every ProcessSpec factory accepts keywords start/seed/target, "
            "every batch_cover engine accepts trials/start/seed/max_steps, "
            "and every batch_hit engine additionally accepts target — the "
            "exact keywords simulate()/run_batch() pass at dispatch. A "
            "mismatched signature is a TypeError at sweep time, long after "
            "registration looked fine."
        ),
        fix=(
            "Match the engine signatures in repro/sim/batch.py "
            "(keyword-only protocol arguments, process knobs with "
            "defaults after them)."
        ),
    )
)

register_rule(
    Rule(
        id="RPL202",
        severity=ERROR,
        title="docs anchor missing (contract audit)",
        invariant=(
            "Every anchor listed in repro.lint.contracts.DOC_ANCHORS "
            "resolves in the committed docs pages. tests/test_docs.py "
            "imports the same mapping, so the docs the tests require and "
            "the docs the audit checks are one list."
        ),
        fix=(
            "Restore the section the message names, or update DOC_ANCHORS "
            "(and the docs test) if the contract genuinely moved."
        ),
    )
)

register_rule(
    Rule(
        id="RPL203",
        severity=ERROR,
        title="implicit topology breaks the oracle contract (contract audit)",
        invariant=(
            "Every topology in repro.graphs.implicit.IMPLICIT_TOPOLOGIES "
            "builds a NeighborOracle binding the full vectorized protocol "
            "(n/kind/min_degree/max_degree, degree/neighbor_at/sample_one/"
            "sample_neighbors/all_neighbors) and round-trips through the "
            "store's graph axes: a RunKey naming the builder reconstructs "
            "an oracle of the same size and kind. A topology that fails "
            "either half produces sweep cells that cannot be (re)produced "
            "from their content hash."
        ),
        fix=(
            "Subclass NeighborOracle (repro/graphs/implicit.py), export "
            "the builder from repro.graphs, and register the topology with "
            "small example params in IMPLICIT_TOPOLOGIES."
        ),
    )
)

register_rule(
    Rule(
        id="RPL130",
        severity=ERROR,
        title="missing annotations in gated API module",
        invariant=(
            "Public functions in the gated API modules (sim/facade.py, "
            "sim/batch.py, sim/processes.py, sim/rng.py, store/spec.py, "
            "and repro/lint itself) carry full type annotations — every "
            "parameter and the return type. These modules define the "
            "seed/engine/store contracts; mypy can only hold the line if "
            "the line is written down."
        ),
        fix=(
            "Annotate every parameter and the return type (numpy arrays "
            "as np.ndarray, seeds as repro.sim.rng.SeedLike)."
        ),
        checker=_check_rpl130,
    )
)

register_rule(
    Rule(
        id="RPL140",
        severity=ERROR,
        title="RNG constructed or drawn inside a compiled kernel",
        invariant=(
            "Functions decorated with njit/_njit take no `rng` parameter, "
            "construct no Generator (resolve_rng/spawn_rngs/default_rng), "
            "and call no draw method on an rng-named object. The compiled "
            "backend is bit-exact with the NumPy engines only because "
            "every draw happens at the Python layer in the engines' exact "
            "call order; randomness inside a kernel would fork the stream "
            "(and numba's own RNG state is per-thread besides)."
        ),
        fix=(
            "Draw the uniforms in the Python-level engine wrapper "
            "(rng.random(...) in the same order/shape/dtype as the NumPy "
            "twin) and pass the arrays into the kernel as arguments."
        ),
        checker=_check_rpl140,
    )
)

register_rule(
    Rule(
        id="RPL150",
        severity=ERROR,
        title="raw clock read in sim/store code",
        invariant=(
            "In repro/sim/ and repro/store/, no direct `time.time()`/"
            "`perf_counter()`/`monotonic()`/`process_time()` (or their "
            "_ns/from-import spellings) outside store/dispatch.py's lease "
            "arithmetic: every timing measurement routes through the "
            "injected Tracer clock (repro.obs.trace). A raw clock read is "
            "invisible to the telemetry layer and untestable — the "
            "injected clock lets tests freeze time and keeps RPL103 "
            "honest. `time.sleep()` is waiting, not reading, and stays "
            "legal."
        ),
        fix=(
            "Accept a Tracer (or use repro.obs.trace.current_tracer()) and "
            "read `tracer.clock()` / `tracer.walltime()`; or, for code "
            "that genuinely needs the OS clock, add the file to "
            "_RPL150_ALLOWLIST with a comment saying why."
        ),
        checker=_check_rpl150,
    )
)
