"""Suppression comments: ``# repro-lint: disable=RPL###``.

Two scopes:

* ``# repro-lint: disable=RPL103`` on the line of the flagged node
  suppresses matching findings **on that line** (the line the finding
  reports, i.e. where the offending statement starts);
* ``# repro-lint: disable-file=RPL103`` anywhere in the file
  suppresses the rule for the **whole file**.

Both accept a comma-separated id list.  Every directive must earn its
keep: a suppression that matches no finding is itself reported as
**RPL000** (unused suppression), so stale exemptions cannot accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppressions", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable-file|disable)\s*=\s*"
    r"(?P<ids>RPL\d+(?:\s*,\s*RPL\d+)*)"
)


@dataclass
class Suppressions:
    """Parsed directives of one file plus usage bookkeeping.

    Attributes
    ----------
    by_line : dict[int, set[str]]
        Line number → rule ids suppressed on that line.
    by_file : dict[str, int]
        Rule id → line number of its ``disable-file`` directive.
    used : set[tuple[int, str]]
        ``(directive line, rule id)`` pairs that suppressed a finding;
        filled in by the runner.
    """

    by_line: dict[int, set[str]] = field(default_factory=dict)
    by_file: dict[str, int] = field(default_factory=dict)
    used: set[tuple[int, str]] = field(default_factory=set)

    def suppresses(self, rule_id: str, line: int) -> bool:
        """Whether a finding of *rule_id* at *line* is suppressed.

        Marks the matching directive used (for the RPL000 audit).
        """
        if rule_id in self.by_line.get(line, ()):
            self.used.add((line, rule_id))
            return True
        if rule_id in self.by_file:
            self.used.add((self.by_file[rule_id], rule_id))
            return True
        return False

    def unused(self) -> list[tuple[int, str]]:
        """``(line, rule id)`` of every directive that matched nothing."""
        declared = {
            (line, rule_id)
            for line, ids in self.by_line.items()
            for rule_id in ids
        }
        declared.update((line, rule_id) for rule_id, line in self.by_file.items())
        return sorted(declared - self.used)


def parse_suppressions(source: str) -> Suppressions:
    """Extract every directive from *source* comments.

    Parameters
    ----------
    source : str
        The file text.

    Returns
    -------
    Suppressions
        Parsed line- and file-scope directives.
    """
    supp = Suppressions()
    for line_no, comment in _iter_comments(source):
        match = _DIRECTIVE.search(comment)
        if match is None:
            continue
        ids = [part.strip() for part in match.group("ids").split(",")]
        if match.group("scope") == "disable-file":
            for rule_id in ids:
                supp.by_file.setdefault(rule_id, line_no)
        else:
            supp.by_line.setdefault(line_no, set()).update(ids)
    return supp


def _iter_comments(source: str) -> list[tuple[int, str]]:
    """``(line, text)`` for every comment token (tokenize-accurate, so
    directive-looking text inside string literals is ignored)."""
    try:
        return [
            (tok.start[0], tok.string)
            for tok in tokenize.generate_tokens(io.StringIO(source).readline)
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # unparseable tail: fall back to a line scan (the runner reports
        # the syntax error separately via RPL010)
        return [
            (i, line[line.index("#"):])
            for i, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
