"""``python -m repro.lint`` — the determinism & contract linter CLI.

Usage::

    python -m repro.lint src benchmarks examples ci
    python -m repro.lint src --format=json
    python -m repro.lint src benchmarks --contracts
    python -m repro.lint --explain RPL100
    python -m repro.lint --list

Exit status: **1** when any error-severity finding survives
suppression, **0** otherwise (warnings are reported but never fail),
**2** for usage errors.  ``--format=json`` emits one document::

    {"findings": [...], "errors": N, "warnings": N}

whose ``findings`` entries round-trip through
:meth:`repro.lint.Finding.from_dict`.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from typing import IO

from .rules import ERROR, Finding, RULES, WARNING, all_rules, get_rule
from .runner import run_paths

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Statically enforce the determinism invariants the sweep "
            "store depends on (see docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (recursively)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--explain", metavar="RPL###", default=None,
        help="print a rule's invariant and its fix, then exit",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_rules",
        help="list every registered rule, then exit",
    )
    parser.add_argument(
        "--contracts", action="store_true",
        help="also run the import-time contract audit "
        "(sweep expansion, engine protocol, docs anchors)",
    )
    return parser


def _explain(rule_id: str, out: IO[str]) -> int:
    try:
        rule = get_rule(rule_id.upper())
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"{rule.id} [{rule.severity}] {rule.title}", file=out)
    print(file=out)
    print(f"Invariant: {rule.invariant}", file=out)
    print(file=out)
    print(f"Fix: {rule.fix}", file=out)
    return 0


def _render(findings: list[Finding], fmt: str, out: IO[str]) -> None:
    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings = sum(1 for f in findings if f.severity == WARNING)
    if fmt == "json":
        json.dump(
            {
                "findings": [f.to_dict() for f in findings],
                "errors": errors,
                "warnings": warnings,
            },
            out,
            indent=2,
            sort_keys=True,
        )
        out.write("\n")
        return
    for finding in findings:
        print(finding.render(), file=out)
    if findings:
        print(file=out)
    print(f"repro-lint: {errors} error(s), {warnings} warning(s)", file=out)


def main(argv: Sequence[str] | None = None, out: IO[str] | None = None) -> int:
    """Run the linter CLI.

    Parameters
    ----------
    argv : sequence of str, optional
        Arguments (defaults to ``sys.argv[1:]``).
    out : IO[str], optional
        Output stream (defaults to stdout) — injectable for tests.

    Returns
    -------
    int
        Process exit status (0 clean, 1 errors found, 2 usage error).
    """
    stream = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)

    if args.explain is not None:
        return _explain(args.explain, stream)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.severity:7s}  {rule.title}", file=stream)
        return 0

    if not args.paths and not args.contracts:
        print(
            "repro-lint: nothing to do (pass paths, --contracts, "
            "--explain, or --list)",
            file=sys.stderr,
        )
        return 2

    try:
        findings = run_paths(args.paths) if args.paths else []
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    if args.contracts:
        from .contracts import run_contract_audit

        findings = findings + run_contract_audit()

    _render(findings, args.format, stream)
    return 1 if any(f.severity == ERROR for f in findings) else 0


#: ids the CLI treats as known — re-exported for the docs test
KNOWN_RULE_IDS = tuple(sorted(RULES))
