"""Import-time contract audit: cross-check the *live* registries.

The AST rules in :mod:`repro.lint.rules` see files one at a time; this
module loads the actual registries and verifies the cross-cutting
contracts static text cannot:

* **RPL200** — every registered sweep builds and expands to a
  non-empty cell list at both scales (a sweep that raises on
  ``expand()`` is dead weight the CLI will trip over);
* **RPL201** — every ``ProcessSpec`` batch engine and factory accepts
  the keyword protocol ``run_batch`` drives it with (``trials``,
  ``start``, ``seed``, ``max_steps``, plus ``target`` for hit
  engines; ``start``/``seed``/``target`` for factories);
* **RPL202** — every docs anchor ``tests/test_docs.py`` expects
  resolves in the committed docs pages (:data:`DOC_ANCHORS` is the
  single source of truth the test suite imports);
* **RPL203** — every registered implicit topology
  (:data:`repro.graphs.implicit.IMPLICIT_TOPOLOGIES`) binds the full
  ``NeighborOracle`` protocol and round-trips through the store's
  graph axes (``RunKey.build_graph`` reconstructs the same oracle).

All four are cheap (no simulation runs) and emit the same
:class:`~repro.lint.rules.Finding` records as the AST pass, so the CLI
merges them with ``--contracts``.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from collections.abc import Callable, Iterable
from typing import Any

from .rules import ERROR, Finding

__all__ = [
    "DOC_ANCHORS",
    "audit_sweeps",
    "audit_process_engines",
    "audit_docs",
    "audit_implicit_oracles",
    "run_contract_audit",
]

#: every anchor the docs test suite requires, per page —
#: tests/test_docs.py parametrizes over this mapping, and the RPL202
#: audit checks the same strings, so the two can never drift apart
DOC_ANCHORS: dict[str, tuple[str, ...]] = {
    "docs/architecture.md": (
        "Layer map",
        "flat-frontier",
        "Implicit topologies",
        "NeighborOracle",
        "bit-packed",
        "Engine selection",
        "seed-spawning",
        "shards",
        "batch_cover",
        "batch_hit",
        "The sweep store",
        "content-addressed",
        "The lint layer",
        "repro.lint",
        "Backend selection",
        "kernels_numba",
        "vectorized[numba]",
        "bit-exact",
        "The observability layer",
        "repro.obs",
        "NullTracer",
        "events.jsonl",
    ),
    "docs/benchmarks.md": (
        "regression gate",
        "BENCH_",
        "emit_bench_json",
        "check_bench_regression",
        "schema: 2",
        "bench-artifacts",
        "threshold",
    ),
    "docs/sweeps.md": (
        "SweepSpec schema",
        "Content addressing",
        "Seed policy",
        "Store layout",
        "resume",
        "shards/",
        "Campaigns",
        "Query API",
        "sweep run",
        "sweep status",
        "sweep show",
        "Multi-worker dispatch",
        "lease protocol",
        "claims.jsonl",
        "Worker lifecycle",
        "value-for-value identical",
        "fsck and compaction",
        "sweep work",
        "sweep fsck",
        "sweep compact",
        "Campaign(workers=N)",
        "expires_unix",
        "Implicit topologies",
        "graph_kind",
        "`backend`",
        "sweep report",
        "sweep top",
        "Object-store backends",
        "StorageBackend",
        "compare-and-swap",
        "InMemoryCASBackend",
        "HTTPCASBackend",
        "sweep declare",
        "sweeps.jsonl",
        "--loop",
        "SIGTERM",
    ),
    "docs/service.md": (
        "StorageBackend protocol",
        "read_blob",
        "append_line",
        "list_prefix",
        "compare_and_swap",
        "zero-byte blob is absent",
        "LocalBackend",
        "CASBackend",
        "InMemoryCASBackend",
        "HTTPCASBackend",
        "S3CASBackend",
        "CAS ledger semantics",
        "value-for-value identical",
        "sweep serve",
        ":memory:",
        "GET /health",
        "GET /cell/",
        "GET /frame",
        "PUT /blob/",
        "304 Not Modified",
        "412 Precondition Failed",
        "repro.frame/1",
        "kind=\"http\"",
        "sweep declare",
        "--loop",
        "SIGTERM lease release",
        "--max-rounds",
        "exit-code contract",
    ),
    "docs/observability.md": (
        "Span model",
        "campaign → cell → phase",
        "Event schema",
        "events.jsonl",
        "Counters",
        "Straggler reports",
        "sweep report",
        "sweep top",
        "--trace",
        "--profile",
        "NullTracer",
        "seed-for-seed",
        "RPL150",
        "peak_rss_mb",
    ),
    "docs/static-analysis.md": (
        "Rule table",
        "Suppressions",
        "RPL150",
        "repro-lint: disable=",
        "repro-lint: disable-file=",
        "python -m repro.lint",
        "--explain",
        "--format=json",
        "--contracts",
        "Contract audit",
        "unused suppression",
    ),
}


def _finding(rule: str, where: str, message: str) -> Finding:
    return Finding(rule=rule, severity=ERROR, path=where, line=0, col=0, message=message)


def audit_sweeps() -> list[Finding]:
    """RPL200: every registered sweep expands at quick and full scale.

    Returns
    -------
    list of Finding
        One finding per sweep spec that fails to build or expands to
        an empty cell list.
    """
    from ..store.sweeps import build_sweep, sweep_names

    findings: list[Finding] = []
    for name in sweep_names():
        for scale in ("quick", "full"):
            try:
                specs = build_sweep(name, scale=scale, seed=0)
                for spec in specs:
                    if not spec.expand():
                        findings.append(
                            _finding(
                                "RPL200",
                                f"sweep:{name}",
                                f"spec {spec.name!r} expands to zero cells "
                                f"at scale={scale!r}",
                            )
                        )
            except Exception as exc:  # noqa: BLE001 - audit reports, never raises
                findings.append(
                    _finding(
                        "RPL200",
                        f"sweep:{name}",
                        f"build/expand failed at scale={scale!r}: "
                        f"{type(exc).__name__}: {exc}",
                    )
                )
    return findings


#: keyword parameters run_batch passes to every batch_cover engine
_BATCH_COVER_PROTOCOL = frozenset({"trials", "start", "seed", "max_steps"})
#: batch_hit engines additionally race to a target
_BATCH_HIT_PROTOCOL = _BATCH_COVER_PROTOCOL | {"target"}
#: keywords the facade passes to every factory (ProcessSpec docstring)
_FACTORY_PROTOCOL = frozenset({"start", "seed", "target"})


def _accepts_keywords(func: Callable[..., Any], required: Iterable[str]) -> list[str]:
    """Names in *required* the callable's signature cannot bind."""
    try:
        signature = inspect.signature(func)
    except (TypeError, ValueError):
        return []  # builtins/C callables: nothing to check statically
    params = signature.parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return []
    return sorted(name for name in required if name not in params)


def audit_process_engines(specs: Iterable[Any] | None = None) -> list[Finding]:
    """RPL201: batch engines and factories accept the driver protocol.

    Parameters
    ----------
    specs : iterable of ProcessSpec, optional
        Specs to audit; defaults to the live registry.

    Returns
    -------
    list of Finding
        One finding per callable that cannot bind the keywords
        ``run_batch``/``simulate`` will pass it.
    """
    if specs is None:
        from ..sim.processes import all_processes

        specs = all_processes()
    findings: list[Finding] = []
    for spec in specs:
        where = f"process:{spec.name}"
        for label, func, protocol in (
            ("factory", spec.factory, _FACTORY_PROTOCOL),
            ("batch_cover", spec.batch_cover, _BATCH_COVER_PROTOCOL),
            ("batch_hit", spec.batch_hit, _BATCH_HIT_PROTOCOL),
        ):
            if func is None:
                continue
            missing = _accepts_keywords(func, protocol)
            if missing:
                findings.append(
                    _finding(
                        "RPL201",
                        where,
                        f"{label} signature cannot bind the driver "
                        f"keyword(s) {missing}; run_batch/simulate will "
                        "TypeError at dispatch",
                    )
                )
    return findings


def audit_docs(root: str | Path | None = None) -> list[Finding]:
    """RPL202: the anchors :data:`DOC_ANCHORS` names all resolve.

    Parameters
    ----------
    root : str or Path, optional
        Repository root holding ``docs/``; defaults to the current
        working directory (where CI runs the audit).

    Returns
    -------
    list of Finding
        One finding per missing page or anchor.
    """
    base = Path(root) if root is not None else Path.cwd()
    findings: list[Finding] = []
    for rel, anchors in DOC_ANCHORS.items():
        page = base / rel
        if not page.is_file():
            findings.append(
                _finding("RPL202", rel, "documented page is missing from the tree")
            )
            continue
        text = page.read_text(encoding="utf-8")
        for anchor in anchors:
            if anchor not in text:
                findings.append(
                    _finding(
                        "RPL202",
                        rel,
                        f"anchor {anchor!r} not found (tests/test_docs.py "
                        "requires it)",
                    )
                )
    return findings


#: the vectorized sampling protocol every oracle must bind (RPL203)
_ORACLE_PROTOCOL = (
    "degree",
    "neighbor_at",
    "sample_one",
    "sample_neighbors",
    "all_neighbors",
)


def audit_implicit_oracles() -> list[Finding]:
    """RPL203: registered implicit topologies bind the oracle protocol.

    For every entry of
    :data:`repro.graphs.implicit.IMPLICIT_TOPOLOGIES` — ``name ->
    (builder, small example params)`` — build the example instance and
    check (a) the full ``NeighborOracle`` surface is bound (``n``,
    ``kind``, ``min_degree``/``max_degree`` and the vectorized sampling
    methods), and (b) the topology round-trips through the store's
    graph axes: a :class:`~repro.store.spec.RunKey` naming the builder
    reconstructs an oracle of the same size and kind, so sweep cells
    over implicit graphs are (re)producible from their content hash.

    Returns
    -------
    list of Finding
        One finding per broken topology.
    """
    from ..graphs.implicit import IMPLICIT_TOPOLOGIES, NeighborOracle
    from ..store.spec import RunKey

    findings: list[Finding] = []
    for name, (builder_name, params) in sorted(IMPLICIT_TOPOLOGIES.items()):
        where = f"implicit:{name}"
        try:
            import repro.graphs as graphs_mod

            builder = getattr(graphs_mod, builder_name, None)
            if builder is None or not callable(builder):
                findings.append(
                    _finding(
                        "RPL203",
                        where,
                        f"builder {builder_name!r} is not exported by "
                        "repro.graphs (RunKey.build_graph cannot resolve it)",
                    )
                )
                continue
            oracle = builder(**params)
            if not isinstance(oracle, NeighborOracle):
                findings.append(
                    _finding(
                        "RPL203",
                        where,
                        f"builder {builder_name!r} returned "
                        f"{type(oracle).__name__}, not a NeighborOracle",
                    )
                )
                continue
            missing = [
                attr
                for attr in _ORACLE_PROTOCOL
                if not callable(getattr(oracle, attr, None))
            ]
            for attr in ("n", "kind", "min_degree", "max_degree"):
                if not hasattr(oracle, attr):
                    missing.append(attr)
            if missing:
                findings.append(
                    _finding(
                        "RPL203",
                        where,
                        f"oracle does not bind protocol member(s) {missing}",
                    )
                )
                continue
            key = RunKey(
                process="cobra",
                metric="cover",
                graph_builder=builder_name,
                graph_params=tuple(
                    (k, tuple(v) if isinstance(v, (list, tuple)) else v)
                    for k, v in sorted(params.items())
                ),
            )
            rebuilt = key.build_graph()
            if (
                getattr(rebuilt, "n", None) != oracle.n
                or getattr(rebuilt, "kind", None) != oracle.kind
            ):
                findings.append(
                    _finding(
                        "RPL203",
                        where,
                        "RunKey.build_graph does not round-trip the topology "
                        f"(got n={getattr(rebuilt, 'n', None)}, "
                        f"kind={getattr(rebuilt, 'kind', None)!r}; expected "
                        f"n={oracle.n}, kind={oracle.kind!r})",
                    )
                )
        except Exception as exc:  # noqa: BLE001 - audit reports, never raises
            findings.append(
                _finding(
                    "RPL203",
                    where,
                    f"build/round-trip failed: {type(exc).__name__}: {exc}",
                )
            )
    return findings


def run_contract_audit(root: str | Path | None = None) -> list[Finding]:
    """Run all four audits (the CLI's ``--contracts`` entry point).

    Parameters
    ----------
    root : str or Path, optional
        Repository root for the docs audit.

    Returns
    -------
    list of Finding
        Concatenated RPL200/RPL201/RPL202/RPL203 findings.
    """
    return (
        audit_sweeps()
        + audit_process_engines()
        + audit_docs(root)
        + audit_implicit_oracles()
    )
