"""repro.lint — the determinism & contract linter.

Everything the sweep store guarantees (content-addressed dedup,
seed-for-seed resume, multi-worker value parity) rests on invariants
that live *outside* any one function: every engine draws randomness
through the ``[root, H(cell)]`` seed discipline, nothing reads the
wall clock in a keyed path, every store write goes through the flock
primitives.  This package makes those invariants machine-checked:

* :mod:`repro.lint.rules` — the ``RPL###`` rule registry (AST passes
  over one file each, with per-line/per-file suppressions);
* :mod:`repro.lint.runner` — file collection + suppression filtering;
* :mod:`repro.lint.contracts` — the import-time contract audit over
  the live process/sweep registries and docs anchors;
* :mod:`repro.lint.cli` — ``python -m repro.lint`` (also mounted as
  the ``lint`` verb on the experiments CLI).

See ``docs/static-analysis.md`` for the rule table and the rationale
behind each invariant.
"""

from __future__ import annotations

from .contracts import DOC_ANCHORS, run_contract_audit
from .rules import ERROR, WARNING, Finding, Rule, all_rules, get_rule, register_rule
from .runner import collect_files, lint_file, lint_source, run_paths

__all__ = [
    "DOC_ANCHORS",
    "ERROR",
    "WARNING",
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "register_rule",
    "collect_files",
    "lint_file",
    "lint_source",
    "run_paths",
    "run_contract_audit",
]
