"""``T13_biased`` — Theorem 13, Lemma 16, Corollary 17: biased walks.

Three checks:

1. **Theorem 13** (ε-biased): the toward-target controller's stationary
   mass at the target meets the theorem's lower bound on every test
   graph, across ε values.
2. **Lemma 16** (Metropolis construction): the chain is stationary for
   its designed distribution, and its loop-free derivative is an
   inverse-degree-style biased walk.
3. **Corollary 17**: the Metropolis chain's exact return time *equals*
   ``(d(v) + Σ σ̂(x,v) d(x))/d(v)``.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..core import (
    epsilon_biased_transition,
    exact_return_time,
    metropolis_chain_lemma16,
    return_time_bound_cor17,
    stationary_lower_bound_thm13,
    toward_target_controller,
)
from ..graphs import (
    complete_graph,
    cycle_graph,
    grid,
    hypercube,
    kary_tree,
    lollipop,
)
from ..spectral import stationary_of_chain
from .registry import ExperimentResult, register


@register("T13_biased", "Thm 13 + Lemma 16/Cor 17: biased-walk stationary bounds")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    eps_values = [0.1, 0.25, 0.5] if scale == "quick" else [0.05, 0.1, 0.25, 0.5, 0.75]
    thm13_graphs = [cycle_graph(16), grid(4, 2), hypercube(4)]
    if scale == "full":
        thm13_graphs += [cycle_graph(64), lollipop(20)]
    t13 = Table(
        ["graph", "ε", "π(target) measured", "Thm13 lower bound", "holds"],
        title="T13 ε-biased stationary mass at the target",
    )
    findings: dict[str, float] = {}
    all13 = True
    for g in thm13_graphs:
        target = 0
        ctrl = toward_target_controller(g, target)
        for eps in eps_values:
            p = epsilon_biased_transition(g, ctrl, eps)
            pi = stationary_of_chain(0.5 * np.eye(g.n) + 0.5 * p, tol=1e-13)
            bound = stationary_lower_bound_thm13(g, [target], eps)
            holds = pi[target] >= bound - 1e-9
            all13 &= holds
            t13.add_row([g.name, eps, float(pi[target]), bound, holds])
    findings["thm13_all_hold"] = float(all13)

    cor17_graphs = [cycle_graph(16), complete_graph(8), kary_tree(2, 3), lollipop(15)]
    t17 = Table(
        ["graph", "v", "Cor17 bound", "return(M) exact", "|rel err|", "return(P)"],
        title="Cor 17: Metropolis-chain return time vs bound",
    )
    worst_err = 0.0
    for g in cor17_graphs:
        v = 0
        mc = metropolis_chain_lemma16(g, [v])
        bound = return_time_bound_cor17(g, v)
        ret_m = exact_return_time(mc.m, v)
        ret_p = exact_return_time(mc.p, v)
        err = abs(ret_m - bound) / bound
        worst_err = max(worst_err, err)
        t17.add_row([g.name, v, bound, ret_m, err, ret_p])
    findings["cor17_worst_rel_err"] = worst_err
    return ExperimentResult(
        experiment_id="T13_biased",
        tables=[t13, t17],
        findings=findings,
        notes=(
            "Cor 17's value is exactly 1/π_M(v) of Lemma 16's Metropolis "
            "chain (with self-loops). The loop-free derivative P pays at "
            "most the holding factor 1/(1−M(v,v)) — reproduction note R2."
        ),
    )
