"""``L11_tensor`` — Lemma 11: the pair walk on ``D(G×G)`` mixes fast and
pebble collision probability is at most ``2/(n²+n) + 1/n⁴``.

For small regular non-bipartite graphs we build the exact pair chain,
verify its Eulerian stationary form, bound the directed Cheeger
constant from below via the paper's ``Φ_G/(4d²)`` formula (validated
exactly on K4), compute ``λ₁`` of Chung's directed Laplacian, and push
a worst-case start through ``s`` steps of the chain to check the
collision bound pointwise.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..graphs import complete_graph, circulant, cycle_graph, walt_pair_chain
from ..spectral import (
    chung_convergence_steps,
    chung_lambda_bounds,
    circulation,
    circulation_balance_residual,
    conductance_exact,
    directed_cheeger_exact,
    directed_laplacian_lambda1,
    evolve,
    walt_pair_cheeger_lower_bound,
)
from .registry import ExperimentResult, register


@register("L11_tensor", "Lemma 11: pair-walk collision prob <= 2/(n^2+n) + 1/n^4")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    graphs = [cycle_graph(5), complete_graph(5), cycle_graph(7)]
    if scale == "full":
        graphs += [complete_graph(7), circulant(9, [1, 2]), cycle_graph(9)]
    table = Table(
        [
            "graph",
            "states",
            "π residual",
            "h lower bnd",
            "λ₁",
            "λ₁≥h²/2",
            "steps s",
            "max collision",
            "L11 bound",
            "holds",
        ],
        title="L11 pair chain on D(G×G)",
    )
    findings: dict[str, float] = {}
    all_hold = True
    for g in graphs:
        n = g.n
        d = int(g.degrees[0])
        chain = walt_pair_chain(g)
        resid = circulation_balance_residual(
            circulation(chain.transition, chain.stationary)
        )
        phi = conductance_exact(g, max_n=16) if n <= 16 else 2.0 / n
        h_lb = walt_pair_cheeger_lower_bound(phi, d)
        lam = directed_laplacian_lambda1(chain.transition, chain.stationary)
        lam_ok = lam >= chung_lambda_bounds(h_lb)[0] - 1e-12
        c = 4.0 * np.log(n * n)
        s = chung_convergence_steps(lam, float(chain.stationary.min()), c)
        # worst-case start: an arbitrary off-diagonal state
        start = np.zeros(n * n)
        start[chain.state_id(0, n // 2)] = 1.0
        dist = evolve(chain.transition, start, s)
        diag = chain.diagonal_states()
        max_coll = float(dist[diag].max())
        bound = 2.0 / (n * n + n) + 1.0 / n**4
        holds = max_coll <= bound + 1e-9
        all_hold &= holds
        table.add_row(
            [g.name, n * n, resid, h_lb, lam, lam_ok, s, max_coll, bound, holds]
        )
        findings[f"collision_margin_{g.name}"] = bound - max_coll
    # exact directed Cheeger validation on the one enumerable case
    k4 = complete_graph(4)
    chain4 = walt_pair_chain(k4)
    h_exact = directed_cheeger_exact(chain4.transition, chain4.stationary, max_states=16)
    h_lb4 = walt_pair_cheeger_lower_bound(conductance_exact(k4, max_n=8), 3)
    findings["k4_h_exact"] = h_exact
    findings["k4_h_lower_bound"] = h_lb4
    findings["k4_lower_bound_valid"] = float(h_exact >= h_lb4)
    findings["all_collision_bounds_hold"] = float(all_hold)
    return ExperimentResult(
        experiment_id="L11_tensor",
        tables=[table],
        findings=findings,
        notes=(
            "Base graphs must be non-bipartite: for bipartite G the pair "
            "chain on D(G×G) is reducible (color-parity invariant) and "
            "Lemma 11's convergence machinery degenerates — an implicit "
            "assumption of the paper (reproduction note R1)."
        ),
    )
