"""``ACTIVE_growth`` — §1.1 technique: the cobra walk's "initial phase
instantiates a large number of essentially parallel random walks".

We record the active-set size trajectory ``|S_t|`` on an expander, a
torus, and a cycle, and report: the early growth rate (exponential on
the expander — the frontier nearly doubles until collisions bite),
the saturation level (the breathing equilibrium fraction of ``n``),
and the time to reach half of the saturation size.  These are the
structural facts Theorem 8's two-phase analysis leans on.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..graphs import cycle_graph, random_regular, torus
from ..sim.batch import batched_cobra_active_sizes
from ..sim.rng import spawn_seeds
from .registry import ExperimentResult, register

_SIZE = {"quick": 1024, "full": 8192}
_STEPS = {"quick": 400, "full": 1500}
_TRIALS = {"quick": 4, "full": 8}


def _trajectory(graph, seed, steps: int, trials: int) -> np.ndarray:
    """Mean ``|S_t|`` trajectory over *trials* batched cobra runs (the
    per-trial curves ride one flat frontier; no per-step Python loop)."""
    sizes = batched_cobra_active_sizes(graph, trials=trials, steps=steps, seed=seed)
    return sizes.mean(axis=0)


@register("ACTIVE_growth", "§1.1: early exponential frontier growth, then saturation")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    n = _SIZE[scale]
    steps = _STEPS[scale]
    seeds = spawn_seeds(seed, 8)
    side = int(np.sqrt(n)) - 1
    graphs = {
        "expander(8-reg)": random_regular(n, 8, seed=seeds[0]),
        "torus2d": torus(side, 2),
        "cycle": cycle_graph(n),
    }
    table = Table(
        [
            "graph",
            "n",
            "early growth/step",
            "saturation |S|/n",
            "t to half-saturation",
        ],
        title="ACTIVE active-set dynamics of the 2-cobra walk",
    )
    findings: dict[str, float] = {}
    for (name, g), s in zip(graphs.items(), seeds[1:]):
        traj = _trajectory(g, s, steps, _TRIALS[scale])
        sat = float(np.mean(traj[-steps // 4 :])) / g.n
        half = 0.5 * sat * g.n
        reach = np.flatnonzero(traj >= half)
        t_half = int(reach[0]) if reach.size else steps
        # early growth rate: mean multiplicative factor over the first
        # phase (while |S| < 10% of saturation)
        limit = max(2.0, 0.1 * sat * g.n)
        early = traj[traj <= limit]
        early = early[: max(2, early.size)]
        if early.size >= 2:
            rate = float(np.exp(np.mean(np.diff(np.log(early[early > 0])))))
        else:
            rate = np.nan
        table.add_row([name, g.n, rate, sat, t_half])
        findings[f"growth_rate_{name}"] = rate
        findings[f"saturation_{name}"] = sat
        findings[f"t_half_{name}"] = float(t_half)
    return ExperimentResult(
        experiment_id="ACTIVE_growth",
        tables=[table],
        findings=findings,
        notes=(
            "Expanders show near-geometric early growth (rate close to the "
            "branching limit) and high saturation; the cycle's frontier adds "
            "only O(1) per step (rate ≈ 1), which is why low-conductance "
            "graphs pay Φ^-2 in Theorem 8."
        ),
    )
