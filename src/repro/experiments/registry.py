"""Experiment registry.

Every reproduced paper claim is an :class:`Experiment`: a named runner
that measures the quantity the claim bounds and returns printable
tables plus machine-checkable findings.  The registry backs both the
CLI (``python -m repro.experiments``) and the benchmark suite (one
bench per experiment id).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from ..analysis.tables import Table

__all__ = ["Experiment", "ExperimentResult", "register", "get", "all_experiments"]


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    ``findings`` holds the scalar facts assertions are written against
    (fitted exponents, ratios, booleans-as-floats); ``tables`` are the
    rows a reader compares with the paper's claims; ``figures`` are
    pre-rendered ASCII plots (the paper has no figures — these are the
    figure-shaped views of the same sweeps); ``notes`` records caveats
    (substitutions, known paper subtleties).
    """

    experiment_id: str
    tables: list[Table]
    findings: dict[str, float]
    notes: str = ""
    figures: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"### {self.experiment_id}"]
        for t in self.tables:
            parts.append(t.render())
            parts.append("")
        for fig in self.figures:
            parts.append(fig)
            parts.append("")
        if self.findings:
            parts.append("findings:")
            for k, v in sorted(self.findings.items()):
                parts.append(f"  {k} = {v:.6g}")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper claim."""

    id: str
    claim: str
    runner: Callable[..., ExperimentResult]

    def run(self, *, scale: str = "quick", seed: int = 0) -> ExperimentResult:
        """Execute at ``quick`` (seconds; used by tests/benches) or
        ``full`` (the EXPERIMENTS.md configuration)."""
        if scale not in ("quick", "full"):
            raise ValueError(f"unknown scale {scale!r}; use 'quick' or 'full'")
        return self.runner(scale=scale, seed=seed)


_REGISTRY: dict[str, Experiment] = {}


def register(id: str, claim: str) -> Callable:
    """Decorator registering a runner function under an experiment id."""

    def deco(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {id!r}")
        _REGISTRY[id] = Experiment(id=id, claim=claim, runner=fn)
        return fn

    return deco


def get(id: str) -> Experiment:
    """Look up an experiment, raising with the available ids on miss."""
    _load_all()
    try:
        return _REGISTRY[id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {id!r}; known: {known}") from None


def all_experiments() -> list[Experiment]:
    """All registered experiments, sorted by id."""
    _load_all()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def _load_all() -> None:
    """Import every exp_* module so its @register decorator runs."""
    from . import (  # noqa: F401
        exp_active_growth,
        exp_baselines,
        exp_biased,
        exp_conductance,
        exp_epochs,
        exp_expander,
        exp_general,
        exp_grid,
        exp_gridchain,
        exp_kcobra,
        exp_matthews,
        exp_regular,
        exp_star,
        exp_tensor,
        exp_trees,
        exp_walt,
    )
