"""Per-claim reproduction experiments (see DESIGN.md §4 for the index)."""

from .registry import Experiment, ExperimentResult, all_experiments, get, register

__all__ = ["Experiment", "ExperimentResult", "all_experiments", "get", "register"]
