"""``T8_epochs`` — the epoch machinery inside Theorem 8's proof.

The proof of Theorem 8 runs Walt with ``δn`` pebbles from one vertex
in epochs of length ``s`` and argues, via second-order
inclusion–exclusion over the pebble events ``E_i``,

    ``Pr[some pebble sits on v at exactly time s] ≥ δ/2 − δ²/2``.

We validate the three ingredients empirically on small regular
non-bipartite graphs:

1. *marginal*: each pebble's occupancy of ``v`` at time ``s`` is close
   to ``1/n`` (each pebble is marginally a lazy simple walk, mixed);
2. *pairwise*: two pebbles' joint occupancy of ``v`` is at most the
   Lemma 11 bound ``2/(n²+n) + 1/n⁴``;
3. *union*: the per-epoch hit probability of a fixed vertex clears the
   inclusion–exclusion floor.

The epoch length used is the paper's own
``s = (32 d⁴/Φ²)(log(n²+n) + 4 log n²)``, clipped for the simulation
budget only when far beyond the measured mixing plateau.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..graphs import Graph, complete_graph, cycle_graph, petersen
from ..sim.batch import batched_walt_positions_at
from ..sim.rng import spawn_seeds
from ..spectral import conductance_exact, theorem8_epoch_length
from .registry import ExperimentResult, register

_TRIALS = {"quick": 150, "full": 500}
_S_CAP = {"quick": 1500, "full": 5000}


def _epoch_hit_stats(
    g: Graph, delta: float, s: int, trials: int, seed
) -> tuple[float, float]:
    """(P[v occupied at time s], mean pebble count on v at time s).

    All trials advance through the batched fixed-horizon Walt engine
    (:func:`repro.sim.batch.batched_walt_positions_at`) — one grouped
    move per round for every trial at once, instead of *trials*
    serial ``WaltProcess`` step loops."""
    num = max(2, int(delta * g.n))
    target = g.n - 1
    positions = batched_walt_positions_at(
        g, trials=trials, steps=s, lazy=True, start=0, seed=seed, pebbles=num
    )
    on_target = (positions == target).sum(axis=1)
    return float((on_target > 0).mean()), float(on_target.mean())


@register("T8_epochs", "Thm 8 proof internals: per-epoch hit probability >= δ/2 − δ²/2")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    trials = _TRIALS[scale]
    graphs = [cycle_graph(5), petersen(), complete_graph(6)]
    if scale == "full":
        graphs.append(cycle_graph(9))
    delta = 0.5
    # the paper's inclusion-exclusion floor: δ/2 − 2δ²/4 = δ/2 − δ²/2
    floor = delta / 2 - delta * delta / 2
    table = Table(
        [
            "graph",
            "n",
            "Φ",
            "paper s",
            "s used",
            "P[hit at s]",
            "floor δ/2−δ²/2",
            "clears floor",
            "E[pebbles on v]",
        ],
        title=f"T8 epoch machinery (δ={delta}, lazy Walt from one vertex)",
    )
    findings: dict[str, float] = {}
    all_clear = True
    seeds = spawn_seeds(seed, len(graphs))
    for g, s_seed in zip(graphs, seeds):
        phi = conductance_exact(g, max_n=16) if g.n <= 16 else 2.0 / g.n
        d = int(g.degrees[0])
        s_paper = theorem8_epoch_length(g.n, d, phi)
        s_used = min(s_paper, _S_CAP[scale])
        p_hit, occ = _epoch_hit_stats(g, delta, s_used, trials, s_seed)
        clears = p_hit >= floor - 3 * np.sqrt(floor * (1 - floor) / trials)
        all_clear &= clears
        table.add_row([g.name, g.n, phi, s_paper, s_used, p_hit, floor, clears, occ])
        findings[f"p_hit_{g.name}"] = p_hit
    findings["floor"] = floor
    findings["all_clear_floor"] = float(all_clear)
    return ExperimentResult(
        experiment_id="T8_epochs",
        tables=[table],
        findings=findings,
        notes=(
            "The measured per-epoch hit probability is far above the "
            "inclusion-exclusion floor — the floor is what survives the "
            "worst-case dependence accounting, and boosting it through "
            "O(log n) epochs plus a union bound yields Theorem 8. Epochs "
            "longer than the cap are clipped: occupancy is stationary well "
            "before the paper's (deliberately loose) s."
        ),
    )
