"""``TREES_kary`` — §3 remark: 2-cobra cover on k-ary trees ∝ diameter.

The paper proves the proportionality for ``k ∈ {2, 3}`` via the
Lemma 2 style two-step analysis and conjectures it for every constant
``k``.  We sweep depth for ``k ∈ {2, 3, 4, 5}`` and tabulate
``cover / diameter``: the remark predicts a flat column (constant in
``n``, though the constant may grow with ``k``).

The Monte-Carlo surface is the registered ``TREES_kary`` sweep
(:mod:`repro.store.sweeps`), driven through an ephemeral store and
tabulated off ``store.frame()``.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, fit_power_law
from ..store import Campaign, ResultStore
from ..store.sweeps import TREES_DEPTHS, build_sweep
from .registry import ExperimentResult, register


@register("TREES_kary", "§3 remark: k-ary tree cover ∝ diameter (k=2,3 proven; all k conjectured)")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    store = ResultStore()
    campaigns = {}
    for spec in build_sweep("TREES_kary", scale=scale, seed=seed):
        campaigns[spec.name] = campaign = Campaign(spec, store)
        campaign.run()

    tables: list[Table] = []
    findings: dict[str, float] = {}
    for k, depths in TREES_DEPTHS[scale].items():
        rows = campaigns[f"TREES_kary/k{k}"].frame().sort_by("g_depth")
        table = Table(
            ["depth", "n", "diameter", "cover", "±95%", "cover/diam"],
            title=f"TREES k={k} ({'proven' if k <= 3 else 'conjectured'})",
        )
        diam, covers = [], []
        for row in rows:
            depth = row["g_depth"]
            d = 2 * depth
            diam.append(d)
            covers.append(row["mean"])
            table.add_row(
                [depth, row["graph_n"], d, row["mean"], row["ci95_half_width"],
                 row["mean"] / d]
            )
        ratios = np.array(covers) / np.array(diam)
        # flatness: exponent of cover in n should be ~0 i.e. log-like
        n_values = [(k ** (dep + 1) - 1) // (k - 1) for dep in depths]
        fit = fit_power_law(n_values, covers)
        findings[f"k{k}_cover_exponent_in_n"] = fit.exponent
        findings[f"k{k}_ratio_spread"] = float(ratios.max() / ratios.min())
        tables.append(table)
    return ExperimentResult(
        experiment_id="TREES_kary",
        tables=tables,
        findings=findings,
        notes=(
            "Cover ∝ diameter means cover grows like depth ~ log n: the "
            "fitted power-law exponent in n must be near 0 and cover/diam "
            "nearly flat down each table."
        ),
    )
