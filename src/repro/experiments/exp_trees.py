"""``TREES_kary`` — §3 remark: 2-cobra cover on k-ary trees ∝ diameter.

The paper proves the proportionality for ``k ∈ {2, 3}`` via the
Lemma 2 style two-step analysis and conjectures it for every constant
``k``.  We sweep depth for ``k ∈ {2, 3, 4, 5}`` and tabulate
``cover / diameter``: the remark predicts a flat column (constant in
``n``, though the constant may grow with ``k``).
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, fit_power_law
from ..graphs import kary_tree
from ..sim import run_batch
from ..sim.rng import spawn_seeds
from .registry import ExperimentResult, register

_DEPTHS = {
    "quick": {2: [4, 6, 8], 3: [3, 4, 5], 4: [3, 4], 5: [2, 3]},
    "full": {2: [4, 6, 8, 10, 12], 3: [3, 4, 5, 6, 7], 4: [3, 4, 5], 5: [2, 3, 4]},
}
_TRIALS = {"quick": 6, "full": 15}


@register("TREES_kary", "§3 remark: k-ary tree cover ∝ diameter (k=2,3 proven; all k conjectured)")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    trials = _TRIALS[scale]
    seeds = spawn_seeds(seed, 64)
    si = iter(seeds)
    tables: list[Table] = []
    findings: dict[str, float] = {}
    for k, depths in _DEPTHS[scale].items():
        table = Table(
            ["depth", "n", "diameter", "cover", "±95%", "cover/diam"],
            title=f"TREES k={k} ({'proven' if k <= 3 else 'conjectured'})",
        )
        diam, covers = [], []
        for depth in depths:
            g = kary_tree(k, depth)
            s = run_batch(g, "cobra", trials=trials, seed=next(si))
            mean = s.mean
            ci = s.ci95_half_width
            d = 2 * depth
            diam.append(d)
            covers.append(mean)
            table.add_row([depth, g.n, d, mean, ci, mean / d])
        ratios = np.array(covers) / np.array(diam)
        # flatness: exponent of cover in n should be ~0 i.e. log-like
        n_values = [(k ** (dep + 1) - 1) // (k - 1) for dep in depths]
        fit = fit_power_law(n_values, covers)
        findings[f"k{k}_cover_exponent_in_n"] = fit.exponent
        findings[f"k{k}_ratio_spread"] = float(ratios.max() / ratios.min())
        tables.append(table)
    return ExperimentResult(
        experiment_id="TREES_kary",
        tables=tables,
        findings=findings,
        notes=(
            "Cover ∝ diameter means cover grows like depth ~ log n: the "
            "fitted power-law exponent in n must be near 0 and cover/diam "
            "nearly flat down each table."
        ),
    )
