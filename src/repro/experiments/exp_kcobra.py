"""``KCOBRA_k`` — the branching-factor axis of the model.

The paper defines k-cobra walks for general ``k`` and proves its
results for ``k = 2``, noting (§3) that larger constant ``k`` only
strengthens the drift.  We sweep ``k ∈ {1, 2, 3, 4, 8}`` (``k = 1`` is
the simple random walk) on a grid and an expander: mean cover time
must be non-increasing in ``k``, with the big cliff between ``k = 1``
and ``k = 2`` — the paper's point that a *little* branching changes
the cover-time regime.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..graphs import grid, random_regular
from ..sim import run_batch
from ..sim.rng import spawn_seeds
from .registry import ExperimentResult, register

_KS = [1, 2, 3, 4, 8]
_TRIALS = {"quick": 5, "full": 15}
_SIZE = {"quick": (15, 256), "full": (31, 1024)}  # (grid side extent, expander n)


@register("KCOBRA_k", "Model: cover time non-increasing in branching factor k")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    trials = _TRIALS[scale]
    side, n = _SIZE[scale]
    seeds = spawn_seeds(seed, 32)
    si = iter(seeds)
    graphs = [grid(side, 2), random_regular(n, 8, seed=next(si))]
    tables = []
    findings: dict[str, float] = {}
    for g in graphs:
        table = Table(
            ["k", "cover mean", "±95%", "vs k=2"],
            title=f"KCOBRA branching sweep on {g.name}",
        )
        means = {}
        for k in _KS:
            s = run_batch(g, "cobra", k=k, trials=trials, seed=next(si))
            mean = s.mean
            ci = s.ci95_half_width
            means[k] = mean
            table.add_row([k, mean, ci, ""])
        for k in _KS:
            findings[f"{g.name}_k{k}"] = means[k]
        # non-increasing check with sampling slack
        ordered = all(
            means[a] >= means[b] * 0.85 for a, b in zip(_KS, _KS[1:])
        )
        findings[f"{g.name}_monotone"] = float(ordered)
        findings[f"{g.name}_k1_over_k2"] = means[1] / means[2]
        tables.append(table)
    return ExperimentResult(
        experiment_id="KCOBRA_k",
        tables=tables,
        findings=findings,
        notes=(
            "k=1 is the simple random walk; the k=1 → k=2 drop is the "
            "regime change the paper studies, and further k gives "
            "diminishing returns (coalescence caps the frontier)."
        ),
    )
