"""``KCOBRA_k`` — the branching-factor axis of the model.

The paper defines k-cobra walks for general ``k`` and proves its
results for ``k = 2``, noting (§3) that larger constant ``k`` only
strengthens the drift.  We sweep ``k ∈ {1, 2, 3, 4, 8}`` (``k = 1`` is
the simple random walk) on a grid and an expander: mean cover time
must be non-increasing in ``k``, with the big cliff between ``k = 1``
and ``k = 2`` — the paper's point that a *little* branching changes
the cover-time regime.

The Monte-Carlo surface is the registered ``KCOBRA_k`` sweep
(:mod:`repro.store.sweeps`): one spec per graph family, the branching
factor as a ``params_grid`` axis.
"""

from __future__ import annotations

from ..analysis import Table
from ..store import Campaign, ResultStore
from ..store.sweeps import KCOBRA_KS, build_sweep
from .registry import ExperimentResult, register


@register("KCOBRA_k", "Model: cover time non-increasing in branching factor k")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    store = ResultStore()
    campaigns = []
    for spec in build_sweep("KCOBRA_k", scale=scale, seed=seed):
        campaign = Campaign(spec, store)
        campaign.run()
        campaigns.append(campaign)

    tables = []
    findings: dict[str, float] = {}
    for campaign in campaigns:
        rows = campaign.frame()
        gname = rows.rows[0]["graph_name"]
        table = Table(
            ["k", "cover mean", "±95%", "vs k=2"],
            title=f"KCOBRA branching sweep on {gname}",
        )
        means = {row["k"]: row["mean"] for row in rows}
        for k in KCOBRA_KS:
            ci = rows.filter(k=k).rows[0]["ci95_half_width"]
            table.add_row([k, means[k], ci, ""])
        for k in KCOBRA_KS:
            findings[f"{gname}_k{k}"] = means[k]
        # non-increasing check with sampling slack
        ordered = all(
            means[a] >= means[b] * 0.85 for a, b in zip(KCOBRA_KS, KCOBRA_KS[1:])
        )
        findings[f"{gname}_monotone"] = float(ordered)
        findings[f"{gname}_k1_over_k2"] = means[1] / means[2]
        tables.append(table)
    return ExperimentResult(
        experiment_id="KCOBRA_k",
        tables=tables,
        findings=findings,
        notes=(
            "k=1 is the simple random walk; the k=1 → k=2 drop is the "
            "regime change the paper studies, and further k gives "
            "diminishing returns (coalescence caps the frontier)."
        ),
    )
