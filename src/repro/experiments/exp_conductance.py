"""``T8_conductance`` — Theorem 8: cover is ``O(d⁴ Φ⁻² log² n)``.

Across regular families with very different conductance profiles —
hypercubes (``Φ = 1/d``), 2-D tori (``Φ ~ 1/n_side``), cycles
(``Φ = 2/n``), random 4-regular graphs (``Φ = Θ(1)``) — measure the
2-cobra cover time and compare against the bound's shape
``Φ⁻² log² n`` (degree fixed within each family).  The fitted constant
per family should be stable and the measured/bound ratio bounded,
i.e. the bound holds with room (it is not claimed tight).
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, fit_constant_to_shape
from ..graphs import Graph, cycle_graph, hypercube, random_regular, torus
from ..sim.facade import run_batch
from ..sim.rng import spawn_seeds
from ..spectral import conductance_estimate
from .registry import ExperimentResult, register


def _families(scale: str, seeds) -> dict[str, list[Graph]]:
    si = iter(seeds)
    if scale == "quick":
        return {
            "hypercube": [hypercube(d) for d in (4, 6, 8)],
            "torus2d": [torus(n, 2) for n in (7, 15, 31)],
            "cycle": [cycle_graph(n) for n in (32, 64, 128)],
            "random_4reg": [random_regular(n, 4, seed=next(si)) for n in (64, 128, 256)],
        }
    return {
        "hypercube": [hypercube(d) for d in (4, 6, 8, 10, 12)],
        "torus2d": [torus(n, 2) for n in (7, 15, 31, 63)],
        "cycle": [cycle_graph(n) for n in (32, 64, 128, 256, 512)],
        "random_4reg": [
            random_regular(n, 4, seed=next(si)) for n in (64, 128, 256, 512, 1024)
        ],
    }


def _conductance(g: Graph) -> float:
    est = conductance_estimate(g)
    if est.method in ("meta", "exact"):
        return est.estimate
    # closed forms for the structured families, spectral estimate otherwise
    if g.name.startswith("cycle"):
        return 2.0 / g.n
    if g.name.startswith("torus"):
        side = g.meta["side"]
        # cut a half-torus band: 2*side boundary edges / (vol = 4 * side^2 / 2)
        return 2.0 * side / (2.0 * side * side)
    return est.estimate


_TRIALS = {"quick": 5, "full": 12}


@register("T8_conductance", "Thm 8: d-regular cover is O(d^4 Φ^-2 log^2 n) whp")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    trials = _TRIALS[scale]
    seeds = spawn_seeds(seed, 128)
    fam = _families(scale, seeds[64:])
    tables: list[Table] = []
    findings: dict[str, float] = {}
    si = iter(seeds[:64])
    for name, graphs in fam.items():
        table = Table(
            ["n", "d", "Φ", "cover", "±95%", "bound Φ⁻²log²n", "cover/shape"],
            title=f"T8 {name} (bound shape: Φ^-2 log^2 n, d fixed per family)",
        )
        xs, measured, shapes = [], [], []
        for g in graphs:
            d = int(g.degrees[0])
            phi = _conductance(g)
            s = run_batch(g, "cobra", trials=trials, seed=next(si))
            shape_val = phi**-2 * np.log(g.n) ** 2
            xs.append(g.n)
            measured.append(s.mean)
            shapes.append(shape_val)
            table.add_row([g.n, d, phi, s.mean, s.ci95_half_width, shape_val, s.mean / shape_val])
        fit = fit_constant_to_shape(xs, measured, lambda v, _s=dict(zip(xs, shapes)): _s[v])
        findings[f"{name}_shape_constant"] = fit.constant
        findings[f"{name}_max_rel_dev"] = fit.max_rel_dev
        # the bound HOLDS iff measured <= C * shape for a mild constant
        findings[f"{name}_bound_ratio_max"] = float(np.max(np.array(measured) / np.array(shapes)))
        tables.append(table)
    return ExperimentResult(
        experiment_id="T8_conductance",
        tables=tables,
        findings=findings,
        notes=(
            "Upper bound check: cover/shape must stay bounded as n grows within "
            "each family. The bound is loose on expanders (shape ~ log^2 n but "
            "constants d^4 dwarf measurements) and tightest relative on cycles."
        ),
    )
