"""``T1_matthews`` — Theorem 1: cobra cover is ``O(h_max · log n)``.

On a portfolio of structurally different graphs, estimate ``h_max``
(sampled worst pair hitting time) and the mean cover time; the ratio
``cover/h_max`` must stay below ``H_n`` (the Matthews multiplier).

Both estimates run on the vectorized batched engines (cobra
``batch_hit`` for the pair sweep, ``batch_cover`` for the cover
trials); budget-exhausted hitting trials are clamped to the budget
rather than dropped, so ``h_max`` is never silently underestimated
where hitting is hardest.
"""

from __future__ import annotations

from ..analysis import Table
from ..core import harmonic_number, matthews_check
from ..graphs import cycle_graph, grid, hypercube, kary_tree, lollipop, star_graph
from ..sim.rng import spawn_seeds
from .registry import ExperimentResult, register

_CFG = {
    "quick": dict(cover_trials=8, hit_trials=3, pairs=30),
    "full": dict(cover_trials=20, hit_trials=8, pairs=120),
}


@register("T1_matthews", "Thm 1: cobra cover <= O(h_max log n) (whp)")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    cfg = _CFG[scale]
    graphs = [
        cycle_graph(48),
        grid(8, 2),
        hypercube(6),
        kary_tree(2, 5),
        star_graph(64),
        lollipop(36),
    ]
    table = Table(
        ["graph", "n", "hmax", "cover mean", "cover/hmax", "H_n", "within bound"],
        title="T1 Matthews-type bound for cobra walks",
    )
    findings: dict[str, float] = {}
    all_ok = True
    for g, s in zip(graphs, spawn_seeds(seed, len(graphs))):
        chk = matthews_check(g, seed=s, **cfg)
        ok = chk.ratio <= harmonic_number(g.n) + 1e-9
        all_ok &= ok
        table.add_row(
            [g.name, g.n, chk.hmax, chk.cover_mean, chk.ratio, harmonic_number(g.n), ok]
        )
        findings[f"ratio_{g.name}"] = chk.ratio
    findings["all_within_bound"] = float(all_ok)
    return ExperimentResult(
        experiment_id="T1_matthews",
        tables=[table],
        findings=findings,
        notes=(
            "hmax is a sampled estimate (a lower bound on the true maximum), "
            "making the ratio an upper estimate — the conservative direction "
            "for checking the O(hmax log n) claim."
        ),
    )
