"""``C9_expander`` — Corollary 9: constant-degree expander cover is O(log² n).

Random 8-regular graphs have conductance bounded below by a constant
whp, so Corollary 9 predicts polylogarithmic cover.  We sweep ``n``
over a geometric ladder, fit the *power-law* exponent (it must be
≈ 0: covering time grows sub-polynomially), and fit the
``log² n`` shape constant.  The simple-random-walk baseline on the
same graphs needs ``Θ(n log n)`` — the separation the paper's
information-dissemination story rests on.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, ascii_plot, fit_constant_to_shape, fit_power_law
from ..graphs import random_regular
from ..sim.facade import run_batch
from ..sim.rng import spawn_seeds
from .registry import ExperimentResult, register

_NS = {"quick": [128, 256, 512, 1024], "full": [128, 256, 512, 1024, 2048, 4096]}
_TRIALS = {"quick": 5, "full": 15}
_RW_LIMIT = {"quick": 512, "full": 2048}


@register("C9_expander", "Cor 9: bounded-degree expander cover is O(log^2 n) whp")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    trials = _TRIALS[scale]
    seeds = spawn_seeds(seed, 3 * len(_NS[scale]))
    si = iter(seeds)
    table = Table(
        ["n", "cobra cover", "±95%", "cover/log²n", "rw cover", "rw/(n·log n)"],
        title="C9 random 8-regular expanders",
    )
    ns, covers = [], []
    for n in _NS[scale]:
        g = random_regular(n, 8, seed=next(si))
        s = run_batch(g, "cobra", trials=trials, seed=next(si))
        ns.append(n)
        covers.append(s.mean)
        rw_mean = np.nan
        if n <= _RW_LIMIT[scale]:
            rw_mean = run_batch(
                g, "simple", trials=max(3, trials // 2), seed=next(si)
            ).mean
        else:
            next(si)
        table.add_row(
            [
                n,
                s.mean,
                s.ci95_half_width,
                s.mean / np.log(n) ** 2,
                rw_mean,
                rw_mean / (n * np.log(n)) if np.isfinite(rw_mean) else np.nan,
            ]
        )
    power = fit_power_law(ns, covers)
    shape = fit_constant_to_shape(ns, covers, lambda v: np.log(v) ** 2)
    table.add_row(["fit", f"n^{power.exponent:.3f}", f"±{power.exponent_ci95:.3f}",
                   f"c={shape.constant:.3f}", "", ""])
    figure = ascii_plot(
        {
            "measured cover": (ns, covers),
            "c·log²n": (ns, [shape.constant * np.log(v) ** 2 for v in ns]),
        },
        logx=True,
        title="C9: expander cover vs log² n shape",
    )
    return ExperimentResult(
        experiment_id="C9_expander",
        tables=[table],
        figures=[figure],
        findings={
            "cobra_power_exponent": power.exponent,
            "log2_shape_constant": shape.constant,
            "log2_shape_max_rel_dev": shape.max_rel_dev,
        },
        notes=(
            "Cor 9 predicts sub-polynomial growth: the fitted power-law "
            "exponent must be far below 1 and the log^2 n constant stable."
        ),
    )
