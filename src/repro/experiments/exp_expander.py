"""``C9_expander`` — Corollary 9: constant-degree expander cover is O(log² n).

Random 8-regular graphs have conductance bounded below by a constant
whp, so Corollary 9 predicts polylogarithmic cover.  We sweep ``n``
over a geometric ladder, fit the *power-law* exponent (it must be
≈ 0: covering time grows sub-polynomially), and fit the
``log² n`` shape constant.  The simple-random-walk baseline on the
same graphs needs ``Θ(n log n)`` — the separation the paper's
information-dissemination story rests on.

The Monte-Carlo surface is the registered ``C9_expander`` sweep
(:mod:`repro.store.sweeps`): a cobra campaign over the full ladder and
a simple-walk campaign over the sizes where the baseline is still
cheap, both on the same seeded random-regular graphs (the builder seed
is a graph axis, so the ladder is part of each cell's content hash).
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, ascii_plot, fit_constant_to_shape, fit_power_law
from ..store import Campaign, ResultStore
from ..store.sweeps import build_sweep
from .registry import ExperimentResult, register


@register("C9_expander", "Cor 9: bounded-degree expander cover is O(log^2 n) whp")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    store = ResultStore()
    campaigns = {}
    for spec in build_sweep("C9_expander", scale=scale, seed=seed):
        campaigns[spec.name] = campaign = Campaign(spec, store)
        campaign.run()

    # the rw baseline keyed by n (absent beyond its vertex cap)
    rw_mean = {
        row["g_n"]: row["mean"] for row in campaigns["C9_expander/rw"].frame()
    }
    table = Table(
        ["n", "cobra cover", "±95%", "cover/log²n", "rw cover", "rw/(n·log n)"],
        title="C9 random 8-regular expanders",
    )
    ns, covers = [], []
    for row in campaigns["C9_expander/cobra"].frame():
        n = row["g_n"]
        rw = rw_mean.get(n, np.nan)
        ns.append(n)
        covers.append(row["mean"])
        table.add_row(
            [
                n,
                row["mean"],
                row["ci95_half_width"],
                row["mean"] / np.log(n) ** 2,
                rw,
                rw / (n * np.log(n)) if np.isfinite(rw) else np.nan,
            ]
        )
    power = fit_power_law(ns, covers)
    shape = fit_constant_to_shape(ns, covers, lambda v: np.log(v) ** 2)
    table.add_row(["fit", f"n^{power.exponent:.3f}", f"±{power.exponent_ci95:.3f}",
                   f"c={shape.constant:.3f}", "", ""])
    figure = ascii_plot(
        {
            "measured cover": (ns, covers),
            "c·log²n": (ns, [shape.constant * np.log(v) ** 2 for v in ns]),
        },
        logx=True,
        title="C9: expander cover vs log² n shape",
    )
    return ExperimentResult(
        experiment_id="C9_expander",
        tables=[table],
        figures=[figure],
        findings={
            "cobra_power_exponent": power.exponent,
            "log2_shape_constant": shape.constant,
            "log2_shape_max_rel_dev": shape.max_rel_dev,
        },
        notes=(
            "Cor 9 predicts sub-polynomial growth: the fitted power-law "
            "exponent must be far below 1 and the log^2 n constant stable."
        ),
    )
