"""``BASE_compare`` — positioning table: cobra vs the related processes.

The related-work section situates cobra walks between push gossip,
parallel random walks, and simple random walks.  One table per graph
family: mean rounds to full coverage for each process from the same
start.  The expected ordering (the paper's narrative):

* expanders — cobra ≈ push ≈ polylog, simple RW ≈ n log n;
* grids — cobra ≈ diameter-linear, simple RW ≈ quadratic;
* lollipop — cobra linear-ish, simple RW cubic;
* star — everyone pays the Θ(n log n) coupon collector.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..graphs import grid, lollipop, random_regular, star_graph
from ..sim import run_batch
from ..sim.rng import spawn_seeds
from .registry import ExperimentResult, register

_TRIALS = {"quick": 5, "full": 15}


@register("BASE_compare", "Related work: cobra vs push gossip vs parallel/simple RW")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    trials = _TRIALS[scale]
    seeds = spawn_seeds(seed, 64)
    si = iter(seeds)
    size = 256 if scale == "quick" else 1024
    graphs = [
        random_regular(size, 8, seed=next(si)),
        grid(int(np.sqrt(size)) - 1, 2),
        lollipop(max(24, size // 4)),
        star_graph(size),
    ]
    table = Table(
        [
            "graph",
            "n",
            "cobra k=2",
            "walt δ=.5",
            "push",
            "2 parallel RW",
            "simple RW",
            "lazy RW",
        ],
        title="BASE mean rounds to cover (same start vertex)",
    )
    findings: dict[str, float] = {}
    for g in graphs:
        cobra = run_batch(g, "cobra", trials=trials, seed=next(si)).mean
        walt = run_batch(
            g, "walt", trials=max(3, trials // 2), seed=next(si)
        ).mean
        push = run_batch(g, "push", trials=trials, seed=next(si)).mean
        par = run_batch(
            g, "parallel", trials=max(3, trials // 2), seed=next(si), walkers=2
        ).mean
        # full RW cover on the lollipop is cubic: cap the budget hard
        rw_budget = min(40 * g.n**2, 4_000_000)
        rw = run_batch(
            g, "simple", trials=3, seed=next(si), max_steps=rw_budget
        ).mean
        # the lazy arm rides the jump-chain batched engine; same capped
        # budget (holds included), so it censors where the simple RW does
        lazy = run_batch(
            g, "lazy", trials=3, seed=next(si), max_steps=rw_budget
        ).mean
        table.add_row([g.name, g.n, cobra, walt, push, par, rw, lazy])
        findings[f"cobra_{g.name}"] = cobra
        findings[f"push_{g.name}"] = push
        findings[f"rw_speedup_{g.name}"] = rw / cobra if np.isfinite(rw) else np.nan
        findings[f"lazy_{g.name}"] = lazy
    return ExperimentResult(
        experiment_id="BASE_compare",
        tables=[table],
        findings=findings,
        notes=(
            "Simple/lazy-RW entries show '-' where the cover exceeded the "
            "quadratic step budget (the lollipop needs ~n^3) — itself the "
            "point of comparison.  The lazy walk pays roughly twice the "
            "simple walk's cover time (half its steps are holds)."
        ),
    )
