"""``BASE_compare`` — positioning table: cobra vs the related processes.

The related-work section situates cobra walks between push gossip,
parallel random walks, and simple random walks.  One table per graph
family: mean rounds to full coverage for each process from the same
start.  The expected ordering (the paper's narrative):

* expanders — cobra ≈ push ≈ polylog, simple RW ≈ n log n;
* grids — cobra ≈ diameter-linear, simple RW ≈ quadratic;
* lollipop — cobra linear-ish, simple RW cubic;
* star — everyone pays the Θ(n log n) coupon collector.

The Monte-Carlo surface is the registered ``BASE_compare`` sweep
(:mod:`repro.store.sweeps`): one spec per (graph family, process arm),
all sharing one store.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..store import Campaign, ResultStore
from ..store.sweeps import base_compare_graphs, build_sweep
from .registry import ExperimentResult, register

#: arm → table column, in render order
_COLUMNS = [
    ("cobra", "cobra k=2"),
    ("walt", "walt δ=.5"),
    ("push", "push"),
    ("parallel", "2 parallel RW"),
    ("simple", "simple RW"),
    ("lazy", "lazy RW"),
]


@register("BASE_compare", "Related work: cobra vs push gossip vs parallel/simple RW")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    store = ResultStore()
    campaigns = {}
    for spec in build_sweep("BASE_compare", scale=scale, seed=seed):
        campaigns[spec.name] = campaign = Campaign(spec, store)
        campaign.run()

    table = Table(
        ["graph", "n"] + [col for _, col in _COLUMNS],
        title="BASE mean rounds to cover (same start vertex)",
    )
    findings: dict[str, float] = {}
    for label, _builder, _gparams, _n in base_compare_graphs(scale, seed):
        means = {}
        gname = gn = None
        for arm, _col in _COLUMNS:
            row = campaigns[f"BASE_compare/{label}/{arm}"].frame().rows[0]
            means[arm] = row["mean"]
            gname, gn = row["graph_name"], row["graph_n"]
        table.add_row([gname, gn] + [means[arm] for arm, _ in _COLUMNS])
        findings[f"cobra_{gname}"] = means["cobra"]
        findings[f"push_{gname}"] = means["push"]
        rw = means["simple"]
        findings[f"rw_speedup_{gname}"] = (
            rw / means["cobra"] if np.isfinite(rw) else np.nan
        )
        findings[f"lazy_{gname}"] = means["lazy"]
    return ExperimentResult(
        experiment_id="BASE_compare",
        tables=[table],
        findings=findings,
        notes=(
            "Simple/lazy-RW entries show '-' where the cover exceeded the "
            "quadratic step budget (the lollipop needs ~n^3) — itself the "
            "point of comparison.  The lazy walk pays roughly twice the "
            "simple walk's cover time (half its steps are holds)."
        ),
    )
