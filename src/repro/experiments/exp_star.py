"""``STAR_lb`` — conclusion remark: the star graph shows cobra cover can
be ``Ω(n log n)``.

On the star, every active leaf sends both its draws back to the hub;
only the hub's two draws can discover leaves, so coverage is a
two-coupons-every-other-round coupon collector: ``Θ(n log n)``.  We
sweep ``n`` and check ``cover / (n ln n)`` flattens to a constant, and
that push gossip sits in the same ``Θ(n log n)`` class (its hub also
pushes one message per round) — i.e. the conjectured universal
``O(n log n)`` matches the star's lower bound.

The Monte-Carlo surface is the registered ``STAR_lb`` sweep
(:mod:`repro.store.sweeps`): this runner drives its two campaigns
(cobra cover, push spread) through an ephemeral store and tabulates
``Campaign.frame()`` — point ``sweep run STAR_lb --store DIR`` (or any
number of ``sweep work`` dispatch workers) at a directory to make the
same cells durable.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, fit_power_law
from ..store import Campaign, ResultStore
from ..store.sweeps import build_sweep
from .registry import ExperimentResult, register


@register("STAR_lb", "Conclusion: star graph cobra cover is Ω(n log n)")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    store = ResultStore()
    campaigns = {}
    for spec in build_sweep("STAR_lb", scale=scale, seed=seed):
        campaigns[spec.name] = campaign = Campaign(spec, store)
        campaign.run()

    cobra = campaigns["STAR_lb/cobra"].frame().sort_by("g_n")
    push_by_n = {
        row["g_n"]: row["mean"] for row in campaigns["STAR_lb/push"].frame()
    }
    table = Table(
        ["n", "cobra cover", "cover/(n·ln n)", "push rounds", "push/(n·ln n)"],
        title="STAR coupon-collector lower bound",
    )
    ns, covers = [], []
    for row in cobra:
        n, mean = row["g_n"], row["mean"]
        push = push_by_n[n]
        ns.append(n)
        covers.append(mean)
        nl = n * np.log(n)
        table.add_row([n, mean, mean / nl, push, push / nl])
    fit = fit_power_law(ns, covers)
    norm = np.array(covers) / (np.array(ns) * np.log(ns))
    table.add_row(["fit", f"n^{fit.exponent:.3f}", "", "", ""])
    return ExperimentResult(
        experiment_id="STAR_lb",
        tables=[table],
        findings={
            "cover_exponent": fit.exponent,
            "nlogn_ratio_spread": float(norm.max() / norm.min()),
        },
        notes=(
            "Lower-bound witness: exponent ≈ 1 with a log factor "
            "(n·log n class), matching the Ω(n log n) remark and the "
            "conjectured O(n log n) universal upper bound."
        ),
    )
