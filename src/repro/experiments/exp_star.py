"""``STAR_lb`` — conclusion remark: the star graph shows cobra cover can
be ``Ω(n log n)``.

On the star, every active leaf sends both its draws back to the hub;
only the hub's two draws can discover leaves, so coverage is a
two-coupons-every-other-round coupon collector: ``Θ(n log n)``.  We
sweep ``n`` and check ``cover / (n ln n)`` flattens to a constant, and
that push gossip sits in the same ``Θ(n log n)`` class (its hub also
pushes one message per round) — i.e. the conjectured universal
``O(n log n)`` matches the star's lower bound.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, fit_power_law
from ..graphs import star_graph
from ..sim.facade import run_batch
from ..sim.rng import spawn_seeds
from .registry import ExperimentResult, register

_NS = {"quick": [64, 128, 256, 512], "full": [64, 128, 256, 512, 1024, 2048]}
_TRIALS = {"quick": 5, "full": 12}


@register("STAR_lb", "Conclusion: star graph cobra cover is Ω(n log n)")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    trials = _TRIALS[scale]
    seeds = spawn_seeds(seed, 2 * len(_NS[scale]))
    si = iter(seeds)
    table = Table(
        ["n", "cobra cover", "cover/(n·ln n)", "push rounds", "push/(n·ln n)"],
        title="STAR coupon-collector lower bound",
    )
    ns, covers = [], []
    for n in _NS[scale]:
        g = star_graph(n)
        # both sweeps ride the vectorized batched engines via run_batch
        mean = run_batch(g, "cobra", trials=trials, seed=next(si)).mean
        push = run_batch(g, "push", trials=max(3, trials // 2), seed=next(si)).mean
        ns.append(n)
        covers.append(mean)
        nl = n * np.log(n)
        table.add_row([n, mean, mean / nl, push, push / nl])
    fit = fit_power_law(ns, covers)
    norm = np.array(covers) / (np.array(ns) * np.log(ns))
    table.add_row(["fit", f"n^{fit.exponent:.3f}", "", "", ""])
    return ExperimentResult(
        experiment_id="STAR_lb",
        tables=[table],
        findings={
            "cover_exponent": fit.exponent,
            "nlogn_ratio_spread": float(norm.max() / norm.min()),
        },
        notes=(
            "Lower-bound witness: exponent ≈ 1 with a log factor "
            "(n·log n class), matching the Ω(n log n) remark and the "
            "conjectured O(n log n) universal upper bound."
        ),
    )
