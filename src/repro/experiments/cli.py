"""Command-line runner: ``python -m repro.experiments`` /
``cobra-experiments``.

Usage::

    cobra-experiments list
    cobra-experiments processes
    cobra-experiments run T3_grid [--scale quick|full] [--seed N]
    cobra-experiments run all --scale full --processes 4
    cobra-experiments run T3_grid --json > t3.json
    cobra-experiments sweep list
    cobra-experiments sweep run T3_grid --store results/ [--max-cells N] [--workers 4]
    cobra-experiments sweep run T3_grid --store results/ --trace [--profile]
    cobra-experiments sweep status T3_grid --store results/
    cobra-experiments sweep show T3_grid --store results/
    cobra-experiments sweep work T3_grid --store results/ [--ttl 900] [--trace]
    cobra-experiments sweep report T3_grid --store results/
    cobra-experiments sweep top T3_grid --store results/ [--interval 2] [--once]
    cobra-experiments sweep fsck --store results/
    cobra-experiments sweep compact --store results/
    cobra-experiments lint [PATH ...] [--format json] [--contracts]

Each run prints the experiment's tables and findings; ``run all``
iterates the whole registry (this is how EXPERIMENTS.md numbers were
produced).  ``--json`` emits a machine-readable findings dump instead
of tables; ``--processes N`` fans Monte-Carlo trials out over a
process pool via the :func:`repro.sim.facade.run_batch` default.

The ``sweep`` subcommands drive the registered sweep declarations
(:mod:`repro.store.sweeps`) against a **durable content-addressed
store**: ``sweep run`` computes only the cells the store is missing
(kill it any time; re-running resumes exactly where it stopped),
``sweep status`` counts stored vs pending cells, and ``sweep show``
tabulates the stored results.  ``sweep work`` runs one lease/claim
dispatch worker against a shared store — start as many as you like,
on as many machines as see the directory; they coordinate through the
claim ledger and their combined output is value-for-value identical
to a single ``sweep run``.  ``sweep fsck`` verifies store integrity
(re-hash keys, torn lines, orphaned records, stale leases, torn
telemetry events) and ``sweep compact`` drops superseded
last-write-wins duplicates and prunes the ledger.  See
``docs/sweeps.md``.

With ``--trace``, ``run`` and ``work`` emit structured telemetry spans
into ``events.jsonl`` beside the shards (:mod:`repro.obs`); stored
values stay seed-for-seed identical.  ``sweep report`` renders the
straggler report over stored provenance, the claim ledger and the
event log — per-cell phase timings, p50/p95/max wall time by
process/graph/backend, per-worker attribution.  ``sweep top`` is the
live companion: drain progress, live leases, the freshest events and
the slowest cells, refreshed until the sweep completes (``--once``
for a single snapshot).  ``sweep run --profile`` additionally records
each cell's peak RSS in provenance.  See ``docs/observability.md``.

``lint`` runs the determinism & contract linter (:mod:`repro.lint`)
— the same pass as ``python -m repro.lint`` — over the given paths
(default: ``src benchmarks examples ci`` where present).  See
``docs/static-analysis.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .registry import all_experiments, get

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cobra-experiments",
        description="Reproduce the claims of Mitzenmacher, Rajaraman & Roche (SPAA 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list registered experiments")
    sub.add_parser("processes", help="list registered simulation processes")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("id", help="experiment id, or 'all'")
    runp.add_argument("--scale", choices=("quick", "full"), default="quick")
    runp.add_argument("--seed", type=int, default=0)
    runp.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document of findings/notes instead of tables",
    )
    runp.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="fan Monte-Carlo trials out over N worker processes "
        "(default: serial/vectorized)",
    )
    sweepp = sub.add_parser(
        "sweep", help="declarative sweep campaigns over a durable result store"
    )
    sweep_sub = sweepp.add_subparsers(dest="sweep_command", required=True)
    sweep_sub.add_parser("list", help="list registered sweeps")
    for cmd, help_text in (
        ("run", "run a sweep's pending cells (resumable; cached cells skip)"),
        ("status", "count stored vs pending cells of a sweep"),
        ("show", "tabulate a sweep's stored results"),
        ("work", "drain a sweep as one lease/claim dispatch worker"),
        ("report", "straggler report: per-cell/per-worker wall-time breakdown"),
        ("top", "live drain monitor: progress, leases, recent events"),
    ):
        p = sweep_sub.add_parser(cmd, help=help_text)
        p.add_argument("name", help="registered sweep name (see 'sweep list')")
        p.add_argument(
            "--store", required=True, metavar="DIR",
            help="result-store directory (created on first write)",
        )
        p.add_argument("--scale", choices=("quick", "full"), default="quick")
        p.add_argument("--seed", type=int, default=0)
        if cmd in ("run", "work"):
            p.add_argument(
                "--shards", type=int, default=None, metavar="K",
                help="run each cell on the sharded executor "
                "(placement-independent, seed-for-seed stable)",
            )
            p.add_argument(
                "--max-workers", type=int, default=None, metavar="M",
                help="process-pool width for --shards",
            )
            p.add_argument(
                "--max-cells", type=int, default=None, metavar="N",
                help="stop after computing N cells (incremental mode)",
            )
        if cmd == "run":
            p.add_argument(
                "--workers", type=int, default=None, metavar="W",
                help="spawn W local dispatch workers draining the sweep "
                "concurrently (value-for-value identical to W=1)",
            )
            p.add_argument(
                "--profile", action="store_true",
                help="record per-cell peak RSS (MB) in provenance",
            )
        if cmd in ("run", "work"):
            p.add_argument(
                "--trace", action="store_true",
                help="emit telemetry spans into events.jsonl beside the "
                "shards (seed-for-seed values are unchanged)",
            )
        if cmd == "top":
            p.add_argument(
                "--interval", type=float, default=2.0, metavar="SECONDS",
                help="refresh period of the live monitor (default 2)",
            )
            p.add_argument(
                "--once", action="store_true",
                help="print one snapshot and exit instead of looping",
            )
        if cmd == "work":
            p.add_argument(
                "--owner", default=None, metavar="ID",
                help="worker id in the claim ledger (default: host-pid-rand)",
            )
            p.add_argument(
                "--ttl", type=float, default=None, metavar="SECONDS",
                help="lease time-to-live; crashed workers' cells become "
                "reclaimable after this long (default 900)",
            )
            p.add_argument(
                "--wait", action="store_true",
                help="poll instead of exiting while other workers hold the "
                "remaining leases",
            )
    for cmd, help_text in (
        ("fsck", "verify store integrity (hashes, torn lines, leases)"),
        ("compact", "drop superseded duplicates, prune the claim ledger"),
    ):
        p = sweep_sub.add_parser(cmd, help=help_text)
        p.add_argument(
            "--store", required=True, metavar="DIR",
            help="result-store directory to check",
        )
        if cmd == "compact":
            p.add_argument(
                "--force", action="store_true",
                help="compact even with live leases in the ledger",
            )
    lintp = sub.add_parser(
        "lint", help="run the determinism & contract linter (repro.lint)"
    )
    lintp.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to lint (default: src benchmarks examples ci)",
    )
    lintp.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    lintp.add_argument(
        "--contracts", action="store_true",
        help="also run the import-time contract audit",
    )
    args = parser.parse_args(argv)

    if args.command == "lint":
        return _lint_main(args)

    if args.command == "sweep":
        return _sweep_main(args)

    if args.command == "list":
        for exp in all_experiments():
            print(f"{exp.id:18s} {exp.claim}")
        return 0

    if args.command == "processes":
        from ..sim import all_processes

        for spec in all_processes():
            caps = ",".join(sorted(spec.capabilities))
            print(f"{spec.name:12s} [{caps}] {spec.description}")
        return 0

    if args.processes is not None:
        from ..sim import set_default_processes

        set_default_processes(args.processes)

    ids = [e.id for e in all_experiments()] if args.id == "all" else [args.id]
    dump: dict[str, dict] = {}
    for exp_id in ids:
        exp = get(exp_id)
        t0 = time.perf_counter()
        result = exp.run(scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - t0
        if args.json:
            dump[exp.id] = {
                "claim": exp.claim,
                "scale": args.scale,
                "seed": args.seed,
                "elapsed_seconds": round(elapsed, 3),
                "findings": result.findings,
                "notes": result.notes,
            }
        else:
            print(f"\n=== {exp.id}: {exp.claim} (scale={args.scale}) ===")
            print(result.render())
            print(f"[{exp.id} finished in {elapsed:.1f}s]")
    if args.json:
        json.dump(dump, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


def _lint_main(args: argparse.Namespace) -> int:
    """Run :mod:`repro.lint` with the experiments CLI's defaults."""
    from pathlib import Path

    from ..lint.cli import main as lint_main

    paths = args.paths or [
        p for p in ("src", "benchmarks", "examples", "ci") if Path(p).is_dir()
    ]
    argv = [*paths, "--format", args.format]
    if args.contracts:
        argv.append("--contracts")
    return lint_main(argv)


def _sweep_main(args: argparse.Namespace) -> int:
    """Dispatch the ``sweep`` subcommands (see the module docstring)."""
    from ..store import Campaign, ResultStore
    from ..store.sweeps import build_sweep, sweep_names

    if args.sweep_command == "list":
        for name in sweep_names():
            specs = build_sweep(name)
            cells = sum(len(s.expand()) for s in specs)
            print(f"{name:18s} {len(specs):3d} spec(s), {cells:4d} cells at quick scale")
        return 0

    if args.sweep_command == "fsck":
        from ..store import fsck

        report = fsck(ResultStore(args.store))
        print(report.summary())
        return 0 if report.clean else 1

    if args.sweep_command == "compact":
        from ..store import compact

        try:
            report = compact(ResultStore(args.store), force=args.force)
        except RuntimeError as exc:
            print(f"compact refused: {exc}", file=sys.stderr)
            return 1
        print(report.summary())
        return 0

    specs = build_sweep(args.name, scale=args.scale, seed=args.seed)
    store = ResultStore(args.store)

    if args.sweep_command == "report":
        from ..obs import build_report

        print(build_report(store, specs).render())
        return 0

    if args.sweep_command == "top":
        from ..obs import live_top, render_top

        if args.once:
            print(render_top(store, specs))
            return 0
        return live_top(store, specs, interval=args.interval)

    if args.sweep_command == "work":
        from ..store import dispatch

        owner = args.owner if args.owner is not None else dispatch.default_owner()
        tracer = None
        if args.trace:
            from ..obs import tracer_for_store

            tracer = tracer_for_store(args.store, worker=owner)
        report = dispatch.drain(
            specs,
            store,
            owner=owner,
            ttl=args.ttl if args.ttl is not None else dispatch.DEFAULT_TTL,
            max_cells=args.max_cells,
            shards=args.shards,
            max_workers=args.max_workers,
            wait=args.wait,
            tracer=tracer,
        )
        print(
            f"worker {report.owner}: ran {len(report.ran)}, "
            f"cached {len(report.cached)}, deferred {len(report.deferred)}"
        )
        return 0

    if args.sweep_command == "status":
        total = done = 0
        for spec in specs:
            status = Campaign(spec, store).status()
            total += status.total
            done += status.done
            print(f"{spec.name:28s} {status.done}/{status.total} cells stored")
        print(f"{'TOTAL':28s} {done}/{total} cells stored "
              f"({'complete' if done == total else f'{total - done} pending'})")
        return 0

    if args.sweep_command == "run":
        budget = args.max_cells
        if args.workers is not None and args.workers > 1 and budget is not None:
            print("--workers and --max-cells are mutually exclusive", file=sys.stderr)
            return 2
        tracer = None
        if args.trace:
            from ..obs import tracer_for_store

            tracer = tracer_for_store(args.store)
        ran = cached = pending = 0
        for spec in specs:
            campaign = Campaign(
                spec, store, shards=args.shards, max_workers=args.max_workers,
                workers=args.workers, tracer=tracer, profile=args.profile,
            )
            report = campaign.run(max_cells=budget)
            ran += len(report.ran)
            cached += len(report.cached)
            pending += len(report.pending)
            print(
                f"{spec.name:28s} ran {len(report.ran)}, "
                f"cached {len(report.cached)}, pending {len(report.pending)}"
            )
            if budget is not None:
                budget -= len(report.ran)
        print(f"{'TOTAL':28s} ran {ran}, cached {cached}, pending {pending}")
        return 0

    # sweep show: one table per spec, in expansion order
    for spec in specs:
        cells = spec.expand()
        columns = (
            [f"g_{a}" for a in sorted(spec.graph_grid)]
            + sorted(spec.params_grid)
            + ["trials", "mean", "ci95_half_width", "failures", "engine"]
        )
        rows = []
        for key in cells:
            record = store.get(key)
            if record is None:
                row = {f"g_{a}": v for a, v in key.graph_params}
                row.update(dict(key.params))
                row["trials"] = key.trials
                row["engine"] = "(pending)"
                rows.append(row)
            else:
                from ..store import record_row

                rows.append(record_row(record))
        from ..analysis import Table

        print(Table.from_rows(rows, columns, title=f"{spec.name} [{args.scale}]").render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
