"""Command-line runner: ``python -m repro.experiments`` /
``cobra-experiments``.

Usage::

    cobra-experiments list
    cobra-experiments processes
    cobra-experiments run T3_grid [--scale quick|full] [--seed N]
    cobra-experiments run all --scale full --processes 4
    cobra-experiments run T3_grid --json > t3.json

Each run prints the experiment's tables and findings; ``run all``
iterates the whole registry (this is how EXPERIMENTS.md numbers were
produced).  ``--json`` emits a machine-readable findings dump instead
of tables; ``--processes N`` fans Monte-Carlo trials out over a
process pool via the :func:`repro.sim.facade.run_batch` default.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .registry import all_experiments, get

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cobra-experiments",
        description="Reproduce the claims of Mitzenmacher, Rajaraman & Roche (SPAA 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list registered experiments")
    sub.add_parser("processes", help="list registered simulation processes")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("id", help="experiment id, or 'all'")
    runp.add_argument("--scale", choices=("quick", "full"), default="quick")
    runp.add_argument("--seed", type=int, default=0)
    runp.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document of findings/notes instead of tables",
    )
    runp.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="fan Monte-Carlo trials out over N worker processes "
        "(default: serial/vectorized)",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for exp in all_experiments():
            print(f"{exp.id:18s} {exp.claim}")
        return 0

    if args.command == "processes":
        from ..sim import all_processes

        for spec in all_processes():
            caps = ",".join(sorted(spec.capabilities))
            print(f"{spec.name:12s} [{caps}] {spec.description}")
        return 0

    if args.processes is not None:
        from ..sim import set_default_processes

        set_default_processes(args.processes)

    ids = [e.id for e in all_experiments()] if args.id == "all" else [args.id]
    dump: dict[str, dict] = {}
    for exp_id in ids:
        exp = get(exp_id)
        t0 = time.perf_counter()
        result = exp.run(scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - t0
        if args.json:
            dump[exp.id] = {
                "claim": exp.claim,
                "scale": args.scale,
                "seed": args.seed,
                "elapsed_seconds": round(elapsed, 3),
                "findings": result.findings,
                "notes": result.notes,
            }
        else:
            print(f"\n=== {exp.id}: {exp.claim} (scale={args.scale}) ===")
            print(result.render())
            print(f"[{exp.id} finished in {elapsed:.1f}s]")
    if args.json:
        json.dump(dump, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
