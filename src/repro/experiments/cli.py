"""Command-line runner: ``python -m repro.experiments`` /
``cobra-experiments``.

Usage::

    cobra-experiments list
    cobra-experiments processes
    cobra-experiments run T3_grid [--scale quick|full] [--seed N]
    cobra-experiments run all --scale full --processes 4
    cobra-experiments run T3_grid --json > t3.json
    cobra-experiments sweep list
    cobra-experiments sweep run T3_grid --store results/ [--max-cells N] [--workers 4]
    cobra-experiments sweep run T3_grid --store results/ --trace [--profile]
    cobra-experiments sweep status T3_grid --store results/
    cobra-experiments sweep show T3_grid --store results/ [--json]
    cobra-experiments sweep work T3_grid --store results/ [--ttl 900] [--trace]
    cobra-experiments sweep work --loop --store http://host:8734 [--interval 5]
    cobra-experiments sweep serve --store results/ [--host 127.0.0.1] [--port 8734]
    cobra-experiments sweep declare T3_grid --store results/ [--scale full]
    cobra-experiments sweep report T3_grid --store results/
    cobra-experiments sweep top T3_grid --store results/ [--interval 2] [--once]
    cobra-experiments sweep fsck --store results/
    cobra-experiments sweep compact --store results/
    cobra-experiments lint [PATH ...] [--format json] [--contracts]

Each run prints the experiment's tables and findings; ``run all``
iterates the whole registry (this is how EXPERIMENTS.md numbers were
produced).  ``--json`` emits a machine-readable findings dump instead
of tables; ``--processes N`` fans Monte-Carlo trials out over a
process pool via the :func:`repro.sim.facade.run_batch` default.

The ``sweep`` subcommands drive the registered sweep declarations
(:mod:`repro.store.sweeps`) against a **durable content-addressed
store**: ``sweep run`` computes only the cells the store is missing
(kill it any time; re-running resumes exactly where it stopped),
``sweep status`` counts stored vs pending cells, and ``sweep show``
tabulates the stored results.  ``sweep work`` runs one lease/claim
dispatch worker against a shared store — start as many as you like,
on as many machines as see the directory; they coordinate through the
claim ledger and their combined output is value-for-value identical
to a single ``sweep run``.  ``sweep fsck`` verifies store integrity
(re-hash keys, torn lines, orphaned records, stale leases, torn
telemetry events) and ``sweep compact`` drops superseded
last-write-wins duplicates and prunes the ledger.  See
``docs/sweeps.md``.

With ``--trace``, ``run`` and ``work`` emit structured telemetry spans
into ``events.jsonl`` beside the shards (:mod:`repro.obs`); stored
values stay seed-for-seed identical.  ``sweep report`` renders the
straggler report over stored provenance, the claim ledger and the
event log — per-cell phase timings, p50/p95/max wall time by
process/graph/backend, per-worker attribution.  ``sweep top`` is the
live companion: drain progress, live leases, the freshest events and
the slowest cells, refreshed until the sweep completes (``--once``
for a single snapshot).  ``sweep run --profile`` additionally records
each cell's peak RSS in provenance.  See ``docs/observability.md``.

``lint`` runs the determinism & contract linter (:mod:`repro.lint`)
— the same pass as ``python -m repro.lint`` — over the given paths
(default: ``src benchmarks examples ci`` where present).  See
``docs/static-analysis.md``.

Every ``--store`` accepts a directory **or** a ``sweep serve`` URL
(``http://host:port``): the URL resolves to an
:class:`~repro.store.backend.HTTPCASBackend`, so workers and readers
need no shared filesystem.  ``sweep serve`` additionally accepts
``--store :memory:`` (an ephemeral in-process CAS backend — what the
CI service smoke drains through).  ``sweep serve`` answers point
lookups (``/cell/<hash>``, ETag = the immutable content hash), frame
queries (``/frame?process=cobra&groupby=g_n``), and the raw blob CAS
seam remote workers coordinate through.  ``sweep declare`` announces
a sweep in the store's registry; ``sweep work --loop`` is the daemon
form — poll for declared sweeps with jittered backoff, drain whatever
is pending, release leases cleanly on SIGTERM.  See
``docs/service.md``.

Exit codes are uniform across every ``sweep`` verb: **2** for usage
errors (unknown sweep or experiment, flag conflicts, a store URL that
is not valid for the verb), **1** for integrity failures (``fsck``
findings, ``compact`` refusals, unreachable backends), 0 otherwise —
each with a one-line message on stderr, never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .registry import all_experiments, get

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cobra-experiments",
        description="Reproduce the claims of Mitzenmacher, Rajaraman & Roche (SPAA 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list registered experiments")
    sub.add_parser("processes", help="list registered simulation processes")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("id", help="experiment id, or 'all'")
    runp.add_argument("--scale", choices=("quick", "full"), default="quick")
    runp.add_argument("--seed", type=int, default=0)
    runp.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document of findings/notes instead of tables",
    )
    runp.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="fan Monte-Carlo trials out over N worker processes "
        "(default: serial/vectorized)",
    )
    sweepp = sub.add_parser(
        "sweep", help="declarative sweep campaigns over a durable result store"
    )
    sweep_sub = sweepp.add_subparsers(dest="sweep_command", required=True)
    sweep_sub.add_parser("list", help="list registered sweeps")
    for cmd, help_text in (
        ("run", "run a sweep's pending cells (resumable; cached cells skip)"),
        ("status", "count stored vs pending cells of a sweep"),
        ("show", "tabulate a sweep's stored results"),
        ("work", "drain a sweep as one lease/claim dispatch worker"),
        ("declare", "announce a sweep in the store's registry (for --loop workers)"),
        ("report", "straggler report: per-cell/per-worker wall-time breakdown"),
        ("top", "live drain monitor: progress, leases, recent events"),
    ):
        p = sweep_sub.add_parser(cmd, help=help_text)
        if cmd == "work":
            p.add_argument(
                "name", nargs="?", default=None,
                help="registered sweep name (optional with --loop)",
            )
        else:
            p.add_argument("name", help="registered sweep name (see 'sweep list')")
        p.add_argument(
            "--store", required=True, metavar="DIR|URL",
            help="result-store directory (created on first write) or a "
            "'sweep serve' URL (http://host:port)",
        )
        p.add_argument("--scale", choices=("quick", "full"), default="quick")
        p.add_argument("--seed", type=int, default=0)
        if cmd in ("run", "work"):
            p.add_argument(
                "--shards", type=int, default=None, metavar="K",
                help="run each cell on the sharded executor "
                "(placement-independent, seed-for-seed stable)",
            )
            p.add_argument(
                "--max-workers", type=int, default=None, metavar="M",
                help="process-pool width for --shards",
            )
            p.add_argument(
                "--max-cells", type=int, default=None, metavar="N",
                help="stop after computing N cells (incremental mode)",
            )
        if cmd == "run":
            p.add_argument(
                "--workers", type=int, default=None, metavar="W",
                help="spawn W local dispatch workers draining the sweep "
                "concurrently (value-for-value identical to W=1)",
            )
            p.add_argument(
                "--profile", action="store_true",
                help="record per-cell peak RSS (MB) in provenance",
            )
        if cmd in ("run", "work"):
            p.add_argument(
                "--trace", action="store_true",
                help="emit telemetry spans into events.jsonl beside the "
                "shards (seed-for-seed values are unchanged)",
            )
        if cmd == "top":
            p.add_argument(
                "--interval", type=float, default=2.0, metavar="SECONDS",
                help="refresh period of the live monitor (default 2)",
            )
            p.add_argument(
                "--once", action="store_true",
                help="print one snapshot and exit instead of looping",
            )
        if cmd == "show":
            p.add_argument(
                "--json", action="store_true",
                help="emit the stored cells as one canonical repro.frame/1 "
                "JSON document instead of tables",
            )
        if cmd == "work":
            p.add_argument(
                "--owner", default=None, metavar="ID",
                help="worker id in the claim ledger (default: host-pid-rand)",
            )
            p.add_argument(
                "--ttl", type=float, default=None, metavar="SECONDS",
                help="lease time-to-live; crashed workers' cells become "
                "reclaimable after this long (default 900)",
            )
            p.add_argument(
                "--wait", action="store_true",
                help="poll instead of exiting while other workers hold the "
                "remaining leases",
            )
            p.add_argument(
                "--loop", action="store_true",
                help="daemon mode: poll the store's declared-sweeps registry "
                "with jittered backoff and drain whatever is pending "
                "(SIGTERM stops cleanly, releasing any held lease)",
            )
            p.add_argument(
                "--interval", type=float, default=5.0, metavar="SECONDS",
                help="--loop poll period before jitter (default 5)",
            )
            p.add_argument(
                "--max-rounds", type=int, default=None, metavar="N",
                help="--loop: exit after N poll rounds (default: forever)",
            )
    servep = sweep_sub.add_parser(
        "serve", help="HTTP front end: /cell, /frame and blob CAS over a store"
    )
    servep.add_argument(
        "--store", required=True, metavar="DIR|URL|:memory:",
        help="result-store directory, upstream serve URL, or ':memory:' "
        "for an ephemeral in-process CAS backend",
    )
    servep.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default 127.0.0.1)",
    )
    servep.add_argument(
        "--port", type=int, default=8734, metavar="PORT",
        help="bind port; 0 picks a free one (default 8734)",
    )
    servep.add_argument(
        "--trace", action="store_true",
        help="emit one kind='http' span per request into events.jsonl",
    )
    for cmd, help_text in (
        ("fsck", "verify store integrity (hashes, torn lines, leases)"),
        ("compact", "drop superseded duplicates, prune the claim ledger"),
    ):
        p = sweep_sub.add_parser(cmd, help=help_text)
        p.add_argument(
            "--store", required=True, metavar="DIR|URL",
            help="result-store directory (or serve URL) to check",
        )
        if cmd == "compact":
            p.add_argument(
                "--force", action="store_true",
                help="compact even with live leases in the ledger",
            )
    lintp = sub.add_parser(
        "lint", help="run the determinism & contract linter (repro.lint)"
    )
    lintp.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to lint (default: src benchmarks examples ci)",
    )
    lintp.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    lintp.add_argument(
        "--contracts", action="store_true",
        help="also run the import-time contract audit",
    )
    args = parser.parse_args(argv)

    if args.command == "lint":
        return _lint_main(args)

    if args.command == "sweep":
        return _sweep_main(args)

    if args.command == "list":
        for exp in all_experiments():
            print(f"{exp.id:18s} {exp.claim}")
        return 0

    if args.command == "processes":
        from ..sim import all_processes

        for spec in all_processes():
            caps = ",".join(sorted(spec.capabilities))
            print(f"{spec.name:12s} [{caps}] {spec.description}")
        return 0

    if args.processes is not None:
        from ..sim import set_default_processes

        set_default_processes(args.processes)

    ids = [e.id for e in all_experiments()] if args.id == "all" else [args.id]
    dump: dict[str, dict] = {}
    for exp_id in ids:
        try:
            exp = get(exp_id)
        except KeyError as exc:
            # same contract as the sweep verbs: usage errors are one
            # line on stderr and exit 2, never a traceback
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        t0 = time.perf_counter()
        result = exp.run(scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - t0
        if args.json:
            dump[exp.id] = {
                "claim": exp.claim,
                "scale": args.scale,
                "seed": args.seed,
                "elapsed_seconds": round(elapsed, 3),
                "findings": result.findings,
                "notes": result.notes,
            }
        else:
            print(f"\n=== {exp.id}: {exp.claim} (scale={args.scale}) ===")
            print(result.render())
            print(f"[{exp.id} finished in {elapsed:.1f}s]")
    if args.json:
        json.dump(dump, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


def _lint_main(args: argparse.Namespace) -> int:
    """Run :mod:`repro.lint` with the experiments CLI's defaults."""
    from pathlib import Path

    from ..lint.cli import main as lint_main

    paths = args.paths or [
        p for p in ("src", "benchmarks", "examples", "ci") if Path(p).is_dir()
    ]
    argv = [*paths, "--format", args.format]
    if args.contracts:
        argv.append("--contracts")
    return lint_main(argv)


class UsageError(Exception):
    """The caller asked for something that does not exist — exit 2."""


class IntegrityError(Exception):
    """The store (or its backend) is unhealthy — exit 1."""


def _open_store(arg: str, *, allow_memory: bool = False):
    """Resolve a ``--store`` argument: directory, serve URL, or memory.

    Parameters
    ----------
    arg : str
        The CLI value: a directory path, an ``http(s)://`` URL of a
        running ``sweep serve`` (→ :class:`HTTPCASBackend`), or
        ``":memory:"`` (→ :class:`InMemoryCASBackend`, serve only).
    allow_memory : bool
        Whether ``":memory:"`` is valid for this verb.

    Returns
    -------
    ResultStore
        Backend-backed for every accepted form.
    """
    from ..store import ResultStore
    from ..store.backend import HTTPCASBackend, InMemoryCASBackend

    if arg == ":memory:":
        if not allow_memory:
            raise UsageError(
                "':memory:' stores are only valid for 'sweep serve' "
                "(any other verb would see a private empty store)"
            )
        return ResultStore(backend=InMemoryCASBackend())
    if arg.startswith(("http://", "https://")):
        return ResultStore(backend=HTTPCASBackend(arg))
    return ResultStore(arg)


def _build_specs(name: str, *, scale: str, seed: int):
    """``build_sweep`` with unknown names surfaced as usage errors."""
    from ..store.sweeps import build_sweep

    try:
        return build_sweep(name, scale=scale, seed=seed)
    except KeyError as exc:
        raise UsageError(exc.args[0]) from None


def _sweep_main(args: argparse.Namespace) -> int:
    """Run one ``sweep`` verb with the uniform exit-code contract.

    Every verb shares one error surface: :class:`UsageError` → one
    line on stderr, exit 2; :class:`IntegrityError` or a backend
    failure → one line on stderr, exit 1.  No ``sweep`` verb ever
    prints a traceback for a predictable failure.
    """
    from ..store.backend import BackendError

    try:
        return _sweep_dispatch(args)
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (IntegrityError, BackendError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _sweep_dispatch(args: argparse.Namespace) -> int:
    """Dispatch the ``sweep`` subcommands (see the module docstring)."""
    from ..store import Campaign
    from ..store.sweeps import build_sweep, sweep_names

    if args.sweep_command == "list":
        for name in sweep_names():
            specs = build_sweep(name)
            cells = sum(len(s.expand()) for s in specs)
            print(f"{name:18s} {len(specs):3d} spec(s), {cells:4d} cells at quick scale")
        return 0

    if args.sweep_command == "serve":
        return _serve_main(args)

    if args.sweep_command == "fsck":
        from ..store import fsck

        report = fsck(_open_store(args.store))
        print(report.summary())
        if not report.clean:
            raise IntegrityError(f"store not clean ({report.errors} finding(s))")
        return 0

    if args.sweep_command == "compact":
        from ..store import compact

        try:
            report = compact(_open_store(args.store), force=args.force)
        except RuntimeError as exc:
            raise IntegrityError(f"compact refused: {exc}") from None
        print(report.summary())
        return 0

    if args.sweep_command == "declare":
        from ..store.dispatch import declare_sweep

        if args.name not in sweep_names():
            known = ", ".join(sweep_names())
            raise UsageError(f"unknown sweep {args.name!r}; known: {known}")
        store = _open_store(args.store)
        record = declare_sweep(
            store.backend, args.name, scale=args.scale, seed=args.seed
        )
        print(
            f"declared {record['name']} (scale={record['scale']}, "
            f"seed={record['seed']}) in {store.location}"
        )
        return 0

    if args.sweep_command == "work" and args.loop:
        return _work_loop_main(args)
    if args.sweep_command == "work" and args.name is None:
        raise UsageError("sweep work needs a sweep name (or --loop)")

    specs = _build_specs(args.name, scale=args.scale, seed=args.seed)
    store = _open_store(args.store)

    if args.sweep_command == "report":
        from ..obs import build_report

        print(build_report(store, specs).render())
        return 0

    if args.sweep_command == "top":
        from ..obs import live_top, render_top

        if args.once:
            print(render_top(store, specs))
            return 0
        return live_top(store, specs, interval=args.interval)

    if args.sweep_command == "work":
        from ..store import dispatch

        owner = args.owner if args.owner is not None else dispatch.default_owner()
        tracer = None
        if args.trace:
            from ..obs import tracer_for_store

            tracer = tracer_for_store(store.backend, worker=owner)
        report = dispatch.drain(
            specs,
            store,
            owner=owner,
            ttl=args.ttl if args.ttl is not None else dispatch.DEFAULT_TTL,
            max_cells=args.max_cells,
            shards=args.shards,
            max_workers=args.max_workers,
            wait=args.wait,
            tracer=tracer,
        )
        print(
            f"worker {report.owner}: ran {len(report.ran)}, "
            f"cached {len(report.cached)}, deferred {len(report.deferred)}"
        )
        return 0

    if args.sweep_command == "status":
        total = done = 0
        for spec in specs:
            status = Campaign(spec, store).status()
            total += status.total
            done += status.done
            print(f"{spec.name:28s} {status.done}/{status.total} cells stored")
        print(f"{'TOTAL':28s} {done}/{total} cells stored "
              f"({'complete' if done == total else f'{total - done} pending'})")
        return 0

    if args.sweep_command == "run":
        budget = args.max_cells
        if args.workers is not None and args.workers > 1 and budget is not None:
            raise UsageError("--workers and --max-cells are mutually exclusive")
        tracer = None
        if args.trace:
            from ..obs import tracer_for_store

            tracer = tracer_for_store(store.backend)
        ran = cached = pending = 0
        for spec in specs:
            campaign = Campaign(
                spec, store, shards=args.shards, max_workers=args.max_workers,
                workers=args.workers, tracer=tracer, profile=args.profile,
            )
            report = campaign.run(max_cells=budget)
            ran += len(report.ran)
            cached += len(report.cached)
            pending += len(report.pending)
            print(
                f"{spec.name:28s} ran {len(report.ran)}, "
                f"cached {len(report.cached)}, pending {len(report.pending)}"
            )
            if budget is not None:
                budget -= len(report.ran)
        print(f"{'TOTAL':28s} ran {ran}, cached {cached}, pending {pending}")
        return 0

    # sweep show: one table per spec, in expansion order — or, with
    # --json, every stored cell as one canonical repro.frame/1 document
    # (byte-compatible with the 'sweep serve' /frame endpoint)
    if args.json:
        from ..store import Frame, record_row

        rows = []
        for spec in specs:
            for key in spec.expand():
                record = store.get(key)
                if record is not None:
                    rows.append(record_row(record))
        print(Frame(rows).to_json(indent=2))
        return 0
    for spec in specs:
        cells = spec.expand()
        columns = (
            [f"g_{a}" for a in sorted(spec.graph_grid)]
            + sorted(spec.params_grid)
            + ["trials", "mean", "ci95_half_width", "failures", "engine"]
        )
        rows = []
        for key in cells:
            record = store.get(key)
            if record is None:
                row = {f"g_{a}": v for a, v in key.graph_params}
                row.update(dict(key.params))
                row["trials"] = key.trials
                row["engine"] = "(pending)"
                rows.append(row)
            else:
                from ..store import record_row

                rows.append(record_row(record))
        from ..analysis import Table

        print(Table.from_rows(rows, columns, title=f"{spec.name} [{args.scale}]").render())
        print()
    return 0


def _serve_main(args: argparse.Namespace) -> int:
    """``sweep serve``: run the HTTP front end until SIGTERM/SIGINT."""
    import signal

    from ..store.service import make_server

    store = _open_store(args.store, allow_memory=True)
    tracer = None
    if args.trace:
        from ..obs import tracer_for_store

        tracer = tracer_for_store(store.backend)
    server = make_server(store, host=args.host, port=args.port, tracer=tracer)
    host, port = server.server_address[:2]
    # the one line process supervisors (and the CI smoke) parse for the
    # bound port, so --port 0 is usable
    print(f"serving {store.location} at http://{host}:{port}", flush=True)

    def _stop(signum: int, frame: object) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _stop)
    try:
        server.serve_forever()
    except (SystemExit, KeyboardInterrupt):
        pass
    finally:
        server.server_close()
    print("serve: stopped", file=sys.stderr)
    return 0


def _work_loop_main(args: argparse.Namespace) -> int:
    """``sweep work --loop``: the declared-sweeps polling daemon.

    Each round: read the store's ``sweeps.jsonl`` registry, drain every
    declared sweep's pending cells (coordinating through the claim
    ledger exactly like a one-shot ``sweep work``), then sleep the poll
    interval with deterministic per-owner jitter (0.5×–1.5×, seeded
    from the owner id) so a fleet of daemons started together never
    polls in lockstep.  SIGTERM stops cleanly: an in-flight cell's
    lease is abandoned (the drain loop's release-on-failure path), so
    another worker reclaims it immediately rather than waiting out the
    TTL.
    """
    import hashlib
    import random
    import signal

    from ..store import dispatch

    store = _open_store(args.store)
    owner = args.owner if args.owner is not None else dispatch.default_owner()
    ttl = args.ttl if args.ttl is not None else dispatch.DEFAULT_TTL
    # deterministic per-owner jitter: no wall-clock or OS entropy needed,
    # and two daemons only share a phase if they share an owner id
    jitter = random.Random(
        int(hashlib.sha256(owner.encode("utf-8")).hexdigest()[:8], 16)
    )
    tracer = None
    if args.trace:
        from ..obs import tracer_for_store

        tracer = tracer_for_store(store.backend, worker=owner)

    def _stop(signum: int, frame: object) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _stop)
    rounds = 0
    try:
        while True:
            for decl in dispatch.declared_sweeps(store.backend):
                try:
                    specs = _build_specs(
                        decl["name"], scale=decl["scale"], seed=decl["seed"]
                    )
                except UsageError as exc:
                    # a registry line this build does not know — another
                    # worker's sweep, not this daemon's problem
                    print(f"skipping declaration: {exc}", file=sys.stderr)
                    continue
                report = dispatch.drain(
                    specs,
                    store,
                    owner=owner,
                    ttl=ttl,
                    max_cells=args.max_cells,
                    shards=args.shards,
                    max_workers=args.max_workers,
                    wait=False,
                    tracer=tracer,
                )
                if report.ran:
                    print(
                        f"worker {owner}: {decl['name']} ran "
                        f"{len(report.ran)} cell(s)",
                        flush=True,
                    )
            rounds += 1
            if args.max_rounds is not None and rounds >= args.max_rounds:
                return 0
            time.sleep(args.interval * (0.5 + jitter.random()))
    except SystemExit:
        # SIGTERM mid-drain lands here *after* the in-flight lease was
        # abandoned (drain releases on any BaseException) — clean exit
        print(f"worker {owner}: stopped on signal", file=sys.stderr)
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
