"""Command-line runner: ``python -m repro.experiments`` /
``cobra-experiments``.

Usage::

    cobra-experiments list
    cobra-experiments run T3_grid [--scale quick|full] [--seed N]
    cobra-experiments run all --scale full

Each run prints the experiment's tables and findings; ``run all``
iterates the whole registry (this is how EXPERIMENTS.md numbers were
produced).
"""

from __future__ import annotations

import argparse
import sys
import time

from .registry import all_experiments, get

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cobra-experiments",
        description="Reproduce the claims of Mitzenmacher, Rajaraman & Roche (SPAA 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list registered experiments")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("id", help="experiment id, or 'all'")
    runp.add_argument("--scale", choices=("quick", "full"), default="quick")
    runp.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.command == "list":
        for exp in all_experiments():
            print(f"{exp.id:18s} {exp.claim}")
        return 0

    ids = [e.id for e in all_experiments()] if args.id == "all" else [args.id]
    for exp_id in ids:
        exp = get(exp_id)
        print(f"\n=== {exp.id}: {exp.claim} (scale={args.scale}) ===")
        t0 = time.perf_counter()
        result = exp.run(scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - t0
        print(result.render())
        print(f"[{exp.id} finished in {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
