"""``GRIDCHAIN_drift`` — Lemmas 4–7 internals: the pessimistic grid chain.

Two checks on the proof engine behind Theorem 3:

1. **Lemma 4 drift**: in the generic configuration (all ``z_i > 0``,
   far from boundaries) the empirical conditional probability that a
   changing coordinate *decreases* must be at least
   ``1/2 + 1/(8d−4)``, and a zero coordinate must leave zero with
   frequency at most ``2/(d+1)``.
2. **Lemma 5 shape**: the chain's corner-to-corner hitting time grows
   linearly in ``n`` (the queue-emptying time of the paper's
   queueing interpretation).
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, fit_power_law
from ..core import PessimisticGridWalk, grid_chain_hitting_time, lemma4_drift_bounds
from ..sim.rng import spawn_seeds
from .registry import ExperimentResult, register

_DIMS = {"quick": [1, 2, 3], "full": [1, 2, 3, 4]}
_NS = {"quick": [16, 32, 64], "full": [16, 32, 64, 128, 256]}
_TRIALS = {"quick": 10, "full": 30}
_DRIFT_STEPS = {"quick": 15_000, "full": 60_000}


def _measure_drift(d: int, steps: int, seed) -> tuple[float, float]:
    """Empirical Lemma 4 rates from one long trajectory.

    Returns ``(P[decrease | change, generic config], P[a given zero
    coordinate leaves zero in one step])``.  The generic configuration
    is "all z_i > 0, far from the boundary"; the start is placed so the
    walk stays interior for the whole sample.
    """
    n = 10 * steps
    start = np.full(d, n // 2 - steps // (2 * d) - 10, dtype=np.int64)
    target = np.full(d, n // 2, dtype=np.int64)
    w = PessimisticGridWalk(n, d, start, target, seed=seed)
    dec = chg = 0
    zero_exposures = zero_departures = 0
    z_prev = w.z().copy()
    for _ in range(steps):
        w.step()
        z = w.z()
        diff = z - z_prev
        if (z_prev > 0).all():
            moved = np.flatnonzero(diff)
            if moved.size:
                chg += 1
                dec += diff[moved[0]] < 0
        else:
            zeros = np.flatnonzero(z_prev == 0)
            zero_exposures += zeros.size
            zero_departures += int((z[zeros] > 0).sum())
        z_prev = z.copy()
    p_dec = dec / chg if chg else np.nan
    p_leave = zero_departures / zero_exposures if zero_exposures else np.nan
    return p_dec, p_leave


def _measure_leave_zero(d: int, steps: int, seed) -> float:
    """P[a zero coordinate becomes non-zero in one step], sampled from a
    walk hovering near its target (where zeros are common).  Undefined
    for d = 1: the only zero state is the absorbing target itself."""
    if d < 2:
        return np.nan
    n = 4 * steps
    start = np.full(d, n // 2, dtype=np.int64)
    start[0] += 20  # one busy dimension keeps the walk off the target
    target = np.full(d, n // 2, dtype=np.int64)
    w = PessimisticGridWalk(n, d, start, target, seed=seed)
    exposures = departures = 0
    z_prev = w.z().copy()
    for _ in range(steps):
        if w.at_target():
            break
        w.step()
        z = w.z()
        zeros = np.flatnonzero(z_prev == 0)
        exposures += zeros.size
        departures += int((z[zeros] > 0).sum())
        z_prev = z.copy()
    return departures / exposures if exposures else np.nan


@register("GRIDCHAIN_drift", "Lemmas 4-7: pessimistic grid chain drift and linear emptying")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    seeds = spawn_seeds(seed, 128)
    si = iter(seeds)
    drift_table = Table(
        [
            "d",
            "P[dec|change] measured",
            "Lemma 4 lower bnd",
            "P[leave zero] measured",
            "Lemma 4 upper bnd",
            "holds",
        ],
        title="GRIDCHAIN Lemma 4 drift (generic configuration)",
    )
    findings: dict[str, float] = {}
    all_hold = True
    for d in _DIMS[scale]:
        p_dec, _ = _measure_drift(d, _DRIFT_STEPS[scale], next(si))
        p_leave = _measure_leave_zero(d, _DRIFT_STEPS[scale], next(si))
        bounds = lemma4_drift_bounds(d)
        ok = p_dec >= bounds["p_decrease_given_change_min"] - 0.03
        if np.isfinite(p_leave):
            ok = ok and p_leave <= bounds["p_leave_zero_max"] + 0.03
        all_hold &= ok
        drift_table.add_row(
            [
                d,
                p_dec,
                bounds["p_decrease_given_change_min"],
                p_leave,
                bounds["p_leave_zero_max"],
                ok,
            ]
        )
        findings[f"drift_d{d}"] = p_dec
        findings[f"leave_zero_d{d}"] = p_leave
    findings["all_drift_bounds_hold"] = float(all_hold)

    time_table = Table(
        ["d", "n", "mean hit (corner→corner)", "hit/n"],
        title="GRIDCHAIN hitting time linearity (Lemma 5 shape)",
    )
    for d in _DIMS[scale][: 3]:
        ns, means = [], []
        for n in _NS[scale]:
            times = [
                grid_chain_hitting_time(n, d, seed=s)
                for s in spawn_seeds(next(si), _TRIALS[scale])
            ]
            mean = float(np.mean([t for t in times if t is not None]))
            ns.append(n)
            means.append(mean)
            time_table.add_row([d, n, mean, mean / n])
        fit = fit_power_law(ns, means)
        findings[f"hit_exponent_d{d}"] = fit.exponent
        time_table.add_row([d, "fit", f"n^{fit.exponent:.3f}", ""])
    return ExperimentResult(
        experiment_id="GRIDCHAIN_drift",
        tables=[drift_table, time_table],
        findings=findings,
        notes=(
            "The tracked-pebble chain is the engine of Theorem 3: linear "
            "hitting here (exponent ≈ 1) is what makes grid cover O(n)."
        ),
    )
