"""``T3_grid`` — Theorem 3 / Lemma 2: 2-cobra cover on ``[0,n]^d`` is O(n).

Sweep the grid extent ``n`` for ``d ∈ {1, 2, 3}``, measure the mean
2-cobra cover time, and fit the growth exponent: Theorem 3 predicts
exponent 1 in ``n`` (for every fixed ``d``).  The simple-random-walk
baseline on the same graphs has exponent 2 (path/2-D grid up to logs),
so the gap between rows is the paper's headline grid result.

The Monte-Carlo surface is the registered ``T3_grid`` sweep
(:mod:`repro.store.sweeps`): this runner just drives its campaigns
through an ephemeral store and tabulates ``store.frame()`` — point the
CLI's ``sweep run T3_grid --store DIR`` at a directory to make the
same cells durable and resumable.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, ascii_loglog
from ..store import Campaign, ResultStore
from ..store.sweeps import T3_SWEEPS, build_sweep
from .registry import ExperimentResult, register


@register("T3_grid", "Thm 3: 2-cobra cover time on [0,n]^d is O(n)")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    store = ResultStore()
    campaigns = {}
    for spec in build_sweep("T3_grid", scale=scale, seed=seed):
        campaigns[spec.name] = campaign = Campaign(spec, store)
        campaign.run()

    tables: list[Table] = []
    findings: dict[str, float] = {}
    series: dict[str, tuple[list[int], list[float]]] = {}
    for d, ns in T3_SWEEPS[scale].items():
        cobra = campaigns[f"T3_grid/cobra_d{d}"].frame().sort_by("g_n")
        rw_campaign = campaigns.get(f"T3_grid/rw_d{d}")
        rw = rw_campaign.frame() if rw_campaign is not None else []
        rw_by_n = {row["g_n"]: row["mean"] for row in rw}
        table = Table(
            ["n", "vertices", "cobra cover", "±95%", "cover/n", "rw cover", "rw/cobra"],
            title=f"T3 grid d={d} (2-cobra cover vs n; bound O(n))",
        )
        covers = []
        for row in cobra:
            n = row["g_n"]
            rw_mean = rw_by_n.get(n, np.nan)
            covers.append(row["mean"])
            table.add_row(
                [
                    n,
                    row["graph_n"],
                    row["mean"],
                    row["ci95_half_width"],
                    row["mean"] / n,
                    rw_mean,
                    rw_mean / row["mean"] if np.isfinite(rw_mean) else np.nan,
                ]
            )
        fit = cobra.fit_power_law(x="g_n")
        findings[f"cobra_exponent_d{d}"] = fit.exponent
        findings[f"cobra_exponent_ci95_d{d}"] = fit.exponent_ci95
        table.add_row(["fit", "", f"n^{fit.exponent:.3f}", f"±{fit.exponent_ci95:.3f}", "", "", ""])
        tables.append(table)
        series[f"cobra d={d}"] = (ns, covers)
    figure = ascii_loglog(
        series, title="T3: cobra cover vs n (log-log; slope 1 = Theorem 3)"
    )
    return ExperimentResult(
        experiment_id="T3_grid",
        tables=tables,
        figures=[figure],
        findings=findings,
        notes=(
            "Theorem 3 predicts exponent 1 for every fixed d; the paper's "
            "constants depend on d, visible in the cover/n column."
        ),
    )
