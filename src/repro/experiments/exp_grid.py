"""``T3_grid`` — Theorem 3 / Lemma 2: 2-cobra cover on ``[0,n]^d`` is O(n).

Sweep the grid extent ``n`` for ``d ∈ {1, 2, 3}``, measure the mean
2-cobra cover time, and fit the growth exponent: Theorem 3 predicts
exponent 1 in ``n`` (for every fixed ``d``).  The simple-random-walk
baseline on the same graphs has exponent 2 (path/2-D grid up to logs),
so the gap between rows is the paper's headline grid result.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, ascii_loglog, fit_power_law
from ..graphs import grid
from ..sim import run_batch
from ..sim.rng import spawn_seeds
from .registry import ExperimentResult, register

_SWEEPS = {
    "quick": {
        1: [64, 128, 256],
        2: [8, 16, 32],
        3: [4, 6, 8],
    },
    "full": {
        1: [64, 128, 256, 512, 1024],
        2: [8, 16, 32, 64, 128],
        3: [4, 6, 8, 12, 16],
    },
}
_TRIALS = {"quick": 5, "full": 15}
_RW_LIMIT = {"quick": 600, "full": 4000}  # vertex cap for the slow baseline


@register("T3_grid", "Thm 3: 2-cobra cover time on [0,n]^d is O(n)")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    trials = _TRIALS[scale]
    tables: list[Table] = []
    findings: dict[str, float] = {}
    seeds = spawn_seeds(seed, 64)
    seed_iter = iter(seeds)
    series: dict[str, tuple[list[int], list[float]]] = {}
    for d, ns in _SWEEPS[scale].items():
        table = Table(
            ["n", "vertices", "cobra cover", "±95%", "cover/n", "rw cover", "rw/cobra"],
            title=f"T3 grid d={d} (2-cobra cover vs n; bound O(n))",
        )
        covers = []
        for n in ns:
            g = grid(n, d)
            s = run_batch(g, "cobra", trials=trials, seed=next(seed_iter))
            rw_mean = np.nan
            if g.n <= _RW_LIMIT[scale]:
                rw = run_batch(
                    g, "simple", trials=max(3, trials // 2), seed=next(seed_iter)
                )
                rw_mean = rw.mean
            covers.append(s.mean)
            table.add_row(
                [
                    n,
                    g.n,
                    s.mean,
                    s.ci95_half_width,
                    s.mean / n,
                    rw_mean,
                    rw_mean / s.mean if np.isfinite(rw_mean) else np.nan,
                ]
            )
        fit = fit_power_law(ns, covers)
        findings[f"cobra_exponent_d{d}"] = fit.exponent
        findings[f"cobra_exponent_ci95_d{d}"] = fit.exponent_ci95
        table.add_row(["fit", "", f"n^{fit.exponent:.3f}", f"±{fit.exponent_ci95:.3f}", "", "", ""])
        tables.append(table)
        series[f"cobra d={d}"] = (ns, covers)
    figure = ascii_loglog(
        series, title="T3: cobra cover vs n (log-log; slope 1 = Theorem 3)"
    )
    return ExperimentResult(
        experiment_id="T3_grid",
        tables=tables,
        figures=[figure],
        findings=findings,
        notes=(
            "Theorem 3 predicts exponent 1 for every fixed d; the paper's "
            "constants depend on d, visible in the cover/n column."
        ),
    )
