"""``T20_general`` — Theorem 20: cobra cover on *any* graph is
``O(n^{11/4} log n)`` — beating the random walk's ``Θ(n³)`` worst case.

The witness is the lollipop graph (clique 2n/3 + path n/3), which
drives the simple walk to ``(4/27 + o(1)) n³``.  We sweep ``n``,
measure cobra cover (simulated) and random-walk cover (simulated for
small n, exact farthest-pair hitting time via linear solve as a
certified Ω(n³)-growth proxy throughout), fit both exponents, and
check: cobra exponent < 2.75 < 3 ≈ RW exponent.  Barbell rows give a
second trap-style witness.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, fit_power_law
from ..core import thm20_general_cover
from ..graphs import barbell, lollipop
from ..sim.facade import run_batch
from ..sim.rng import spawn_seeds
from ..walks import rw_exact_hitting_times
from .registry import ExperimentResult, register

_NS = {"quick": [24, 48, 96], "full": [24, 48, 96, 192, 384]}
_TRIALS = {"quick": 6, "full": 15}
_RW_SIM_LIMIT = {"quick": 48, "full": 96}


@register("T20_general", "Thm 20: general-graph cobra cover O(n^{11/4} log n) beats RW Θ(n^3)")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    trials = _TRIALS[scale]
    seeds = spawn_seeds(seed, 64)
    si = iter(seeds)
    tables: list[Table] = []
    findings: dict[str, float] = {}
    for label, make in (("lollipop", lollipop), ("barbell", barbell)):
        table = Table(
            [
                "n",
                "cobra cover",
                "thm20 bound",
                "rw hmax exact",
                "rw cover sim",
            ],
            title=f"T20 {label} (RW worst-case witness)",
        )
        ns, cobra, rw_hmax = [], [], []
        for n in _NS[scale]:
            g = make(n)
            c_mean = run_batch(g, "cobra", trials=trials, seed=next(si)).mean
            # exact RW hitting to the path end: the Θ(n³) certificate
            h = float(rw_exact_hitting_times(g, g.n - 1).max())
            rw_sim = np.nan
            if n <= _RW_SIM_LIMIT[scale]:
                rw_sim = run_batch(
                    g, "simple", trials=3, seed=next(si), max_steps=60 * n**3
                ).mean
            else:
                next(si)
            ns.append(n)
            cobra.append(c_mean)
            rw_hmax.append(h)
            table.add_row([n, c_mean, thm20_general_cover(n), h, rw_sim])
        cobra_fit = fit_power_law(ns, cobra)
        rw_fit = fit_power_law(ns, rw_hmax)
        findings[f"{label}_cobra_exponent"] = cobra_fit.exponent
        findings[f"{label}_rw_exponent"] = rw_fit.exponent
        table.add_row(
            ["fit", f"n^{cobra_fit.exponent:.3f}", "n^2.75·log", f"n^{rw_fit.exponent:.3f}", ""]
        )
        tables.append(table)
    return ExperimentResult(
        experiment_id="T20_general",
        tables=tables,
        findings=findings,
        notes=(
            "Who-wins shape: the RW exponent is ~3 (its hmax on the lollipop "
            "is the classical cubic witness) while the cobra exponent stays "
            "far below the 2.75 the paper guarantees — on these witnesses "
            "the frontier keeps the clique saturated, so coverage is "
            "essentially linear and the n^{11/4} bound is very loose."
        ),
    )
