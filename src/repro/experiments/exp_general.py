"""``T20_general`` — Theorem 20: cobra cover on *any* graph is
``O(n^{11/4} log n)`` — beating the random walk's ``Θ(n³)`` worst case.

The witness is the lollipop graph (clique 2n/3 + path n/3), which
drives the simple walk to ``(4/27 + o(1)) n³``.  We sweep ``n``,
measure cobra cover (simulated) and random-walk cover (simulated for
small n, exact farthest-pair hitting time via linear solve as a
certified Ω(n³)-growth proxy throughout), fit both exponents, and
check: cobra exponent < 2.75 < 3 ≈ RW exponent.  Barbell rows give a
second trap-style witness.

The Monte-Carlo surface is the registered ``T20_general`` sweep
(:mod:`repro.store.sweeps`): per witness, one cobra campaign over the
ladder plus one single-cell simple-walk campaign per small size (the
cubic 60·n³ budget is per-n, so each size is its own spec).  The
deterministic certificate — the exact random-walk hitting time by
linear solve — is computed here, next to the stored means.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, fit_power_law
from ..core import thm20_general_cover
from ..store import Campaign, ResultStore
from ..store.sweeps import T20_WITNESSES, build_sweep
from ..walks import rw_exact_hitting_times
from .registry import ExperimentResult, register


@register("T20_general", "Thm 20: general-graph cobra cover O(n^{11/4} log n) beats RW Θ(n^3)")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    store = ResultStore()
    specs = build_sweep("T20_general", scale=scale, seed=seed)
    for spec in specs:
        Campaign(spec, store).run()

    tables: list[Table] = []
    findings: dict[str, float] = {}
    frame = store.frame()
    for witness in T20_WITNESSES:
        cobra_rows = frame.filter(sweep=f"T20_general/{witness}/cobra")
        rw_sim = {
            row["g_n"]: row["mean"]
            for row in frame.filter(sweep=f"T20_general/{witness}/rw")
        }
        table = Table(
            [
                "n",
                "cobra cover",
                "thm20 bound",
                "rw hmax exact",
                "rw cover sim",
            ],
            title=f"T20 {witness} (RW worst-case witness)",
        )
        ns, cobra, rw_hmax = [], [], []
        # witness graphs are small: rebuild each for the exact-hitting
        # certificate (a deterministic linear solve, not Monte Carlo)
        import repro.graphs as graphs_mod

        make = getattr(graphs_mod, witness)
        for row in cobra_rows.sort_by("g_n"):
            n = row["g_n"]
            g = make(n)
            h = float(rw_exact_hitting_times(g, g.n - 1).max())
            ns.append(n)
            cobra.append(row["mean"])
            rw_hmax.append(h)
            table.add_row(
                [n, row["mean"], thm20_general_cover(n), h, rw_sim.get(n, np.nan)]
            )
        cobra_fit = fit_power_law(ns, cobra)
        rw_fit = fit_power_law(ns, rw_hmax)
        findings[f"{witness}_cobra_exponent"] = cobra_fit.exponent
        findings[f"{witness}_rw_exponent"] = rw_fit.exponent
        table.add_row(
            ["fit", f"n^{cobra_fit.exponent:.3f}", "n^2.75·log", f"n^{rw_fit.exponent:.3f}", ""]
        )
        tables.append(table)
    return ExperimentResult(
        experiment_id="T20_general",
        tables=tables,
        findings=findings,
        notes=(
            "Who-wins shape: the RW exponent is ~3 (its hmax on the lollipop "
            "is the classical cubic witness) while the cobra exponent stays "
            "far below the 2.75 the paper guarantees — on these witnesses "
            "the frontier keeps the clique saturated, so coverage is "
            "essentially linear and the n^{11/4} bound is very loose."
        ),
    )
