"""``L10_walt`` — Lemma 10: Walt's cover time dominates the cobra walk's.

For each test graph, run paired cobra and Walt cover trials from the
same start configuration (all δn Walt pebbles on the cobra's start
vertex — exactly how Theorem 8's proof swaps the processes) and check
the empirical survival curves nest the right way.  Both trial sweeps
run on the vectorized batched cover engines via ``run_batch`` (see
:func:`repro.core.coupling.walt_dominates_cobra_report`).
"""

from __future__ import annotations

from ..analysis import Table
from ..core import walt_dominates_cobra_report
from ..graphs import complete_graph, grid, hypercube, random_regular
from ..sim.rng import spawn_seeds
from .registry import ExperimentResult, register

_TRIALS = {"quick": 20, "full": 80}


@register("L10_walt", "Lemma 10: Walt cover time stochastically dominates cobra's")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    trials = _TRIALS[scale]
    seeds = spawn_seeds(seed, 8)
    graphs = [
        complete_graph(40),
        hypercube(6),
        random_regular(128, 4, seed=seeds[0]),
        grid(7, 2),
    ]
    table = Table(
        ["graph", "cobra mean", "walt mean", "walt/cobra", "dominance frac", "consistent"],
        title="L10 Walt-vs-cobra cover times (same start; δ=1/2)",
    )
    findings: dict[str, float] = {}
    worst = 1.0
    for g, s in zip(graphs, seeds[1:]):
        rep = walt_dominates_cobra_report(g, trials=trials, seed=s)
        table.add_row(
            [
                g.name,
                rep.cobra_mean,
                rep.walt_mean,
                rep.walt_mean / rep.cobra_mean,
                rep.dominance_fraction,
                rep.consistent_with_lemma10,
            ]
        )
        worst = min(worst, rep.dominance_fraction)
        findings[f"dominance_{g.name}"] = rep.dominance_fraction
    findings["min_dominance_fraction"] = worst
    return ExperimentResult(
        experiment_id="L10_walt",
        tables=[table],
        findings=findings,
        notes=(
            "Lemma 10's coupling predicts Pr[τ_cobra > t] <= Pr[τ_walt > t] "
            "for all t; sampled survival curves should nest accordingly."
        ),
    )
