"""``T15_regular`` — Theorem 15: cobra hitting time on δ-regular graphs
is ``O(n^{2−1/δ})``.

For δ-regular families (cycle δ=2, circulant δ=4, random regular δ=3)
we measure the antipodal/farthest-pair cobra hitting time over an
``n``-ladder and fit the exponent: it must not exceed ``2 − 1/δ``.
The simple-random-walk hitting exponent on the cycle is 2 — the
separation Theorem 15 buys.  (The bound is far from tight on
expander-like regular graphs, where hitting is polylogarithmic; the
claim under test is the upper bound's validity, not tightness.)

The Monte-Carlo surface is the registered ``T15_regular`` sweep
(:mod:`repro.store.sweeps`): one hit-metric campaign per family, each
cell targeting the ``"farthest"`` rule (the BFS-farthest vertex from
0, resolved against the built graph).  The deterministic columns —
the ``n^{2-1/δ}`` bound and the exact random-walk hitting time — are
computed here, next to the stored means.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, fit_power_law
from ..core import thm15_regular_hitting
from ..store import Campaign, ResultStore
from ..store.sweeps import build_sweep, t15_families
from ..walks import rw_exact_hitting_times
from .registry import ExperimentResult, register


@register("T15_regular", "Thm 15: δ-regular cobra hitting is O(n^{2-1/δ})")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    store = ResultStore()
    campaigns = {}
    for spec in build_sweep("T15_regular", scale=scale, seed=seed):
        campaigns[spec.name] = campaign = Campaign(spec, store)
        campaign.run()

    tables: list[Table] = []
    findings: dict[str, float] = {}
    for key_name, label, delta, _builder, _extra in t15_families(seed):
        campaign = campaigns[f"T15_regular/{key_name}"]
        table = Table(
            ["n", "cobra hit (far pair)", "bound n^{2-1/δ}", "hit/bound", "rw hit exact"],
            title=f"T15 {label}",
        )
        ns, hits = [], []
        # walk the cells in expansion order (the ascending n-ladder):
        # the stored mean rides the record, the deterministic columns
        # rebuild the cell's graph and farthest-pair target
        for cell in campaign.cells:
            record = store.get(cell)
            mean = record["result"]["mean"]
            n = dict(cell.graph_params)["n"]
            g = cell.build_graph()
            target = cell.resolve_target(g)
            bound = thm15_regular_hitting(n, delta)
            rw_hit = (
                float(rw_exact_hitting_times(g, target)[0]) if n <= 512 else np.nan
            )
            ns.append(n)
            hits.append(mean)
            table.add_row([n, mean, bound, mean / bound, rw_hit])
        fit = fit_power_law(ns, hits)
        key = label.split()[0]
        findings[f"exponent_{key}"] = fit.exponent
        findings[f"bound_exponent_{key}"] = 2.0 - 1.0 / delta
        table.add_row(["fit", f"n^{fit.exponent:.3f}", f"n^{2 - 1/delta:.3f}", "", ""])
        tables.append(table)
    return ExperimentResult(
        experiment_id="T15_regular",
        tables=tables,
        findings=findings,
        notes=(
            "Upper-bound check: measured exponent <= 2 - 1/δ per family. "
            "On the cycle the cobra frontier spreads ballistically, so the "
            "measured exponent is ~1, well under the 1.5 bound; the simple "
            "walk's exact hitting exponent is 2."
        ),
    )
