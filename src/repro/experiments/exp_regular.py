"""``T15_regular`` — Theorem 15: cobra hitting time on δ-regular graphs
is ``O(n^{2−1/δ})``.

For δ-regular families (cycle δ=2, circulant δ=4, random regular δ=3)
we measure the antipodal/farthest-pair cobra hitting time over an
``n``-ladder and fit the exponent: it must not exceed ``2 − 1/δ``.
The simple-random-walk hitting exponent on the cycle is 2 — the
separation Theorem 15 buys.  (The bound is far from tight on
expander-like regular graphs, where hitting is polylogarithmic; the
claim under test is the upper bound's validity, not tightness.)
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, fit_power_law
from ..core import thm15_regular_hitting
from ..graphs import Graph, bfs_distances, circulant, cycle_graph, random_regular
from ..sim.facade import run_batch
from ..sim.rng import spawn_seeds
from ..walks import rw_exact_hitting_times
from .registry import ExperimentResult, register

_NS = {
    "quick": [32, 64, 128],
    "full": [32, 64, 128, 256, 512],
}
_TRIALS = {"quick": 8, "full": 20}


def _farthest(g: Graph, source: int = 0) -> int:
    dist = bfs_distances(g, source)
    return int(np.argmax(dist))


@register("T15_regular", "Thm 15: δ-regular cobra hitting is O(n^{2-1/δ})")
def run(*, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    trials = _TRIALS[scale]
    seeds = spawn_seeds(seed, 64)
    si = iter(seeds)
    families = {
        "cycle (δ=2)": (2, lambda n, s: cycle_graph(n)),
        "circulant±{1,2} (δ=4)": (4, lambda n, s: circulant(n, [1, 2])),
        "random 3-regular": (3, lambda n, s: random_regular(n, 3, seed=s)),
    }
    tables: list[Table] = []
    findings: dict[str, float] = {}
    for label, (delta, make) in families.items():
        table = Table(
            ["n", "cobra hit (far pair)", "bound n^{2-1/δ}", "hit/bound", "rw hit exact"],
            title=f"T15 {label}",
        )
        ns, hits = [], []
        for n in _NS[scale]:
            g = make(n, next(si))
            target = _farthest(g)
            # batched metric="hit" engine: all trials race in one frontier
            mean = run_batch(
                g, "cobra", metric="hit", target=target, trials=trials, seed=next(si)
            ).mean
            bound = thm15_regular_hitting(n, delta)
            rw_hit = float(rw_exact_hitting_times(g, target)[0]) if n <= 512 else np.nan
            ns.append(n)
            hits.append(mean)
            table.add_row([n, mean, bound, mean / bound, rw_hit])
        fit = fit_power_law(ns, hits)
        key = label.split()[0]
        findings[f"exponent_{key}"] = fit.exponent
        findings[f"bound_exponent_{key}"] = 2.0 - 1.0 / delta
        table.add_row(["fit", f"n^{fit.exponent:.3f}", f"n^{2 - 1/delta:.3f}", "", ""])
        tables.append(table)
    return ExperimentResult(
        experiment_id="T15_regular",
        tables=tables,
        findings=findings,
        notes=(
            "Upper-bound check: measured exponent <= 2 - 1/δ per family. "
            "On the cycle the cobra frontier spreads ballistically, so the "
            "measured exponent is ~1, well under the 1.5 bound; the simple "
            "walk's exact hitting exponent is 2."
        ),
    )
