"""Summary statistics and bootstrap confidence intervals."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..sim.rng import SeedLike, resolve_rng

__all__ = ["SummaryStats", "summarize", "bootstrap_ci"]


@dataclass(frozen=True)
class SummaryStats:
    """Location/scale summary of a sample (NaNs dropped, counted)."""

    n: int
    mean: float
    std: float
    median: float
    q25: float
    q75: float
    minimum: float
    maximum: float
    ci95_half_width: float
    nan_count: int


def summarize(values) -> SummaryStats:
    """Summarise a 1-D sample."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    ok = arr[~np.isnan(arr)]
    nan_count = int(arr.size - ok.size)
    if ok.size == 0:
        nan = float("nan")
        return SummaryStats(0, nan, nan, nan, nan, nan, nan, nan, nan, nan_count)
    std = float(ok.std(ddof=1)) if ok.size > 1 else 0.0
    half = 1.96 * std / np.sqrt(ok.size) if ok.size > 1 else 0.0
    return SummaryStats(
        n=int(ok.size),
        mean=float(ok.mean()),
        std=std,
        median=float(np.median(ok)),
        q25=float(np.quantile(ok, 0.25)),
        q75=float(np.quantile(ok, 0.75)),
        minimum=float(ok.min()),
        maximum=float(ok.max()),
        ci95_half_width=float(half),
        nan_count=nan_count,
    )


def bootstrap_ci(
    values,
    stat: Callable[[np.ndarray], float] = np.mean,
    *,
    iters: int = 2000,
    level: float = 0.95,
    seed: SeedLike = None,
) -> tuple[float, float]:
    """Percentile bootstrap interval for ``stat`` of the sample."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        raise ValueError("empty sample")
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    rng = resolve_rng(seed)
    idx = rng.integers(0, arr.size, size=(iters, arr.size))
    stats = np.array([stat(arr[row]) for row in idx])
    alpha = (1.0 - level) / 2.0
    return float(np.quantile(stats, alpha)), float(np.quantile(stats, 1.0 - alpha))
