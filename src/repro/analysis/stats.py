"""Summary statistics and bootstrap confidence intervals.

The summary type is :class:`repro.sim.montecarlo.TrialSummary` — one
schema for Monte-Carlo harness output, facade batches, and analysis
tables.  ``SummaryStats`` remains as an alias of it; :func:`summarize`
delegates to :func:`repro.sim.montecarlo.summarize_trials`.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..sim.montecarlo import TrialSummary, summarize_trials
from ..sim.rng import SeedLike, resolve_rng

__all__ = ["SummaryStats", "summarize", "bootstrap_ci"]

#: historical name for the unified trial-summary type
SummaryStats = TrialSummary


def summarize(values) -> TrialSummary:
    """Summarise a 1-D sample (NaNs dropped, counted as failures)."""
    return summarize_trials(values)


def bootstrap_ci(
    values,
    stat: Callable[[np.ndarray], float] = np.mean,
    *,
    iters: int = 2000,
    level: float = 0.95,
    seed: SeedLike = None,
) -> tuple[float, float]:
    """Percentile bootstrap interval for ``stat`` of the sample."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        raise ValueError("empty sample")
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    rng = resolve_rng(seed)
    idx = rng.integers(0, arr.size, size=(iters, arr.size))
    stats = np.array([stat(arr[row]) for row in idx])
    alpha = (1.0 - level) / 2.0
    return float(np.quantile(stats, alpha)), float(np.quantile(stats, 1.0 - alpha))
