"""Growth-exponent fitting — the evaluation currency of this repo.

The paper's claims are asymptotic shapes (``O(n)``, ``O(log² n)``,
``O(n^{11/4})``…).  Each experiment measures a time over a geometric
size ladder and uses these fits to compare the measured exponent with
the theorem's.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "fit_power_law_rows",
    "doubling_ratios",
    "ShapeFit",
    "fit_constant_to_shape",
]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = c · x^a`` on log–log scales.

    ``exponent_ci95`` is the half-width of the slope's 95% confidence
    interval under the usual normal-error approximation (meaningless
    for < 3 points, returned as ``inf``).
    """

    exponent: float
    prefactor: float
    exponent_stderr: float
    exponent_ci95: float
    r_squared: float
    npoints: int

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted law."""
        return self.prefactor * np.asarray(x, dtype=np.float64) ** self.exponent


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> PowerLawFit:
    """Fit ``y ≈ c·x^a`` by ordinary least squares in log space."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    keep = np.isfinite(x) & np.isfinite(y) & (x > 0) & (y > 0)
    x, y = x[keep], y[keep]
    if x.size < 2:
        raise ValueError("need at least two positive, finite points")
    lx, ly = np.log(x), np.log(y)
    a, b = np.polyfit(lx, ly, 1)
    resid = ly - (a * lx + b)
    npts = x.size
    if npts > 2:
        s2 = float(resid @ resid) / (npts - 2)
        sxx = float(((lx - lx.mean()) ** 2).sum())
        stderr = np.sqrt(s2 / sxx) if sxx > 0 else np.inf
    else:
        stderr = np.inf
    ss_tot = float(((ly - ly.mean()) ** 2).sum())
    r2 = 1.0 - float(resid @ resid) / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(
        exponent=float(a),
        prefactor=float(np.exp(b)),
        exponent_stderr=float(stderr),
        exponent_ci95=float(1.96 * stderr),
        r_squared=r2,
        npoints=int(npts),
    )


def fit_power_law_rows(rows: Sequence[dict], *, x: str, y: str = "mean") -> PowerLawFit:
    """Power-law fit over dict rows (the sweep-store ``Frame`` shape).

    Extracts columns ``x`` and ``y`` (missing/None entries become NaN
    and are dropped by :func:`fit_power_law`'s finite-point filter) —
    the one-liner the migrated experiments fit their ladders with.
    """
    xs = [row.get(x) for row in rows]
    ys = [row.get(y) for row in rows]
    to_f = lambda v: float("nan") if v is None else float(v)  # noqa: E731
    return fit_power_law([to_f(v) for v in xs], [to_f(v) for v in ys])


def doubling_ratios(x: Sequence[float], y: Sequence[float]) -> np.ndarray:
    """``log2(y_{i+1}/y_i) / log2(x_{i+1}/x_i)`` — local exponents
    between consecutive ladder rungs (useful to spot non-power-law
    curvature a single global fit would hide)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need two equal-length arrays of >= 2 points")
    return np.log2(y[1:] / y[:-1]) / np.log2(x[1:] / x[:-1])


@dataclass(frozen=True)
class ShapeFit:
    """Comparison of measurements against a theorem's growth shape.

    ``constant`` is the least-squares multiplier ``c`` for
    ``measured ≈ c · shape(x)``; ``max_rel_dev`` is the worst relative
    deviation of ``measured / (c·shape)`` from 1.  A claim's shape
    "holds" when the deviation stays modest across the sweep — the
    constant itself is not meaningful (our substrate isn't the paper's
    testbed)."""

    constant: float
    max_rel_dev: float
    ratios: np.ndarray


def fit_constant_to_shape(
    x: Sequence[float],
    measured: Sequence[float],
    shape: Callable[[float], float],
) -> ShapeFit:
    """Fit the single constant in ``measured ≈ c·shape(x)``."""
    x = np.asarray(x, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    s = np.array([shape(v) for v in x], dtype=np.float64)
    keep = np.isfinite(measured) & np.isfinite(s) & (s > 0)
    if keep.sum() < 1:
        raise ValueError("no usable points")
    m, s = measured[keep], s[keep]
    c = float((m * s).sum() / (s * s).sum())
    ratios = m / (c * s)
    return ShapeFit(constant=c, max_rel_dev=float(np.abs(ratios - 1.0).max()), ratios=ratios)
