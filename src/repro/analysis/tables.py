"""Plain-text result tables for experiment output.

Experiments print rows the way the paper would tabulate them; the same
object renders aligned ASCII (terminal) and markdown (EXPERIMENTS.md).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

__all__ = ["Table"]


class Table:
    """A simple column-aligned results table.

    >>> t = Table(["n", "cover", "cover/n"], title="grid")
    >>> t.add_row([64, 181, 2.83])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], *, title: str | None = None) -> None:
        if not headers:
            raise ValueError("need at least one column")
        self.headers = [str(h) for h in headers]
        self.title = title
        self.rows: list[list[str]] = []

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[dict],
        columns: Sequence[str],
        *,
        title: str | None = None,
    ) -> "Table":
        """Build a table from dict rows (the sweep-store ``Frame`` shape).

        Missing columns render as ``-`` (NaN), so partially-complete
        campaigns tabulate cleanly.
        """
        table = cls(list(columns), title=title)
        for row in rows:
            table.add_row([row.get(c, float("nan")) for c in columns])
        return table

    def add_row(self, values: Iterable[Any]) -> None:
        """Append a row (values are formatted: floats to 4 significant
        digits, everything else via ``str``)."""
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} entries, expected {len(self.headers)}"
            )
        self.rows.append(row)

    @staticmethod
    def _fmt(v: Any) -> str:
        if isinstance(v, (bool, np.bool_)):
            return "yes" if v else "no"
        if isinstance(v, (np.floating, np.integer)):
            v = v.item()
        if isinstance(v, float):
            if v != v:  # NaN
                return "-"
            if v == 0:
                return "0"
            if abs(v) >= 1e5 or abs(v) < 1e-3:
                return f"{v:.3e}"
            return f"{v:.4g}"
        return str(v)

    def render(self) -> str:
        """Aligned plain-text rendering."""
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in self.rows)) if self.rows else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = []
        if self.title:
            lines.append(f"== {self.title} ==")
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join(["---"] * len(self.headers)) + "|")
        for r in self.rows:
            lines.append("| " + " | ".join(r) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
