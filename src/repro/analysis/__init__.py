"""Analysis helpers: exponent fits, summary stats, result tables."""

from .scaling import (
    PowerLawFit,
    ShapeFit,
    doubling_ratios,
    fit_constant_to_shape,
    fit_power_law,
    fit_power_law_rows,
)
from .plot import ascii_loglog, ascii_plot
from .stats import SummaryStats, bootstrap_ci, summarize
from .tables import Table

__all__ = [
    "PowerLawFit",
    "ShapeFit",
    "doubling_ratios",
    "fit_constant_to_shape",
    "fit_power_law",
    "fit_power_law_rows",
    "SummaryStats",
    "bootstrap_ci",
    "summarize",
    "Table",
    "ascii_loglog",
    "ascii_plot",
]
