"""ASCII plotting for terminal-first experiment output.

The paper has no figures; our experiments emit figure-shaped artifacts
anyway — log–log scatter of cover/hitting times per series — rendered
as plain text so they survive logs, CI output, and EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

__all__ = ["ascii_plot", "ascii_loglog"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 64,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
    title: str | None = None,
) -> str:
    """Render one or more ``name -> (xs, ys)`` series as an ASCII
    scatter plot with shared axes.

    Points outside a log-transformed axis (non-positive values) are
    dropped.  Series are drawn in order with markers ``o x + * …``; a
    legend line maps markers to names.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 6:
        raise ValueError("plot area too small")

    def tx(v: np.ndarray, log: bool) -> np.ndarray:
        return np.log10(v) if log else v

    cleaned: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, (xs, ys) in series.items():
        x = np.asarray(xs, dtype=np.float64)
        y = np.asarray(ys, dtype=np.float64)
        keep = np.isfinite(x) & np.isfinite(y)
        if logx:
            keep &= x > 0
        if logy:
            keep &= y > 0
        if keep.sum() == 0:
            continue
        cleaned[name] = (tx(x[keep], logx), tx(y[keep], logy))
    if not cleaned:
        raise ValueError("no finite points to plot")

    all_x = np.concatenate([v[0] for v in cleaned.values()])
    all_y = np.concatenate([v[1] for v in cleaned.values()])
    x0, x1 = float(all_x.min()), float(all_x.max())
    y0, y1 = float(all_y.min()), float(all_y.max())
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for (name, (x, y)), marker in zip(cleaned.items(), _MARKERS):
        cols = np.clip(((x - x0) / (x1 - x0) * (width - 1)).round(), 0, width - 1)
        rows = np.clip(((y - y0) / (y1 - y0) * (height - 1)).round(), 0, height - 1)
        for c, r in zip(cols.astype(int), rows.astype(int)):
            canvas[height - 1 - r][c] = marker

    def label(v: float, log: bool) -> str:
        val = 10**v if log else v
        return f"{val:.3g}"

    lines: list[str] = []
    if title:
        lines.append(title)
    ytop = label(y1, logy)
    ybot = label(y0, logy)
    pad = max(len(ytop), len(ybot))
    for i, row in enumerate(canvas):
        left = ytop if i == 0 else (ybot if i == height - 1 else "")
        lines.append(f"{left:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    xlabel = f"{label(x0, logx)}" + " " * max(1, width - len(label(x0, logx)) - len(label(x1, logx))) + label(x1, logx)
    lines.append(" " * (pad + 2) + xlabel)
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(cleaned.items(), _MARKERS)
    )
    lines.append(" " * (pad + 2) + legend)
    return "\n".join(lines)


def ascii_loglog(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 64,
    height: int = 18,
    title: str | None = None,
) -> str:
    """Log–log :func:`ascii_plot` (the exponent-comparison view)."""
    return ascii_plot(
        series, width=width, height=height, logx=True, logy=True, title=title
    )
