"""Vectorized batched trial engines.

Serial Monte-Carlo sweeps pay per-trial Python overhead: 32 cobra
cover runs are 32 Python step loops, each issuing a dozen small numpy
calls per step.  The engines here advance *all* trials in one flat
``(trials * n,)`` state — trial ``r``'s copy of vertex ``v`` lives at
index ``r*n + v`` — so each global step does one batched neighbor
draw and one boolean-scatter pass for every trial at once (the same
idiom as the serial :func:`repro.core.cobra.cobra_step` kernel,
amortized across trials).
(:func:`repro.walks.simple.rw_cover_trials` plays the same role for
the simple walk.)

One engine per process family, all on the same flat-frontier idiom:

* :func:`batched_cobra_cover_trials` / :func:`batched_cobra_hit_trials`
  — the cobra frontier, stopped at full coverage or first activation
  of a target vertex;
* :func:`batched_gossip_spread_trials` — push / pull / push-pull rumor
  spreading with incremental boundary tracking (only vertices that can
  still change the state ever draw);
* :func:`batched_parallel_walks_cover_trials` — ``trials × walkers``
  independent walkers advanced by one batched neighbor draw per step;
* :func:`batched_walt_cover_trials` — Walt's per-vertex pebble groups
  found sort-free by duplicate-scatter on the flat ``trial*n + vertex``
  key (groups never span trials), replacing the serial kernel's
  per-trial lexsort.

Engines whose per-step cost scales with ``alive · n`` (cobra, gossip,
Walt) compact finished trials out so the tail of slow trials doesn't
pay for the fast ones; the parallel-walk engine keeps its (tiny)
state dense, mirroring ``rw_cover_trials``.

Hot-path notes (measured on the benchmark machine, not guessed):

* index arrays stay ``int64`` end to end — numpy silently converts
  any other integer dtype to ``intp`` per fancy-indexing call, which
  doubles the cost of the scatter;
* per-flat-id ``start``/``degree``/``base``/``row`` lookup tables are
  tiled per trial (a few hundred KB — cache resident) so the hot loop
  needs no modulo/divide;
* all per-step temporaries live in a preallocated buffer pool
  (``take(..., out=)``, in-place ufuncs) — at these sizes allocator
  traffic is a measurable fraction of a step;
* for ``k == 2`` both neighbor draws come from one uniform variate
  (``i = ⌊u·d⌋``; the leftover fraction is itself uniform).  The
  split is exact in floating point — ``u·d`` never rounds up to ``d``
  and the fractional part is exactly representable — and the second
  draw is uniform up to ``d²·2^-24`` (float32, used for ``d ≤ 64``)
  or ``d²·2^-53`` (float64 otherwise), far below Monte-Carlo
  resolution.

Batched runs are distributionally identical to serial runs (the same
process, one interleaved RNG stream) but not seed-for-seed identical
to per-trial streams; use the facade's ``strategy="serial"`` when you
need bit-exact parity with the legacy per-process helpers.
"""

from __future__ import annotations

import numpy as np

from ..graphs.base import Graph, sample_uniform_neighbors
from .rng import SeedLike, resolve_rng

__all__ = [
    "batched_cobra_cover_trials",
    "batched_cobra_hit_trials",
    "batched_gossip_spread_trials",
    "batched_parallel_walks_cover_trials",
    "batched_walt_cover_trials",
]


def _tiled_tables(graph: Graph, a: int, ftype=np.float64):
    """Per-flat-id ``start``/``degree``/``base``/``row`` lookup tables
    for *a* trials (gathers from these replace int64 divides in the
    hot loops)."""
    ptr_s = np.tile(graph.indptr[:-1], a)
    deg_s = np.tile(graph.degrees.astype(ftype), a)
    base_s = np.repeat(np.arange(a, dtype=np.int64) * graph.n, graph.n)
    row_s = np.repeat(np.arange(a, dtype=np.int64), graph.n)
    return ptr_s, deg_s, base_s, row_s


def _validated_start(graph: Graph, start) -> np.ndarray:
    """Facade-style ``start`` normalised to a unique sorted vertex array."""
    start_arr = np.unique(np.atleast_1d(np.asarray(start, dtype=np.int64)))
    if start_arr.size == 0:
        raise ValueError("need at least one start vertex")
    if start_arr.min() < 0 or start_arr.max() >= graph.n:
        raise ValueError("start vertex out of range")
    return start_arr


def _check_samplable(graph: Graph, trials: int) -> None:
    if trials < 1:
        raise ValueError("need at least one trial")
    if graph.n and graph.min_degree <= 0:
        raise ValueError("cannot sample a neighbor of an isolated vertex")


def batched_cobra_cover_trials(
    graph: Graph,
    *,
    trials: int,
    k: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Cover times of *trials* independent k-cobra runs, advanced in
    lock-step; finished trials are compacted out so the tail of slow
    trials doesn't pay for the fast ones.

    Returns ``float64[trials]`` cover times with ``np.nan`` marking
    budget exhaustion — the same contract as
    :func:`repro.core.hitting.cobra_cover_trials`.
    """
    _check_samplable(graph, trials)
    if k < 1:
        raise ValueError(f"branching factor k must be >= 1, got {k}")
    n = graph.n
    start_arr = _validated_start(graph, start)
    if max_steps is None:
        from ..core.cobra import _default_budget

        max_steps = _default_budget(n)
    rng = resolve_rng(seed)

    out = np.full(trials, np.nan)
    if start_arr.size == n:
        out[:] = 0.0
        return out

    pair = k == 2
    if pair:
        ftype = np.float32 if graph.max_degree <= 64 else np.float64
    else:
        ftype = np.float32 if graph.max_degree < (1 << 20) else np.float64
    indices = graph.indices
    nn = np.int64(n)

    def build_tables(a: int):
        return _tiled_tables(graph, a, ftype)

    a = trials  # still-running trial count; `alive` maps rows -> trial ids
    alive = np.arange(trials)
    ptr_s, deg_s, base_s, row_s = build_tables(a)
    covered = np.zeros(a * n, dtype=bool)
    front = (
        np.repeat(np.arange(a, dtype=np.int64) * n, start_arr.size)
        + np.tile(start_arr, a)
    )
    covered[front] = True
    count = np.full(a, start_arr.size, dtype=np.int64)
    scratch = np.zeros(a * n, dtype=bool)

    # reusable per-step temporaries (frontier size never exceeds a*n)
    cap = a * n
    # clearing the dedup mask: a fresh calloc beats an O(|front|)
    # scatter-reset while the mask is small (measured 0.4µs vs 8µs at
    # 35KB), but is an O(a*n) memset per step — switch to the scatter
    # reset once the mask outgrows cache
    reset_by_scatter = cap > (1 << 21)
    b_start = np.empty(cap, np.int64)
    b_deg = np.empty(cap, ftype)
    b_base = np.empty(cap, np.int64)
    b_u = np.empty(cap, ftype)
    b_first = np.empty(cap, ftype)
    b_i1 = np.empty(cap, np.int64)
    b_i2 = np.empty(cap, np.int64)
    b_p1 = np.empty(cap, np.int64)
    b_p2 = np.empty(cap, np.int64)
    b_seen = np.empty(cap, bool)

    for t in range(1, max_steps + 1):
        F = front.size
        starts = ptr_s.take(front, mode="clip", out=b_start[:F])
        degs = deg_s.take(front, mode="clip", out=b_deg[:F])
        base = base_s.take(front, mode="clip", out=b_base[:F])
        if pair:
            u = rng.random(out=b_u[:F], dtype=ftype)
            u *= degs
            first = np.floor(u, out=b_first[:F])
            u -= first  # leftover fraction: uniform again
            u *= degs
            i1 = b_i1[:F]
            np.copyto(i1, first, casting="unsafe")  # trunc == floor (>= 0)
            i1 += starts
            i2 = b_i2[:F]
            np.copyto(i2, u, casting="unsafe")
            i2 += starts
            p1 = indices.take(i1, mode="clip", out=b_p1[:F])
            p1 += base
            p2 = indices.take(i2, mode="clip", out=b_p2[:F])
            p2 += base
            scratch[p1] = True
            scratch[p2] = True
        else:
            u = rng.random((k, F), dtype=ftype)
            nbrs = indices.take(starts + (u * degs).astype(np.int64), mode="clip")
            scratch[(base + nbrs).ravel()] = True
        front = scratch.nonzero()[0]
        if reset_by_scatter:
            scratch[front] = False
        else:
            scratch = np.zeros(a * n, dtype=bool)
        seen = covered.take(front, mode="clip", out=b_seen[: front.size])
        np.logical_not(seen, out=seen)
        fresh = front[seen]
        if fresh.size:
            covered[fresh] = True
            count += np.bincount(row_s.take(fresh, mode="clip"), minlength=a)
            done = count == n
            if done.any():
                out[alive[done]] = t
                keep = ~done
                alive = alive[keep]
                a = alive.size
                if a == 0:
                    break
                count = count[keep]
                rows = front // nn
                keep_front = keep[rows]
                remap = np.cumsum(keep) - 1
                front = remap[rows[keep_front]] * n + front[keep_front] % nn
                covered = np.ascontiguousarray(covered.reshape(-1, n)[keep]).reshape(-1)
                ptr_s, deg_s, base_s, row_s = build_tables(a)
                scratch = np.zeros(a * n, dtype=bool)
    return out


def batched_cobra_hit_trials(
    graph: Graph,
    target: int,
    *,
    trials: int,
    k: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """First-activation times of *target* over *trials* independent
    k-cobra runs advanced in lock-step (the ``metric="hit"`` engine).

    Returns ``float64[trials]`` hitting times with ``np.nan`` marking
    budget exhaustion — the same contract as
    :func:`repro.core.hitting.cobra_hitting_trials`.  Unlike the cover
    engine no per-vertex visit ledger is kept: a trial is done the step
    its frontier mask lights up ``target``, so the hot loop is just the
    neighbor draw plus the coalescing scatter.
    """
    _check_samplable(graph, trials)
    if k < 1:
        raise ValueError(f"branching factor k must be >= 1, got {k}")
    n = graph.n
    if not (0 <= target < n):
        raise ValueError("target out of range")
    start_arr = _validated_start(graph, start)
    if max_steps is None:
        from ..core.cobra import _default_budget

        max_steps = _default_budget(n)
    rng = resolve_rng(seed)

    out = np.full(trials, np.nan)
    if target in start_arr:
        out[:] = 0.0
        return out

    pair = k == 2
    if pair:
        ftype = np.float32 if graph.max_degree <= 64 else np.float64
    else:
        ftype = np.float32 if graph.max_degree < (1 << 20) else np.float64
    indices = graph.indices
    nn = np.int64(n)

    a = trials
    alive = np.arange(trials)
    ptr_s, deg_s, base_s, _ = _tiled_tables(graph, a, ftype)
    target_flat = np.arange(a, dtype=np.int64) * n + target
    front = (
        np.repeat(np.arange(a, dtype=np.int64) * n, start_arr.size)
        + np.tile(start_arr, a)
    )
    scratch = np.zeros(a * n, dtype=bool)

    for t in range(1, max_steps + 1):
        starts = ptr_s[front]
        degs = deg_s[front]
        base = base_s[front]
        if pair:
            # both draws from one uniform variate (see module notes)
            u = rng.random(front.size, dtype=ftype)
            u *= degs
            first = np.floor(u)
            u -= first
            u *= degs
            i1 = first.astype(np.int64) + starts
            i2 = u.astype(np.int64) + starts
            scratch[indices[i1] + base] = True
            scratch[indices[i2] + base] = True
        else:
            u = rng.random((k, front.size), dtype=ftype)
            nbrs = indices.take(starts + (u * degs).astype(np.int64), mode="clip")
            scratch[(base + nbrs).ravel()] = True
        # hit check reads the mask BEFORE it is reset: the frontier at
        # step t is exactly the activation set of step t
        done = scratch[target_flat]
        front = scratch.nonzero()[0]
        scratch[front] = False
        if done.any():
            out[alive[done]] = t
            keep = ~done
            alive = alive[keep]
            a = alive.size
            if a == 0:
                break
            rows = front // nn
            keep_front = keep[rows]
            remap = np.cumsum(keep) - 1
            front = remap[rows[keep_front]] * n + front[keep_front] % nn
            ptr_s, deg_s, base_s, _ = _tiled_tables(graph, a, ftype)
            target_flat = np.arange(a, dtype=np.int64) * n + target
            scratch = np.zeros(a * n, dtype=bool)
    return out


def batched_gossip_spread_trials(
    graph: Graph,
    *,
    trials: int,
    start: int = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
    push: bool = True,
    pull: bool = False,
) -> np.ndarray:
    """Spread times of *trials* independent gossip runs (push and/or
    pull), advanced in lock-step; finished trials are compacted out.

    Per round and per alive trial: every informed vertex pushes the
    rumor to one uniform neighbor (``push``) and/or every uninformed
    vertex polls one uniform neighbor and learns the rumor if that
    neighbor knows it (``pull``) — the same semantics as
    :class:`repro.walks.gossip.GossipSpread`, whose serial runs these
    match distributionally.  Returns ``float64[trials]`` round counts
    with ``np.nan`` marking budget exhaustion.

    The hot loop draws only for vertices that can still change the
    state: a push from an informed vertex whose whole neighborhood is
    informed, or a pull by a vertex with no informed neighbor, never
    alters the informed set, so skipping those draws leaves the
    process law untouched while cutting per-round work from
    ``O(alive · n)`` to ``O(boundary)``.  The boundary bookkeeping is
    maintained incrementally from each round's freshly informed
    vertices (one CSR neighborhood expansion plus one sparse unique —
    never an ``O(alive · n)`` pass), the batched analogue of a
    wavefront sweep.
    """
    _check_samplable(graph, trials)
    if not (push or pull):
        raise ValueError("enable at least one of push/pull")
    n = graph.n
    start = int(start)
    if not (0 <= start < n):
        raise ValueError("start out of range")
    if max_steps is None:
        from ..walks.gossip import _budget

        max_steps = _budget(n)
    rng = resolve_rng(seed)

    out = np.full(trials, np.nan)
    if n == 1:
        out[:] = 0.0
        return out

    a = trials
    alive = np.arange(trials)
    ptr_s, deg_s, base_s, row_s = _tiled_tables(graph, a)
    indices = graph.indices
    indptr = graph.indptr
    degrees = graph.degrees
    nn = np.int64(n)
    informed = np.zeros(a * n, dtype=bool)
    start_flat = np.arange(a, dtype=np.int64) * n + start
    informed[start_flat] = True
    count = np.ones(a, dtype=np.int64)

    def neighbor_expand(fresh: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Unique flat neighbor ids of *fresh* (newly informed flat
        ids) and how often each is hit: one CSR expansion + one sparse
        unique — every op is sized by the touched edges, never a·n."""
        w = fresh % nn
        deg = degrees[w]
        csum = np.cumsum(deg)
        pos = (
            np.arange(int(csum[-1]))
            - np.repeat(csum - deg, deg)
            + np.repeat(indptr[w], deg)
        )
        nbrs_flat = np.repeat(fresh - w, deg) + indices[pos]
        return np.unique(nbrs_flat, return_counts=True)

    # boundary tracking: a push from a vertex whose whole neighborhood
    # is informed, or a pull by one with no informed neighbor, can
    # never change the state, so only boundary vertices ever draw
    uids0, ucnt0 = neighbor_expand(start_flat)
    uncount = None
    if push:
        # uninformed-neighbor count per flat id (push prune: == 0 means
        # saturated, and saturation is monotone)
        uncount = np.tile(degrees, a)
        uncount[uids0] -= ucnt0
    everseen = None
    if pull:
        # flat ids that have ever had an informed neighbor (pull grow:
        # a vertex joins the asker pool on its first such event)
        everseen = np.zeros(a * n, dtype=bool)
        everseen[uids0] = True
    # push side: informed flat ids still bordering uninformed vertices
    senders = start_flat
    # pull side: uninformed flat ids with >= 1 informed neighbor
    askers = uids0[~informed[uids0]] if pull else None

    for t in range(1, max_steps + 1):
        new_parts = []
        if push:
            senders = senders[uncount[senders] > 0]
            u = rng.random(senders.size)
            idx = ptr_s[senders] + (u * deg_s[senders]).astype(np.int64)
            cand = base_s[senders] + indices[idx]
            new_parts.append(cand[~informed[cand]])
        if pull:
            askers = askers[~informed[askers]]
            if askers.size:
                u = rng.random(askers.size)
                idx = ptr_s[askers] + (u * deg_s[askers]).astype(np.int64)
                src = base_s[askers] + indices[idx]
                new_parts.append(askers[informed[src]])
        new = (
            new_parts[0]
            if len(new_parts) == 1
            else np.concatenate(new_parts)
            if new_parts
            else np.empty(0, dtype=np.int64)
        )
        if new.size == 0:
            continue
        fresh = np.unique(new)
        informed[fresh] = True
        count += np.bincount(row_s[fresh], minlength=a)
        uids, ucnt = neighbor_expand(fresh)
        if push:
            uncount[uids] -= ucnt
            senders = np.concatenate([senders, fresh])
        if pull:
            newly = uids[~everseen[uids]]
            everseen[uids] = True
            askers = np.concatenate([askers, newly[~informed[newly]]])
        done = count == n
        if done.any():
            out[alive[done]] = t
            keep = ~done
            alive = alive[keep]
            a = alive.size
            if a == 0:
                break
            count = count[keep]
            remap = np.cumsum(keep) - 1
            informed = np.ascontiguousarray(informed.reshape(-1, n)[keep]).reshape(-1)
            if push:
                uncount = np.ascontiguousarray(uncount.reshape(-1, n)[keep]).reshape(-1)
                rows = row_s[senders]
                m = keep[rows]
                senders = remap[rows[m]] * nn + senders[m] % nn
            if pull:
                everseen = np.ascontiguousarray(everseen.reshape(-1, n)[keep]).reshape(-1)
                rows = row_s[askers]
                m = keep[rows]
                askers = remap[rows[m]] * nn + askers[m] % nn
            ptr_s, deg_s, base_s, row_s = _tiled_tables(graph, a)
    return out


def batched_parallel_walks_cover_trials(
    graph: Graph,
    *,
    trials: int,
    walkers: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Cover times of *trials* independent ``walkers``-walk runs,
    advanced by one batched neighbor draw per step over all
    ``trials * walkers`` positions.

    ``start`` is one vertex (all walkers there) or an array of length
    *walkers*, matching :class:`repro.walks.parallel.ParallelWalks`.
    The state is tiny (one position per walker), so finished trials
    keep stepping rather than being compacted — the same trade
    ``rw_cover_trials`` makes.  Returns ``float64[trials]`` with
    ``np.nan`` marking budget exhaustion.
    """
    _check_samplable(graph, trials)
    if walkers < 1:
        raise ValueError("need at least one walker")
    n = graph.n
    start_pos = np.atleast_1d(np.asarray(start, dtype=np.int64))
    if start_pos.size == 1:
        start_pos = np.full(walkers, start_pos[0], dtype=np.int64)
    if start_pos.size != walkers:
        raise ValueError("start must be scalar or length == walkers")
    if start_pos.min() < 0 or start_pos.max() >= n:
        raise ValueError("start out of range")
    if max_steps is None:
        from ..walks.parallel import _default_budget

        max_steps = _default_budget(n, walkers)
    rng = resolve_rng(seed)

    indptr, indices = graph.indptr, graph.indices
    pos = np.tile(start_pos, trials)
    trial_base = np.repeat(np.arange(trials, dtype=np.int64) * n, walkers)
    nn = np.int64(n)
    covered = np.zeros(trials * n, dtype=bool)
    covered[np.unique(trial_base + pos)] = True
    count = np.full(trials, np.unique(start_pos).size, dtype=np.int64)
    out = np.full(trials, np.nan)
    done = count == n
    out[done] = 0.0
    if done.all():
        return out

    for t in range(1, max_steps + 1):
        starts = indptr[pos]
        degs = indptr[pos + 1] - starts
        pos = indices[starts + (rng.random(pos.size) * degs).astype(np.int64)]
        flat = trial_base + pos
        fresh = np.unique(flat[~covered[flat]])
        if fresh.size:
            covered[fresh] = True
            count += np.bincount(fresh // nn, minlength=trials)
            newly = ~done & (count == n)
            if newly.any():
                out[newly] = t
                done |= newly
                if done.all():
                    break
    return out


def _walt_move_batch(
    graph: Graph,
    positions: np.ndarray,
    move_rows: np.ndarray,
    rng: np.random.Generator,
    tmp: np.ndarray,
    tmp2: np.ndarray,
    d1: np.ndarray,
    d2: np.ndarray,
) -> np.ndarray:
    """One non-lazy Walt move applied to the ``move_rows`` trials of the
    ``(a, p)`` pebble-position array; returns the moved ``(m, p)`` block.

    Grouping is sort-free: per-group representatives come from two
    duplicate-scatter passes into the dense per-``(trial, vertex)``
    tables ``tmp``/``tmp2`` (numpy scatter semantics: for repeated
    indices the last write wins, so ``tmp[key] == own_index`` singles
    out exactly one pebble per occupied vertex).  The serial kernel
    (:func:`repro.core.walt.walt_step_positions`) instead lexsorts by
    ``(vertex, rank)`` per trial, at ``O(p log p)`` per trial per step;
    here the whole batch pays only ``O(m·p)`` gathers and scatters.

    Which two pebbles of a group act as the independent movers differs
    from the serial rule ("the two lowest-order"), but pebble identities
    are exchangeable for the position-*multiset* law — the update
    removes the group, places one pebble at each of two independent
    uniform neighbors, and coin-flips the rest between them, regardless
    of which identities carried the draws — so cover times are
    distributionally identical.

    The dense tables carry stale values between calls by design: every
    read is at a key written earlier in the same call, so no O(a·n)
    reset is ever needed.
    """
    n = graph.n
    sub = positions[move_rows]
    m, p = sub.shape
    mp = m * p
    flat_pos = sub.ravel()
    key = np.repeat(move_rows.astype(np.int64) * n, p) + flat_pos
    idx = np.arange(mp, dtype=np.int64)
    tmp[key] = idx
    leader = tmp[key] == idx
    newpos = np.empty(mp, dtype=np.int64)
    lkey = key[leader]
    newpos[leader] = sample_uniform_neighbors(graph, flat_pos[leader], rng)
    d1[lkey] = newpos[leader]
    nl = np.flatnonzero(~leader)
    if nl.size:
        tmp2[key[nl]] = nl
        vice = nl[tmp2[key[nl]] == nl]
        vkey = key[vice]
        newpos[vice] = sample_uniform_neighbors(graph, flat_pos[vice], rng)
        d2[vkey] = newpos[vice]
        is_rep = leader.copy()
        is_rep[vice] = True
        followers = np.flatnonzero(~is_rep)
        if followers.size:
            coin = rng.random(followers.size) < 0.5
            fkey = key[followers]
            newpos[followers] = np.where(coin, d1[fkey], d2[fkey])
    return newpos.reshape(m, p)


def batched_walt_cover_trials(
    graph: Graph,
    *,
    trials: int,
    delta: float = 0.5,
    lazy: bool = True,
    start: int | np.ndarray | None = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Cover times of *trials* independent Walt runs (``δn`` ordered
    pebbles each), advanced in lock-step; finished trials are compacted
    out.

    Pebble placement matches :func:`repro.core.walt.walt_start_positions`:
    integer/array *start* puts all pebbles there (identical across
    trials); ``start=None`` spreads them uniformly at random,
    independently per trial.  The lazy coin is drawn per trial per step,
    so each trial holds independently — distributionally the same as
    the serial process's one global coin.  Returns ``float64[trials]``
    with ``np.nan`` marking budget exhaustion.
    """
    _check_samplable(graph, trials)
    if not 0 < delta <= 1:
        raise ValueError("delta must be in (0, 1]")
    n = graph.n
    p = max(1, int(delta * n))
    if max_steps is None:
        # the serial helper's default budget (walt_cover_time)
        max_steps = max(20_000, 1000 * n)
    rng = resolve_rng(seed)

    if start is None:
        positions = rng.integers(0, n, size=(trials, p))
    else:
        start_arr = np.atleast_1d(np.asarray(start, dtype=np.int64))
        if start_arr.size == 0:
            raise ValueError("need at least one start vertex")
        if start_arr.min() < 0 or start_arr.max() >= n:
            raise ValueError("start vertex out of range")
        positions = np.tile(np.resize(start_arr, p), (trials, 1))

    a = trials
    alive = np.arange(trials)
    nn = np.int64(n)
    covered = np.zeros(a * n, dtype=bool)
    init_flat = np.unique(
        (np.arange(a, dtype=np.int64) * n)[:, None] + positions
    ).ravel()
    covered[init_flat] = True
    count = np.bincount(init_flat // nn, minlength=a).astype(np.int64)
    out = np.full(trials, np.nan)
    done0 = count == n
    if done0.any():
        out[done0] = 0.0
        keep = ~done0
        alive = alive[keep]
        a = alive.size
        if a == 0:
            return out
        positions = positions[keep]
        count = count[keep]
        covered = np.ascontiguousarray(covered.reshape(-1, n)[keep]).reshape(-1)

    # dense per-(trial, vertex) work tables for the sort-free move; no
    # per-step reset needed (see _walt_move_batch)
    tmp = np.empty(a * n, dtype=np.int64)
    tmp2 = np.empty(a * n, dtype=np.int64)
    d1 = np.empty(a * n, dtype=np.int64)
    d2 = np.empty(a * n, dtype=np.int64)

    for t in range(1, max_steps + 1):
        if lazy:
            move_rows = (rng.random(a) >= 0.5).nonzero()[0]
            if move_rows.size == 0:
                continue
        else:
            move_rows = np.arange(a)
        moved = _walt_move_batch(graph, positions, move_rows, rng, tmp, tmp2, d1, d2)
        positions[move_rows] = moved
        flat = ((move_rows * nn)[:, None] + moved).ravel()
        unseen = ~covered[flat]
        if not unseen.any():
            continue
        fresh = np.unique(flat[unseen])
        covered[fresh] = True
        count += np.bincount(fresh // nn, minlength=a)
        done = count == n
        if done.any():
            out[alive[done]] = t
            keep = ~done
            alive = alive[keep]
            a = alive.size
            if a == 0:
                break
            positions = positions[keep]
            count = count[keep]
            covered = np.ascontiguousarray(covered.reshape(-1, n)[keep]).reshape(-1)
            tmp = np.empty(a * n, dtype=np.int64)
            tmp2 = np.empty(a * n, dtype=np.int64)
            d1 = np.empty(a * n, dtype=np.int64)
            d2 = np.empty(a * n, dtype=np.int64)
    return out
